//! Umbrella crate for the serverful-functions reproduction.
//!
//! This package exists to host the workspace-level examples (`examples/`)
//! and cross-crate integration tests (`tests/`). It re-exports the member
//! crates so examples can write `use serverful_repro::serverful::...`.
//!
//! Start with the [`serverful`] crate — the paper's contribution — and the
//! `quickstart` example.

// `pub use bench` would also pull in the unstable built-in `#[bench]`
// attribute from the macro namespace; `extern crate` re-exports only the
// crate.
pub extern crate bench;
pub use clustersim;
pub use cloudsim;
pub use fleet;
pub use metaspace;
pub use planner;
pub use serverful;
pub use shuffle;
pub use simkernel;
pub use telemetry;
pub use workload;
