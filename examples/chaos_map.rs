//! Chaos quickstart: the same map, on a cloud that misbehaves.
//!
//! Runs a 32-task map on the Lambda backend twice — once on a perfect
//! region, once with fault injection at the chaos-suite rates — and
//! shows that retries mask every failure: identical results, with the
//! recovery work itemised in the fault ledger. Run with:
//!
//! ```text
//! cargo run --example chaos_map
//! ```

use std::error::Error;
use std::sync::Arc;

use serverful_repro::cloudsim::{CloudConfig, FaultConfig};
use serverful_repro::serverful::{
    Backend, CloudEnv, ExecutorConfig, FunctionExecutor, Payload, RetryPolicy, ScriptTask,
};

fn squares(env: &mut CloudEnv, cfg: ExecutorConfig) -> Result<Vec<Payload>, Box<dyn Error>> {
    let mut exec = FunctionExecutor::new(env, Backend::faas(), cfg);
    let square: serverful_repro::serverful::job::TaskFactory = Arc::new(|input: &Payload| {
        let i = input.as_u64().expect("u64 input");
        ScriptTask::new()
            .compute(1.0)
            .finish_value(Payload::U64(i * i))
            .boxed()
    });
    let job = exec.map_with(
        env,
        square,
        (0..32).map(Payload::U64).collect(),
        serverful_repro::serverful::executor::MapOptions::named("squares"),
    );
    Ok(exec.get_result(env, job)?)
}

fn main() -> Result<(), Box<dyn Error>> {
    // A perfect region: the baseline.
    let mut env = CloudEnv::new_default(5);
    let clean = squares(&mut env, ExecutorConfig::default())?;
    println!(
        "fault-free run:   {} results in {:.1} s of cloud time",
        clean.len(),
        env.now().as_secs_f64()
    );

    // The same region, misbehaving: sandbox crashes, invoke errors, VM
    // boot failures and storage throttling at the chaos-suite rates.
    let cloud = CloudConfig {
        faults: FaultConfig::chaos(),
        ..CloudConfig::default()
    };
    let mut env = CloudEnv::new(cloud, 5);
    let cfg = ExecutorConfig {
        retry: RetryPolicy {
            max_attempts: 6,
            straggler_timeout_secs: Some(120.0),
            ..RetryPolicy::default()
        },
        ..ExecutorConfig::default()
    };
    let chaotic = squares(&mut env, cfg)?;
    println!(
        "chaos run:        {} results in {:.1} s of cloud time",
        chaotic.len(),
        env.now().as_secs_f64()
    );

    assert_eq!(clean, chaotic, "retries must reproduce results exactly");
    println!("results identical despite injected faults\n");
    println!("{}", env.world().fault_ledger().report());
    Ok(())
}
