//! Multi-tenant traffic through the library API.
//!
//! Builds a two-tenant scenario from scratch (no `Scenario::named`
//! preset): a latency-sensitive "interactive" lab submitting small
//! Brain-shaped jobs often, and a throughput-oriented "batch" team
//! submitting larger Xenograft-shaped jobs rarely. Both share one
//! region — one Lambda concurrency quota, one EC2 capacity limit, one
//! warm VM pool — and the same Poisson arrival trace is replayed under
//! all three deployment policies. The same machinery powers
//! `repro fleet <scenario>`; this example shows how to compose a
//! custom scenario and inspect outcomes programmatically. Run with:
//!
//! ```text
//! cargo run --release --example fleet_traffic
//! ```

use serverful_repro::cloudsim::RegionQuotas;
use serverful_repro::fleet::{report, run_scenario, Policy, PoolConfig, Scenario, TenantSpec};

fn main() {
    let scenario = Scenario {
        name: "two-tenant".to_owned(),
        tenants: vec![
            TenantSpec {
                name: "interactive-lab".to_owned(),
                job: "Brain".to_owned(),
                weight: 3.0,  // three of every four arrivals
                scale: 0.015, // small, frequent jobs
            },
            TenantSpec {
                name: "batch-team".to_owned(),
                job: "Xenograft".to_owned(),
                weight: 1.0,
                scale: 0.03, // larger, rarer jobs
            },
        ],
        arrival_rate_per_min: 8.0,
        duration_secs: 180.0,
        quotas: RegionQuotas {
            lambda_concurrency: 24,
            ec2_vcpus: 128.0,
        },
        pool: PoolConfig {
            size: 3,
            instance: "c5.2xlarge".to_owned(),
            idle_timeout_secs: 120.0,
            ..PoolConfig::default()
        },
        max_jobs: 40,
        pipelined: false,
        // Home-region defaults: no provider override, no spot market,
        // no outage — the pre-provider scenario, byte-for-byte.
        region: None,
        spot_market: None,
        outage: None,
    };

    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let fleet = run_scenario(&scenario, 42, threads).expect("traffic completes");

    // The rendered tables — what `repro fleet` prints.
    print!("{}", report::render(&fleet));

    // Outcomes are plain data too: pick a policy and drill in.
    let shared = fleet
        .policy(&Policy::SharedPool.to_string())
        .expect("every run simulates the shared pool");
    println!(
        "\nshared pool: {} jobs for ${:.4}, p99 {:.1}s, {} stage(s) burst to FaaS, {:.0}% warm leases",
        shared.jobs.len(),
        shared.cost_usd,
        shared.latency_percentile(99.0),
        shared.degraded,
        shared.pool_hit_pct().unwrap_or(0.0),
    );
}
