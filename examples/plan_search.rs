//! What-if deployment planning on a toy stage graph.
//!
//! Builds a three-stage pipeline (ingest → shuffle-sort → score), hands
//! it to the planner, and searches the full deployment space — every
//! stage-to-backend assignment, fleet size and host choice — printing
//! the Pareto frontier and the winner under each objective. The same
//! machinery powers `repro plan <job>`; this example shows the library
//! API on a workload that is *not* one of the paper's Table 2 jobs.
//! Run with:
//!
//! ```text
//! cargo run --release --example plan_search
//! ```

use serverful_repro::metaspace::{Stage, StageKind};
use serverful_repro::planner::{search, Evaluator, Objective, SearchConfig, SearchSpace};

/// A small ETL-ish pipeline: a wide stateless ingest, a stateful
/// exchange that must fit somewhere, and a cheap stateless scoring
/// pass over the sorted output.
fn toy_stages() -> Vec<Stage> {
    vec![
        Stage {
            name: "ingest".into(),
            tasks: 64,
            cpu_secs_per_task: 2.0,
            read_mb_per_task: 48.0,
            write_mb_per_task: 24.0,
            kind: StageKind::Stateless {
                read_spread: 4,
                write_spread: 4,
            },
        },
        Stage {
            name: "shuffle-sort".into(),
            tasks: 32,
            cpu_secs_per_task: 3.0,
            read_mb_per_task: 0.0,
            write_mb_per_task: 0.0,
            kind: StageKind::Stateful { exchange_gb: 1.5 },
        },
        Stage {
            name: "score".into(),
            tasks: 64,
            cpu_secs_per_task: 1.0,
            read_mb_per_task: 24.0,
            write_mb_per_task: 4.0,
            kind: StageKind::Stateless {
                read_spread: 4,
                write_spread: 1,
            },
        },
    ]
}

fn main() {
    let stages = toy_stages();
    let evaluator = Evaluator::new("toy-etl", stages.clone(), 42);
    let space = SearchSpace::standard(&stages);

    let cfg = SearchConfig {
        objective: Objective::Pareto,
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        ..SearchConfig::default()
    };
    let report = search(&evaluator, &space, &cfg);

    println!(
        "searched {} of {} candidate plans ({}), {} failed",
        report.evaluated,
        report.space_size,
        if report.exhaustive {
            "exhaustive grid"
        } else {
            "beam search"
        },
        report.failed,
    );

    println!("\nPareto frontier (cost vs makespan):");
    for p in report.frontier.points() {
        println!(
            "  {:<52} ${:.4}  {:>8.2}s",
            p.plan.key(),
            p.cost_usd,
            p.makespan_secs
        );
    }

    // Re-rank the same outcomes under each single objective: the search
    // is one pass, the objectives are just sort orders over it.
    for objective in [Objective::Cost, Objective::Latency] {
        let best = report
            .ranked
            .iter()
            .min_by(|a, b| objective.rank(a, b))
            .expect("non-empty space");
        println!(
            "\nbest plan ({objective}): {} (${:.4}, {:.2}s)",
            best.plan.key(),
            best.cost_usd,
            best.makespan_secs
        );
    }
}
