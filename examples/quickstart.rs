//! Quickstart: the paper's Listing 1, in Rust.
//!
//! Creates CloudObjects on the Lambda backend, then doubles them on the
//! EC2 backend — the same `FunctionExecutor` API, one backend argument
//! apart. Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::error::Error;
use std::sync::Arc;

use serverful_repro::cloudsim::ObjectBody;
use serverful_repro::serverful::{
    Backend, CloudEnv, CloudObjectRef, ExecutorConfig, FunctionExecutor, Payload, ScriptTask,
    TaskStep,
};
use serverful_repro::telemetry::CostCategory;

fn main() -> Result<(), Box<dyn Error>> {
    // A simulated cloud region (deterministic seed).
    let mut env = CloudEnv::new_default(2024);
    let bucket = "lithops-workspace";

    // --- Lambda execution -------------------------------------------------
    let mut lambda = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());

    // `create`: store the input string, repeated, as a cloud object.
    let create: serverful_repro::serverful::job::TaskFactory = Arc::new(|input: &Payload| {
        let s = input.as_str().expect("string input").to_owned();
        let data = Payload::Str(s.repeat(2)).encode();
        let key = format!("objects/{s}");
        let len = data.len() as u64;
        ScriptTask::new()
            .put("lithops-workspace", &key, ObjectBody::real(data))
            .finish_value(Payload::CloudObject(CloudObjectRef::new(
                "lithops-workspace",
                key,
                len,
            )))
            .boxed()
    });
    let inputs = vec![
        Payload::Str("a".into()),
        Payload::Str("b".into()),
        Payload::Str("c".into()),
    ];
    let job = lambda.map(&mut env, create, inputs);
    let cobjs = lambda.get_result(&mut env, job)?;
    println!("stage 1 (aws_lambda) produced {} cloud objects", cobjs.len());

    // --- VM execution ------------------------------------------------------
    // Same map call; the executor provisions a right-sized VM, runs one
    // worker per vCPU, and stops everything afterwards.
    let mut ec2 = FunctionExecutor::new(&mut env, Backend::vm(), ExecutorConfig::default());
    let double: serverful_repro::serverful::job::TaskFactory = Arc::new(|input: &Payload| {
        let r = input.as_cloudobject().expect("cloud object ref").clone();
        ScriptTask::new()
            .get(r.bucket.clone(), r.key.clone())
            .compute(0.2)
            .finish_with(|_, outcomes| {
                let body = match &outcomes[0] {
                    serverful_repro::serverful::ActionOutcome::Object(b) => b,
                    other => panic!("unexpected {other:?}"),
                };
                let inner = Payload::decode(body.bytes().expect("real bytes")).expect("decodes");
                let s = inner.as_str().expect("string").to_owned();
                TaskStep::Finish(Payload::Str(format!("{s}{s}")))
            })
            .boxed()
    });
    let job = ec2.map(&mut env, double, cobjs);
    let results = ec2.get_result(&mut env, job)?;
    ec2.shutdown(&mut env);

    for r in &results {
        println!("> {:?}", r.as_str().expect("string result"));
    }
    assert_eq!(results[0].as_str(), Some("aaaa"));

    let ledger = env.world().ledger();
    println!(
        "\nsimulated {:.1} s of cloud time; billed ${:.6} lambda + ${:.6} ec2 + ${:.6} storage (bucket `{bucket}`)",
        env.now().as_secs_f64(),
        ledger.total_for(CostCategory::FaasCompute),
        ledger.total_for(CostCategory::VmCompute),
        ledger.total_for(CostCategory::StorageRequests),
    );
    Ok(())
}
