//! Table 1 recreated: the same 100 × 5 s CPU-bound map on three very
//! different services, end to end including provisioning and
//! deprovisioning — the motivation for using cloud functions for
//! embarrassingly parallel stages. Run with:
//!
//! ```text
//! cargo run --release --example elastic_map
//! ```

use std::error::Error;
use std::sync::Arc;

use serverful_repro::cloudsim::{CloudConfig, Notify, World};
use serverful_repro::serverful::{
    Backend, CloudEnv, ExecutorConfig, FunctionExecutor, Payload, ScriptTask,
};
use serverful_repro::telemetry::Table;

fn main() -> Result<(), Box<dyn Error>> {
    let factory: serverful_repro::serverful::job::TaskFactory = Arc::new(|_| {
        ScriptTask::new()
            .compute(5.0)
            .finish_value(Payload::Unit)
            .boxed()
    });
    let inputs = || (0..100).map(Payload::U64).collect::<Vec<_>>();

    // Cloud functions: scale to 100 sandboxes in about a second.
    let mut env = CloudEnv::new_default(5);
    let mut exec = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    let job = exec.map(&mut env, factory.clone(), inputs());
    exec.get_result(&mut env, job)?;
    let lambda = env.now().as_secs_f64();

    // One big VM (m6a.32xlarge, 128 vCPUs) from a pre-built AMI,
    // terminated afterwards.
    let mut env = CloudEnv::new_default(5);
    let mut cfg = ExecutorConfig::default();
    cfg.standalone.instance_override = Some("m6a.32xlarge".to_owned());
    cfg.standalone.reuse_instances = false;
    let mut exec = FunctionExecutor::new(&mut env, Backend::vm(), cfg);
    let job = exec.map(&mut env, factory, inputs());
    exec.get_result(&mut env, job)?;
    let ec2 = env.now().as_secs_f64();

    // A managed analytics service with default execution parameters.
    let mut world = World::new(CloudConfig::default(), 5);
    let emr_job = world.emr_submit(100, 5.0);
    let emr = loop {
        match world.step() {
            Some((t, Notify::EmrDone { job })) if job == emr_job => break t.as_secs_f64(),
            Some(_) => continue,
            None => unreachable!(),
        }
    };

    let mut table = Table::new(["Service", "Execution time", "Paper (Table 1)"]);
    table.row(["AWS Lambda", &format!("{lambda:.2} s"), "12.56 s"]);
    table.row(["AWS EC2", &format!("{ec2:.2} s"), "42.34 s"]);
    table.row(["AWS EMR Serverless", &format!("{emr:.2} s"), "134.87 s"]);
    println!("{table}");
    println!("5 s of useful work; everything else is what elasticity costs on each service.");
    Ok(())
}
