//! The paper's §4.2 experiment ("the serverless sort hindrance"): the
//! same sort-and-partition on 37 cloud functions vs one right-sized VM.
//!
//! First runs a *small, real* sort (actual `u64` keys, output verified
//! globally sorted on both architectures), then the paper-scale 25 GB
//! opaque run behind Figure 5. Run with:
//!
//! ```text
//! cargo run --release --example sort_comparison
//! ```

use std::error::Error;

use serverful_repro::serverful::{
    Backend, CloudEnv, ExecutorConfig, FunctionExecutor, SizingPolicy,
};
use serverful_repro::shuffle::{
    seed_input, serverless_sort, verify, vm_sort, SortConfig,
};

fn main() -> Result<(), Box<dyn Error>> {
    // --- Small real-data sort: correctness on both architectures --------
    println!("== real-data sort (1 MB of u64 keys), verified ==");
    let cfg = SortConfig::small_real(1 << 20, 8, 4);

    let mut env = CloudEnv::new_default(7);
    let refs = seed_input(&mut env, &cfg);
    let expected = verify::input_keys(&env, &cfg);
    let mut faas = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    let r = serverless_sort(&mut env, &mut faas, &cfg, &refs)?;
    verify::check_sorted(&env, &cfg, r.output_parts, &expected);
    println!("serverless: {:.1} s, globally sorted ✓", r.wall_secs);

    let mut env = CloudEnv::new_default(7);
    let refs = seed_input(&mut env, &cfg);
    let mut vm = FunctionExecutor::new(&mut env, Backend::vm(), ExecutorConfig::default());
    let r = vm_sort(&mut env, &mut vm, &cfg, &refs, &SizingPolicy::default())?;
    verify::check_sorted(&env, &cfg, r.output_parts, &expected);
    println!("single VM:  {:.1} s, globally sorted ✓", r.wall_secs);

    // --- Paper scale: Figure 5 ------------------------------------------
    println!("\n== paper scale: Xenograft sort, 37 x 1769 MB functions vs one m4.4xlarge ==");
    let cfg = SortConfig::xenograft();

    let mut env = CloudEnv::new_default(7);
    let refs = seed_input(&mut env, &cfg);
    let mut faas = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    let sl = serverless_sort(&mut env, &mut faas, &cfg, &refs)?;

    let mut env = CloudEnv::new_default(7);
    let refs = seed_input(&mut env, &cfg);
    let mut vm = FunctionExecutor::new(&mut env, Backend::vm(), ExecutorConfig::default());
    let sv = vm_sort(&mut env, &mut vm, &cfg, &refs, &SizingPolicy::default())?;

    println!(
        "serverless: {:>7.1} s  ${:.3}   (cost-performance {:.5})",
        sl.wall_secs,
        sl.cost_usd,
        sl.cost_performance()
    );
    println!(
        "single VM:  {:>7.1} s  ${:.3}   (cost-performance {:.5})",
        sv.wall_secs,
        sv.cost_usd,
        sv.cost_performance()
    );
    println!(
        "\nserverless is {:.2}x faster; the VM is {:.1}x cheaper (paper: 1.28x / ~17x)",
        sv.wall_secs / sl.wall_secs,
        sl.cost_usd / sv.cost_usd
    );
    Ok(())
}
