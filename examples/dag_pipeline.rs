//! Dataflow execution through the library API.
//!
//! Builds a small diamond-shaped task DAG by hand — load fans out to
//! two parallel branches that join in a final collect — and runs it
//! twice on the FaaS backend: once under classic BSP stage barriers,
//! once dependency-driven ([`ExecutionMode::Pipelined`]), where each
//! task is released the moment its upstream partitions complete. The
//! same scheduler powers the full METASPACE pipeline behind
//! `repro dag <job>`; this example shows the raw [`Dag`] API. Run with:
//!
//! ```text
//! cargo run --release --example dag_pipeline
//! ```

use std::sync::Arc;

use serverful_repro::serverful::{
    run_dag_async, Backend, CloudEnv, Dag, DagNode, Edge, ExecutionMode, ExecutorConfig,
    FunctionExecutor, MapOptions, Payload, ScriptTask,
};

struct Ctx {
    exec: FunctionExecutor,
}

/// A map node: `tasks` parallel functions of `secs` compute each.
fn node(label: &str, tasks: usize, secs: f64, deps: Vec<Edge>) -> DagNode<Ctx> {
    let name = label.to_owned();
    DagNode {
        label: name.clone(),
        group: None,
        tasks,
        deps,
        launch: Box::new(move |ctx, env, gated| {
            let mut opts = MapOptions::named(name.clone());
            if gated {
                opts = opts.gated();
            }
            let factory = Arc::new(move |_: &Payload| {
                ScriptTask::new()
                    .compute(secs)
                    .finish_value(Payload::U64(0))
                    .boxed()
            });
            Ok(ctx.exec.map_with(env, factory, (0..tasks as u64).map(Payload::U64).collect(), opts))
        }),
    }
}

/// The diamond: load -> {left, right} -> join, with partition-wise
/// edges on the branches and a shuffle edge into the join.
fn diamond() -> Dag<Ctx> {
    let mut dag = Dag::new();
    let load = dag.add_node(node("load", 8, 2.0, vec![]));
    let left = dag.add_node(node("left", 8, 1.5, vec![Edge::one_to_one(load)]));
    let right = dag.add_node(node("right", 8, 0.5, vec![Edge::one_to_one(load)]));
    let _join = dag.add_node(node(
        "join",
        4,
        1.0,
        vec![Edge::all_to_all(left), Edge::all_to_all(right)],
    ));
    dag
}

fn run(mode: ExecutionMode) -> (f64, f64) {
    let mut env = CloudEnv::new_default(42);
    let exec = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    let ctx = Ctx { exec };
    let (env, _ctx, result) = run_dag_async(env, ctx, diamond(), mode);
    let stats = result.expect("dag runs");
    println!("{mode}:");
    for n in &stats.nodes {
        println!(
            "  {:<6} {:2} tasks  launched {:7.2}s  finished {:7.2}s",
            n.label,
            n.tasks,
            n.launched_at.as_secs_f64(),
            n.finished_at.as_secs_f64()
        );
    }
    (env.now().as_secs_f64(), env.world().ledger().total())
}

fn main() {
    let (barrier_secs, barrier_usd) = run(ExecutionMode::Barrier);
    let (pipelined_secs, pipelined_usd) = run(ExecutionMode::Pipelined);
    println!("barrier   {barrier_secs:7.2}s  ${barrier_usd:.4}");
    println!("pipelined {pipelined_secs:7.2}s  ${pipelined_usd:.4}");
    println!(
        "speedup   {:.2}x (branches overlap; the join starts as soon as both drain)",
        barrier_secs / pipelined_secs
    );
}
