//! The full METASPACE annotation pipeline on all three architectures —
//! the paper's use-case validation (§4), condensed.
//!
//! Also runs the *real* annotation algorithms on a small synthetic
//! imaging-MS dataset to show the workload is not just a timing model.
//! Run with:
//!
//! ```text
//! cargo run --release --example hybrid_annotation [brain|xenograft|x089]
//! ```

use std::error::Error;

use serverful_repro::metaspace::{algo, data, jobs, run_annotation, Architecture};
use serverful_repro::simkernel::SimRng;
use serverful_repro::telemetry::Table;

fn main() -> Result<(), Box<dyn Error>> {
    // --- Real algorithms on synthetic data ------------------------------
    println!("== real annotation on a synthetic IMS dataset ==");
    let mut rng = SimRng::seed_from(11);
    let db = data::generate_db(&mut rng, 40);
    let params = data::DatasetParams::default();
    let dataset = data::generate_dataset(&mut rng, &params, &db);
    let accepted = algo::annotate_reference(&dataset, &db, 8, 3.0, 0.1);
    println!(
        "{} pixels, {} peaks, {} target formulas -> {} annotations at FDR 0.1 (no decoys: {})",
        dataset.pixels.len(),
        dataset.peak_count(),
        db.len() / 2,
        accepted.len(),
        accepted.iter().all(|a| !a.decoy),
    );

    // --- The paper-scale pipeline on three architectures ----------------
    let job_name = std::env::args().nth(1).unwrap_or_else(|| "xenograft".into());
    let job = jobs::by_name(&job_name).ok_or("unknown job (brain|xenograft|x089)")?;
    println!("\n== {} annotation across architectures ==", job.name);

    let mut table = Table::new(["Architecture", "Time (s)", "Cost ($)", "Cost-performance"]);
    for arch in [
        Architecture::Serverless,
        Architecture::Hybrid,
        Architecture::Cluster,
    ] {
        let report = run_annotation(&job, arch, 1)?;
        table.row([
            arch.to_string(),
            format!("{:.1}", report.wall_secs),
            format!("{:.3}", report.cost_usd),
            format!("{:.6}", report.cost_performance()),
        ]);
        if arch == Architecture::Hybrid {
            println!("hybrid per-stage breakdown (stateful stages marked *):");
            for s in &report.stages {
                println!(
                    "  {}{:<16} {:>5} tasks  {:>7.1} s",
                    if s.stateful { "*" } else { " " },
                    s.name,
                    s.tasks,
                    s.secs
                );
            }
        }
    }
    println!("\n{table}");
    println!("(the hybrid improves cost-performance over cloud functions in all jobs, per Figure 6)");
    Ok(())
}
