//! Acceptance and property tests for the dependency-driven DAG
//! executor: pipelined scheduling must respect dependency order on
//! random graphs, stay seed-deterministic, and — the headline — beat
//! barrier execution on the paper's hybrid deployments at equal-or-lower
//! cost, all while the barrier mode keeps the pre-dataflow goldens
//! byte-identical (covered by the untouched `tests/goldens.rs`).
//!
//! Like `tests/properties.rs`, random cases come from seeded [`SimRng`]
//! draws (no crates.io access for `proptest`); failures print the case
//! seed, which reproduces the exact graph.

use std::sync::Arc;

use serverful_repro::bench::render::render_dag;
use serverful_repro::bench::dag_comparison;
use serverful_repro::metaspace::jobs;
use serverful_repro::serverful::{
    fan_in_range, run_dag_async, Backend, CloudEnv, Dag, DagNode, Edge, ExecutionMode,
    ExecutorConfig, FanIn, FunctionExecutor, MapOptions, Payload, ScriptTask,
};
use serverful_repro::simkernel::SimRng;

struct Ctx {
    exec: FunctionExecutor,
}

/// Builds a random topological DAG of FaaS map nodes: every node after
/// the first depends on 1–2 random earlier nodes through a random
/// fan-in shape, with per-node task counts and compute times drawn from
/// the case rng.
fn random_dag(rng: &mut SimRng) -> Dag<Ctx> {
    let mut dag: Dag<Ctx> = Dag::new();
    let nodes = rng.uniform_u64(3, 8) as usize;
    for v in 0..nodes {
        let tasks = rng.uniform_u64(1, 6) as usize;
        let mut deps = Vec::new();
        if v > 0 {
            for _ in 0..rng.uniform_u64(1, 3) {
                let from = rng.uniform_u64(0, v as u64) as usize;
                if deps.iter().any(|e: &Edge| e.from == from) {
                    continue;
                }
                deps.push(Edge {
                    from,
                    fan_in: if rng.uniform_u64(0, 2) == 0 {
                        FanIn::OneToOne
                    } else {
                        FanIn::AllToAll
                    },
                });
            }
        }
        let secs = 0.1 + rng.uniform_u64(0, 10) as f64 / 10.0;
        let label = format!("n{v}");
        dag.add_node(DagNode {
            label: label.clone(),
            group: None,
            tasks,
            deps,
            launch: Box::new(move |ctx, env, gated| {
                let mut opts = MapOptions::named(label.clone());
                if gated {
                    opts = opts.gated();
                }
                let factory = Arc::new(move |_: &Payload| {
                    ScriptTask::new()
                        .compute(secs)
                        .finish_value(Payload::U64(0))
                        .boxed()
                });
                let inputs = (0..tasks as u64).map(Payload::U64).collect();
                Ok(ctx.exec.map_with(env, factory, inputs, opts))
            }),
        });
    }
    dag
}

/// Remembers each node's shape so dependency ranges can be re-derived
/// from the stats alone after the DAG was consumed.
fn shapes(dag: &Dag<Ctx>) -> Vec<(usize, Vec<Edge>)> {
    (0..dag.len())
        .map(|v| (dag.node(v).tasks, dag.node(v).deps.clone()))
        .collect()
}

#[test]
fn pipelined_release_order_respects_random_dag_dependencies() {
    for case in 0..15u64 {
        let seed = 0xDA6 ^ case.wrapping_mul(0x9E3779B97F4A7C15);
        let mut rng = SimRng::seed_from(seed);
        let dag = random_dag(&mut rng);
        let shape = shapes(&dag);
        let mut env = CloudEnv::new_default(seed);
        let exec = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
        let ctx = Ctx { exec };
        let (_env, _ctx, result) = run_dag_async(env, ctx, dag, ExecutionMode::Pipelined);
        let stats =
            result.unwrap_or_else(|e| panic!("case seed {seed:#x}: pipelined run failed: {e}"));

        for (v, (tasks, deps)) in shape.iter().enumerate() {
            let node = &stats.nodes[v];
            for t in 0..*tasks {
                assert!(
                    node.released_at[t] <= node.done_at[t],
                    "case seed {seed:#x}: node {v} task {t} done before release"
                );
                // The topological-order property: a task is released
                // only after every upstream partition its fan-in shape
                // names was observed complete.
                for e in deps {
                    for u in fan_in_range(e.fan_in, stats.nodes[e.from].tasks, *tasks, t) {
                        assert!(
                            stats.nodes[e.from].done_at[u] <= node.released_at[t],
                            "case seed {seed:#x}: node {v} task {t} released before \
                             upstream {} task {u} completed",
                            e.from
                        );
                    }
                }
            }
            assert!(
                node.finished_at >= *node.done_at.iter().max().expect("non-empty node"),
                "case seed {seed:#x}: node {v} finished before its last task"
            );
        }
    }
}

#[test]
fn barrier_mode_is_a_strict_stage_chain_on_random_dags() {
    for case in 0..10u64 {
        let seed = 0xBA44 ^ case.wrapping_mul(0x9E3779B97F4A7C15);
        let mut rng = SimRng::seed_from(seed);
        let dag = random_dag(&mut rng);
        let mut env = CloudEnv::new_default(seed);
        let exec = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
        let ctx = Ctx { exec };
        let (_env, _ctx, result) = run_dag_async(env, ctx, dag, ExecutionMode::Barrier);
        let stats =
            result.unwrap_or_else(|e| panic!("case seed {seed:#x}: barrier run failed: {e}"));
        // Each node launches only after the previous one fully drained
        // (the degenerate DAG), regardless of the declared edges.
        for w in stats.nodes.windows(2) {
            assert!(
                w[1].launched_at >= w[0].finished_at,
                "case seed {seed:#x}: barrier overlapped two nodes"
            );
        }
    }
}

#[test]
fn pipelined_smoke_comparison_is_seed_deterministic() {
    let job = jobs::brain();
    let a = render_dag(&dag_comparison(&job, 42, true).expect("smoke run"));
    let b = render_dag(&dag_comparison(&job, 42, true).expect("smoke run"));
    assert_eq!(a, b, "same seed must reproduce the comparison byte-for-byte");
    let c = render_dag(&dag_comparison(&job, 7, true).expect("smoke run"));
    assert_ne!(a, c, "a different seed should perturb the measured run");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "paper-scale run; use --release")]
fn pipelined_hybrid_beats_barrier_on_brain_and_xenograft() {
    for job in [jobs::brain(), jobs::xenograft()] {
        let cmp = dag_comparison(&job, 42, false).expect("full-scale run");
        assert!(
            cmp.pipelined.wall_secs < cmp.barrier.wall_secs,
            "{}: pipelined {:.2}s must strictly beat barrier {:.2}s",
            job.name,
            cmp.pipelined.wall_secs,
            cmp.barrier.wall_secs
        );
        assert!(
            cmp.pipelined.cost_usd <= cmp.barrier.cost_usd + 1e-9,
            "{}: pipelined ${:.4} must not cost more than barrier ${:.4}",
            job.name,
            cmp.pipelined.cost_usd,
            cmp.barrier.cost_usd
        );
    }
}
