//! Golden-table and golden-trace regression tests.
//!
//! Each golden file under `tests/goldens/` snapshots the exact text the
//! `repro` binary prints for one table or figure at seed 42. The
//! simulation is deterministic, so a golden only moves when behaviour
//! does: an unexplained diff is a regression, not noise.
//!
//! After an *intentional* behaviour change, refresh the snapshots and
//! review the diff like any other code change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --release --test goldens
//! ```
//!
//! The paper-scale goldens (Tables 3–4, Figures 5–6, the Xenograft
//! trace) are ignored under debug builds; run them with `--release`.

use std::fs;
use std::path::PathBuf;

use serverful_repro::bench::render::{
    render_fig5, render_fig6, render_table1, render_table2, render_table3, render_table4,
};
use serverful_repro::cloudsim::CloudConfig;
use serverful_repro::metaspace::{jobs, run_annotation_traced, Architecture, TraceOutput};

/// The one seed all goldens are pinned to.
const GOLDEN_SEED: u64 = 42;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(format!("{name}.txt"))
}

/// Compares `actual` against the stored golden, or rewrites the golden
/// when `UPDATE_GOLDENS=1` is set.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDENS").as_deref() == Ok("1") {
        fs::write(&path, actual).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\n(create it with UPDATE_GOLDENS=1 cargo test --release --test goldens)",
            path.display()
        )
    });
    if expected == actual {
        return;
    }
    let mismatch = expected
        .lines()
        .zip(actual.lines())
        .position(|(e, a)| e != a)
        .unwrap_or_else(|| expected.lines().count().min(actual.lines().count()));
    panic!(
        "golden `{name}` drifted (first difference at line {}):\n\
         --- expected ({})\n{}\n--- actual\n{}\n\
         If this change is intentional, refresh with UPDATE_GOLDENS=1 \
         cargo test --release --test goldens and commit the diff.",
        mismatch + 1,
        path.display(),
        expected.lines().nth(mismatch).unwrap_or("<eof>"),
        actual.lines().nth(mismatch).unwrap_or("<eof>"),
    );
}

#[test]
fn golden_table1() {
    check_golden("table1", &render_table1(GOLDEN_SEED));
}

#[test]
fn golden_table2() {
    check_golden("table2", &render_table2());
}

#[test]
#[cfg_attr(debug_assertions, ignore = "paper-scale run; use --release")]
fn golden_table3() {
    check_golden("table3", &render_table3(GOLDEN_SEED));
}

#[test]
#[cfg_attr(debug_assertions, ignore = "paper-scale run; use --release")]
fn golden_table4() {
    check_golden("table4", &render_table4(GOLDEN_SEED));
}

#[test]
#[cfg_attr(debug_assertions, ignore = "paper-scale run; use --release")]
fn golden_fig5() {
    check_golden("fig5", &render_fig5(GOLDEN_SEED));
}

#[test]
#[cfg_attr(debug_assertions, ignore = "paper-scale run; use --release")]
fn golden_fig6() {
    check_golden("fig6", &render_fig6(GOLDEN_SEED));
}

// --- golden traces -------------------------------------------------------

fn traced(job: &str, arch: Architecture, seed: u64) -> TraceOutput {
    let spec = jobs::all()
        .into_iter()
        .find(|j| j.name == job)
        .expect("job in Table 2");
    let (_, trace) =
        run_annotation_traced(&spec, arch, seed, CloudConfig::default()).expect("traced run");
    trace
}

/// The tracer is deterministic: two runs of the same seeded job emit
/// byte-identical Chrome JSON, and a different seed emits a different
/// trace. Brain is the smallest Table 2 job, so this stays in the debug
/// suite.
#[test]
fn trace_same_seed_is_byte_identical() {
    let a = traced("Brain", Architecture::Serverless, 7);
    let b = traced("Brain", Architecture::Serverless, 7);
    assert_eq!(a.chrome_json, b.chrome_json, "same seed must replay identically");
    assert_eq!(a.summary, b.summary);
    let c = traced("Brain", Architecture::Serverless, 8);
    assert_ne!(a.chrome_json, c.chrome_json, "different seeds must differ");
}

/// The trace summary (span counts, per-stage latency quantiles, wasted
/// work) is goldened for the Brain job: cheap to run, and it pins the
/// whole tracer→collector→summary pipeline.
#[test]
fn golden_trace_brain_summary() {
    let trace = traced("Brain", Architecture::Serverless, GOLDEN_SEED);
    check_golden("trace_brain_summary", &trace.summary);
}

/// The paper-scale acceptance check: the seeded Xenograft trace replays
/// byte-for-byte, on the serverless and the hybrid architecture.
#[test]
#[cfg_attr(debug_assertions, ignore = "paper-scale run; use --release")]
fn xenograft_trace_is_byte_identical() {
    for arch in [Architecture::Serverless, Architecture::Hybrid] {
        let a = traced("Xenograft", arch, 42);
        let b = traced("Xenograft", arch, 42);
        assert_eq!(a.chrome_json, b.chrome_json, "arch {arch:?}");
    }
}
