//! Release-gated acceptance tests for the provider/spot-market issue:
//! (a) the planner's provider sweep finds a spot-heavy plan strictly
//! cheaper than the all-on-demand hybrid on at least one workload, and
//! (b) a fleet preemption storm finishes with a science digest
//! byte-identical to the fault-free run. Paper-scale simulations, so
//! both are ignored under debug assertions (run `cargo test --release`
//! or `scripts/ci.sh --full`).

use serverful_repro::fleet::{run_policy, Policy, Scenario};
use serverful_repro::metaspace::jobs;
use serverful_repro::planner::{Evaluator, SearchSpace};
use serverful_repro::serverful::BidPolicy;

/// Acceptance (a): sweeping provider x region x tenancy must surface a
/// spot-heavy plan that strictly undercuts both its on-demand twin
/// (same key minus `:sp`) and the paper's all-on-demand hybrid on at
/// least one Table 2 workload. Spot workers bill at the region's
/// discount, masters stay on-demand, and preemption replacements are
/// billed, so this is an economic claim, not a pricing identity.
#[test]
#[cfg_attr(debug_assertions, ignore = "paper-scale sweep; run in release")]
fn provider_sweep_finds_spot_plan_cheaper_than_all_on_demand_hybrid() {
    let mut witnessed = Vec::new();
    for job in jobs::all() {
        let ev = Evaluator::for_job(&job, 42);
        let plans = SearchSpace::provider_sweep(&ev.stages).candidates(&ev.stages);
        let cost_of = |key: &str| -> Option<f64> {
            let plan = plans.iter().find(|p| p.key() == key)?;
            Some(ev.evaluate(plan).expect("sweep plan completes").cost_usd)
        };
        let hybrid_cost = plans
            .iter()
            .find(|p| p.name == "hybrid")
            .map(|p| ev.evaluate(p).expect("hybrid completes").cost_usd)
            .expect("sweep contains the named hybrid");
        for plan in plans.iter().filter(|p| p.key().ends_with(":sp")) {
            let spot_cost = ev.evaluate(plan).expect("spot plan completes").cost_usd;
            let twin_key = plan.key().trim_end_matches(":sp").to_owned();
            let twin_cost = cost_of(&twin_key).expect("spot plan has an on-demand twin");
            if spot_cost < twin_cost && spot_cost < hybrid_cost {
                witnessed.push((job.name, plan.key(), spot_cost, twin_cost, hybrid_cost));
            }
        }
    }
    for (job, key, spot, twin, hybrid) in &witnessed {
        println!(
            "provider verdict: {job}: {key} ${spot:.4} undercuts \
             on-demand twin ${twin:.4} and hybrid ${hybrid:.4}: yes"
        );
    }
    assert!(
        !witnessed.is_empty(),
        "no workload produced a spot plan strictly cheaper than both its \
         on-demand twin and the named hybrid"
    );
}

/// Acceptance (b): under a preemption storm the spot pool loses workers
/// mid-flight, falls back to on-demand replacements, and still produces
/// a science digest byte-identical to the same scenario run with an
/// on-demand bid (no preemptions possible). Faults may reshuffle where
/// and when work ran — never what it computed.
#[test]
#[cfg_attr(debug_assertions, ignore = "paper-scale traffic; run in release")]
fn spot_storm_recovers_byte_identical_science() {
    let storm_sc = Scenario::spot_storm();
    let storm = run_policy(&storm_sc, Policy::SharedPool, 42).expect("storm completes");
    assert!(
        storm.preemptions > 0,
        "preemption storm must actually preempt spot workers"
    );
    assert!(
        storm.spot_fallbacks > 0,
        "exhausted spot budgets must fall back to on-demand"
    );

    let mut calm_sc = Scenario::spot_storm();
    calm_sc.pool.bid = BidPolicy::OnDemand;
    let calm = run_policy(&calm_sc, Policy::SharedPool, 42).expect("fault-free run completes");
    assert_eq!(calm.preemptions, 0, "on-demand pools cannot be preempted");

    assert_eq!(storm.jobs.len(), calm.jobs.len(), "same traffic either way");
    assert_eq!(
        storm.science_digest, calm.science_digest,
        "preemptions must not change what the workflow computed"
    );
    println!(
        "provider verdict: spot-storm: {} preemptions, {} fallbacks, \
         science digest {:016x} == fault-free digest: yes",
        storm.preemptions, storm.spot_fallbacks, storm.science_digest
    );
}
