//! Schema gate for the `BENCH_kernel.json` artifact `scripts/ci.sh`
//! writes on every run: the committed baseline, a freshly generated
//! tiny-config report, and (when present) the artifact itself must all
//! parse to the `bench-kernel/v1` layout with the required fields —
//! scenario names, seed, git rev — and finite positive throughput.

use serverful_repro::bench::kernelbench::{
    run, KernelBenchConfig, KernelBenchReport, SCHEMA,
};

/// Scenario names ci.sh's regression gate matches on; renaming one
/// silently un-gates it, so the set is pinned here.
const REQUIRED_SCENARIOS: [&str; 5] = [
    "event-throughput",
    "timer-churn",
    "fanin-storm",
    "fleet-replay-legacy-pump",
    "fleet-replay-async-kernel",
];

fn assert_well_formed(report: &KernelBenchReport, what: &str) {
    assert!(!report.git_rev.is_empty(), "{what}: empty git_rev");
    for name in REQUIRED_SCENARIOS {
        let s = report
            .scenario(name)
            .unwrap_or_else(|| panic!("{what}: scenario {name:?} missing"));
        assert!(s.events > 0, "{what}: {name} ran no events");
        assert!(
            s.wall_secs.is_finite() && s.wall_secs > 0.0,
            "{what}: {name} wall_secs {}",
            s.wall_secs
        );
        assert!(
            s.events_per_sec.is_finite() && s.events_per_sec > 0.0,
            "{what}: {name} events_per_sec {}",
            s.events_per_sec
        );
    }
    assert!(
        report.fleet_replay_speedup.is_finite() && report.fleet_replay_speedup > 0.0,
        "{what}: fleet_replay_speedup {}",
        report.fleet_replay_speedup
    );
}

#[test]
fn committed_baseline_parses_and_is_well_formed() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_kernel_baseline.json");
    let text = std::fs::read_to_string(path).expect("BENCH_kernel_baseline.json is committed");
    assert!(
        text.contains(SCHEMA),
        "baseline does not declare schema {SCHEMA:?}"
    );
    let report = KernelBenchReport::parse(&text).expect("baseline parses");
    assert_well_formed(&report, "baseline");
    assert!(
        report.fleet_replay_speedup >= 10.0,
        "baseline speedup {} below the issue's 10x target",
        report.fleet_replay_speedup
    );
}

#[test]
fn generated_report_round_trips_and_is_well_formed() {
    let report = run(42, "test-rev", &KernelBenchConfig::tiny());
    assert_eq!(report.seed, 42);
    assert_eq!(report.git_rev, "test-rev");
    assert_well_formed(&report, "generated");
    let parsed = KernelBenchReport::parse(&report.to_json()).expect("emitted JSON parses");
    assert_eq!(parsed.seed, 42);
    assert_well_formed(&parsed, "re-parsed");
}

/// When ci.sh already produced the artifact, hold it to the same
/// schema. (Absent on a fresh checkout — the bench step writes it.)
#[test]
fn ci_artifact_when_present_is_well_formed() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_kernel.json");
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let report = KernelBenchReport::parse(&text)
        .expect("BENCH_kernel.json parses as bench-kernel/v1");
    assert_well_formed(&report, "BENCH_kernel.json");
}
