//! The workload-description subsystem, end to end: every bundled
//! workload must round-trip through the DSL, compile to the same graph
//! everywhere, and replay deterministically; random valid workloads
//! must survive parse → validate → compile unchanged; and — the reason
//! the families exist at all — each new family carries a release-gated
//! verdict on whether the paper's hybrid/pipelined wins hold or reverse
//! on *its* graph shape, not just METASPACE's.
//!
//! Like `tests/properties.rs`, random cases come from seeded [`SimRng`]
//! draws (no crates.io access for `proptest`); failures print the case
//! seed, which reproduces the exact workload.

use serverful_repro::bench::render::{render_workload, workload_verdicts};
use serverful_repro::bench::workload_comparison;
use serverful_repro::metaspace::workloads;
use serverful_repro::serverful::{fan_in_range, FanIn};
use serverful_repro::simkernel::SimRng;
use serverful_repro::workload::{emit, parse, Stage, StageEdge, StageKind, Workload};

/// Every bundled workload — the METASPACE Table 2 jobs and the DSL
/// families — emits to canonical DSL text and parses back to the
/// *identical* value (float bits included: `{}` is shortest-round-trip
/// and `parse::<f64>` restores the same bits).
#[test]
fn every_bundled_workload_round_trips_through_the_dsl() {
    for name in workloads::all_names() {
        let w = workloads::named(&name).expect("bundled name resolves");
        let text = emit(&w);
        let back = parse(&text).unwrap_or_else(|e| panic!("{name}: re-parse failed: {e}"));
        assert_eq!(w, back, "{name}: DSL round trip changed the workload");
        assert_eq!(text, emit(&back), "{name}: emit is not canonical");
    }
}

/// Draws a random valid workload: 1–7 stages, random shapes, every
/// non-root stage wired to 1–2 random earlier stages through random
/// fan-in shapes (so roots, branches and joins all occur).
fn arb_workload(rng: &mut SimRng) -> Workload {
    let n = rng.uniform_u64(1, 8) as usize;
    let mut stages = Vec::new();
    let mut edges = Vec::new();
    for i in 0..n {
        let tasks = rng.uniform_u64(1, 40) as usize;
        let kind = if rng.uniform_u64(0, 3) == 0 {
            StageKind::Stateful {
                exchange_gb: 0.01 + rng.uniform_u64(0, 100) as f64 / 100.0,
            }
        } else {
            StageKind::Stateless {
                read_spread: rng.uniform_u64(1, 8) as usize,
                write_spread: rng.uniform_u64(1, 8) as usize,
            }
        };
        stages.push(Stage {
            name: format!("s{i}"),
            tasks,
            cpu_secs_per_task: rng.uniform_u64(1, 200) as f64 / 10.0,
            read_mb_per_task: rng.uniform_u64(0, 64) as f64,
            write_mb_per_task: rng.uniform_u64(0, 64) as f64,
            kind,
        });
        let mut deps: Vec<StageEdge> = Vec::new();
        if i > 0 {
            for _ in 0..rng.uniform_u64(1, 3) {
                let from = rng.uniform_u64(0, i as u64) as usize;
                if deps.iter().any(|e| e.from == from) {
                    continue;
                }
                deps.push(StageEdge {
                    from,
                    fan_in: if rng.uniform_u64(0, 2) == 0 {
                        FanIn::OneToOne
                    } else {
                        FanIn::AllToAll
                    },
                });
            }
        }
        edges.push(deps);
    }
    Workload {
        name: format!("rand{}", rng.uniform_u64(0, 1 << 20)),
        stages,
        edges,
    }
}

/// Property: random valid workloads validate, survive the DSL round
/// trip bit-for-bit, and keep scaling sane (no stage ever drops to zero
/// tasks, edges stay aligned).
#[test]
fn random_workloads_validate_round_trip_and_scale() {
    for case in 0..40u64 {
        let seed = 0x3014 ^ case.wrapping_mul(0x9E3779B97F4A7C15);
        let mut rng = SimRng::seed_from(seed);
        let w = arb_workload(&mut rng);
        w.validate()
            .unwrap_or_else(|e| panic!("case seed {seed:#x}: generated workload invalid: {e}"));
        let back = parse(&emit(&w))
            .unwrap_or_else(|e| panic!("case seed {seed:#x}: round trip failed: {e}"));
        assert_eq!(w, back, "case seed {seed:#x}: round trip changed the workload");

        let tiny = w.scaled(0.0001);
        tiny.validate()
            .unwrap_or_else(|e| panic!("case seed {seed:#x}: tiny scale broke validity: {e}"));
        assert!(
            tiny.stages.iter().all(|s| s.tasks >= 1),
            "case seed {seed:#x}: tiny scale produced a zero-task stage"
        );
        assert_eq!(tiny.edges.len(), tiny.stages.len());
    }
}

/// Property: the fan-in ranges every edge of a random workload declares
/// are exactly the in-bounds ranges the DAG executor will wait on —
/// one-to-one partitions tile the upstream without gaps, all-to-all
/// covers it whole. This pins the compile contract between
/// `Workload::validate` and `serverful::fan_in_range`.
#[test]
fn random_workload_edges_compile_to_in_bounds_fan_in_ranges() {
    for case in 0..25u64 {
        let seed = 0xFA91 ^ case.wrapping_mul(0x9E3779B97F4A7C15);
        let mut rng = SimRng::seed_from(seed);
        let w = arb_workload(&mut rng);
        for (to, deps) in w.edges.iter().enumerate() {
            let down = w.stages[to].tasks;
            for e in deps {
                assert!(e.from < to, "case seed {seed:#x}: edge breaks topological order");
                let up = w.stages[e.from].tasks;
                let mut covered = vec![false; up];
                for t in 0..down {
                    let r = fan_in_range(e.fan_in, up, down, t);
                    assert!(
                        r.end <= up && r.start <= r.end,
                        "case seed {seed:#x}: range {r:?} escapes upstream of {up}"
                    );
                    r.for_each(|u| covered[u] = true);
                }
                assert!(
                    covered.iter().all(|&c| c),
                    "case seed {seed:#x}: fan-in leaves upstream partitions unawaited"
                );
            }
        }
    }
}

/// The `repro workload` comparison replays byte-identically from one
/// seed and actually moves when the seed changes, for a family whose
/// graph the METASPACE fallback would mis-wire.
#[test]
fn workload_comparison_is_seed_deterministic() {
    let w = workloads::named("montage").expect("bundled family");
    let a = render_workload(&workload_comparison(&w, 42, true).expect("smoke run"));
    let b = render_workload(&workload_comparison(&w, 42, true).expect("smoke run"));
    assert_eq!(a, b, "same seed must reproduce the comparison byte-for-byte");
    let c = render_workload(&workload_comparison(&w, 7, true).expect("smoke run"));
    assert_ne!(a, c, "a different seed should perturb the measured run");
}

/// Release gate, ML pipeline: a long training tail (few tasks, heavy
/// CPU) leaves little for dependency-driven release to overlap, but the
/// paper's wins must still *hold* — pipelined no worse, hybrid cheaper
/// than serverless.
#[test]
#[cfg_attr(debug_assertions, ignore = "paper-scale run; use --release")]
fn verdict_mlpipe_wins_hold() {
    let w = workloads::named("mlpipe").expect("bundled family");
    let cmp = workload_comparison(&w, 42, false).expect("full-scale run");
    let v = workload_verdicts(&cmp);
    assert!(
        v.contains("pipelined beats barrier at equal-or-lower cost: yes"),
        "mlpipe pipelined verdict reversed:\n{v}"
    );
    assert!(
        v.contains("hybrid beats serverless on cost: yes"),
        "mlpipe hybrid verdict reversed:\n{v}"
    );
}

/// Release gate, Montage: the wide fan-out/fan-in montage graph is the
/// dependency-driven scheduler's best case — both wins must hold, and
/// the pipelined speedup must be visible (>2%).
#[test]
#[cfg_attr(debug_assertions, ignore = "paper-scale run; use --release")]
fn verdict_montage_wins_hold() {
    let w = workloads::named("montage").expect("bundled family");
    let cmp = workload_comparison(&w, 42, false).expect("full-scale run");
    let v = workload_verdicts(&cmp);
    assert!(
        v.contains("pipelined beats barrier at equal-or-lower cost: yes"),
        "montage pipelined verdict reversed:\n{v}"
    );
    assert!(
        v.contains("hybrid beats serverless on cost: yes"),
        "montage hybrid verdict reversed:\n{v}"
    );
    assert!(
        cmp.hybrid_pipelined.wall_secs < cmp.hybrid_barrier.wall_secs * 0.98,
        "montage: expected a visible pipelined speedup, got {:.2}s vs {:.2}s",
        cmp.hybrid_pipelined.wall_secs,
        cmp.hybrid_barrier.wall_secs
    );
}

/// Release gate, terasort: the shuffle-dominated sort is where the
/// hybrid architecture earns its keep (the paper's §4.2 claim), at
/// every bundled scale — but the three-stage chain leaves pipelining
/// almost nothing to overlap, so *that* win is allowed to be a wash and
/// is recorded, not asserted.
#[test]
#[cfg_attr(debug_assertions, ignore = "paper-scale run; use --release")]
fn verdict_terasort_hybrid_wins_at_every_scale() {
    for name in ["terasort-small", "terasort-medium", "terasort-large"] {
        let w = workloads::named(name).expect("bundled family");
        let cmp = workload_comparison(&w, 42, false).expect("full-scale run");
        let v = workload_verdicts(&cmp);
        assert!(
            v.contains("hybrid beats serverless on cost: yes"),
            "{name} hybrid verdict reversed:\n{v}"
        );
        assert!(
            cmp.hybrid_pipelined.wall_secs <= cmp.hybrid_barrier.wall_secs * 1.02,
            "{name}: pipelined should never lose noticeably on a chain, got {:.2}s vs {:.2}s",
            cmp.hybrid_pipelined.wall_secs,
            cmp.hybrid_barrier.wall_secs
        );
    }
}
