//! Fleet-level integration tests: determinism of the multi-tenant
//! traffic simulator and the issue's headline economics claim.

use serverful_repro::fleet::{report, run_policy, run_scenario, Policy, Scenario, TenantSpec};

/// Same seed, same scenario, any thread count, run twice: the rendered
/// report must be byte-identical. This is the library-level twin of the
/// `repro fleet` determinism gate in CI.
#[test]
fn smoke_report_is_byte_identical_across_threads_and_runs() {
    let sc = Scenario::smoke();
    let one = run_scenario(&sc, 42, 1).expect("smoke completes");
    let two = run_scenario(&sc, 42, 2).expect("smoke completes");
    let eight = run_scenario(&sc, 42, 8).expect("smoke completes");
    let again = run_scenario(&sc, 42, 1).expect("smoke completes");
    let text = report::render(&one);
    assert_eq!(text, report::render(&two), "threads must not change bytes");
    assert_eq!(text, report::render(&eight), "threads must not change bytes");
    assert_eq!(text, report::render(&again), "repeat runs must not drift");
    assert!(!text.is_empty());
}

/// Different seeds produce different traffic (sanity that the seed is
/// actually threaded through the arrival process).
#[test]
fn smoke_seeds_differ() {
    let sc = Scenario::smoke();
    let a = run_scenario(&sc, 1, 1).expect("smoke completes");
    let b = run_scenario(&sc, 2, 1).expect("smoke completes");
    assert_ne!(report::render(&a), report::render(&b));
}

/// Every policy cell replays the *same* arrivals: job counts and
/// per-job names/arrival times must match across policies.
#[test]
fn all_policies_replay_identical_traffic() {
    let sc = Scenario::smoke();
    let fleet = run_scenario(&sc, 7, 1).expect("smoke completes");
    assert_eq!(fleet.policies.len(), 3);
    let names = |p: usize| -> Vec<(String, f64)> {
        fleet.policies[p]
            .jobs
            .iter()
            .map(|j| (j.name.clone(), j.arrived.as_secs_f64()))
            .collect()
    };
    assert_eq!(names(0), names(1));
    assert_eq!(names(0), names(2));
}

/// Tenants are not limited to METASPACE jobs: a DSL workload family
/// (terasort) joins the smoke traffic mix — dependency-driven, so its
/// declared one-to-one edge is exercised — and the region stays
/// byte-deterministic.
#[test]
fn dsl_family_tenants_share_the_region_deterministically() {
    let mut sc = Scenario::smoke();
    sc.name = "smoke+terasort".to_owned();
    sc.pipelined = true;
    sc.tenants.push(TenantSpec {
        name: "sorters".to_owned(),
        job: "terasort-small".to_owned(),
        weight: 2.0,
        scale: 0.05,
    });
    let a = run_scenario(&sc, 42, 2).expect("mixed-family traffic completes");
    let b = run_scenario(&sc, 42, 2).expect("mixed-family traffic completes");
    let text = report::render(&a);
    assert_eq!(text, report::render(&b), "repeat runs must not drift");
    assert!(
        a.policies[0].jobs.iter().any(|j| j.name.starts_with("sorters#")),
        "the terasort tenant never submitted a job"
    );
}

/// The smoke scenario's quota is sized so pure serverless actually
/// throttles — keeps the admission path exercised in the fast suite.
#[test]
fn smoke_serverless_throttles() {
    let outcome = run_policy(&Scenario::smoke(), Policy::Serverless, 42)
        .expect("serverless cell completes");
    assert!(outcome.throttled > 0, "quota never bound: {outcome:?}");
}

/// The issue's headline, paper-scale: at a high arrival rate the warm
/// shared pool strictly beats per-job fleets on cost (no per-job boot
/// and minimum-billing tax), stays far below pure serverless on p99
/// (which the Lambda quota visibly throttles), and serves almost every
/// lease warm.
#[test]
// Paper-scale simulation: slow under debug; run with --release.
#[cfg_attr(debug_assertions, ignore = "paper-scale run; use --release")]
fn shared_pool_dominates_under_load() {
    let fleet = run_scenario(&Scenario::mixed(), 1, 4).expect("mixed completes");
    let sl = fleet.policy("serverless").expect("serverless cell");
    let pj = fleet.policy("per-job-fleet").expect("per-job cell");
    let sp = fleet.policy("shared-pool").expect("shared-pool cell");

    // The region is genuinely contended: the Lambda quota throttles
    // pure serverless.
    assert!(sl.throttled > 0, "lambda quota never bound: {sl:?}");

    // Headline: the shared warm pool strictly dominates per-job fleets
    // on cost…
    assert!(
        sp.cost_usd < pj.cost_usd,
        "shared pool (${:.4}) should undercut per-job fleets (${:.4})",
        sp.cost_usd,
        pj.cost_usd
    );
    // …at a p99 far better than quota-throttled serverless.
    assert!(
        sp.latency_percentile(99.0) * 2.0 < sl.latency_percentile(99.0),
        "shared-pool p99 {:.1}s should be well under serverless p99 {:.1}s",
        sp.latency_percentile(99.0),
        sl.latency_percentile(99.0)
    );
    // The pool really is warm across jobs, not re-booting per lease.
    let hit = sp.pool_hit_pct().expect("pool leased something");
    assert!(hit > 50.0, "pool hit rate {hit:.1}% too cold");

    // Every cell finished the whole arrival schedule.
    assert_eq!(sl.jobs.len(), pj.jobs.len());
    assert_eq!(sl.jobs.len(), sp.jobs.len());
}
