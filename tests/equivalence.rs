//! Executor determinism: the async-kernel DAG driver
//! ([`serverful::run_dag_async`]) is the workspace's only engine, so
//! the contract the deleted legacy pump loop used to witness is now
//! stated directly — repeat runs of the same (workload, plan, mode,
//! seed) cell must be *byte-identical*: same report tables, same span
//! traces (down to span-id allocation order), same billing bits. This
//! is what lets goldens, chaos replays and CI double-runs mean
//! anything.
//!
//! Debug builds run the smoke-scaled graphs (same shape, ~2% volume);
//! the full paper-scale sweep is release-gated like the other
//! paper-scale tests.

use serverful_repro::cloudsim::CloudConfig;
use serverful_repro::metaspace::{
    self, jobs::JobSpec, plan::PlanKind, workloads, DeploymentPlan, FunctionsPlan,
};
use serverful_repro::serverful::ExecutionMode;

/// Re-keys a hybrid/serverless base plan to the requested execution
/// mode.
fn with_mode(base: DeploymentPlan, mode: ExecutionMode) -> DeploymentPlan {
    let PlanKind::Functions(f) = &base.kind else {
        unreachable!("functions plan expected")
    };
    DeploymentPlan::functions(
        format!("{}-{mode}", base.name),
        FunctionsPlan {
            execution: mode,
            ..f.clone()
        },
    )
}

/// Runs one (spec, mode) hybrid cell twice with tracing on and asserts
/// the two runs match byte for byte.
fn assert_repeat_identical(spec: &JobSpec, mode: ExecutionMode, smoke: bool, seed: u64) {
    let stages = if smoke {
        metaspace::pipeline::scaled_stages(spec, 0.02)
    } else {
        metaspace::pipeline::stages(spec)
    };
    let plan = with_mode(DeploymentPlan::hybrid(&stages), mode);
    let run = || {
        metaspace::run_plan_stages(spec.name, &stages, &plan, seed, CloudConfig::default(), true)
            .unwrap_or_else(|e| panic!("{} {mode}: {e}", spec.name))
    };
    let (first_report, first_trace) = run();
    let (second_report, second_trace) = run();

    let ctx = format!("{} {mode}", spec.name);
    assert_eq!(
        format!("{first_report:?}"),
        format!("{second_report:?}"),
        "{ctx}: report tables diverged between repeat runs"
    );
    assert_eq!(
        first_report.cost_usd.to_bits(),
        second_report.cost_usd.to_bits(),
        "{ctx}: billing diverged between repeat runs"
    );
    let ft = first_trace.expect("trace requested");
    let st = second_trace.expect("trace requested");
    assert_eq!(
        ft.chrome_json, st.chrome_json,
        "{ctx}: span traces diverged between repeat runs"
    );
    assert_eq!(
        ft.summary, st.summary,
        "{ctx}: trace summaries diverged between repeat runs"
    );
}

#[test]
fn repeat_runs_match_smoke_brain_barrier() {
    assert_repeat_identical(&metaspace::jobs::brain(), ExecutionMode::Barrier, true, 42);
}

#[test]
fn repeat_runs_match_smoke_brain_pipelined() {
    assert_repeat_identical(&metaspace::jobs::brain(), ExecutionMode::Pipelined, true, 42);
}

#[test]
fn repeat_runs_match_smoke_xenograft_barrier() {
    assert_repeat_identical(&metaspace::jobs::xenograft(), ExecutionMode::Barrier, true, 42);
}

#[test]
fn repeat_runs_match_smoke_xenograft_pipelined() {
    assert_repeat_identical(&metaspace::jobs::xenograft(), ExecutionMode::Pipelined, true, 42);
}

#[test]
fn repeat_runs_match_smoke_x089_barrier() {
    assert_repeat_identical(&metaspace::jobs::x089(), ExecutionMode::Barrier, true, 42);
}

#[test]
fn repeat_runs_match_smoke_x089_pipelined() {
    assert_repeat_identical(&metaspace::jobs::x089(), ExecutionMode::Pipelined, true, 42);
}

/// Determinism must also hold on a pure-serverless plan (no warm VM
/// pool, scatter/gather lowering for stateful stages) and across seeds
/// — and a different seed must actually perturb the trace, or the
/// repeat-run assertions above are vacuous.
#[test]
fn repeat_runs_match_smoke_serverless_plans_and_seeds() {
    for mode in [ExecutionMode::Barrier, ExecutionMode::Pipelined] {
        let spec = metaspace::jobs::brain();
        let stages = metaspace::pipeline::scaled_stages(&spec, 0.02);
        let plan = with_mode(DeploymentPlan::serverless(&stages), mode);
        let run = |seed: u64| {
            metaspace::run_plan_stages(
                spec.name,
                &stages,
                &plan,
                seed,
                CloudConfig::default(),
                true,
            )
            .expect("serverless smoke run completes")
        };
        let mut traces = Vec::new();
        for seed in [1, 42] {
            let (r1, t1) = run(seed);
            let (r2, t2) = run(seed);
            assert_eq!(format!("{r1:?}"), format!("{r2:?}"), "seed {seed} {mode}");
            let t1 = t1.expect("traced").chrome_json;
            assert_eq!(t1, t2.expect("traced").chrome_json, "seed {seed} {mode}");
            traces.push(t1);
        }
        assert_ne!(
            traces[0], traces[1],
            "{mode}: different seeds should perturb the measured run"
        );
    }
}

/// Every bundled workload — METASPACE jobs and the DSL families alike —
/// replays byte-identically through [`metaspace::run_workload`] on its
/// smoke scale.
#[test]
fn repeat_runs_match_every_bundled_workload() {
    for name in workloads::all_names() {
        let w = workloads::named(&name).expect("bundled name resolves");
        let w = w.scaled(0.02);
        let plan = with_mode(DeploymentPlan::hybrid(&w.stages), ExecutionMode::Pipelined);
        let run = || {
            metaspace::run_workload(&w, &plan, 42, CloudConfig::default(), true)
                .unwrap_or_else(|e| panic!("{name}: {e}"))
        };
        let (r1, t1) = run();
        let (r2, t2) = run();
        assert_eq!(format!("{r1:?}"), format!("{r2:?}"), "{name}: reports diverged");
        assert_eq!(
            t1.expect("traced").chrome_json,
            t2.expect("traced").chrome_json,
            "{name}: traces diverged"
        );
    }
}

/// Paper-scale repeat determinism across the full job × mode matrix —
/// the release gate the smoke cells preview.
#[test]
#[cfg_attr(debug_assertions, ignore = "paper-scale run; use --release")]
fn repeat_runs_match_paper_scale_all_specs_and_modes() {
    for spec in metaspace::jobs::all() {
        for mode in [ExecutionMode::Barrier, ExecutionMode::Pipelined] {
            assert_repeat_identical(&spec, mode, false, 42);
        }
    }
}
