//! Cross-executor equivalence: the legacy polling DAG driver
//! ([`serverful::run_dag`]) and the async-kernel driver
//! ([`serverful::run_dag_async`]) must be *byte-identical* — same
//! report tables, same span traces (down to span-id allocation order),
//! same billing — on the paper's three workflows in both execution
//! modes. This is the contract that lets the async kernel replace the
//! pump loops without touching a single golden.
//!
//! Debug builds run the smoke-scaled graphs (same shape, ~2% volume);
//! the full paper-scale sweep is release-gated like the other
//! paper-scale tests.

use serverful_repro::cloudsim::CloudConfig;
use serverful_repro::metaspace::{
    self, jobs::JobSpec, plan::PlanKind, DagEngine, DeploymentPlan, FunctionsPlan,
};
use serverful_repro::serverful::ExecutionMode;

/// Runs one (spec, plan, mode) cell under both engines with tracing on
/// and asserts the outputs match byte for byte.
fn assert_engines_match(spec: &JobSpec, mode: ExecutionMode, smoke: bool, seed: u64) {
    let stages = if smoke {
        metaspace::pipeline::scaled_stages(spec, 0.02)
    } else {
        metaspace::pipeline::stages(spec)
    };
    let base = DeploymentPlan::hybrid(&stages);
    let PlanKind::Functions(f) = &base.kind else {
        unreachable!("hybrid is a functions plan")
    };
    let plan = DeploymentPlan::functions(
        format!("hybrid-{mode}"),
        FunctionsPlan {
            execution: mode,
            ..f.clone()
        },
    );
    let run = |engine: DagEngine| {
        metaspace::run_plan_stages_with_engine(
            spec.name,
            &stages,
            &plan,
            seed,
            CloudConfig::default(),
            true,
            engine,
        )
        .unwrap_or_else(|e| panic!("{} {mode} {engine}: {e}", spec.name))
    };
    let (legacy_report, legacy_trace) = run(DagEngine::Legacy);
    let (async_report, async_trace) = run(DagEngine::Async);

    let ctx = format!("{} {mode}", spec.name);
    assert_eq!(
        format!("{legacy_report:?}"),
        format!("{async_report:?}"),
        "{ctx}: report tables diverged between engines"
    );
    assert_eq!(
        legacy_report.cost_usd.to_bits(),
        async_report.cost_usd.to_bits(),
        "{ctx}: billing diverged between engines"
    );
    let lt = legacy_trace.expect("trace requested");
    let at = async_trace.expect("trace requested");
    assert_eq!(
        lt.chrome_json, at.chrome_json,
        "{ctx}: span traces diverged between engines"
    );
    assert_eq!(
        lt.summary, at.summary,
        "{ctx}: trace summaries diverged between engines"
    );
}

#[test]
fn engines_match_smoke_brain_barrier() {
    assert_engines_match(&metaspace::jobs::brain(), ExecutionMode::Barrier, true, 42);
}

#[test]
fn engines_match_smoke_brain_pipelined() {
    assert_engines_match(&metaspace::jobs::brain(), ExecutionMode::Pipelined, true, 42);
}

#[test]
fn engines_match_smoke_xenograft_barrier() {
    assert_engines_match(&metaspace::jobs::xenograft(), ExecutionMode::Barrier, true, 42);
}

#[test]
fn engines_match_smoke_xenograft_pipelined() {
    assert_engines_match(&metaspace::jobs::xenograft(), ExecutionMode::Pipelined, true, 42);
}

#[test]
fn engines_match_smoke_x089_barrier() {
    assert_engines_match(&metaspace::jobs::x089(), ExecutionMode::Barrier, true, 42);
}

#[test]
fn engines_match_smoke_x089_pipelined() {
    assert_engines_match(&metaspace::jobs::x089(), ExecutionMode::Pipelined, true, 42);
}

/// Engines must also agree on a pure-serverless plan (no warm VM pool,
/// scatter/gather lowering for stateful stages) and across seeds.
#[test]
fn engines_match_smoke_serverless_plans_and_seeds() {
    for seed in [1, 42] {
        for mode in [ExecutionMode::Barrier, ExecutionMode::Pipelined] {
            let spec = metaspace::jobs::brain();
            let stages = metaspace::pipeline::scaled_stages(&spec, 0.02);
            let base = DeploymentPlan::serverless(&stages);
            let PlanKind::Functions(f) = &base.kind else {
                unreachable!("serverless is a functions plan")
            };
            let plan = DeploymentPlan::functions(
                format!("serverless-{mode}"),
                FunctionsPlan {
                    execution: mode,
                    ..f.clone()
                },
            );
            let run = |engine: DagEngine| {
                metaspace::run_plan_stages_with_engine(
                    spec.name,
                    &stages,
                    &plan,
                    seed,
                    CloudConfig::default(),
                    true,
                    engine,
                )
                .expect("serverless smoke run completes")
            };
            let (lr, lt) = run(DagEngine::Legacy);
            let (ar, at) = run(DagEngine::Async);
            assert_eq!(format!("{lr:?}"), format!("{ar:?}"), "seed {seed} {mode}");
            assert_eq!(
                lt.expect("traced").chrome_json,
                at.expect("traced").chrome_json,
                "seed {seed} {mode}"
            );
        }
    }
}

/// Paper-scale equivalence across the full golden-suite seeds — the
/// gate the legacy path must keep passing until it is deleted.
#[test]
#[cfg_attr(debug_assertions, ignore = "paper-scale run; use --release")]
fn engines_match_paper_scale_all_specs_and_modes() {
    for spec in metaspace::jobs::all() {
        for mode in [ExecutionMode::Barrier, ExecutionMode::Pipelined] {
            assert_engines_match(&spec, mode, false, 42);
        }
    }
}
