//! Cross-crate integration tests: the paper's claims as assertions.

use serverful_repro::metaspace::{algo, data, jobs, run_annotation, Architecture};
use serverful_repro::simkernel::SimRng;

/// The paper's abstract in one test: the hybrid deployment is more
/// cost-effective than pure serverless while being much faster than the
/// serverful (Spark) baseline — on the typical job.
#[test]
// Paper-scale simulation: minutes under debug; run with --release.
#[cfg_attr(debug_assertions, ignore = "paper-scale run; use --release")]
fn abstract_claims_hold_on_xenograft() {
    let job = jobs::xenograft();
    let cf = run_annotation(&job, Architecture::Serverless, 1).unwrap();
    let hy = run_annotation(&job, Architecture::Hybrid, 1).unwrap();
    let sp = run_annotation(&job, Architecture::Cluster, 1).unwrap();

    // Hybrid improves cost-performance over pure serverless.
    assert!(
        hy.cost_performance() > cf.cost_performance(),
        "hybrid {} vs serverless {}",
        hy.cost_performance(),
        cf.cost_performance()
    );
    // Hybrid is much faster than the serverful baseline (paper: 2.21x).
    let speedup = sp.wall_secs / hy.wall_secs;
    assert!(
        speedup > 1.8,
        "hybrid should be ~2x faster than Spark, got {speedup:.2}"
    );
    // Serverless is faster than Spark but more expensive (Figures 3, 4).
    assert!(cf.wall_secs < sp.wall_secs);
    assert!(cf.cost_usd > sp.cost_usd);
}

#[test]
// Paper-scale simulation: minutes under debug; run with --release.
#[cfg_attr(debug_assertions, ignore = "paper-scale run; use --release")]
fn hybrid_improves_cost_performance_on_all_jobs() {
    // Figure 6's claim, across the full Table 2.
    for job in jobs::all() {
        let cf = run_annotation(&job, Architecture::Serverless, 1).unwrap();
        let hy = run_annotation(&job, Architecture::Hybrid, 1).unwrap();
        assert!(
            hy.cost_performance() >= cf.cost_performance(),
            "{}: hybrid {} < serverless {}",
            job.name,
            hy.cost_performance(),
            cf.cost_performance()
        );
    }
}

#[test]
fn small_jobs_prefer_the_warm_cluster() {
    // Table 4's Brain row: the fixed cluster wins on tiny inputs because
    // elasticity overheads dominate.
    let job = jobs::brain();
    let cf = run_annotation(&job, Architecture::Serverless, 1).unwrap();
    let sp = run_annotation(&job, Architecture::Cluster, 1).unwrap();
    assert!(
        sp.wall_secs < cf.wall_secs,
        "Spark {} should beat serverless {} on Brain",
        sp.wall_secs,
        cf.wall_secs
    );
}

#[test]
// Paper-scale simulation: minutes under debug; run with --release.
#[cfg_attr(debug_assertions, ignore = "paper-scale run; use --release")]
fn demanding_jobs_underprovision_the_cluster() {
    // Table 4's X089 row: the 64-slot cluster falls 4-5x behind.
    let job = jobs::x089();
    let cf = run_annotation(&job, Architecture::Serverless, 1).unwrap();
    let sp = run_annotation(&job, Architecture::Cluster, 1).unwrap();
    let speedup = sp.wall_secs / cf.wall_secs;
    assert!(
        speedup > 4.0,
        "serverless should be >4x faster on X089, got {speedup:.2}"
    );
}

#[test]
// Paper-scale simulation: minutes under debug; run with --release.
#[cfg_attr(debug_assertions, ignore = "paper-scale run; use --release")]
fn serverless_cpu_usage_is_flatter_than_spark() {
    // Table 3: elastic provisioning stabilises utilisation — lower
    // standard deviation and a much higher minimum than the fixed pool.
    let job = jobs::xenograft();
    let cf = run_annotation(&job, Architecture::Serverless, 1).unwrap();
    let sp = run_annotation(&job, Architecture::Cluster, 1).unwrap();
    let cf_cpu = cf.cpu.expect("cf stats");
    let sp_cpu = sp.cpu.expect("spark stats");
    assert!(
        cf_cpu.std_dev < sp_cpu.std_dev,
        "cf σ {} vs spark σ {}",
        cf_cpu.std_dev,
        sp_cpu.std_dev
    );
    assert!(
        cf_cpu.min > sp_cpu.min + 10.0,
        "cf min {} vs spark min {}",
        cf_cpu.min,
        sp_cpu.min
    );
    // Stateful operations underutilise both deployments.
    assert!(cf_cpu.stateful_average < cf_cpu.average);
    assert!(sp_cpu.stateful_average < sp_cpu.average);
}

#[test]
// Paper-scale simulation: minutes under debug; run with --release.
#[cfg_attr(debug_assertions, ignore = "paper-scale run; use --release")]
fn stage_concurrency_matches_figure2_shape() {
    // Stateful stages run at tens of tasks; the comparison at thousands.
    let report = run_annotation(&jobs::xenograft(), Architecture::Serverless, 1).unwrap();
    let stateful_max = report
        .stages
        .iter()
        .filter(|s| s.stateful)
        .map(|s| s.tasks)
        .max()
        .unwrap();
    let stateless_max = report
        .stages
        .iter()
        .filter(|s| !s.stateful)
        .map(|s| s.tasks)
        .max()
        .unwrap();
    assert!(stateful_max <= 100, "stateful stages stay narrow");
    assert!(stateless_max >= 2000, "the comparison reaches thousands");
}

#[test]
fn annotation_is_architecture_independent() {
    // The real algorithms produce the same annotations regardless of how
    // the pipeline is deployed — here checked between the in-memory
    // reference at different segmentations (the distributed pipelines
    // shard exactly this way).
    let mut rng = SimRng::seed_from(21);
    let db = data::generate_db(&mut rng, 30);
    let ds = data::generate_dataset(&mut rng, &data::DatasetParams::default(), &db);
    let a = algo::annotate_reference(&ds, &db, 2, 3.0, 0.2);
    let b = algo::annotate_reference(&ds, &db, 16, 3.0, 0.2);
    let ids = |v: &[algo::Annotation]| {
        let mut ids: Vec<u32> = v.iter().map(|x| x.formula_id).collect();
        ids.sort_unstable();
        ids
    };
    let (a, b) = (ids(&a), ids(&b));
    let common = a.iter().filter(|x| b.contains(x)).count();
    assert!(common * 10 >= a.len().max(b.len()) * 9, "{a:?} vs {b:?}");
}

#[test]
fn runs_are_deterministic_per_seed_and_vary_across_seeds() {
    let job = jobs::brain();
    let a = run_annotation(&job, Architecture::Hybrid, 9).unwrap();
    let b = run_annotation(&job, Architecture::Hybrid, 9).unwrap();
    assert_eq!(a.wall_secs, b.wall_secs);
    assert_eq!(a.cost_usd, b.cost_usd);
    let c = run_annotation(&job, Architecture::Hybrid, 10).unwrap();
    assert_ne!(a.wall_secs, c.wall_secs, "different seeds should jitter");
}
