//! Property-based tests on the core data structures and invariants.
//!
//! The build environment has no crates.io access, so instead of
//! `proptest` these properties run over seeded random cases drawn from
//! [`SimRng`]: each test executes a few hundred generated inputs and
//! reports the failing case's seed on assertion failure, which is enough
//! to reproduce (`SimRng::seed_from(seed)` regenerates the exact case).

use serverful_repro::cloudsim::{catalog, LambdaTariff, ObjectBody};
use serverful_repro::serverful::{CloudObjectRef, Payload};
use serverful_repro::telemetry::{CostCategory, CostLedger};
use serverful_repro::shuffle::data as sortdata;
use serverful_repro::simkernel::{
    AsyncExecutor, EventQueue, FairShare, Gate, SimDuration, SimRng, SimTime, StepSeries,
};

/// Runs `body` over `n` seeded cases; the case seed is passed through so
/// failures print a reproducible starting point.
fn forall_cases(n: u64, mut body: impl FnMut(u64, &mut SimRng)) {
    for case in 0..n {
        let seed = 0xC0FFEE ^ case.wrapping_mul(0x9E3779B97F4A7C15);
        let mut rng = SimRng::seed_from(seed);
        body(seed, &mut rng);
    }
}

fn arb_string(rng: &mut SimRng, max_len: u64) -> String {
    let len = rng.uniform_u64(0, max_len + 1) as usize;
    (0..len)
        .map(|_| char::from(b'a' + rng.uniform_u64(0, 26) as u8))
        .collect()
}

fn arb_bytes(rng: &mut SimRng, max_len: u64) -> Vec<u8> {
    let len = rng.uniform_u64(0, max_len + 1) as usize;
    (0..len).map(|_| rng.uniform_u64(0, 256) as u8).collect()
}

/// An arbitrary payload of bounded depth.
fn arb_payload(rng: &mut SimRng, depth: u32) -> Payload {
    let variants = if depth == 0 { 7 } else { 8 };
    match rng.uniform_u64(0, variants) {
        0 => Payload::Unit,
        1 => Payload::U64(rng.next_u64()),
        // NaN is not round-trip comparable with PartialEq; use finite.
        2 => Payload::F64(rng.uniform(-1e300, 1e300)),
        3 => Payload::Str(arb_string(rng, 32)),
        4 => Payload::Bytes(bytes::Bytes::from(arb_bytes(rng, 64))),
        5 => Payload::CloudObject(CloudObjectRef::new(
            arb_string(rng, 8),
            arb_string(rng, 16),
            rng.next_u64(),
        )),
        6 => Payload::Opaque { size: rng.next_u64() },
        _ => {
            let n = rng.uniform_u64(0, 6) as usize;
            Payload::List((0..n).map(|_| arb_payload(rng, depth - 1)).collect())
        }
    }
}

/// The wire codec round-trips every payload.
#[test]
fn payload_codec_roundtrips() {
    forall_cases(256, |seed, rng| {
        let p = arb_payload(rng, 3);
        let encoded = p.encode();
        let decoded = Payload::decode(&encoded).expect("decode");
        assert_eq!(decoded, p, "seed {seed}");
    });
}

/// Decoding arbitrary bytes never panics (it may error).
#[test]
fn payload_decode_never_panics() {
    forall_cases(512, |_seed, rng| {
        let bytes = arb_bytes(rng, 256);
        let _ = Payload::decode(&bytes);
    });
}

/// Sort-key encoding round-trips.
#[test]
fn sort_keys_roundtrip() {
    forall_cases(128, |seed, rng| {
        let n = rng.uniform_u64(0, 512) as usize;
        let keys: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let encoded = sortdata::encode_keys(&keys);
        assert_eq!(sortdata::decode_keys(&encoded), keys, "seed {seed}");
    });
}

/// Range partitioning conserves keys and respects splitter bounds.
#[test]
fn partitioning_conserves_keys() {
    forall_cases(128, |seed, rng| {
        let n = rng.uniform_u64(1, 512) as usize;
        let keys: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let ranges = rng.uniform_u64(1, 16) as usize;
        let splitters = sortdata::uniform_splitters(ranges);
        let buckets = sortdata::partition_keys(&keys, &splitters);
        assert_eq!(buckets.len(), ranges, "seed {seed}");
        let total: usize = buckets.iter().map(Vec::len).sum();
        assert_eq!(total, keys.len(), "seed {seed}");
        for (i, bucket) in buckets.iter().enumerate() {
            for &k in bucket {
                if i > 0 {
                    assert!(k >= splitters[i - 1], "seed {seed}");
                }
                if i < splitters.len() {
                    assert!(k < splitters[i], "seed {seed}");
                }
            }
        }
    });
}

/// The event queue pops in non-decreasing time order regardless of
/// insertion order.
#[test]
fn event_queue_is_time_ordered() {
    forall_cases(128, |seed, rng| {
        let n = rng.uniform_u64(1, 64) as usize;
        let delays: Vec<u64> = (0..n).map(|_| rng.uniform_u64(0, 1_000_000)).collect();
        let mut q: EventQueue<usize> = EventQueue::new();
        for (i, &d) in delays.iter().enumerate() {
            q.schedule_at(SimTime::from_micros(d), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.next() {
            assert!(t >= last, "seed {seed}");
            last = t;
            count += 1;
        }
        assert_eq!(count, delays.len(), "seed {seed}");
    });
}

/// Fair-share transfers all complete, and total completion time is
/// bounded below by aggregate capacity.
#[test]
fn fair_share_conserves_bytes() {
    forall_cases(64, |seed, rng| {
        let n = rng.uniform_u64(1, 32) as usize;
        let sizes: Vec<u64> = (0..n).map(|_| rng.uniform_u64(1, 1_000_000)).collect();
        let aggregate = 1_000_000.0;
        let mut pool = FairShare::new(aggregate, 500_000.0);
        let t0 = SimTime::ZERO;
        for &s in &sizes {
            pool.start(t0, s, &[]);
        }
        let total: u64 = sizes.iter().sum();
        let mut done = 0;
        let mut now = t0;
        let mut guard = 0;
        while pool.active() > 0 {
            let next = pool.next_completion().expect("active pool has a completion");
            assert!(next >= now, "seed {seed}");
            now = next;
            done += pool.advance(now).len();
            guard += 1;
            assert!(guard < 10_000, "pool failed to drain (seed {seed})");
        }
        assert_eq!(done, sizes.len(), "seed {seed}");
        // No faster than the aggregate cap allows.
        let lower_bound = total as f64 / aggregate;
        assert!(now.as_secs_f64() >= lower_bound * 0.999, "seed {seed}");
    });
}

/// Step-series integrals are additive over adjacent intervals.
#[test]
fn step_series_integral_is_additive() {
    forall_cases(128, |seed, rng| {
        let n = rng.uniform_u64(1, 32) as usize;
        let mut points: Vec<(u64, f64)> = (0..n)
            .map(|_| (rng.uniform_u64(0, 1000), rng.uniform(-100.0, 100.0)))
            .collect();
        let split = rng.uniform_u64(1, 999);
        points.sort_by_key(|&(t, _)| t);
        let mut series = StepSeries::new(0.0);
        let mut last = None;
        for (t, v) in points {
            if last == Some(t) {
                continue;
            }
            series.set(SimTime::from_micros(t), v);
            last = Some(t);
        }
        let a = SimTime::ZERO;
        let m = SimTime::from_micros(split);
        let b = SimTime::from_micros(1000);
        let whole = series.integral(a, b);
        let parts = series.integral(a, m) + series.integral(m, b);
        assert!((whole - parts).abs() < 1e-9, "seed {seed}");
    });
}

/// Object bodies report the length their constructor was given.
#[test]
fn object_body_length_is_stable() {
    forall_cases(128, |seed, rng| {
        let size = rng.uniform_u64(0, u64::from(u32::MAX)) as u32;
        let body = ObjectBody::opaque(size as u64);
        assert_eq!(body.len(), size as u64, "seed {seed}");
        let real = ObjectBody::real(vec![0u8; (size % 4096) as usize]);
        assert_eq!(real.len(), (size % 4096) as u64, "seed {seed}");
    });
}

/// SimDuration arithmetic is consistent with float seconds.
#[test]
fn duration_arithmetic_consistent() {
    forall_cases(256, |seed, rng| {
        let a = rng.uniform(0.0, 1e6);
        let b = rng.uniform(0.0, 1e6);
        let da = SimDuration::from_secs_f64(a);
        let db = SimDuration::from_secs_f64(b);
        let sum = (da + db).as_secs_f64();
        assert!((sum - (a + b)).abs() < 1e-5, "seed {seed}");
    });
}

/// Lambda billing is monotone in both duration and memory, and a GB-s
/// charge is never negative — even at zero duration or tiny memory.
#[test]
fn lambda_billing_monotone_and_non_negative() {
    let tariff = LambdaTariff::default();
    forall_cases(256, |seed, rng| {
        let mem_lo = rng.uniform_u64(0, 10_240) as u32;
        let mem_hi = mem_lo + rng.uniform_u64(0, 10_240) as u32;
        let secs_lo = rng.uniform(0.0, 3600.0);
        let secs_hi = secs_lo + rng.uniform(0.0, 3600.0);
        let base = tariff.compute_usd(mem_lo, secs_lo);
        assert!(base.is_finite() && base >= 0.0, "seed {seed}: {base}");
        assert!(
            tariff.compute_usd(mem_lo, secs_hi) >= base,
            "seed {seed}: longer run must not be cheaper"
        );
        assert!(
            tariff.compute_usd(mem_hi, secs_lo) >= base,
            "seed {seed}: more memory must not be cheaper"
        );
        assert!(tariff.compute_usd(0, 0.0) == 0.0, "seed {seed}");
    });
}

/// Per-second VM billing is positive and monotone in duration for every
/// catalog instance.
#[test]
fn vm_billing_monotone_in_duration() {
    forall_cases(128, |seed, rng| {
        let it = &catalog()[rng.uniform_u64(0, catalog().len() as u64) as usize];
        assert!(it.usd_per_second() > 0.0, "seed {seed}: {}", it.name);
        let lo = rng.uniform(0.0, 1e5);
        let hi = lo + rng.uniform(0.0, 1e5);
        assert!(
            it.usd_per_second() * hi >= it.usd_per_second() * lo,
            "seed {seed}: {}",
            it.name
        );
    });
}

/// A ledger's grand total is exactly the sum over its categories.
#[test]
fn ledger_total_is_sum_of_categories() {
    const CATEGORIES: [CostCategory; 5] = [
        CostCategory::FaasCompute,
        CostCategory::FaasRequests,
        CostCategory::StorageRequests,
        CostCategory::VmCompute,
        CostCategory::ManagedService,
    ];
    forall_cases(128, |seed, rng| {
        let mut ledger = CostLedger::new();
        let n = rng.uniform_u64(0, 64);
        for _ in 0..n {
            let cat = CATEGORIES[rng.uniform_u64(0, 5) as usize];
            ledger.charge(SimTime::ZERO, cat, rng.uniform(0.0, 10.0), "entry");
        }
        let by_category: f64 = CATEGORIES.iter().map(|&c| ledger.total_for(c)).sum();
        assert!(
            (ledger.total() - by_category).abs() < 1e-9,
            "seed {seed}: {} vs {}",
            ledger.total(),
            by_category
        );
    });
}

/// The hybrid architecture's bill is the sum of its fleet ledgers:
/// absorbing per-fleet ledgers into one preserves both the entries and
/// the total.
#[test]
fn hybrid_cost_is_sum_of_fleet_ledgers() {
    forall_cases(128, |seed, rng| {
        let fleets = rng.uniform_u64(1, 6) as usize;
        let mut parts = Vec::new();
        for f in 0..fleets {
            let mut ledger = CostLedger::new();
            for _ in 0..rng.uniform_u64(0, 16) {
                let cat = if f == 0 {
                    CostCategory::FaasCompute
                } else {
                    CostCategory::VmCompute
                };
                ledger.charge(SimTime::ZERO, cat, rng.uniform(0.0, 5.0), format!("fleet-{f}"));
            }
            parts.push(ledger);
        }
        let expected_total: f64 = parts.iter().map(CostLedger::total).sum();
        let expected_entries: usize = parts.iter().map(|l| l.entries().len()).sum();
        let mut merged = CostLedger::new();
        for part in parts {
            merged.absorb(part);
        }
        assert_eq!(merged.entries().len(), expected_entries, "seed {seed}");
        assert!(
            (merged.total() - expected_total).abs() < 1e-9,
            "seed {seed}: {} vs {expected_total}",
            merged.total()
        );
    });
}

// ---------------------------------------------------------------------
// Deterministic async kernel (simkernel::aio)
// ---------------------------------------------------------------------

/// One node of a random task graph: dependencies point strictly to
/// lower indices, so every graph is acyclic by construction.
struct GraphTask {
    deps: Vec<usize>,
    delay_us: u64,
}

fn arb_task_graph(rng: &mut SimRng) -> Vec<GraphTask> {
    let n = 3 + rng.uniform_u64(0, 10) as usize;
    (0..n)
        .map(|i| {
            let max_deps = i.min(3) as u64;
            let k = rng.uniform_u64(0, max_deps + 1);
            let mut deps = std::collections::BTreeSet::new();
            for _ in 0..k {
                deps.insert(rng.uniform_u64(0, i as u64) as usize);
            }
            GraphTask {
                deps: deps.into_iter().collect(),
                delay_us: rng.uniform_u64(1, 10_000),
            }
        })
        .collect()
}

/// A uniformly random topological order of the graph (dependencies
/// always spawn before their dependents).
fn arb_topo_order(rng: &mut SimRng, graph: &[GraphTask]) -> Vec<usize> {
    let n = graph.len();
    let mut placed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    while order.len() < n {
        let ready: Vec<usize> = (0..n)
            .filter(|&t| !placed[t] && graph[t].deps.iter().all(|&d| placed[d]))
            .collect();
        let pick = ready[rng.uniform_u64(0, ready.len() as u64) as usize];
        placed[pick] = true;
        order.push(pick);
    }
    order
}

/// Runs the graph on the async kernel, spawning tasks in `order`: each
/// task awaits its dependencies' gates, sleeps its own delay, logs its
/// completion, and opens its gate. Returns the full completion-event
/// log (the kernel's observable event order) and per-task finish times.
fn run_task_graph(
    graph: &[GraphTask],
    order: &[usize],
) -> (Vec<(usize, u64)>, Vec<u64>) {
    use std::cell::RefCell;
    use std::rc::Rc;

    let exec = AsyncExecutor::new();
    let gates: Vec<Gate> = graph.iter().map(|_| exec.gate()).collect();
    let log: Rc<RefCell<Vec<(usize, u64)>>> = Rc::new(RefCell::new(Vec::new()));
    for &t in order {
        let exec2 = exec.clone();
        let own = gates[t].clone();
        let deps: Vec<Gate> = graph[t].deps.iter().map(|&d| gates[d].clone()).collect();
        let delay = graph[t].delay_us;
        let log2 = Rc::clone(&log);
        exec.spawn(async move {
            for dep in &deps {
                dep.wait().await;
            }
            exec2.sleep(SimDuration::from_micros(delay)).await;
            log2.borrow_mut().push((t, exec2.now().as_micros()));
            own.open();
        });
    }
    let stuck = exec.run();
    assert_eq!(stuck, 0, "task graph deadlocked");
    let events = log.borrow().clone();
    let mut finish = vec![0u64; graph.len()];
    for &(t, at) in &events {
        finish[t] = at;
    }
    (events, finish)
}

/// Repeated runs of the same task graph replay the identical event
/// order — the kernel's `(SimTime, spawn_seq)` wakeup rule leaves no
/// room for drift.
#[test]
fn async_kernel_event_order_is_identical_across_runs() {
    forall_cases(64, |seed, rng| {
        let graph = arb_task_graph(rng);
        let order: Vec<usize> = (0..graph.len()).collect();
        let (events_a, finish_a) = run_task_graph(&graph, &order);
        let (events_b, finish_b) = run_task_graph(&graph, &order);
        assert_eq!(events_a, events_b, "seed {seed}: event order drifted");
        assert_eq!(finish_a, finish_b, "seed {seed}: final state drifted");
    });
}

/// The final state (every task's finish time) is invariant under
/// dependency-preserving spawn-order permutations: spawn order may
/// shuffle same-instant wakeups, but virtual-time outcomes are fixed by
/// the graph alone.
#[test]
fn async_kernel_state_is_invariant_to_spawn_permutations() {
    forall_cases(64, |seed, rng| {
        let graph = arb_task_graph(rng);
        let identity: Vec<usize> = (0..graph.len()).collect();
        let (_, base) = run_task_graph(&graph, &identity);
        for _ in 0..3 {
            let order = arb_topo_order(rng, &graph);
            let (_, finish) = run_task_graph(&graph, &order);
            assert_eq!(
                base, finish,
                "seed {seed}: final state depends on spawn order {order:?}"
            );
        }
    });
}

// ---------------------------------------------------------------------
// Master fault tolerance (serverful::recovery)
// ---------------------------------------------------------------------

/// Shape of one node of a random recovery graph — plain data so the
/// same graph can be rebuilt for the fault-free and the killed run.
struct RecNode {
    tasks: usize,
    /// `(upstream node, all_to_all)` dependency edges.
    deps: Vec<(usize, bool)>,
    secs: f64,
}

fn arb_recovery_graph(rng: &mut SimRng) -> Vec<RecNode> {
    let nodes = rng.uniform_u64(3, 7) as usize;
    (0..nodes)
        .map(|v| {
            let tasks = rng.uniform_u64(1, 5) as usize;
            let mut deps: Vec<(usize, bool)> = Vec::new();
            if v > 0 {
                for _ in 0..rng.uniform_u64(1, 3) {
                    let from = rng.uniform_u64(0, v as u64) as usize;
                    if !deps.iter().any(|d| d.0 == from) {
                        deps.push((from, rng.uniform_u64(0, 2) == 1));
                    }
                }
            }
            RecNode {
                tasks,
                deps,
                secs: 0.05 + rng.uniform_u64(0, 8) as f64 / 20.0,
            }
        })
        .collect()
}

struct RecCtx {
    exec: serverful_repro::serverful::FunctionExecutor,
}

/// Every task writes one deterministic object keyed by its node and
/// partition — re-executions after a master kill rewrite the same
/// key/content, so the bucket digest is invariant iff recovery loses
/// and duplicates nothing.
fn build_recovery_dag(
    spec: &[RecNode],
) -> serverful_repro::serverful::Dag<RecCtx> {
    use serverful_repro::serverful::{Dag, DagNode, Edge, FanIn, MapOptions, ScriptTask};
    let mut dag: Dag<RecCtx> = Dag::new();
    for (v, n) in spec.iter().enumerate() {
        let tasks = n.tasks;
        let secs = n.secs;
        let label = format!("n{v}");
        dag.add_node(DagNode {
            label: label.clone(),
            group: None,
            tasks,
            deps: n
                .deps
                .iter()
                .map(|&(from, all)| Edge {
                    from,
                    fan_in: if all { FanIn::AllToAll } else { FanIn::OneToOne },
                })
                .collect(),
            launch: Box::new(move |ctx: &mut RecCtx, env, gated| {
                let mut opts = MapOptions::named(label.clone());
                if gated {
                    opts = opts.gated();
                }
                let node = v;
                let factory = std::sync::Arc::new(move |input: &Payload| {
                    let t = match input {
                        Payload::U64(t) => *t,
                        _ => unreachable!("recovery graph inputs are U64"),
                    };
                    ScriptTask::new()
                        .compute(secs)
                        .put(
                            "recprop",
                            format!("out/n{node}/t{t:03}"),
                            ObjectBody::opaque(256 + 16 * (node as u64 * 31 + t)),
                        )
                        .finish_value(Payload::U64(t))
                        .boxed()
                });
                let inputs = (0..tasks as u64).map(Payload::U64).collect();
                Ok(ctx.exec.map_with(env, factory, inputs, opts))
            }),
        });
    }
    dag
}

/// FNV-1a over the output bucket's keys and object lengths.
fn recovery_bucket_digest(env: &serverful_repro::serverful::CloudEnv) -> u64 {
    let store = env.world().store();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    };
    for key in store.list_prefix("recprop", "") {
        key.as_bytes().iter().for_each(|b| mix(*b));
        mix(0);
        let len = store.get("recprop", &key).expect("listed key exists").len();
        len.to_le_bytes().iter().for_each(|b| mix(*b));
    }
    h
}

/// Runs one recovery graph on a small dedicated-master fleet under
/// `mode`, optionally killing the master at routed-event index
/// `kill_at`; returns the output digest and events routed.
fn run_recovery_case(
    spec: &[RecNode],
    seed: u64,
    mode: serverful_repro::serverful::RecoveryMode,
    kill_at: Option<u64>,
) -> Result<(u64, u64), serverful_repro::serverful::ExecError> {
    use serverful_repro::serverful::{
        run_dag_async, Backend, CloudEnv, ExecMode, ExecutionMode, ExecutorConfig,
        FunctionExecutor,
    };
    let mut env = CloudEnv::new_default(seed);
    let mut cfg = ExecutorConfig::default();
    cfg.standalone.exec_mode = ExecMode::Fleet {
        instance_type: "c5.large".to_owned(),
        count: 2,
    };
    cfg.standalone.recovery = mode;
    // Short jobs: checkpoint aggressively so kills land on real replays,
    // not just the adopt-everything fallback.
    cfg.standalone.checkpoint_interval_secs = 0.5;
    let exec = FunctionExecutor::new(&mut env, Backend::vm(), cfg);
    if let Some(at) = kill_at {
        env.arm_master_kill(0, at);
    }
    let ctx = RecCtx { exec };
    let dag = build_recovery_dag(spec);
    let (env, _ctx, result) = run_dag_async(env, ctx, dag, ExecutionMode::Pipelined);
    result?;
    assert_eq!(
        env.pending_master_kills(),
        0,
        "armed master kill never fired (landed beyond the run's event horizon)"
    );
    Ok((recovery_bucket_digest(&env), env.events_routed()))
}

/// The recovery property: killing the master at *any* routed-event
/// index leaves the final task-output digest identical to the
/// fault-free run.
fn master_kill_preserves_outputs(mode: serverful_repro::serverful::RecoveryMode) {
    forall_cases(6, |seed, rng| {
        let spec = arb_recovery_graph(rng);
        let (base, events) = run_recovery_case(&spec, seed, mode, None)
            .unwrap_or_else(|e| panic!("seed {seed:#x}: fault-free {} run: {e}", mode.name()));
        assert!(events > 20, "seed {seed:#x}: suspiciously quiet run");
        for _ in 0..2 {
            let at = rng.uniform_u64(events / 10 + 1, events * 4 / 5 + 2);
            let (digest, _) = run_recovery_case(&spec, seed, mode, Some(at))
                .unwrap_or_else(|e| {
                    panic!("seed {seed:#x}: {} kill at {at}/{events}: {e}", mode.name())
                });
            assert_eq!(
                digest, base,
                "seed {seed:#x}: {} master kill at event {at}/{events} changed the outputs",
                mode.name()
            );
        }
    });
}

#[test]
fn master_kill_preserves_outputs_checkpointed() {
    master_kill_preserves_outputs(serverful_repro::serverful::RecoveryMode::Checkpointed);
}

#[test]
fn master_kill_preserves_outputs_decentralized() {
    master_kill_preserves_outputs(serverful_repro::serverful::RecoveryMode::Decentralized);
}

/// The paper's unprotected master, as a property: the same graphs and
/// kill points that the recoverable modes survive must *fail* under
/// [`RecoveryMode::Protected`] — queued bundles die with the KV store.
#[test]
fn master_kill_strands_protected_runs() {
    use serverful_repro::serverful::RecoveryMode;
    forall_cases(4, |seed, rng| {
        let spec = arb_recovery_graph(rng);
        let (_, events) = run_recovery_case(&spec, seed, RecoveryMode::Protected, None)
            .unwrap_or_else(|e| panic!("seed {seed:#x}: fault-free protected run: {e}"));
        let at = rng.uniform_u64(events / 10 + 1, events / 2 + 2);
        assert!(
            run_recovery_case(&spec, seed, RecoveryMode::Protected, Some(at)).is_err(),
            "seed {seed:#x}: protected run survived a master kill at {at}/{events}"
        );
    });
}
