//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;

use serverful_repro::cloudsim::ObjectBody;
use serverful_repro::serverful::{CloudObjectRef, Payload};
use serverful_repro::shuffle::data as sortdata;
use serverful_repro::simkernel::{EventQueue, FairShare, SimDuration, SimTime, StepSeries};

/// An arbitrary payload of bounded depth.
fn arb_payload() -> impl Strategy<Value = Payload> {
    let leaf = prop_oneof![
        Just(Payload::Unit),
        any::<u64>().prop_map(Payload::U64),
        // NaN is not round-trip comparable with PartialEq; use finite.
        (-1e300f64..1e300).prop_map(Payload::F64),
        ".{0,32}".prop_map(Payload::Str),
        proptest::collection::vec(any::<u8>(), 0..64)
            .prop_map(|v| Payload::Bytes(bytes::Bytes::from(v))),
        ("[a-z]{1,8}", "[a-z/]{1,16}", any::<u64>())
            .prop_map(|(b, k, s)| Payload::CloudObject(CloudObjectRef::new(b, k, s))),
        any::<u64>().prop_map(|size| Payload::Opaque { size }),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        proptest::collection::vec(inner, 0..6).prop_map(Payload::List)
    })
}

proptest! {
    /// The wire codec round-trips every payload.
    #[test]
    fn payload_codec_roundtrips(p in arb_payload()) {
        let encoded = p.encode();
        let decoded = Payload::decode(&encoded).expect("decode");
        prop_assert_eq!(decoded, p);
    }

    /// Decoding arbitrary bytes never panics (it may error).
    #[test]
    fn payload_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Payload::decode(&bytes);
    }

    /// Sort-key encoding round-trips.
    #[test]
    fn sort_keys_roundtrip(keys in proptest::collection::vec(any::<u64>(), 0..512)) {
        let encoded = sortdata::encode_keys(&keys);
        prop_assert_eq!(sortdata::decode_keys(&encoded), keys);
    }

    /// Range partitioning conserves keys and respects splitter bounds.
    #[test]
    fn partitioning_conserves_keys(
        keys in proptest::collection::vec(any::<u64>(), 1..512),
        ranges in 1usize..16,
    ) {
        let splitters = sortdata::uniform_splitters(ranges);
        let buckets = sortdata::partition_keys(&keys, &splitters);
        prop_assert_eq!(buckets.len(), ranges);
        let total: usize = buckets.iter().map(Vec::len).sum();
        prop_assert_eq!(total, keys.len());
        for (i, bucket) in buckets.iter().enumerate() {
            for &k in bucket {
                if i > 0 {
                    prop_assert!(k >= splitters[i - 1]);
                }
                if i < splitters.len() {
                    prop_assert!(k < splitters[i]);
                }
            }
        }
    }

    /// The event queue pops in non-decreasing time order regardless of
    /// insertion order.
    #[test]
    fn event_queue_is_time_ordered(delays in proptest::collection::vec(0u64..1_000_000, 1..64)) {
        let mut q: EventQueue<usize> = EventQueue::new();
        for (i, &d) in delays.iter().enumerate() {
            q.schedule_at(SimTime::from_micros(d), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.next() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, delays.len());
    }

    /// Fair-share transfers all complete, and total completion time is
    /// bounded below by aggregate capacity.
    #[test]
    fn fair_share_conserves_bytes(
        sizes in proptest::collection::vec(1u64..1_000_000, 1..32),
    ) {
        let aggregate = 1_000_000.0;
        let mut pool = FairShare::new(aggregate, 500_000.0);
        let t0 = SimTime::ZERO;
        for &s in &sizes {
            pool.start(t0, s, &[]);
        }
        let total: u64 = sizes.iter().sum();
        let mut done = 0;
        let mut now = t0;
        let mut guard = 0;
        while pool.active() > 0 {
            let next = pool.next_completion().expect("active pool has a completion");
            prop_assert!(next >= now);
            now = next;
            done += pool.advance(now).len();
            guard += 1;
            prop_assert!(guard < 10_000, "pool failed to drain");
        }
        prop_assert_eq!(done, sizes.len());
        // No faster than the aggregate cap allows.
        let lower_bound = total as f64 / aggregate;
        prop_assert!(now.as_secs_f64() >= lower_bound * 0.999);
    }

    /// Step-series integrals are additive over adjacent intervals.
    #[test]
    fn step_series_integral_is_additive(
        points in proptest::collection::vec((0u64..1000, -100.0f64..100.0), 1..32),
        split in 1u64..999,
    ) {
        let mut sorted = points.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut series = StepSeries::new(0.0);
        let mut last = None;
        for (t, v) in sorted {
            if last == Some(t) {
                continue;
            }
            series.set(SimTime::from_micros(t), v);
            last = Some(t);
        }
        let a = SimTime::ZERO;
        let m = SimTime::from_micros(split);
        let b = SimTime::from_micros(1000);
        let whole = series.integral(a, b);
        let parts = series.integral(a, m) + series.integral(m, b);
        prop_assert!((whole - parts).abs() < 1e-9);
    }

    /// Object bodies report the length their constructor was given.
    #[test]
    fn object_body_length_is_stable(size in any::<u32>()) {
        let body = ObjectBody::opaque(size as u64);
        prop_assert_eq!(body.len(), size as u64);
        let real = ObjectBody::real(vec![0u8; (size % 4096) as usize]);
        prop_assert_eq!(real.len(), (size % 4096) as u64);
    }

    /// SimDuration arithmetic is consistent with float seconds.
    #[test]
    fn duration_arithmetic_consistent(a in 0.0f64..1e6, b in 0.0f64..1e6) {
        let da = SimDuration::from_secs_f64(a);
        let db = SimDuration::from_secs_f64(b);
        let sum = (da + db).as_secs_f64();
        prop_assert!((sum - (a + b)).abs() < 1e-5);
    }
}
