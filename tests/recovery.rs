//! Master-kill chaos matrix: the release gate for `serverful::recovery`.
//!
//! Every cell kills the serverful pool's master VM at seeded random
//! points of the measured window and asserts the run still produces
//! *identical science outputs* to the fault-free baseline
//! ([`metaspace::ChaosReport::science_digest`]), with billing bounded
//! by the re-executed work. The matrix crosses the two recovery
//! stories ([`RecoveryMode::Checkpointed`],
//! [`RecoveryMode::Decentralized`]) with both execution modes and two
//! Table 2 workloads, on a dedicated-master fleet and on the paper's
//! consolidated single host.
//!
//! Debug builds run the smoke-scaled graphs (same shape, ~2% volume);
//! the full paper-scale matrix is release-gated like the other
//! paper-scale tests (`scripts/ci.sh --full` runs it per cell).
//!
//! The negative direction is covered too: the paper's unprotected
//! master ([`RecoveryMode::Protected`]) must *fail* the run when its
//! master dies — if that test ever passes a kill, the chaos matrix is
//! not actually exercising the recovery machinery.

use serverful_repro::cloudsim::CloudConfig;
use serverful_repro::metaspace::{
    self, jobs::JobSpec, plan::PlanKind, ChaosReport, DeploymentPlan, FunctionsPlan, Stage,
};
use serverful_repro::serverful::{ExecError, ExecutionMode, RecoveryMode};
use serverful_repro::simkernel::SimRng;

const SEED: u64 = 42;

/// The hybrid plan for `stages` with the cell's execution mode,
/// recovery mode and fleet size.
fn cell_plan(
    stages: &[Stage],
    execution: ExecutionMode,
    recovery: RecoveryMode,
    vm_count: usize,
) -> DeploymentPlan {
    let base = DeploymentPlan::hybrid(stages);
    let PlanKind::Functions(f) = &base.kind else {
        unreachable!("hybrid is a functions plan")
    };
    DeploymentPlan::functions(
        format!("hybrid-{execution}-{}-vm{vm_count}", recovery.name()),
        FunctionsPlan {
            execution,
            recovery,
            vm_count,
            ..f.clone()
        },
    )
}

fn run_cell(
    spec: &JobSpec,
    stages: &[Stage],
    plan: &DeploymentPlan,
    kills: &[u64],
) -> Result<(metaspace::AnnotationReport, ChaosReport), ExecError> {
    metaspace::run_plan_stages_chaos(spec.name, stages, plan, SEED, CloudConfig::default(), kills)
}

/// Runs one matrix cell: fault-free baseline, then a seeded master
/// kill inside the measured window, then the same kill again. Asserts
/// the killed run finishes with the baseline's science digest, that
/// billing stays within a generous two-sided ratio of the baseline
/// (re-executed work costs extra; a dead master also *stops* billing,
/// so a killed run can come out cheaper), and that the repeat replays
/// byte-identically.
fn assert_cell_survives(
    spec: &JobSpec,
    scale: f64,
    execution: ExecutionMode,
    recovery: RecoveryMode,
    vm_count: usize,
    case: u64,
) {
    let stages = if scale < 1.0 {
        metaspace::pipeline::scaled_stages(spec, scale)
    } else {
        metaspace::pipeline::stages(spec)
    };
    let plan = cell_plan(&stages, execution, recovery, vm_count);
    let ctx = format!("{} {}", spec.name, plan.name);

    let (base_report, base_chaos) =
        run_cell(spec, &stages, &plan, &[]).unwrap_or_else(|e| panic!("{ctx}: fault-free: {e}"));
    assert!(
        base_chaos.events_routed > 100,
        "{ctx}: suspiciously quiet baseline ({} events)",
        base_chaos.events_routed
    );
    if recovery == RecoveryMode::Decentralized {
        assert_eq!(
            base_chaos.recovery.master_data_ops, 0,
            "{ctx}: decentralized baseline routed data ops through the master"
        );
        assert!(
            base_chaos.recovery.counters_written > 0,
            "{ctx}: decentralized baseline wrote no completion counters"
        );
    }

    // Seeded kill point, away from the very edges of the window so it
    // lands while work is genuinely in flight.
    let mut rng = SimRng::seed_from(0xDEAD_BEEF ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let span = base_chaos.events_routed;
    let kill = rng.uniform_u64(span / 8, span / 2 + 1);
    let kills = [kill];

    let (killed_report, killed_chaos) = run_cell(spec, &stages, &plan, &kills)
        .unwrap_or_else(|e| panic!("{ctx}: killed at event {kill}/{span}: {e}"));
    assert_eq!(
        killed_chaos.science_digest, base_chaos.science_digest,
        "{ctx}: kill at event {kill}/{span} changed the science outputs"
    );
    let ratio = killed_report.cost_usd / base_report.cost_usd;
    assert!(
        (0.3..=3.0).contains(&ratio),
        "{ctx}: kill at {kill}/{span} moved cost by {ratio:.2}x \
         (${:.4} -> ${:.4})",
        base_report.cost_usd,
        killed_report.cost_usd
    );
    match recovery {
        RecoveryMode::Checkpointed => assert!(
            killed_chaos.recovery.masters_replaced >= 1,
            "{ctx}: kill at {kill}/{span} never triggered a master replacement"
        ),
        RecoveryMode::Decentralized => assert_eq!(
            killed_chaos.recovery.master_data_ops, 0,
            "{ctx}: decentralized recovery routed data ops through the master"
        ),
        RecoveryMode::Protected => unreachable!("matrix cells are recoverable modes"),
    }

    // Same cell, same kill schedule: byte-identical replay.
    let (rep_report, rep_chaos) = run_cell(spec, &stages, &plan, &kills)
        .unwrap_or_else(|e| panic!("{ctx}: repeat killed run: {e}"));
    assert_eq!(
        rep_chaos.science_digest, killed_chaos.science_digest,
        "{ctx}: repeat diverged in outputs"
    );
    assert_eq!(
        rep_report.cost_usd.to_bits(),
        killed_report.cost_usd.to_bits(),
        "{ctx}: repeat diverged in billing"
    );
    assert_eq!(
        rep_chaos.recovery, killed_chaos.recovery,
        "{ctx}: repeat diverged in recovery activity"
    );
    assert_eq!(
        rep_chaos.events_routed, killed_chaos.events_routed,
        "{ctx}: repeat diverged in event count"
    );

    // Per-cell verdict for `scripts/ci.sh --full` (run with --nocapture).
    println!(
        "chaos cell OK: {ctx}: kill@{kill}/{span} digest={:#018x} cost {:.2}x \
         (replaced {} redispatched {} continuations {})",
        killed_chaos.science_digest,
        ratio,
        killed_chaos.recovery.masters_replaced,
        killed_chaos.recovery.tasks_redispatched,
        killed_chaos.recovery.continuations_fired,
    );
}

const SMOKE_FLEET: usize = 4;

#[test]
fn smoke_matrix_brain_barrier() {
    for (i, rc) in [RecoveryMode::Checkpointed, RecoveryMode::Decentralized]
        .into_iter()
        .enumerate()
    {
        assert_cell_survives(
            &metaspace::jobs::brain(),
            0.02,
            ExecutionMode::Barrier,
            rc,
            SMOKE_FLEET,
            i as u64,
        );
    }
}

#[test]
fn smoke_matrix_brain_pipelined() {
    for (i, rc) in [RecoveryMode::Checkpointed, RecoveryMode::Decentralized]
        .into_iter()
        .enumerate()
    {
        assert_cell_survives(
            &metaspace::jobs::brain(),
            0.02,
            ExecutionMode::Pipelined,
            rc,
            SMOKE_FLEET,
            10 + i as u64,
        );
    }
}

#[test]
fn smoke_matrix_xenograft_barrier() {
    for (i, rc) in [RecoveryMode::Checkpointed, RecoveryMode::Decentralized]
        .into_iter()
        .enumerate()
    {
        assert_cell_survives(
            &metaspace::jobs::xenograft(),
            0.008,
            ExecutionMode::Barrier,
            rc,
            SMOKE_FLEET,
            20 + i as u64,
        );
    }
}

#[test]
fn smoke_matrix_xenograft_pipelined() {
    for (i, rc) in [RecoveryMode::Checkpointed, RecoveryMode::Decentralized]
        .into_iter()
        .enumerate()
    {
        assert_cell_survives(
            &metaspace::jobs::xenograft(),
            0.008,
            ExecutionMode::Pipelined,
            rc,
            SMOKE_FLEET,
            30 + i as u64,
        );
    }
}

/// The paper's consolidated single right-sized host: killing the
/// master kills the only worker too, so recovery has to rebuild the
/// whole pool and still converge on the same outputs.
#[test]
fn smoke_matrix_consolidated_host() {
    for (i, rc) in [RecoveryMode::Checkpointed, RecoveryMode::Decentralized]
        .into_iter()
        .enumerate()
    {
        assert_cell_survives(
            &metaspace::jobs::brain(),
            0.02,
            ExecutionMode::Barrier,
            rc,
            1,
            40 + i as u64,
        );
    }
}

/// Kill the replacement master too: checkpointed recovery must survive
/// repeated losses within one run.
#[test]
fn smoke_double_kill_checkpointed() {
    let spec = metaspace::jobs::brain();
    let stages = metaspace::pipeline::scaled_stages(&spec, 0.02);
    let plan = cell_plan(
        &stages,
        ExecutionMode::Barrier,
        RecoveryMode::Checkpointed,
        SMOKE_FLEET,
    );
    let (_, base) = run_cell(&spec, &stages, &plan, &[]).expect("fault-free baseline");
    let span = base.events_routed;
    let kills = [span / 4, span / 2];
    let (_, killed) = run_cell(&spec, &stages, &plan, &kills)
        .unwrap_or_else(|e| panic!("double kill at {kills:?}/{span}: {e}"));
    assert_eq!(
        killed.science_digest, base.science_digest,
        "double master kill changed the science outputs"
    );
    assert!(
        killed.recovery.masters_replaced >= 1,
        "double kill never replaced a master"
    );
}

/// The checkpoint loop actually snapshots during a run (cadence is
/// [`serverful::StandaloneConfig::checkpoint_interval_secs`], well
/// under the smoke job's serverful phase).
#[test]
fn checkpoints_are_written_fault_free() {
    let spec = metaspace::jobs::brain();
    let stages = metaspace::pipeline::scaled_stages(&spec, 0.02);
    let plan = cell_plan(
        &stages,
        ExecutionMode::Barrier,
        RecoveryMode::Checkpointed,
        SMOKE_FLEET,
    );
    let (_, chaos) = run_cell(&spec, &stages, &plan, &[]).expect("fault-free run");
    assert!(
        chaos.recovery.checkpoints_written >= 1,
        "checkpointed mode never wrote a snapshot ({:?})",
        chaos.recovery
    );
    assert!(
        chaos.recovery.checkpoint_bytes > 0,
        "snapshots were empty"
    );
}

/// Negative path: the paper's unprotected master. A master kill must
/// fail the run — queued work died with the KV store and nobody
/// rebuilds it, which the executor surfaces as a stall (or a task
/// failure once retry budgets drain). If this ever completes, the
/// chaos matrix above is vacuous.
#[test]
fn protected_master_kill_fails_the_run() {
    let spec = metaspace::jobs::brain();
    let stages = metaspace::pipeline::scaled_stages(&spec, 0.02);
    for vm_count in [1, SMOKE_FLEET] {
        let plan = cell_plan(
            &stages,
            ExecutionMode::Barrier,
            RecoveryMode::Protected,
            vm_count,
        );
        let (_, base) = run_cell(&spec, &stages, &plan, &[]).expect("fault-free baseline");
        let kill = base.events_routed / 4;
        let err = run_cell(&spec, &stages, &plan, &[kill])
            .err()
            .unwrap_or_else(|| {
                panic!("protected vm{vm_count}: run survived a master kill at {kill}")
            });
        assert!(
            matches!(
                err,
                ExecError::Stalled(_)
                    | ExecError::TaskFailed(_)
                    | ExecError::AttemptsExhausted { .. }
            ),
            "protected vm{vm_count}: unexpected failure shape: {err}"
        );
    }
}

/// The full paper-scale matrix — every Table 2 workload crossed with
/// both execution and both recovery modes. `scripts/ci.sh --full` runs
/// this as the release gate, one verdict per cell.
#[test]
#[cfg_attr(debug_assertions, ignore = "paper-scale run; use --release")]
fn full_matrix_paper_scale() {
    let mut case = 100;
    for spec in metaspace::jobs::all() {
        for execution in [ExecutionMode::Barrier, ExecutionMode::Pipelined] {
            for recovery in [RecoveryMode::Checkpointed, RecoveryMode::Decentralized] {
                assert_cell_survives(&spec, 1.0, execution, recovery, SMOKE_FLEET, case);
                case += 1;
            }
        }
    }
}
