//! Chaos tests: deterministic fault injection on both backends, proving
//! the executor's retry/backoff machinery masks failures — jobs still
//! complete with byte-identical results, and the paper's claims survive.
//!
//! The injection layer draws from its own seeded RNG stream, so every
//! test here is fully reproducible: a failing seed is a bug, not flake.

use std::sync::Arc;

use serverful_repro::cloudsim::{CloudConfig, FaultConfig};
use serverful_repro::metaspace::{jobs, run_annotation_with, Architecture};
use serverful_repro::serverful::executor::MapOptions;
use serverful_repro::serverful::{
    Backend, CloudEnv, ExecMode, ExecutorConfig, FunctionExecutor, Payload, RetryPolicy,
    ScriptTask,
};
use serverful_repro::telemetry::FaultKind;

/// The chaos profile the issue prescribes: 5% sandbox crashes, 2% VM
/// boot failures, 10% storage faults — plus a sprinkle of invoke errors
/// and SlowDowns.
fn chaos_cloud() -> CloudConfig {
    CloudConfig {
        faults: FaultConfig {
            sandbox_invoke_error_prob: 0.02,
            sandbox_crash_prob: 0.05,
            vm_boot_failure_prob: 0.02,
            storage_error_prob: 0.07,
            storage_slowdown_prob: 0.03,
            ..FaultConfig::disabled()
        },
        ..CloudConfig::default()
    }
}

/// A map whose results are a pure function of the input, so re-executed
/// attempts must reproduce them exactly.
fn square_map(env: &mut CloudEnv, exec: &mut FunctionExecutor, n: u64) -> Vec<Payload> {
    let factory: serverful_repro::serverful::job::TaskFactory = Arc::new(|input: &Payload| {
        let i = input.as_u64().expect("u64 input");
        ScriptTask::new()
            .compute(0.8)
            .finish_value(Payload::U64(i * i))
            .boxed()
    });
    let job = exec.map_with(
        env,
        factory,
        (0..n).map(Payload::U64).collect(),
        MapOptions::named("chaos-square"),
    );
    exec.get_result(env, job).expect("map under chaos")
}

#[test]
fn faas_map_survives_chaos_with_identical_results() {
    // Fault-free reference.
    let mut env = CloudEnv::new_default(11);
    let mut exec = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    let clean = square_map(&mut env, &mut exec, 24);

    // Chaos run: crashes, invoke errors and storage faults injected.
    let mut env = CloudEnv::new(chaos_cloud(), 11);
    let mut cfg = ExecutorConfig::default();
    cfg.retry.max_attempts = 6; // survive unlucky streaks at 10% storage faults
    let mut exec = FunctionExecutor::new(&mut env, Backend::faas(), cfg);
    let chaotic = square_map(&mut env, &mut exec, 24);

    assert_eq!(clean, chaotic, "retries must reproduce results exactly");
    let ledger = env.world().fault_ledger();
    assert!(
        ledger.total_injected() > 0,
        "the chaos profile should actually inject faults"
    );
    assert!(
        ledger.total_retries() > 0,
        "injected faults should surface as retries: {}",
        ledger.report()
    );
}

#[test]
fn vm_pool_survives_boot_failures_and_worker_loss() {
    // Aggressive VM fault rates so the fleet provably takes hits: boot
    // failures on provisioning and mid-job losses of worker VMs.
    let cloud = CloudConfig {
        faults: FaultConfig {
            vm_boot_failure_prob: 0.25,
            vm_loss_prob: 0.6,
            vm_loss_after: (5.0, 40.0),
            storage_error_prob: 0.05,
            ..FaultConfig::disabled()
        },
        ..CloudConfig::default()
    };
    let mut env = CloudEnv::new(cloud, 5);
    let mut cfg = ExecutorConfig::default();
    cfg.standalone.exec_mode = ExecMode::Fleet {
        instance_type: "c5.large".into(),
        count: 3,
    };
    cfg.standalone.reuse_instances = false;
    let mut exec = FunctionExecutor::new(&mut env, Backend::vm(), cfg);

    let factory: serverful_repro::serverful::job::TaskFactory = Arc::new(|input: &Payload| {
        let i = input.as_u64().expect("u64 input");
        ScriptTask::new()
            .compute(6.0)
            .finish_value(Payload::U64(i + 100))
            .boxed()
    });
    let job = exec.map_with(
        &mut env,
        factory,
        (0..18).map(Payload::U64).collect(),
        MapOptions::named("chaos-vm"),
    );
    let results = exec.get_result(&mut env, job).expect("vm map under chaos");
    exec.shutdown(&mut env);

    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.as_u64(), Some(i as u64 + 100), "task {i} result");
    }
    let ledger = env.world().fault_ledger();
    let vm_faults =
        ledger.injected(FaultKind::VmBootFailure) + ledger.injected(FaultKind::VmLoss);
    assert!(
        vm_faults > 0,
        "the test should exercise VM recovery: {}",
        ledger.report()
    );
    assert!(
        ledger.vm_replacements > 0,
        "failed VMs must be replaced: {}",
        ledger.report()
    );
}

#[test]
fn straggler_redispatch_completes_the_job() {
    // A straggler timeout far above normal task latency plus sandbox
    // crashes: speculative re-dispatch must never corrupt results.
    let cloud = CloudConfig {
        faults: FaultConfig {
            sandbox_crash_prob: 0.10,
            sandbox_crash_after: (0.5, 30.0),
            ..FaultConfig::disabled()
        },
        ..CloudConfig::default()
    };
    let mut env = CloudEnv::new(cloud, 23);
    let cfg = ExecutorConfig {
        retry: RetryPolicy {
            straggler_timeout_secs: Some(45.0),
            ..RetryPolicy::default()
        },
        ..ExecutorConfig::default()
    };
    let mut exec = FunctionExecutor::new(&mut env, Backend::faas(), cfg);
    let results = square_map(&mut env, &mut exec, 16);
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.as_u64(), Some((i * i) as u64), "task {i} result");
    }
}

#[test]
fn chaos_runs_are_deterministic() {
    // Golden determinism: two runs of the same seeded fault schedule
    // produce identical billing ledgers, fault ledgers and wall-clocks.
    let run = || {
        let mut env = CloudEnv::new(chaos_cloud(), 17);
        let mut cfg = ExecutorConfig::default();
        cfg.retry.max_attempts = 6;
        let mut exec = FunctionExecutor::new(&mut env, Backend::faas(), cfg);
        let results = square_map(&mut env, &mut exec, 20);
        (
            results,
            env.now(),
            env.world().ledger().entries().to_vec(),
            env.world().fault_ledger().clone(),
        )
    };
    let (r1, t1, bill1, faults1) = run();
    let (r2, t2, bill2, faults2) = run();
    assert_eq!(r1, r2, "results diverged across identical seeded runs");
    assert_eq!(t1, t2, "wall-clock diverged");
    assert_eq!(bill1, bill2, "billing ledger diverged");
    assert_eq!(faults1, faults2, "fault ledger diverged");
}

#[test]
fn zero_probabilities_match_the_default_config() {
    // All-zero fault probabilities draw nothing from the injector's RNG:
    // a `FaultConfig::at_rate(0.0)` run must be byte-identical (time,
    // billing, fault ledger) to one with the default (disabled) config.
    let run = |cloud: CloudConfig| {
        let mut env = CloudEnv::new(cloud, 29);
        let mut exec =
            FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
        let results = square_map(&mut env, &mut exec, 12);
        (
            results,
            env.now(),
            env.world().ledger().entries().to_vec(),
            env.world().fault_ledger().clone(),
        )
    };
    let zeroed = CloudConfig {
        faults: FaultConfig::at_rate(0.0),
        ..CloudConfig::default()
    };
    let (r1, t1, bill1, faults1) = run(CloudConfig::default());
    let (r2, t2, bill2, faults2) = run(zeroed);
    assert_eq!(r1, r2);
    assert_eq!(t1, t2, "a zero-rate fault layer must not perturb timing");
    assert_eq!(bill1, bill2);
    assert!(faults1.is_empty() && faults2.is_empty());
}

/// Figure 6's ordering under failures: the hybrid architecture still
/// beats pure serverless on cost-performance when the region misbehaves.
#[test]
// Paper-scale simulation: minutes under debug; run with --release.
#[cfg_attr(debug_assertions, ignore = "paper-scale run; use --release")]
fn hybrid_still_beats_serverless_under_chaos() {
    let cloud = CloudConfig {
        faults: FaultConfig::at_rate(0.02),
        ..CloudConfig::default()
    };
    let job = jobs::xenograft();
    let cf = run_annotation_with(&job, Architecture::Serverless, 1, cloud.clone())
        .expect("serverless under chaos");
    let hy = run_annotation_with(&job, Architecture::Hybrid, 1, cloud)
        .expect("hybrid under chaos");
    assert!(
        hy.cost_performance() > cf.cost_performance(),
        "hybrid {} vs serverless {} under faults",
        hy.cost_performance(),
        cf.cost_performance()
    );
}
