//! Cross-crate acceptance tests for the deployment planner: the search
//! over the full standard space must rediscover a serverful plan that
//! beats the paper's hand-picked baselines, and the parallel search
//! must be exactly reproducible. Paper-scale (full Brain pipeline per
//! candidate), so `--release`-gated like the other end-to-end runs.

use serverful_repro::metaspace::{jobs, Architecture};
use serverful_repro::planner::{search, Evaluator, Objective, SearchConfig, SearchSpace};

fn brain_search(threads: usize) -> serverful_repro::planner::SearchReport {
    let job = jobs::brain();
    let evaluator = Evaluator::for_job(&job, 42);
    let space = SearchSpace::standard(&evaluator.stages);
    let cfg = SearchConfig {
        objective: Objective::Pareto,
        threads,
        seed: 42,
        ..SearchConfig::default()
    };
    search(&evaluator, &space, &cfg)
}

#[test]
#[cfg_attr(debug_assertions, ignore = "paper-scale run; use --release")]
fn planner_rediscovers_a_plan_dominating_the_paper_baselines() {
    let report = brain_search(4);
    assert!(!report.frontier.is_empty(), "frontier must be non-empty");

    let serverless = report
        .ranked
        .iter()
        .find(|o| o.plan.name == "serverless")
        .expect("named serverless plan evaluated");
    let spark = report
        .ranked
        .iter()
        .find(|o| o.plan.name == "spark")
        .expect("named spark plan evaluated");

    // The acceptance witness: one hybrid-family frontier plan at least
    // as cheap as pure serverless AND at least as fast as the cluster.
    let witness = report
        .frontier
        .points()
        .iter()
        .find(|p| {
            p.plan.architecture() == Architecture::Hybrid
                && p.cost_usd <= serverless.cost_usd
                && p.makespan_secs <= spark.makespan_secs
        })
        .unwrap_or_else(|| {
            panic!(
                "no frontier hybrid beats serverless (${:.4}) and spark ({:.2}s):\n{}",
                serverless.cost_usd,
                spark.makespan_secs,
                report.frontier.stable_digest()
            )
        });
    assert!(
        witness.plan.key().starts_with("fn:"),
        "witness is a functions-family plan: {}",
        witness.plan
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "paper-scale run; use --release")]
fn brain_frontier_is_byte_identical_across_thread_counts() {
    let single = brain_search(1).frontier.stable_digest();
    let many = brain_search(8).frontier.stable_digest();
    assert_eq!(single, many, "thread count leaked into the frontier");
}
