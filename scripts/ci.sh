#!/usr/bin/env bash
# Tier-1 verification for every PR.
#
#   scripts/ci.sh          # lint + docs + debug tests (fast path)
#   scripts/ci.sh --full   # also the release-gated paper-scale + chaos
#                          # runs, and the Xenograft trace artifact
#
# The chaos suite's small cases run in debug with the workspace tests;
# its paper-scale assertions (hybrid-beats-serverless under faults) are
# `#[ignore]`d in debug and only run under --release, like the other
# paper-scale tests.
#
# Golden regression suites (tests/goldens.rs) run with the workspace
# tests: table/figure text and trace summaries are snapshotted under
# tests/goldens/ and any drift fails CI. Drift is never noise — the
# simulation is deterministic — so either fix the regression or, for an
# intentional behaviour change, refresh the snapshots and commit the
# reviewed diff:
#
#   UPDATE_GOLDENS=1 cargo test --release --test goldens
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ -n "${UPDATE_GOLDENS:-}" ]]; then
    echo "refusing to run CI with UPDATE_GOLDENS set: goldens would silently self-heal" >&2
    exit 1
fi

echo "== structural gate (serverful env stays modular) =="
# The env monolith was broken up when the orchestration core moved onto
# kernel futures; keep it that way. No serverful source file may grow
# past 1,200 lines, and the deleted hand-rolled monitor machinery
# (Route::Poll, MonitorState) must not reappear.
oversized=$(find crates/serverful/src -name '*.rs' \
    | xargs wc -l | awk '$2 != "total" && $1 > 1200 {print $2 " (" $1 " lines)"}')
[[ -z "$oversized" ]] \
    || { echo "serverful source over the 1,200-line ceiling:"; \
         echo "$oversized"; exit 1; } >&2
if grep -rn "Route::Poll\b\|MonitorState" crates/serverful/src; then
    echo "hand-rolled monitor machinery (Route::Poll / MonitorState) is back" >&2
    exit 1
fi

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== docs (deny warnings, incl. missing_docs) =="
# Every workspace crate carries #![warn(missing_docs)]; -D warnings
# promotes any undocumented public item to a failure. The rendered tree
# under target/doc is the CI doc artifact: every crate must have
# produced an index page.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q
for crate in bench bytes cloudsim clustersim fleet metaspace planner \
             serverful shuffle simkernel telemetry workload; do
    [[ -f "target/doc/$crate/index.html" ]] \
        || { echo "doc artifact missing for crate $crate" >&2; exit 1; }
done
ls -d target/doc

echo "== doctests (count-gated) =="
# Doc examples are part of the documented API surface; losing them is
# doc drift even when rustdoc stays warning-free. Keep the floor in
# sync when examples are deliberately added or removed.
cargo test --workspace --doc -q | tee /tmp/doctests.txt
doctests=$(grep -Eo '[0-9]+ passed' /tmp/doctests.txt | awk '{s+=$1} END {print s}')
[[ "${doctests:-0}" -ge 47 ]] \
    || { echo "doctest count dropped to ${doctests:-0} (floor 47)" >&2; exit 1; }

echo "== tests (debug, incl. fast goldens) =="
cargo test --workspace -q

echo "== planner smoke search (Brain) =="
# The smoke space holds only the paper's three named deployments; the
# planner must still find a frontier plan that beats pure serverless on
# cost (the paper's Figure 4 direction). Debug evaluation of the full
# pipeline takes minutes, so this runs the release binary.
cargo build --release -p bench -q

echo "== async-kernel microbenchmarks (BENCH_kernel.json + regression gate) =="
# Runs the kernel bench in release, writes BENCH_kernel.json (gitignored;
# CI artifact), and fails when any scenario's throughput drops more than
# 20% below the committed BENCH_kernel_baseline.json or the fleet-replay
# speedup falls under its 10x floor.
./target/release/kernel --seed 42 \
    --git-rev "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    --out BENCH_kernel.json \
    --check-against BENCH_kernel_baseline.json

./target/release/repro plan brain --smoke --threads 2 --seed 42 \
    | tee /tmp/plan_smoke.txt
grep -q "verdict: frontier beats pure-serverless on cost: yes" /tmp/plan_smoke.txt \
    || { echo "planner smoke search lost to pure serverless" >&2; exit 1; }

echo "== fleet smoke determinism (threads 1 vs 8, repeat runs) =="
# The multi-tenant traffic report must be byte-identical for any worker
# count and across repeat runs at the same seed.
./target/release/repro fleet smoke --seed 42 --threads 1 > /tmp/fleet_a.txt
./target/release/repro fleet smoke --seed 42 --threads 8 > /tmp/fleet_b.txt
./target/release/repro fleet smoke --seed 42 --threads 8 > /tmp/fleet_c.txt
diff /tmp/fleet_a.txt /tmp/fleet_b.txt \
    || { echo "fleet report depends on --threads" >&2; exit 1; }
diff /tmp/fleet_b.txt /tmp/fleet_c.txt \
    || { echo "fleet report drifts across runs" >&2; exit 1; }
grep -q "shared-pool" /tmp/fleet_a.txt \
    || { echo "fleet report missing the shared-pool policy" >&2; exit 1; }

echo "== provider registry + spot-market smoke =="
# The region table must list every registered region, and the provider
# sweep must stay deterministic across repeat runs at the same seed.
./target/release/repro providers > /tmp/providers.txt
for region in aws-us-east-1 aws-eu-west-1 gcp-us-central1; do
    grep -q "$region" /tmp/providers.txt \
        || { echo "repro providers missing region $region" >&2; exit 1; }
done
./target/release/repro plan brain --providers --threads 2 --seed 42 > /tmp/prov_a.txt
./target/release/repro plan brain --providers --threads 8 --seed 42 > /tmp/prov_b.txt
diff /tmp/prov_a.txt /tmp/prov_b.txt \
    || { echo "provider sweep depends on --threads" >&2; exit 1; }

echo "== master-kill chaos matrix (smoke) =="
# Kill the serverful master at seeded event indices under both recovery
# modes x both execution modes x two workloads; every cell must finish
# with the fault-free run's science digest and bounded billing, and
# replay byte-identically. (Runs again here, unfiltered, for visible
# per-cell verdicts even though the workspace pass above includes it.)
cargo test -q --test recovery -- --nocapture 2>&1 \
    | tee /tmp/chaos_smoke.txt | grep "chaos cell OK"

echo "== dag smoke determinism + pipelined win (Brain) =="
# Barrier-vs-pipelined comparison must be byte-identical across repeat
# runs at the same seed, and the pipelined schedule must beat the
# barrier at equal-or-lower cost even on the scaled smoke graph.
./target/release/repro dag brain --smoke --seed 42 > /tmp/dag_a.txt
./target/release/repro dag brain --smoke --seed 42 > /tmp/dag_b.txt
diff /tmp/dag_a.txt /tmp/dag_b.txt \
    || { echo "dag comparison drifts across runs" >&2; exit 1; }
grep -q "verdict: pipelined beats barrier at equal-or-lower cost: yes" /tmp/dag_a.txt \
    || { echo "pipelined scheduling lost to the barrier" >&2; exit 1; }

echo "== workload smoke gate (every bundled workload, seeded, twice) =="
# Every bundled workload description must parse, validate, emit
# canonically, run one seeded smoke cell deterministically, and print
# its two verdict lines. The DSL round trip itself is asserted here at
# the CLI level: emit must be a fixed point.
./target/release/repro workload --list > /tmp/workload_names.txt
[[ "$(wc -l < /tmp/workload_names.txt)" -ge 8 ]] \
    || { echo "workload catalog lost entries" >&2; exit 1; }
while read -r wl; do
    ./target/release/repro workload "$wl" --dsl > /tmp/wl_dsl.txt
    grep -q "^workload " /tmp/wl_dsl.txt \
        || { echo "workload $wl: DSL emission broken" >&2; exit 1; }
    ./target/release/repro workload "$wl" --smoke --seed 42 > /tmp/wl_a.txt
    ./target/release/repro workload "$wl" --smoke --seed 42 > /tmp/wl_b.txt
    diff /tmp/wl_a.txt /tmp/wl_b.txt \
        || { echo "workload $wl drifts across runs" >&2; exit 1; }
    [[ "$(grep -c "^verdict: $wl:" /tmp/wl_a.txt)" -eq 2 ]] \
        || { echo "workload $wl: missing verdict lines" >&2; exit 1; }
done < <(sed 's/metaspace-brain/Brain/;s/metaspace-xenograft/Xenograft/;s/metaspace-x089/X089/' /tmp/workload_names.txt)

echo "== workload from disk (.wl round trip) =="
# A workload emitted as DSL, written to disk and loaded back via
# `repro workload path/to.wl` must run byte-identically to its bundled
# twin: the file loader and the catalog resolve to the same graph.
./target/release/repro workload terasort-small --dsl > /tmp/terasort-small.wl
./target/release/repro workload /tmp/terasort-small.wl --smoke --seed 42 > /tmp/wl_disk.txt
./target/release/repro workload terasort-small --smoke --seed 42 > /tmp/wl_bundled.txt
diff /tmp/wl_disk.txt /tmp/wl_bundled.txt \
    || { echo "disk-loaded workload diverges from its bundled twin" >&2; exit 1; }

if [[ "${1:-}" == "--full" ]]; then
    echo "== tests (release: paper-scale + chaos + golden gates) =="
    cargo test --workspace --release -q

    echo "== master-kill chaos matrix (paper scale, per-cell verdicts) =="
    # The release gate: all three Table 2 workloads x {Barrier,
    # Pipelined} x {Checkpointed, Decentralized}, one verdict per cell.
    cargo test --release --test recovery full_matrix_paper_scale -- \
        --ignored --nocapture 2>&1 \
        | tee /tmp/chaos_full.txt | grep "chaos cell OK"
    cells=$(grep -c "chaos cell OK" /tmp/chaos_full.txt)
    [[ "$cells" -eq 12 ]] \
        || { echo "chaos matrix reported $cells/12 cells" >&2; exit 1; }

    echo "== trace artifact (Xenograft, seed 42) =="
    mkdir -p target/artifacts
    ./target/release/repro trace xenograft --seed 42 \
        > target/artifacts/xenograft-trace.json \
        2> target/artifacts/xenograft-trace-summary.txt
    ls -l target/artifacts/xenograft-trace.json

    echo "== planner frontier artifact (Brain, full space, seed 42) =="
    ./target/release/repro plan brain --objective pareto --threads 8 --seed 42 \
        > target/artifacts/brain-frontier.txt
    grep -q "verdict: one frontier hybrid beats both baselines: yes" \
        target/artifacts/brain-frontier.txt \
        || { echo "planner failed to rediscover a dominating hybrid" >&2; exit 1; }
    ls -l target/artifacts/brain-frontier.txt
fi

echo "CI OK"
