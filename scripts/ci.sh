#!/usr/bin/env bash
# Tier-1 verification for every PR.
#
#   scripts/ci.sh          # lint + debug tests (fast path)
#   scripts/ci.sh --full   # also the release-gated paper-scale + chaos runs
#
# The chaos suite's small cases run in debug with the workspace tests;
# its paper-scale assertions (hybrid-beats-serverless under faults) are
# `#[ignore]`d in debug and only run under --release, like the other
# paper-scale tests.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests (debug) =="
cargo test --workspace -q

if [[ "${1:-}" == "--full" ]]; then
    echo "== tests (release: paper-scale + chaos gates) =="
    cargo test --workspace --release -q
fi

echo "CI OK"
