//! Distributed sort/partition operators over the serverful framework.
//!
//! The paper's §4.2 experiment ("the serverless sort hindrance",
//! Figure 5) compares two ways to sort-and-partition a dataset:
//!
//! * [`serverless_sort`] — a range-partition sort purely on cloud
//!   functions: mappers read chunks from object storage, partition them
//!   into `R` ranges and write every piece back to storage; reducers
//!   perform the all-to-all read, sort their range and write the output.
//!   The 2·P·R intermediate objects are what saturates storage
//!   throughput.
//! * [`vm_sort`] — an in-place sort on a single right-sized VM: workers
//!   read their share of chunks, exchange partitions through *shared
//!   memory* (the master-local KV), sort and write the output. Only the
//!   input read and output write touch object storage.
//!
//! Both run through the exact same `FunctionExecutor` API — switching
//! is one backend argument, which is the paper's whole point.
//!
//! Data comes in two flavours:
//! * **real** — chunks hold actual little-endian `u64` keys; the sort is
//!   performed for real and [`verify::check_sorted`] proves global order.
//!   Used by tests and examples at MB scale.
//! * **opaque** — chunks carry only a declared size; timing and billing
//!   are identical but nothing is materialised. Used at paper scale
//!   (tens of GB).

#![warn(missing_docs)]

pub mod config;
pub mod data;
pub mod driver;
pub mod tasks;
pub mod verify;

pub use config::SortConfig;
pub use driver::{
    run_exchange, run_fused_exchange, seed_input, serverless_sort, submit_fused_exchange,
    submit_gather, submit_scatter, vm_sort, SortReport,
};
