//! Sort drivers: seed the input, run the serverless or in-VM sort
//! through a [`FunctionExecutor`], and report wall time and cost.

use std::sync::Arc;

use cloudsim::ObjectBody;
use serverful::cloudobject::CloudObjectRef;
use serverful::executor::MapOptions;
use serverful::{CloudEnv, ExecError, FunctionExecutor, Payload, SizingPolicy};
use simkernel::SimRng;

use crate::config::SortConfig;
use crate::data;
use crate::tasks::{Exchange, FusedExchangeTask, GatherTask, ScatterTask};

/// The outcome of one sort run.
#[derive(Debug, Clone, PartialEq)]
pub struct SortReport {
    /// End-to-end wall-clock seconds (including provisioning).
    pub wall_secs: f64,
    /// Dollars billed during the run (all services).
    pub cost_usd: f64,
    /// Number of sorted output parts written.
    pub output_parts: usize,
    /// Bytes sorted.
    pub total_bytes: u64,
}

impl SortReport {
    /// The paper's cost-performance metric, `1 / (latency × cost)`.
    pub fn cost_performance(&self) -> f64 {
        1.0 / (self.wall_secs * self.cost_usd)
    }
}

/// Seeds the input chunks into the object store (untimed setup) and
/// returns refs to them.
pub fn seed_input(env: &mut CloudEnv, cfg: &SortConfig) -> Vec<CloudObjectRef> {
    let mut rng = SimRng::seed_from(cfg.seed);
    (0..cfg.chunks)
        .map(|i| {
            let bytes = cfg.chunk_bytes(i);
            let key = cfg.chunk_key(i);
            let body = if cfg.real_data {
                let keys = data::random_keys(&mut rng, (bytes / 8) as usize);
                ObjectBody::real(data::encode_keys(&keys))
            } else {
                ObjectBody::opaque(bytes)
            };
            let size = body.len();
            env.seed_object(&cfg.bucket, &key, body);
            CloudObjectRef::new(cfg.bucket.clone(), key, size)
        })
        .collect()
}

/// Runs the two-stage range-partition sort on the given executor with
/// storage as the exchange medium (the serverless architecture).
///
/// # Errors
///
/// Propagates executor errors (task failures, stalls).
pub fn serverless_sort(
    env: &mut CloudEnv,
    exec: &mut FunctionExecutor,
    cfg: &SortConfig,
    refs: &[CloudObjectRef],
) -> Result<SortReport, ExecError> {
    run_exchange(
        env,
        exec,
        cfg,
        refs,
        Exchange::Storage,
        cfg.chunks,
        cfg.reducers,
        true,
    )
}

/// Runs the same sort with the master-local KV (shared memory) as the
/// exchange medium — the in-place VM architecture. The worker count
/// follows the vCPUs of the instance the sizing policy picks, mirroring
/// the master's own proactive-provisioning decision.
///
/// # Errors
///
/// Propagates executor errors (task failures, stalls).
pub fn vm_sort(
    env: &mut CloudEnv,
    exec: &mut FunctionExecutor,
    cfg: &SortConfig,
    refs: &[CloudObjectRef],
    sizing: &SizingPolicy,
) -> Result<SortReport, ExecError> {
    let itype = sizing.choose(cfg.total_bytes);
    let workers = itype.vcpus as usize;
    run_exchange(env, exec, cfg, refs, Exchange::Kv, workers, workers, true)
}

/// Runs a stateful exchange as a *single* job on the serverful backend:
/// every worker scatters and gathers within one logical function,
/// synchronising through the master's shared-memory KV. This is the
/// serverful fast path — one map call, one set of framework overheads.
///
/// # Errors
///
/// Propagates executor errors (task failures, stalls).
pub fn run_fused_exchange(
    env: &mut CloudEnv,
    exec: &mut FunctionExecutor,
    cfg: &SortConfig,
    refs: &[CloudObjectRef],
    workers: usize,
    exchange: Exchange,
    shutdown: bool,
) -> Result<SortReport, ExecError> {
    let start = env.now();
    let cost_before = env.world().ledger().total();
    let job = submit_fused_exchange(env, exec, cfg, refs, workers, exchange, false);
    let results = exec.get_result(env, job)?;
    if shutdown {
        exec.shutdown(env);
    }
    let wall_secs = (env.now() - start).as_secs_f64();
    let cost_usd = env.world().ledger().total() - cost_before;
    Ok(SortReport {
        wall_secs,
        cost_usd,
        output_parts: results.len(),
        total_bytes: cfg.total_bytes,
    })
}

/// Submits the fused exchange as a single (optionally gated) job
/// without blocking on it — the non-blocking building block DAG
/// schedulers compose. [`run_fused_exchange`] is this plus a blocking
/// `get_result`.
pub fn submit_fused_exchange(
    env: &mut CloudEnv,
    exec: &mut FunctionExecutor,
    cfg: &SortConfig,
    refs: &[CloudObjectRef],
    workers: usize,
    exchange: Exchange,
    gated: bool,
) -> serverful::JobHandle {
    let mut assignment: Vec<Vec<CloudObjectRef>> = vec![Vec::new(); workers];
    for (i, r) in refs.iter().enumerate() {
        assignment[i % workers].push(r.clone());
    }
    // Every worker participates (an empty chunk list is fine — its range
    // must still be gathered).
    let inputs: Vec<Payload> = assignment
        .iter()
        .enumerate()
        .map(|(w, refs)| {
            Payload::List(vec![
                Payload::U64(w as u64),
                Payload::List(
                    refs.iter()
                        .map(|r| Payload::CloudObject(r.clone()))
                        .collect(),
                ),
            ])
        })
        .collect();
    let fused_cfg = cfg.clone();
    let factory: serverful::job::TaskFactory = Arc::new(move |input: &Payload| {
        let items = input.as_list().expect("fused input is a list");
        let w = items[0].as_u64().expect("worker index") as usize;
        let refs: Vec<CloudObjectRef> = items[1]
            .as_list()
            .expect("chunk refs")
            .iter()
            .map(|p| p.as_cloudobject().expect("chunk ref").clone())
            .collect();
        Box::new(FusedExchangeTask::new(
            fused_cfg.clone(),
            w,
            workers,
            refs,
            exchange,
        ))
    });
    let mut opts = MapOptions::named(cfg.label.clone()).stateful();
    if gated {
        opts = opts.gated();
    }
    exec.map_with(env, factory, inputs, opts)
}

/// Submits the scatter half of a storage/KV exchange without blocking.
/// Returns the handle and the *effective* scatter worker count (workers
/// with no chunks assigned are dropped) — the gather half needs it.
#[allow(clippy::too_many_arguments)]
pub fn submit_scatter(
    env: &mut CloudEnv,
    exec: &mut FunctionExecutor,
    cfg: &SortConfig,
    refs: &[CloudObjectRef],
    exchange: Exchange,
    workers: usize,
    ranges: usize,
    gated: bool,
) -> (serverful::JobHandle, usize) {
    // Assign chunks to scatter workers round-robin; each worker's input
    // payload carries its refs so the sizing policy sees the data volume.
    let mut assignment: Vec<Vec<CloudObjectRef>> = vec![Vec::new(); workers];
    for (i, r) in refs.iter().enumerate() {
        assignment[i % workers].push(r.clone());
    }
    let assignment: Vec<Vec<CloudObjectRef>> =
        assignment.into_iter().filter(|a| !a.is_empty()).collect();
    let scatter_workers = assignment.len();

    // Each worker's input carries its index and its chunk refs, so the
    // factory reconstructs the task regardless of start order (and the
    // sizing policy sees the data volume through the refs).
    let scatter_inputs: Vec<Payload> = assignment
        .iter()
        .enumerate()
        .map(|(w, refs)| {
            Payload::List(vec![
                Payload::U64(w as u64),
                Payload::List(
                    refs.iter()
                        .map(|r| Payload::CloudObject(r.clone()))
                        .collect(),
                ),
            ])
        })
        .collect();
    let scatter_cfg = cfg.clone();
    let factory: serverful::job::TaskFactory = Arc::new(move |input: &Payload| {
        let items = input.as_list().expect("scatter input is a list");
        let w = items[0].as_u64().expect("worker index") as usize;
        let refs: Vec<CloudObjectRef> = items[1]
            .as_list()
            .expect("chunk refs")
            .iter()
            .map(|p| p.as_cloudobject().expect("chunk ref").clone())
            .collect();
        Box::new(ScatterTask::new(
            scatter_cfg.clone(),
            w,
            ranges,
            exchange,
            refs,
        ))
    });
    let mut opts = MapOptions::named(format!("{}/scatter", cfg.label)).stateful();
    if gated {
        opts = opts.gated();
    }
    (exec.map_with(env, factory, scatter_inputs, opts), scatter_workers)
}

/// Submits the gather half of an exchange without blocking.
/// `scatter_workers` must be the effective count [`submit_scatter`]
/// returned.
pub fn submit_gather(
    env: &mut CloudEnv,
    exec: &mut FunctionExecutor,
    cfg: &SortConfig,
    exchange: Exchange,
    scatter_workers: usize,
    ranges: usize,
    gated: bool,
) -> serverful::JobHandle {
    let gather_cfg = cfg.clone();
    let gather_inputs: Vec<Payload> = (0..ranges).map(|r| Payload::U64(r as u64)).collect();
    let factory: serverful::job::TaskFactory = Arc::new(move |input: &Payload| {
        let r = input.as_u64().expect("range index") as usize;
        Box::new(GatherTask::new(
            gather_cfg.clone(),
            r,
            scatter_workers,
            exchange,
        ))
    });
    let mut opts = MapOptions::named(format!("{}/gather", cfg.label)).stateful();
    if gated {
        opts = opts.gated();
    }
    exec.map_with(env, factory, gather_inputs, opts)
}

/// Runs one scatter/gather exchange on the given executor — the building
/// block pipeline stages reuse for their stateful operations. With
/// `shutdown` false, the executor's VMs stay alive for the next stage
/// (instance reuse).
///
/// # Errors
///
/// Propagates executor errors (task failures, stalls).
#[allow(clippy::too_many_arguments)]
pub fn run_exchange(
    env: &mut CloudEnv,
    exec: &mut FunctionExecutor,
    cfg: &SortConfig,
    refs: &[CloudObjectRef],
    exchange: Exchange,
    workers: usize,
    ranges: usize,
    shutdown: bool,
) -> Result<SortReport, ExecError> {
    let start = env.now();
    let cost_before = env.world().ledger().total();

    let (job, scatter_workers) =
        submit_scatter(env, exec, cfg, refs, exchange, workers, ranges, false);
    exec.get_result(env, job)?;

    let job = submit_gather(env, exec, cfg, exchange, scatter_workers, ranges, false);
    let results = exec.get_result(env, job)?;

    // "Once all logical functions have been completed, all resources are
    // automatically stopped": include teardown in the measured run —
    // unless the caller keeps the instances for the next stage.
    if shutdown {
        exec.shutdown(env);
    }

    let wall_secs = (env.now() - start).as_secs_f64();
    let cost_usd = env.world().ledger().total() - cost_before;
    Ok(SortReport {
        wall_secs,
        cost_usd,
        output_parts: results.len(),
        total_bytes: cfg.total_bytes,
    })
}
