//! Sort experiment configuration.

/// Parameters of one sort-and-partition run.
#[derive(Debug, Clone, PartialEq)]
pub struct SortConfig {
    /// Bucket holding input chunks, shuffle pieces and sorted output.
    pub bucket: String,
    /// Number of input chunks (= serverless mappers).
    pub chunks: usize,
    /// Number of ranges (= serverless reducers / output parts).
    pub reducers: usize,
    /// Total dataset size in bytes (split evenly across chunks).
    pub total_bytes: u64,
    /// Materialise real `u64` keys (small runs, verifiable) instead of
    /// opaque sizes (paper-scale runs).
    pub real_data: bool,
    /// CPU cost of partitioning, ns per input byte. The default reflects
    /// the Python/pandas data path the paper measures (numpy conversion,
    /// pandas partitions, serialisation), not an optimised native sort.
    pub partition_ns_per_byte: f64,
    /// CPU cost of sorting, ns per byte per log2(keys) — an `n log n`
    /// model calibrated to a few ns/byte comparison sorts.
    pub sort_ns_per_byte_log: f64,
    /// RNG seed for data generation.
    pub seed: u64,
    /// Namespace for this exchange's keys; distinct exchanges in one
    /// store must use distinct prefixes. Input chunks live under
    /// `{key_prefix}in/`, shuffle pieces under `{key_prefix}x/` (a single
    /// top-level prefix — the bandwidth-contended resource), outputs
    /// under `{key_prefix}out/`.
    pub key_prefix: String,
    /// Stage label used for timeline spans and billing
    /// (`{label}/scatter`, `{label}/gather`).
    pub label: String,
}

impl Default for SortConfig {
    fn default() -> Self {
        SortConfig {
            bucket: "sort-workspace".to_owned(),
            chunks: 37,
            reducers: 37,
            total_bytes: 0,
            real_data: false,
            partition_ns_per_byte: 25.0,
            sort_ns_per_byte_log: 1.8,
            seed: 7,
            key_prefix: "sort".to_owned(),
            label: "sort".to_owned(),
        }
    }
}

impl SortConfig {
    /// A small, fully materialised configuration for tests/examples.
    pub fn small_real(total_bytes: u64, chunks: usize, reducers: usize) -> Self {
        SortConfig {
            chunks,
            reducers,
            total_bytes,
            real_data: true,
            ..SortConfig::default()
        }
    }

    /// The paper's Figure 5 setup: the Xenograft sort volume on 37
    /// Lambda functions (1769 MB each, 64 GB aggregate memory) or one
    /// m4.4xlarge (16 vCPUs, 64 GB).
    pub fn xenograft() -> Self {
        SortConfig {
            // 64 GB of memory at the paper's 2.5x factor covers ~25 GB
            // of data to sort.
            total_bytes: 25_000_000_000,
            chunks: 37,
            reducers: 37,
            real_data: false,
            ..SortConfig::default()
        }
    }

    /// Bytes per input chunk (last chunk absorbs the remainder).
    pub fn chunk_bytes(&self, chunk: usize) -> u64 {
        let base = self.total_bytes / self.chunks as u64;
        if chunk + 1 == self.chunks {
            self.total_bytes - base * (self.chunks as u64 - 1)
        } else {
            base
        }
    }

    /// Key of one input chunk.
    pub fn chunk_key(&self, chunk: usize) -> String {
        format!("{}in/chunk-{chunk:05}", self.key_prefix)
    }

    /// Key of one shuffle piece (mapper `m` → range `r`). All pieces
    /// share one top-level prefix, so the all-to-all contends on the
    /// store's per-prefix bandwidth — the paper's saturation effect.
    pub fn piece_key(&self, mapper: usize, range: usize) -> String {
        format!("{}x/{mapper:05}/{range:05}", self.key_prefix)
    }

    /// Key of one sorted output part.
    pub fn output_key(&self, range: usize) -> String {
        format!("{}out/part-{range:05}", self.key_prefix)
    }

    /// CPU-seconds to partition `bytes`.
    pub fn partition_cpu_secs(&self, bytes: u64) -> f64 {
        bytes as f64 * self.partition_ns_per_byte * 1e-9
    }

    /// CPU-seconds to sort `bytes` of keys.
    pub fn sort_cpu_secs(&self, bytes: u64) -> f64 {
        let keys = (bytes / 8).max(2) as f64;
        bytes as f64 * self.sort_ns_per_byte_log * keys.log2() * 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_bytes_cover_total_exactly() {
        let cfg = SortConfig {
            total_bytes: 1003,
            chunks: 4,
            ..SortConfig::default()
        };
        let sum: u64 = (0..4).map(|i| cfg.chunk_bytes(i)).sum();
        assert_eq!(sum, 1003);
        assert_eq!(cfg.chunk_bytes(0), 250);
        assert_eq!(cfg.chunk_bytes(3), 253);
    }

    #[test]
    fn keys_are_ordered_and_distinct() {
        let cfg = SortConfig::default();
        assert!(cfg.chunk_key(1) < cfg.chunk_key(2));
        assert!(cfg.piece_key(0, 1) < cfg.piece_key(0, 2));
        assert_ne!(cfg.output_key(0), cfg.output_key(1));
    }

    #[test]
    fn compute_model_scales() {
        let cfg = SortConfig::default();
        assert!(cfg.partition_cpu_secs(2_000_000) > cfg.partition_cpu_secs(1_000_000));
        // Sorting is super-linear.
        let small = cfg.sort_cpu_secs(1_000_000);
        let big = cfg.sort_cpu_secs(2_000_000);
        assert!(big > 2.0 * small);
    }

    #[test]
    fn xenograft_matches_paper_shape() {
        let cfg = SortConfig::xenograft();
        assert_eq!(cfg.chunks, 37);
        // 37 x 1769 MB ≈ 64 GB ≈ 2.5x the data volume.
        let mem = 37.0 * 1769.0e6;
        assert!((mem / cfg.total_bytes as f64 - 2.6).abs() < 0.3);
    }
}
