//! Output verification for real-data sorts.

use serverful::CloudEnv;

use crate::config::SortConfig;
use crate::data;

/// Checks that the sort output is a globally sorted permutation of
/// `expected_keys` — each part internally sorted, parts in range order,
/// and the multiset of keys preserved. Reads the store directly (untimed
/// inspection).
///
/// # Panics
///
/// Panics (with a descriptive message) on any violation; intended for
/// tests and examples.
pub fn check_sorted(env: &CloudEnv, cfg: &SortConfig, parts: usize, expected_keys: &[u64]) {
    assert!(cfg.real_data, "verification requires real data");
    let store = env.world().store();
    let mut all = Vec::with_capacity(expected_keys.len());
    let mut last_max: Option<u64> = None;
    for r in 0..parts {
        let key = cfg.output_key(r);
        let body = store
            .get(&cfg.bucket, &key)
            .unwrap_or_else(|| panic!("missing output part {key}"));
        let keys = data::decode_keys(body.bytes().expect("real output"));
        assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "part {r} is not internally sorted"
        );
        if let (Some(prev), Some(&first)) = (last_max, keys.first()) {
            assert!(
                prev <= first,
                "part {r} starts below the previous part's maximum"
            );
        }
        if let Some(&max) = keys.last() {
            last_max = Some(max);
        }
        all.extend(keys);
    }
    let mut expected = expected_keys.to_vec();
    expected.sort_unstable();
    assert_eq!(
        all, expected,
        "output is not a permutation of the input keys"
    );
}

/// Collects every key seeded into the input chunks (for building the
/// expected multiset).
pub fn input_keys(env: &CloudEnv, cfg: &SortConfig) -> Vec<u64> {
    let store = env.world().store();
    let mut keys = Vec::new();
    for i in 0..cfg.chunks {
        let body = store
            .get(&cfg.bucket, &cfg.chunk_key(i))
            .expect("input chunk seeded");
        keys.extend(data::decode_keys(body.bytes().expect("real input")));
    }
    keys
}
