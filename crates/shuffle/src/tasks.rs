//! The logical functions of the sort: scatter (read + partition +
//! exchange-write) and gather (exchange-read + sort + output-write).
//!
//! Both are parameterised by the exchange medium — object storage for
//! the serverless sort, the master-local KV (shared memory) for the
//! in-VM sort — so the *same* task code exercises both architectures.

use cloudsim::ObjectBody;
use serverful::cloudobject::CloudObjectRef;
use serverful::task::{Action, ActionOutcome, TaskLogic, TaskStep};
use serverful::Payload;

use crate::config::SortConfig;
use crate::data;

/// Where intermediate pieces travel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exchange {
    /// Through object storage (`PutMany`/`GetMany`): the serverless path.
    Storage,
    /// Through the master's KV store — shared memory when the master is
    /// the same VM: the serverful path.
    Kv,
}

/// Key of a KV-exchanged piece.
fn kv_piece_key(mapper: usize, range: usize) -> String {
    format!("piece/{mapper:05}/{range:05}")
}

/// Scatter stage: read input chunks, partition into `ranges` buckets,
/// write each piece to the exchange medium.
pub struct ScatterTask {
    cfg: SortConfig,
    worker: usize,
    ranges: usize,
    exchange: Exchange,
    refs: Vec<CloudObjectRef>,
    stage: ScatterStage,
}

enum ScatterStage {
    Init,
    Reading,
    Partitioning { pieces: Vec<ObjectBody> },
    WritingStorage,
    WritingKv { pieces: Vec<(usize, ObjectBody)> },
}

impl ScatterTask {
    /// Creates the scatter logic for `worker`, reading the chunks in
    /// `refs`.
    pub fn new(
        cfg: SortConfig,
        worker: usize,
        ranges: usize,
        exchange: Exchange,
        refs: Vec<CloudObjectRef>,
    ) -> Self {
        ScatterTask {
            cfg,
            worker,
            ranges,
            exchange,
            refs,
            stage: ScatterStage::Init,
        }
    }

    /// Builds the per-range pieces from the fetched chunk bodies.
    fn make_pieces(&self, bodies: &[ObjectBody]) -> Vec<ObjectBody> {
        let total: u64 = bodies.iter().map(ObjectBody::len).sum();
        if self.cfg.real_data {
            let mut keys = Vec::with_capacity((total / 8) as usize);
            for body in bodies {
                keys.extend(data::decode_keys(
                    body.bytes().expect("real-mode chunk has bytes"),
                ));
            }
            let splitters = data::uniform_splitters(self.ranges);
            data::partition_keys(&keys, &splitters)
                .into_iter()
                .map(|bucket| ObjectBody::real(data::encode_keys(&bucket)))
                .collect()
        } else {
            // Opaque mode: even split, remainder on the last range.
            let base = total / self.ranges as u64;
            (0..self.ranges)
                .map(|r| {
                    let size = if r + 1 == self.ranges {
                        total - base * (self.ranges as u64 - 1)
                    } else {
                        base
                    };
                    ObjectBody::opaque(size)
                })
                .collect()
        }
    }

    fn next_kv_put(&mut self) -> TaskStep {
        let ScatterStage::WritingKv { pieces } = &mut self.stage else {
            unreachable!("kv write outside WritingKv")
        };
        match pieces.pop() {
            Some((range, body)) => TaskStep::Act(Action::KvPut {
                key: kv_piece_key(self.worker, range),
                body,
            }),
            None => TaskStep::Finish(Payload::Unit),
        }
    }
}

impl TaskLogic for ScatterTask {
    fn on_start(&mut self, _input: &Payload) -> TaskStep {
        if self.refs.is_empty() {
            // No chunks assigned (more workers than chunks): still emit
            // empty pieces so every gather finds its full piece set.
            let pieces = self.make_pieces(&[]);
            self.stage = ScatterStage::Partitioning { pieces };
            return TaskStep::Act(Action::Compute { cpu_secs: 0.0 });
        }
        self.stage = ScatterStage::Reading;
        let bucket = self.refs[0].bucket.clone();
        let keys = self.refs.iter().map(|r| r.key.clone()).collect();
        TaskStep::Act(Action::GetMany { bucket, keys })
    }

    fn on_action(&mut self, outcome: ActionOutcome) -> TaskStep {
        match std::mem::replace(&mut self.stage, ScatterStage::Init) {
            ScatterStage::Reading => {
                let ActionOutcome::Objects(bodies) = outcome else {
                    return TaskStep::Fail("scatter read failed".into());
                };
                let total: u64 = bodies.iter().map(ObjectBody::len).sum();
                let pieces = self.make_pieces(&bodies);
                self.stage = ScatterStage::Partitioning { pieces };
                TaskStep::Act(Action::Compute {
                    cpu_secs: self.cfg.partition_cpu_secs(total),
                })
            }
            ScatterStage::Partitioning { pieces } => match self.exchange {
                Exchange::Storage => {
                    let entries: Vec<(String, ObjectBody)> = pieces
                        .into_iter()
                        .enumerate()
                        .map(|(r, body)| (self.cfg.piece_key(self.worker, r), body))
                        .collect();
                    self.stage = ScatterStage::WritingStorage;
                    TaskStep::Act(Action::PutMany {
                        bucket: self.cfg.bucket.clone(),
                        entries,
                    })
                }
                Exchange::Kv => {
                    self.stage = ScatterStage::WritingKv {
                        pieces: pieces.into_iter().enumerate().collect(),
                    };
                    self.next_kv_put()
                }
            },
            ScatterStage::WritingStorage => TaskStep::Finish(Payload::Unit),
            ScatterStage::WritingKv { pieces } => {
                self.stage = ScatterStage::WritingKv { pieces };
                self.next_kv_put()
            }
            ScatterStage::Init => unreachable!("action completed before start"),
        }
    }
}

/// Gather stage: all-to-all read of one range's pieces, sort, write the
/// output part.
pub struct GatherTask {
    cfg: SortConfig,
    range: usize,
    mappers: usize,
    exchange: Exchange,
    stage: GatherStage,
}

enum GatherStage {
    Init,
    ReadingStorage,
    ReadingSeq { next: usize, bodies: Vec<ObjectBody> },
    Sorting { output: ObjectBody },
    Writing { bytes: u64 },
}

impl GatherTask {
    /// Creates the gather logic for `range`, reading from `mappers`
    /// scatter tasks.
    pub fn new(cfg: SortConfig, range: usize, mappers: usize, exchange: Exchange) -> Self {
        GatherTask {
            cfg,
            range,
            mappers,
            exchange,
            stage: GatherStage::Init,
        }
    }

    /// Issues the read of `mapper`'s piece over the exchange medium.
    fn piece_get(&self, mapper: usize) -> TaskStep {
        match self.exchange {
            Exchange::Kv => TaskStep::Act(Action::KvGet {
                key: kv_piece_key(mapper, self.range),
            }),
            Exchange::Storage => TaskStep::Act(Action::Get {
                bucket: self.cfg.bucket.clone(),
                key: self.cfg.piece_key(mapper, self.range),
            }),
        }
    }

    /// Starts a piece-at-a-time gather (used by the fused exchange,
    /// whose peers may not have scattered yet — each read must be
    /// individually retryable).
    pub(crate) fn start_sequential(&mut self) -> TaskStep {
        self.stage = GatherStage::ReadingSeq {
            next: 1,
            bodies: Vec::new(),
        };
        self.piece_get(0)
    }

    /// Re-issues the read of the piece currently awaited (used by the
    /// fused exchange to retry after a not-yet-written piece).
    pub(crate) fn retry_pending(&mut self) -> TaskStep {
        let GatherStage::ReadingSeq { next, .. } = &self.stage else {
            unreachable!("retry outside a sequential read")
        };
        self.piece_get(next - 1)
    }

    fn sort_step(&mut self, bodies: Vec<ObjectBody>) -> TaskStep {
        let total: u64 = bodies.iter().map(ObjectBody::len).sum();
        let output = if self.cfg.real_data {
            let mut keys = Vec::with_capacity((total / 8) as usize);
            for body in &bodies {
                keys.extend(data::decode_keys(
                    body.bytes().expect("real-mode piece has bytes"),
                ));
            }
            keys.sort_unstable();
            ObjectBody::real(data::encode_keys(&keys))
        } else {
            ObjectBody::opaque(total)
        };
        let cpu = self.cfg.sort_cpu_secs(total);
        self.stage = GatherStage::Sorting { output };
        TaskStep::Act(Action::Compute { cpu_secs: cpu })
    }
}

impl TaskLogic for GatherTask {
    fn on_start(&mut self, _input: &Payload) -> TaskStep {
        match self.exchange {
            Exchange::Storage => {
                self.stage = GatherStage::ReadingStorage;
                let keys = (0..self.mappers)
                    .map(|m| self.cfg.piece_key(m, self.range))
                    .collect();
                TaskStep::Act(Action::GetMany {
                    bucket: self.cfg.bucket.clone(),
                    keys,
                })
            }
            Exchange::Kv => self.start_sequential(),
        }
    }

    fn on_action(&mut self, outcome: ActionOutcome) -> TaskStep {
        match std::mem::replace(&mut self.stage, GatherStage::Init) {
            GatherStage::ReadingStorage => {
                let ActionOutcome::Objects(bodies) = outcome else {
                    return TaskStep::Fail("gather read failed".into());
                };
                self.sort_step(bodies)
            }
            GatherStage::ReadingSeq { next, mut bodies } => {
                let body = match outcome {
                    ActionOutcome::KvValue(Some(body)) | ActionOutcome::Object(body) => body,
                    _ => {
                        return TaskStep::Fail(format!(
                            "piece {} missing for range {}",
                            next - 1,
                            self.range
                        ))
                    }
                };
                bodies.push(body);
                if next < self.mappers {
                    self.stage = GatherStage::ReadingSeq {
                        next: next + 1,
                        bodies,
                    };
                    self.piece_get(next)
                } else {
                    self.sort_step(bodies)
                }
            }
            GatherStage::Sorting { output } => {
                let bytes = output.len();
                self.stage = GatherStage::Writing { bytes };
                TaskStep::Act(Action::Put {
                    bucket: self.cfg.bucket.clone(),
                    key: self.cfg.output_key(self.range),
                    body: output,
                })
            }
            GatherStage::Writing { bytes } => TaskStep::Finish(Payload::U64(bytes)),
            GatherStage::Init => unreachable!("action completed before start"),
        }
    }
}

/// The fused in-VM exchange: one worker performs scatter *and* gather in
/// a single logical function, synchronising with its peers through the
/// shared-memory KV — possible because all workers share the master's
/// address space ("workers within a VM run as processes within the same
/// container"). This halves the per-stage framework overhead compared
/// with a two-job scatter/gather and is what the serverful backend runs
/// for stateful operations.
///
/// Under [`Exchange::Storage`] the same fused logic synchronises through
/// object storage instead — the medium decentralized recovery requires,
/// since there is no master KV in its data path. Peer pieces that have
/// not landed yet surface as missing reads and are retried exactly like
/// the KV case.
pub struct FusedExchangeTask {
    scatter: ScatterTask,
    gather: GatherTask,
    phase: FusedPhase,
    retries: usize,
}

enum FusedPhase {
    Scattering,
    Gathering,
    AwaitingRetry,
}

/// How long a worker sleeps before re-checking for a missing peer piece.
const RETRY_SECS: f64 = 0.15;
/// Bound on retries so a lost piece fails loudly instead of spinning.
const MAX_RETRIES: usize = 10_000;

impl FusedExchangeTask {
    /// Creates the fused logic for `worker`, which also owns range
    /// `worker` of the output, exchanging pieces over `exchange`.
    pub fn new(
        cfg: SortConfig,
        worker: usize,
        workers: usize,
        refs: Vec<CloudObjectRef>,
        exchange: Exchange,
    ) -> Self {
        FusedExchangeTask {
            scatter: ScatterTask::new(cfg.clone(), worker, workers, exchange, refs),
            gather: GatherTask::new(cfg, worker, workers, exchange),
            phase: FusedPhase::Scattering,
            retries: 0,
        }
    }
}

impl TaskLogic for FusedExchangeTask {
    fn on_start(&mut self, input: &Payload) -> TaskStep {
        self.phase = FusedPhase::Scattering;
        self.scatter.on_start(input)
    }

    fn on_action(&mut self, outcome: ActionOutcome) -> TaskStep {
        match self.phase {
            FusedPhase::Scattering => match self.scatter.on_action(outcome) {
                TaskStep::Finish(_) => {
                    self.phase = FusedPhase::Gathering;
                    self.gather.start_sequential()
                }
                other => other,
            },
            FusedPhase::Gathering => {
                // A missing piece means a peer has not scattered yet:
                // wait and retry instead of failing.
                if matches!(
                    outcome,
                    ActionOutcome::KvValue(None) | ActionOutcome::MissingObject
                ) {
                    self.retries += 1;
                    if self.retries > MAX_RETRIES {
                        return TaskStep::Fail("exchange peer never produced its piece".into());
                    }
                    self.phase = FusedPhase::AwaitingRetry;
                    return TaskStep::Act(Action::Sleep { secs: RETRY_SECS });
                }
                self.gather.on_action(outcome)
            }
            FusedPhase::AwaitingRetry => {
                // The sleep elapsed; re-issue the same piece read by
                // restarting the gather's pending request.
                debug_assert!(matches!(outcome, ActionOutcome::Done));
                self.phase = FusedPhase::Gathering;
                self.gather.retry_pending()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn real_cfg() -> SortConfig {
        SortConfig::small_real(8_000, 2, 2)
    }

    #[test]
    fn scatter_pieces_partition_real_keys() {
        let cfg = real_cfg();
        let task = ScatterTask::new(cfg, 0, 2, Exchange::Storage, vec![]);
        let keys: Vec<u64> = vec![1, u64::MAX / 2 + 10, 5, u64::MAX - 1];
        let body = ObjectBody::real(data::encode_keys(&keys));
        let pieces = task.make_pieces(&[body]);
        assert_eq!(pieces.len(), 2);
        let low = data::decode_keys(pieces[0].bytes().unwrap());
        let high = data::decode_keys(pieces[1].bytes().unwrap());
        assert_eq!(low, vec![1, 5]);
        assert_eq!(high.len(), 2);
    }

    #[test]
    fn scatter_opaque_pieces_cover_total() {
        let mut cfg = real_cfg();
        cfg.real_data = false;
        let task = ScatterTask::new(cfg, 0, 3, Exchange::Storage, vec![]);
        let pieces = task.make_pieces(&[ObjectBody::opaque(1000)]);
        assert_eq!(pieces.len(), 3);
        assert_eq!(pieces.iter().map(ObjectBody::len).sum::<u64>(), 1000);
    }

    #[test]
    fn gather_kv_reads_all_mappers_sequentially() {
        let cfg = real_cfg();
        let mut task = GatherTask::new(cfg, 0, 3, Exchange::Kv);
        let step = task.on_start(&Payload::Unit);
        assert!(matches!(step, TaskStep::Act(Action::KvGet { .. })));
        // Two more KV gets, then the sort compute.
        let piece = || ObjectBody::real(data::encode_keys(&[3, 1, 2]));
        let step = task.on_action(ActionOutcome::KvValue(Some(piece())));
        assert!(matches!(step, TaskStep::Act(Action::KvGet { .. })));
        let step = task.on_action(ActionOutcome::KvValue(Some(piece())));
        assert!(matches!(step, TaskStep::Act(Action::KvGet { .. })));
        let step = task.on_action(ActionOutcome::KvValue(Some(piece())));
        assert!(matches!(step, TaskStep::Act(Action::Compute { .. })));
        // Output write carries the sorted keys.
        let step = task.on_action(ActionOutcome::Done);
        match step {
            TaskStep::Act(Action::Put { body, .. }) => {
                let keys = data::decode_keys(body.bytes().unwrap());
                assert_eq!(keys, vec![1, 1, 1, 2, 2, 2, 3, 3, 3]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn gather_fails_on_missing_kv_piece() {
        let cfg = real_cfg();
        let mut task = GatherTask::new(cfg, 1, 2, Exchange::Kv);
        task.on_start(&Payload::Unit);
        let step = task.on_action(ActionOutcome::KvValue(None));
        assert!(matches!(step, TaskStep::Fail(_)));
    }
}
