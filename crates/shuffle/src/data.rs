//! Key data: generation, encoding, partitioning.
//!
//! Real-mode sort data is a flat array of `u64` keys encoded as
//! little-endian bytes — the simplest format that makes "is the output
//! globally sorted" a meaningful, checkable property.

use bytes::Bytes;
use simkernel::SimRng;

/// Encodes keys as little-endian bytes.
pub fn encode_keys(keys: &[u64]) -> Bytes {
    let mut out = Vec::with_capacity(keys.len() * 8);
    for k in keys {
        out.extend_from_slice(&k.to_le_bytes());
    }
    Bytes::from(out)
}

/// Decodes little-endian bytes back into keys.
///
/// # Panics
///
/// Panics if the length is not a multiple of 8.
pub fn decode_keys(bytes: &[u8]) -> Vec<u64> {
    assert!(bytes.len().is_multiple_of(8), "key blob length must be 8-aligned");
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect()
}

/// Generates `n` uniformly random keys.
pub fn random_keys(rng: &mut SimRng, n: usize) -> Vec<u64> {
    (0..n).map(|_| rng.uniform_u64(0, u64::MAX)).collect()
}

/// Evenly spaced range splitters for `r` ranges over the full `u64`
/// domain: range `i` holds keys in `[splitters[i-1], splitters[i])`.
pub fn uniform_splitters(r: usize) -> Vec<u64> {
    assert!(r > 0, "need at least one range");
    let step = u64::MAX / r as u64;
    (1..r as u64).map(|i| i * step).collect()
}

/// The range a key belongs to, per `partition_point` over the splitters.
pub fn range_of(key: u64, splitters: &[u64]) -> usize {
    splitters.partition_point(|&s| s <= key)
}

/// Splits keys into `splitters.len() + 1` range buckets.
pub fn partition_keys(keys: &[u64], splitters: &[u64]) -> Vec<Vec<u64>> {
    let mut buckets = vec![Vec::new(); splitters.len() + 1];
    for &k in keys {
        buckets[range_of(k, splitters)].push(k);
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let keys = vec![0u64, 1, u64::MAX, 42];
        assert_eq!(decode_keys(&encode_keys(&keys)), keys);
    }

    #[test]
    #[should_panic(expected = "8-aligned")]
    fn misaligned_blob_panics() {
        decode_keys(&[1, 2, 3]);
    }

    #[test]
    fn partition_covers_all_keys_and_respects_ranges() {
        let mut rng = SimRng::seed_from(1);
        let keys = random_keys(&mut rng, 10_000);
        let splitters = uniform_splitters(8);
        let buckets = partition_keys(&keys, &splitters);
        assert_eq!(buckets.len(), 8);
        assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), keys.len());
        for (i, bucket) in buckets.iter().enumerate() {
            for &k in bucket {
                if i > 0 {
                    assert!(k >= splitters[i - 1]);
                }
                if i < splitters.len() {
                    assert!(k < splitters[i]);
                }
            }
        }
    }

    #[test]
    fn uniform_splitters_are_increasing() {
        let s = uniform_splitters(16);
        assert_eq!(s.len(), 15);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn range_of_boundaries() {
        let splitters = vec![10, 20];
        assert_eq!(range_of(9, &splitters), 0);
        assert_eq!(range_of(10, &splitters), 1);
        assert_eq!(range_of(19, &splitters), 1);
        assert_eq!(range_of(20, &splitters), 2);
    }

    #[test]
    fn uniform_keys_spread_roughly_evenly() {
        let mut rng = SimRng::seed_from(9);
        let keys = random_keys(&mut rng, 80_000);
        let buckets = partition_keys(&keys, &uniform_splitters(8));
        for b in &buckets {
            let frac = b.len() as f64 / keys.len() as f64;
            assert!((frac - 0.125).abs() < 0.02, "skewed bucket: {frac}");
        }
    }
}
