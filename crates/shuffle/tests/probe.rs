use serverful::{Backend, CloudEnv, ExecutorConfig, FunctionExecutor, SizingPolicy};
use shuffle::{seed_input, serverless_sort, vm_sort, SortConfig};

#[test]
#[ignore]
fn probe() {
    let cfg = SortConfig::xenograft();
    let mut env = CloudEnv::new_default(53);
    let refs = seed_input(&mut env, &cfg);
    let mut faas = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    let sl = serverless_sort(&mut env, &mut faas, &cfg, &refs).unwrap();
    eprintln!("SERVERLESS wall={:.1}s cost=${:.4}", sl.wall_secs, sl.cost_usd);
    let mut env = CloudEnv::new_default(53);
    let refs = seed_input(&mut env, &cfg);
    let mut vm = FunctionExecutor::new(&mut env, Backend::vm(), ExecutorConfig::default());
    let sv = vm_sort(&mut env, &mut vm, &cfg, &refs, &SizingPolicy::default()).unwrap();
    eprintln!("VM wall={:.1}s cost=${:.4}", sv.wall_secs, sv.cost_usd);
    eprintln!("ratios: time {:.2}x cost {:.2}x", sv.wall_secs/sl.wall_secs, sl.cost_usd/sv.cost_usd);
}
