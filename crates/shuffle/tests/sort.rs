//! End-to-end sort tests: both architectures, real data verified.

use serverful::{Backend, CloudEnv, ExecutorConfig, FunctionExecutor, SizingPolicy};
use shuffle::{seed_input, serverless_sort, verify, vm_sort, SortConfig};

fn real_cfg() -> SortConfig {
    // 64 KB of real keys across 4 chunks into 3 ranges.
    let mut cfg = SortConfig::small_real(65_536, 4, 3);
    cfg.bucket = "sort-workspace".into();
    cfg
}

#[test]
fn serverless_sort_produces_globally_sorted_output() {
    let mut env = CloudEnv::new_default(41);
    let cfg = real_cfg();
    let refs = seed_input(&mut env, &cfg);
    let expected = verify::input_keys(&env, &cfg);
    let mut exec = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    let report = serverless_sort(&mut env, &mut exec, &cfg, &refs).expect("sort runs");
    assert_eq!(report.output_parts, 3);
    verify::check_sorted(&env, &cfg, 3, &expected);
    assert!(report.wall_secs > 0.0);
    assert!(report.cost_usd > 0.0);
}

#[test]
fn vm_sort_produces_identical_output_through_shared_memory() {
    let mut env = CloudEnv::new_default(43);
    let cfg = real_cfg();
    let refs = seed_input(&mut env, &cfg);
    let expected = verify::input_keys(&env, &cfg);
    let mut exec = FunctionExecutor::new(&mut env, Backend::vm(), ExecutorConfig::default());
    let sizing = SizingPolicy::default();
    let report = vm_sort(&mut env, &mut exec, &cfg, &refs, &sizing).expect("sort runs");
    // Small input -> the sizing floor (c5.2xlarge) -> 8 workers/parts.
    assert_eq!(report.output_parts, 8);
    verify::check_sorted(&env, &cfg, 8, &expected);
}

#[test]
fn both_architectures_sort_the_same_multiset() {
    // Run both on separate environments seeded identically; outputs must
    // agree as multisets.
    let cfg = real_cfg();

    let mut env_a = CloudEnv::new_default(47);
    let refs = seed_input(&mut env_a, &cfg);
    let expected = verify::input_keys(&env_a, &cfg);
    let mut faas = FunctionExecutor::new(&mut env_a, Backend::faas(), ExecutorConfig::default());
    serverless_sort(&mut env_a, &mut faas, &cfg, &refs).unwrap();

    let mut env_b = CloudEnv::new_default(47);
    let refs = seed_input(&mut env_b, &cfg);
    let mut vm = FunctionExecutor::new(&mut env_b, Backend::vm(), ExecutorConfig::default());
    vm_sort(&mut env_b, &mut vm, &cfg, &refs, &SizingPolicy::default()).unwrap();

    verify::check_sorted(&env_a, &cfg, 3, &expected);
    verify::check_sorted(&env_b, &cfg, 8, &expected);
}

#[test]
fn paper_scale_opaque_sort_runs_on_both_architectures() {
    // The Figure 5 shape at full 25 GB scale, opaque data.
    let cfg = SortConfig::xenograft();

    let mut env = CloudEnv::new_default(53);
    let refs = seed_input(&mut env, &cfg);
    let mut faas = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    let sl = serverless_sort(&mut env, &mut faas, &cfg, &refs).expect("serverless sort");

    let mut env = CloudEnv::new_default(53);
    let refs = seed_input(&mut env, &cfg);
    let mut vm = FunctionExecutor::new(&mut env, Backend::vm(), ExecutorConfig::default());
    let sv = vm_sort(&mut env, &mut vm, &cfg, &refs, &SizingPolicy::default()).expect("vm sort");

    // The paper's qualitative result: serverless is faster but the VM is
    // several times cheaper.
    assert!(
        sl.wall_secs < sv.wall_secs,
        "serverless ({:.1} s) should beat the VM ({:.1} s) on latency",
        sl.wall_secs,
        sv.wall_secs
    );
    assert!(
        sv.cost_usd < sl.cost_usd / 2.0,
        "VM (${:.3}) should be much cheaper than serverless (${:.3})",
        sv.cost_usd,
        sl.cost_usd
    );
    // 25 GB / 64 GB RAM -> the sizing policy picks m4.4xlarge: 16 parts.
    assert_eq!(sv.output_parts, 16);
}

#[test]
fn deterministic_sort_reports() {
    let run = || {
        let mut env = CloudEnv::new_default(59);
        let cfg = real_cfg();
        let refs = seed_input(&mut env, &cfg);
        let mut exec =
            FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
        serverless_sort(&mut env, &mut exec, &cfg, &refs).unwrap()
    };
    assert_eq!(run(), run());
}
