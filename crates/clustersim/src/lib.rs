//! A Spark-like fixed-cluster baseline engine.
//!
//! The paper compares its serverless and hybrid deployments against the
//! original METASPACE production setup: a Spark cluster of four
//! c5.4xlarge instances (64 vCPUs, 128 GB). This crate reproduces the
//! *structural* properties of that baseline on the [`cloudsim`]
//! substrate:
//!
//! * a **fixed pool** of VMs — wide stages run in waves over the 64 task
//!   slots (under-provisioning), narrow stages leave most slots idle
//!   (over-provisioning), which is exactly the utilisation pathology of
//!   Table 3's Spark column;
//! * **BSP stage execution** — a stage starts only when its predecessor
//!   finished;
//! * **network shuffle** — stateful stages move data all-to-all across
//!   the executors' NICs (not through object storage);
//! * tasks read input from and write output to object storage, like the
//!   real pipeline.
//!
//! Cluster configuration/initialisation time is excluded from reported
//! job times, matching the paper's measurement methodology ("we exclude
//! cluster configuration and initialisation times").
//!
//! # Example
//!
//! ```
//! use clustersim::{ClusterConfig, ClusterEngine, StageDef};
//! use cloudsim::{CloudConfig, World};
//!
//! let mut world = World::new(CloudConfig::default(), 7);
//! let mut cluster = ClusterEngine::provision(&mut world, ClusterConfig::default());
//! let report = cluster.run(&mut world, &[StageDef::compute_only("probe", 64, 1.0)]);
//! assert!(report.wall_secs >= 1.0);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod engine;

pub use config::{ClusterConfig, StageDef};
pub use engine::{ClusterEngine, ClusterReport};
