//! The BSP execution engine.

use std::collections::{HashMap, VecDeque};

use cloudsim::{HostId, Notify, ObjectBody, OpId, OpOutcome, VmId, World};
use simkernel::{SimDuration, SimTime};
use telemetry::{CostCategory, StageSpan, Timeline};

use crate::config::{ClusterConfig, StageDef};

/// The outcome of one pipeline run on the cluster.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// End-to-end wall-clock seconds (cluster init excluded).
    pub wall_secs: f64,
    /// Dollars: instance-seconds for the job window.
    pub cost_usd: f64,
    /// Per-stage spans.
    pub timeline: Timeline,
}

/// Which step of its life a running task is in.
#[derive(Debug, Clone, Copy)]
enum TaskPhase {
    Reading,
    Computing,
    Writing,
}

#[derive(Debug)]
struct RunningTask {
    vm_slot: usize,
    phase: TaskPhase,
}

/// A provisioned, long-lived cluster. See the [crate docs](crate).
#[derive(Debug)]
pub struct ClusterEngine {
    cfg: ClusterConfig,
    itype: cloudsim::InstanceType,
    vms: Vec<VmId>,
    hosts: Vec<HostId>,
    total_slots: usize,
}

impl ClusterEngine {
    /// Provisions the cluster and waits (in virtual time) until every
    /// instance is up. The paper excludes this from job measurements;
    /// call [`Self::run`] afterwards for the timed part.
    ///
    /// # Panics
    ///
    /// Panics if the instance type is unknown or the world drains before
    /// the cluster is up.
    pub fn provision(world: &mut World, cfg: ClusterConfig) -> Self {
        let itype = *cloudsim::instance_type(&cfg.instance_type)
            .unwrap_or_else(|| panic!("unknown instance type {}", cfg.instance_type));
        let vms: Vec<VmId> = (0..cfg.count)
            .map(|_| world.vm_provision(&itype, "cluster"))
            .collect();
        let mut up = 0;
        while up < vms.len() {
            match world.step() {
                Some((_, Notify::VmUp { .. })) => up += 1,
                Some(_) => {}
                None => panic!("world drained before the cluster came up"),
            }
        }
        let hosts = vms.iter().map(|&vm| world.vm_host(vm)).collect();
        let total_slots = itype.vcpus as usize * cfg.count;
        ClusterEngine {
            cfg,
            itype,
            vms,
            hosts,
            total_slots,
        }
    }

    /// Total task slots (vCPUs across the pool).
    pub fn slots(&self) -> usize {
        self.total_slots
    }

    /// The instances backing the cluster.
    pub fn vms(&self) -> &[VmId] {
        &self.vms
    }

    /// Runs the stages back to back (BSP) and reports wall time and the
    /// cluster cost for the job window.
    ///
    /// # Panics
    ///
    /// Panics if the world drains mid-stage (a model bug).
    pub fn run(&mut self, world: &mut World, stages: &[StageDef]) -> ClusterReport {
        let start = world.now();
        let mut timeline = Timeline::new();
        for stage in stages {
            let span = self.run_stage(world, stage);
            timeline.record(span);
        }
        let end = world.now();
        let wall_secs = (end - start).as_secs_f64();
        // The fixed pool is billed for the whole job window regardless of
        // utilisation — the crux of the cost comparison.
        let cost_usd = wall_secs * self.cfg.count as f64 * self.itype.usd_per_second();
        world.ledger_mut().charge(
            end,
            CostCategory::VmCompute,
            cost_usd,
            format!("cluster job ({} stages)", stages.len()),
        );
        ClusterReport {
            wall_secs,
            cost_usd,
            timeline,
        }
    }

    fn run_stage(&mut self, world: &mut World, stage: &StageDef) -> StageSpan {
        let stage_start = world.now();
        world.set_bill_label(format!("cluster/{}", stage.name));

        // DAG-scheduler overhead.
        let op = world_sleep(world, self.cfg.stage_overhead_secs);
        wait_op(world, op);

        // Shuffle feeding this stage: all-to-all across executors.
        if stage.shuffle_bytes > 0 && self.cfg.count > 1 {
            let pairs = (self.cfg.count * (self.cfg.count - 1)) as u64;
            let per_pair = stage.shuffle_bytes / pairs.max(1);
            let mut pending = Vec::new();
            for (i, &from) in self.hosts.iter().enumerate() {
                for (j, &to) in self.hosts.iter().enumerate() {
                    if i != j {
                        pending.push(world.net_transfer(from, to, per_pair));
                    }
                }
            }
            wait_all(world, pending);
            // External-sort spill: the shuffled data is written to and
            // re-read from local disk on every node.
            let disk_secs = 2.0 * stage.shuffle_bytes as f64
                / (self.cfg.count as f64 * self.cfg.disk_bps_per_node);
            let op = world_sleep(world, disk_secs);
            wait_op(world, op);
        } else if stage.shuffle_bytes > 0 {
            // Single-node "shuffle" is a memory copy; negligible.
            let op = world_sleep(world, 0.05);
            wait_op(world, op);
        }

        // Seed this stage's input objects (setup, untimed): one object
        // per task under the stage's prefix.
        for t in 0..stage.tasks {
            if stage.read_bytes_per_task > 0 {
                world.seed_object(
                    "cluster-data",
                    &stage_input_key(stage, t),
                    ObjectBody::opaque(stage.read_bytes_per_task),
                );
            }
        }

        // Execute tasks in waves over the slot pool.
        let mut queue: VecDeque<usize> = (0..stage.tasks).collect();
        let mut running: HashMap<OpId, (usize, RunningTask)> = HashMap::new();
        let mut in_flight = 0usize;
        let mut next_slot = 0usize;
        let mut done = 0usize;

        let launch = |world: &mut World,
                          queue: &mut VecDeque<usize>,
                          running: &mut HashMap<OpId, (usize, RunningTask)>,
                          in_flight: &mut usize,
                          next_slot: &mut usize| {
            while *in_flight < self.total_slots {
                let Some(task) = queue.pop_front() else {
                    break;
                };
                let vm_slot = *next_slot % self.cfg.count;
                *next_slot += 1;
                *in_flight += 1;
                let host = self.hosts[vm_slot];
                let op = if stage.read_bytes_per_task > 0 {
                    world.get_object(host, "cluster-data", &stage_input_key(stage, task))
                } else {
                    world.compute(host, stage.cpu_secs_per_task + self.cfg.task_overhead_secs)
                };
                let phase = if stage.read_bytes_per_task > 0 {
                    TaskPhase::Reading
                } else {
                    TaskPhase::Computing
                };
                running.insert(op, (task, RunningTask { vm_slot, phase }));
            }
        };

        launch(world, &mut queue, &mut running, &mut in_flight, &mut next_slot);

        while done < stage.tasks {
            let Some((_, notify)) = world.step() else {
                panic!("world drained mid-stage {}", stage.name);
            };
            let Notify::Op { op, outcome } = notify else {
                continue;
            };
            let Some((task, state)) = running.remove(&op) else {
                continue;
            };
            let host = self.hosts[state.vm_slot];
            match (state.phase, outcome) {
                (TaskPhase::Reading, OpOutcome::GetOk { .. }) => {
                    let op = world
                        .compute(host, stage.cpu_secs_per_task + self.cfg.task_overhead_secs);
                    running.insert(
                        op,
                        (
                            task,
                            RunningTask {
                                vm_slot: state.vm_slot,
                                phase: TaskPhase::Computing,
                            },
                        ),
                    );
                }
                (TaskPhase::Computing, OpOutcome::ComputeOk) => {
                    if stage.write_bytes_per_task > 0 {
                        let key = format!(
                            "{}-{}/out/{}/{}",
                            stage.storage_prefix,
                            task % stage.prefix_spread.max(1),
                            stage.name,
                            task
                        );
                        let op = world.put_object(
                            host,
                            "cluster-data",
                            &key,
                            ObjectBody::opaque(stage.write_bytes_per_task),
                        );
                        running.insert(
                            op,
                            (
                                task,
                                RunningTask {
                                    vm_slot: state.vm_slot,
                                    phase: TaskPhase::Writing,
                                },
                            ),
                        );
                    } else {
                        done += 1;
                        in_flight -= 1;
                        launch(world, &mut queue, &mut running, &mut in_flight, &mut next_slot);
                    }
                }
                (TaskPhase::Writing, OpOutcome::PutOk) => {
                    done += 1;
                    in_flight -= 1;
                    launch(world, &mut queue, &mut running, &mut in_flight, &mut next_slot);
                }
                (phase, outcome) => {
                    panic!("stage {}: unexpected {outcome:?} in {phase:?}", stage.name)
                }
            }
        }

        StageSpan {
            name: stage.name.clone(),
            start: stage_start,
            end: world.now(),
            tasks: stage.tasks,
            stateful: stage.stateful,
        }
    }
}

fn stage_input_key(stage: &StageDef, task: usize) -> String {
    format!(
        "{}-{}/in/{}/{}",
        stage.storage_prefix,
        task % stage.prefix_spread.max(1),
        stage.name,
        task
    )
}

fn world_sleep(world: &mut World, secs: f64) -> OpId {
    world.sleep(SimDuration::from_secs_f64(secs))
}

/// Pumps until one op completes.
fn wait_op(world: &mut World, op: OpId) -> SimTime {
    loop {
        match world.step() {
            Some((t, Notify::Op { op: done, .. })) if done == op => return t,
            Some(_) => continue,
            None => panic!("world drained waiting on {op}"),
        }
    }
}

/// Pumps until every listed op completes.
fn wait_all(world: &mut World, ops: Vec<OpId>) {
    let mut remaining: std::collections::HashSet<OpId> = ops.into_iter().collect();
    while !remaining.is_empty() {
        match world.step() {
            Some((_, Notify::Op { op, .. })) => {
                remaining.remove(&op);
            }
            Some(_) => {}
            None => panic!("world drained waiting on transfers"),
        }
    }
}
