//! Cluster and stage definitions.

/// A fixed cluster of identical instances.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Instance type name (must exist in the [`cloudsim::pricing`]
    /// catalog).
    pub instance_type: String,
    /// Number of instances.
    pub count: usize,
    /// Per-task launch overhead (serialisation, scheduling), seconds.
    pub task_overhead_secs: f64,
    /// Per-stage DAG-scheduler overhead, seconds.
    pub stage_overhead_secs: f64,
    /// Local-disk bandwidth per node, bytes/s. Shuffles spill to disk
    /// and re-read (external sort), which bottlenecks stateful stages
    /// the way the paper's Table 3 Spark column shows.
    pub disk_bps_per_node: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        // The METASPACE production cluster: 4 x c5.4xlarge = 64 vCPUs /
        // 128 GB.
        ClusterConfig {
            instance_type: "c5.4xlarge".to_owned(),
            count: 4,
            task_overhead_secs: 0.05,
            stage_overhead_secs: 0.4,
            disk_bps_per_node: 300.0e6,
        }
    }
}

/// One BSP stage of a pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct StageDef {
    /// Stage name (timeline, billing attribution).
    pub name: String,
    /// Number of parallel tasks.
    pub tasks: usize,
    /// CPU-seconds of compute per task.
    pub cpu_secs_per_task: f64,
    /// Bytes each task reads from object storage.
    pub read_bytes_per_task: u64,
    /// Bytes each task writes to object storage.
    pub write_bytes_per_task: u64,
    /// Total bytes exchanged all-to-all across executors *before* the
    /// tasks run (the shuffle feeding this stage). Zero for map stages.
    pub shuffle_bytes: u64,
    /// Whether this stage is a stateful operation in the paper's sense.
    pub stateful: bool,
    /// Top-level storage prefix the stage's objects live under; distinct
    /// prefixes scale storage throughput independently.
    pub storage_prefix: String,
    /// Number of distinct top-level prefixes task inputs spread across
    /// (input key prefix becomes `{storage_prefix}-{task % spread}`).
    pub prefix_spread: usize,
}

impl StageDef {
    /// A pure-compute stage (no I/O) — useful for microbenchmarks.
    pub fn compute_only(name: impl Into<String>, tasks: usize, cpu_secs: f64) -> Self {
        let name = name.into();
        StageDef {
            storage_prefix: name.clone(),
            name,
            tasks,
            cpu_secs_per_task: cpu_secs,
            read_bytes_per_task: 0,
            write_bytes_per_task: 0,
            shuffle_bytes: 0,
            stateful: false,
            prefix_spread: 1,
        }
    }

    /// Marks the stage stateful with a pre-shuffle of `bytes`.
    pub fn with_shuffle(mut self, bytes: u64) -> Self {
        self.shuffle_bytes = bytes;
        self.stateful = true;
        self
    }

    /// Sets per-task storage I/O.
    pub fn with_io(mut self, read: u64, write: u64) -> Self {
        self.read_bytes_per_task = read;
        self.write_bytes_per_task = write;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_cluster() {
        let cfg = ClusterConfig::default();
        assert_eq!(cfg.instance_type, "c5.4xlarge");
        assert_eq!(cfg.count, 4);
        let it = cloudsim::instance_type(&cfg.instance_type).unwrap();
        assert_eq!(it.vcpus as usize * cfg.count, 64);
        assert_eq!(it.mem_gib * cfg.count as f64, 128.0);
    }

    #[test]
    fn stage_builders_compose() {
        let stage = StageDef::compute_only("sort", 32, 2.0)
            .with_shuffle(1 << 30)
            .with_io(1024, 2048);
        assert!(stage.stateful);
        assert_eq!(stage.shuffle_bytes, 1 << 30);
        assert_eq!(stage.read_bytes_per_task, 1024);
        assert_eq!(stage.write_bytes_per_task, 2048);
    }
}
