//! End-to-end tests of the Spark-like baseline.

use cloudsim::{CloudConfig, World};
use clustersim::{ClusterConfig, ClusterEngine, StageDef};

fn world() -> World {
    World::new(CloudConfig::default(), 61)
}

#[test]
fn wide_stage_runs_in_waves() {
    let mut w = world();
    let mut cluster = ClusterEngine::provision(&mut w, ClusterConfig::default());
    assert_eq!(cluster.slots(), 64);
    // 192 tasks x 5 s on 64 slots = 3 waves ≈ 15 s + overheads.
    let report = cluster.run(&mut w, &[StageDef::compute_only("wide", 192, 5.0)]);
    assert!(
        (15.0..18.0).contains(&report.wall_secs),
        "expected ~15 s (3 waves), got {}",
        report.wall_secs
    );
}

#[test]
fn narrow_stage_wastes_slots_but_finishes_fast() {
    let mut w = world();
    let mut cluster = ClusterEngine::provision(&mut w, ClusterConfig::default());
    let report = cluster.run(&mut w, &[StageDef::compute_only("narrow", 4, 5.0)]);
    // One wave, 60 of 64 slots idle.
    assert!((5.0..7.0).contains(&report.wall_secs), "{}", report.wall_secs);
    // Utilisation over the stage window is low: ~4/64.
    let tl = &report.timeline;
    let span = tl.span("narrow").unwrap();
    let samples = w.cpu_monitor().utilisation_samples(
        span.start,
        span.end,
        simkernel::SimDuration::from_millis(500),
    );
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    assert!(mean < 15.0, "narrow stage should underutilise, got {mean}%");
}

#[test]
fn shuffle_moves_data_across_nics() {
    let mut w = world();
    let mut cluster = ClusterEngine::provision(&mut w, ClusterConfig::default());
    // 30 GB all-to-all over 4 x 5 Gbit/s NICs (~24 s) plus the external
    // sort's disk spill+re-read at 4 x 150 MB/s (~100 s).
    let stage = StageDef::compute_only("exchange", 4, 0.1).with_shuffle(30_000_000_000);
    let report = cluster.run(&mut w, &[stage]);
    assert!(
        (60.0..200.0).contains(&report.wall_secs),
        "expected NIC+disk-bound shuffle, got {} s",
        report.wall_secs
    );
    assert!(report.timeline.span("exchange").unwrap().stateful);
}

#[test]
fn cost_is_pool_time_not_work() {
    let mut w = world();
    let mut cluster = ClusterEngine::provision(&mut w, ClusterConfig::default());
    // A nearly idle job still pays for the whole pool.
    let report = cluster.run(&mut w, &[StageDef::compute_only("idle-ish", 1, 10.0)]);
    let rate = 4.0 * cloudsim::instance_type("c5.4xlarge").unwrap().usd_per_second();
    let expected = report.wall_secs * rate;
    assert!((report.cost_usd - expected).abs() < 1e-9);
}

#[test]
fn stages_run_back_to_back() {
    let mut w = world();
    let mut cluster = ClusterEngine::provision(&mut w, ClusterConfig::default());
    let stages = vec![
        StageDef::compute_only("a", 64, 2.0),
        StageDef::compute_only("b", 64, 3.0),
    ];
    let report = cluster.run(&mut w, &stages);
    assert_eq!(report.timeline.spans().len(), 2);
    let a = report.timeline.span("a").unwrap();
    let b = report.timeline.span("b").unwrap();
    assert!(b.start >= a.end, "stage b started before a finished");
    assert!((5.0..8.0).contains(&report.wall_secs), "{}", report.wall_secs);
}

#[test]
fn io_stages_touch_storage() {
    let mut w = world();
    let mut cluster = ClusterEngine::provision(&mut w, ClusterConfig::default());
    let stage =
        StageDef::compute_only("io", 64, 0.5).with_io(50_000_000, 10_000_000);
    let before = w.ledger().total_for(telemetry::CostCategory::StorageRequests);
    let report = cluster.run(&mut w, &[stage]);
    let after = w.ledger().total_for(telemetry::CostCategory::StorageRequests);
    assert!(after > before, "storage requests should be billed");
    // 64 readers x 50 MB on 4 NICs under one prefix (0.5 GB/s cap):
    // 3.2 GB / 0.5 GB/s ≈ 6.4 s of read time plus compute and writes.
    assert!(
        (6.0..20.0).contains(&report.wall_secs),
        "got {}",
        report.wall_secs
    );
}

#[test]
fn deterministic_cluster_runs() {
    let run = || {
        let mut w = world();
        let mut cluster = ClusterEngine::provision(&mut w, ClusterConfig::default());
        let report = cluster.run(
            &mut w,
            &[StageDef::compute_only("x", 100, 1.0).with_io(1_000_000, 1_000_000)],
        );
        report.wall_secs
    };
    assert_eq!(run(), run());
}
