//! A minimal, API-compatible stand-in for the parts of the `bytes` crate
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the real crate
//! cannot be fetched. [`Bytes`] here is an immutable, cheaply cloneable
//! byte container backed by `Arc<[u8]>` — reference-counted clones, no
//! slicing views. That is exactly the subset the workspace relies on:
//! payload bodies and object-store contents are created once and shared.

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous byte buffer.
///
/// # Example
///
/// ```
/// use bytes::Bytes;
///
/// let a = Bytes::from(vec![1u8, 2, 3]);
/// let b = a.clone(); // O(1), shares the allocation
/// assert_eq!(a, b);
/// assert_eq!(&a[..], &[1, 2, 3]);
/// ```
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Creates a buffer from a static slice (copies; the real crate
    /// borrows, but no caller here depends on zero-copy statics).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The bytes as a slice (inherent, mirroring the real crate's API).
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.data.cmp(&other.data)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        if self.data.len() > 32 {
            write!(f, "..{} bytes", self.data.len())?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_roundtrips() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn clone_is_shallow_and_equal() {
        let a = Bytes::from(vec![9u8; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_ref().as_ptr(), b.as_ref().as_ptr()));
    }

    #[test]
    fn copy_from_slice_copies() {
        let src = [5u8, 6, 7];
        let b = Bytes::copy_from_slice(&src);
        assert_eq!(&b[..], &src);
    }

    #[test]
    fn empty_default() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::default().len(), 0);
    }

    #[test]
    fn equality_with_slices() {
        let b = Bytes::from(vec![1u8, 2]);
        assert_eq!(b, *[1u8, 2].as_slice());
        assert_eq!(b, vec![1u8, 2]);
    }

    #[test]
    fn debug_is_bounded() {
        let b = Bytes::from(vec![0u8; 100]);
        let s = format!("{b:?}");
        assert!(s.contains("100 bytes"));
    }
}
