//! The traffic driver: runs one scenario's arrival schedule through a
//! shared simulated region, once per deployment policy.
//!
//! Each policy runs in its own *cell*: a fresh [`cloudsim::World`]
//! seeded identically, replaying the identical arrival schedule, so the
//! per-policy outcomes differ only by policy. Cells are independent
//! single-threaded simulations; [`run_scenario`] fans them out over
//! [`planner::parallel_map`] and merges in index order, which makes the
//! full report byte-identical for any `--threads`.
//!
//! Inside a cell, job lifecycles are futures on the deterministic async
//! kernel ([`simkernel::aio`]): a barrier job `await`s its stages one
//! after another; a pipelined job fans every stage's completion in
//! through [`simkernel::join_all`]. A small reactor pumps the
//! environment and feeds completions to those futures through exactly
//! one [`serverful::FunctionExecutor::try_result`] dispatch
//! (`CellState::scan_completions`) — barrier and pipelined cells share
//! that single join path instead of the two hand-rolled poll loops the
//! driver used to carry. Arrivals are
//! [`serverful::CloudEnv::external_timer`]s that spawn a job future
//! (spawn order = arrival order, the kernel's deterministic tie-break),
//! and every stage submission still passes the [`Admission`]
//! controller.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

use cloudsim::{CloudConfig, ObjectBody, World};
use metaspace::pipeline::{Stage, StageEdge, StageKind};
use metaspace::plan::StageBackend;
use serverful::executor::MapOptions;
use serverful::{
    fan_in_range, Backend, CloudEnv, EnvEvent, ExecError, ExecutionMode, ExecutorConfig,
    FunctionExecutor, JobHandle, Payload, ScriptTask,
};
use simkernel::{join_all, AsyncExecutor, Gate, JoinHandle as AioJoinHandle, SimTime};

use crate::admission::Admission;
use crate::arrivals::{self, Arrival};
use crate::pool::SharedPool;
use crate::scenario::{Policy, Scenario};
use telemetry::FaultKind;

/// Object-storage bucket fleet jobs stage data through.
const BUCKET: &str = "fleet-workspace";

/// One completed job's timing.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Index into the scenario's tenant list.
    pub tenant: usize,
    /// Job name, `{tenant}#{seq}`.
    pub name: String,
    /// Arrival (submission) time.
    pub arrived: SimTime,
    /// Completion time of the last stage.
    pub finished: SimTime,
}

impl JobOutcome {
    /// Arrival-to-completion latency, seconds — queueing included.
    pub fn latency_secs(&self) -> f64 {
        self.finished.saturating_since(self.arrived).as_secs_f64()
    }
}

/// Everything one policy cell measured.
#[derive(Debug, Clone)]
pub struct PolicyOutcome {
    /// Policy (or plan) label.
    pub label: String,
    /// Completed jobs, in arrival order.
    pub jobs: Vec<JobOutcome>,
    /// Total dollars billed in the cell's region.
    pub cost_usd: f64,
    /// Dollars directly attributable to each tenant's jobs (billing
    /// labels), index-aligned with the scenario's tenants. Shared-pool
    /// VM cost is split pro-rata by completed jobs on top.
    pub tenant_cost_usd: Vec<f64>,
    /// Stage submissions that waited for quota headroom.
    pub throttled: usize,
    /// Stage submissions rerouted between pool and FaaS under pressure.
    pub degraded: usize,
    /// Shared-pool leases granted (0 without a pool).
    pub pool_leases: usize,
    /// Shared-pool leases that found warm VMs.
    pub pool_hits: usize,
    /// Spot VMs the provider reclaimed in this cell (0 for on-demand
    /// runs, which never provision spot capacity).
    pub preemptions: u64,
    /// Spot worker slots that exhausted their preemption budget and
    /// fell back to on-demand capacity.
    pub spot_fallbacks: u64,
    /// FNV-1a digest of the science outputs in the cell's workspace
    /// bucket (job plumbing and recovery state excluded). Two cells
    /// that computed the same results digest identically even when
    /// preemptions reshuffled *where and when* the work ran — the
    /// release-gated storm test compares exactly this.
    pub science_digest: u64,
}

impl PolicyOutcome {
    /// Latency percentile over completed jobs (0 with no jobs).
    pub fn latency_percentile(&self, p: f64) -> f64 {
        let lat: Vec<f64> = self.jobs.iter().map(JobOutcome::latency_secs).collect();
        telemetry::stats::percentile(&lat, p).unwrap_or(0.0)
    }

    /// Warm-lease fraction in percent; `None` when the policy leased
    /// nothing from a shared pool.
    pub fn pool_hit_pct(&self) -> Option<f64> {
        (self.pool_leases > 0).then(|| self.pool_hits as f64 / self.pool_leases as f64 * 100.0)
    }

    /// Latency percentile over one tenant's jobs (0 with no jobs).
    pub fn tenant_latency_percentile(&self, tenant: usize, p: f64) -> f64 {
        let lat: Vec<f64> = self
            .jobs
            .iter()
            .filter(|j| j.tenant == tenant)
            .map(JobOutcome::latency_secs)
            .collect();
        telemetry::stats::percentile(&lat, p).unwrap_or(0.0)
    }

    /// Completed jobs of one tenant.
    pub fn tenant_jobs(&self, tenant: usize) -> usize {
        self.jobs.iter().filter(|j| j.tenant == tenant).count()
    }
}

/// A full fleet run: every policy's outcome over the same traffic.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// Seed of the arrival schedule and every cell's world.
    pub seed: u64,
    /// Per-policy outcomes, in [`run_scenario`]'s fixed policy order.
    pub policies: Vec<PolicyOutcome>,
}

impl FleetReport {
    /// The outcome of one policy, if it ran.
    pub fn policy(&self, label: &str) -> Option<&PolicyOutcome> {
        self.policies.iter().find(|p| p.label == label)
    }
}

/// How a cell places each stage.
#[derive(Clone, Copy)]
pub(crate) enum Placement<'a> {
    /// One of the three named policies.
    Policy(Policy),
    /// An explicit per-stage backend assignment plus execution mode
    /// (what-if evaluation of a [`metaspace::plan::DeploymentPlan`]
    /// under load).
    Plan(&'a [StageBackend], ExecutionMode),
}

/// Owned form of [`Placement`] (job futures need `'static` cell state;
/// the execution mode is already folded into `pipelined`).
enum CellPlacement {
    Policy(Policy),
    Plan(Vec<StageBackend>),
}

/// Runs every policy cell over the scenario's traffic and merges the
/// outcomes.
///
/// Under a [`crate::scenario::RegionOutage`] each policy runs *two*
/// cells: the home cell over arrivals outside the outage window, and a
/// spill cell (labelled `{policy}@{spill_to}`) over the arrivals the
/// outage diverted. The split is a pure function of the precomputed
/// schedule, so the whole report stays byte-deterministic.
///
/// # Errors
///
/// Propagates the first cell failure (stage failure or a stalled
/// simulation), in policy order.
pub fn run_scenario(sc: &Scenario, seed: u64, threads: usize) -> Result<FleetReport, ExecError> {
    let schedule = arrivals::schedule(sc, seed);
    let policies = [Policy::Serverless, Policy::PerJobFleet, Policy::SharedPool];
    let mut cells: Vec<(Policy, String, Option<String>, Vec<Arrival>)> = Vec::new();
    for policy in policies {
        match &sc.outage {
            None => cells.push((policy, policy.to_string(), sc.region.clone(), schedule.clone())),
            Some(o) => {
                let (spill, home): (Vec<Arrival>, Vec<Arrival>) = schedule
                    .iter()
                    .cloned()
                    .partition(|a| o.covers(a.at.as_secs_f64()));
                cells.push((policy, policy.to_string(), sc.region.clone(), home));
                cells.push((
                    policy,
                    format!("{policy}@{}", o.spill_to),
                    Some(o.spill_to.clone()),
                    spill,
                ));
            }
        }
    }
    let outcomes = planner::parallel_map(&cells, threads, |_, (policy, label, region, arrivals)| {
        run_cell_traffic(
            sc,
            Placement::Policy(*policy),
            label.clone(),
            seed,
            region.as_deref(),
            arrivals,
        )
    });
    let mut merged = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        merged.push(outcome?);
    }
    Ok(FleetReport {
        scenario: sc.clone(),
        seed,
        policies: merged,
    })
}

/// Runs a single policy cell over the full schedule in the scenario's
/// home region (outage spillover is [`run_scenario`]'s job).
///
/// # Errors
///
/// Propagates stage failures and stalled simulations.
pub fn run_policy(sc: &Scenario, policy: Policy, seed: u64) -> Result<PolicyOutcome, ExecError> {
    run_cell(sc, Placement::Policy(policy), policy.to_string(), seed)
}

/// Runs one cell over the scenario's full schedule at home.
pub(crate) fn run_cell(
    sc: &Scenario,
    placement: Placement<'_>,
    label: String,
    seed: u64,
) -> Result<PolicyOutcome, ExecError> {
    let schedule = arrivals::schedule(sc, seed);
    run_cell_traffic(sc, placement, label, seed, sc.region.as_deref(), &schedule)
}

/// Runs one cell: fresh world in the given region, the given arrivals,
/// one placement.
///
/// # Panics
///
/// Panics when `region` names no registered [`cloudsim::region`] — the
/// presets are validated by their tests, and an unknown key is a
/// configuration bug, not a runtime condition.
fn run_cell_traffic(
    sc: &Scenario,
    placement: Placement<'_>,
    label: String,
    seed: u64,
    region: Option<&str>,
    arrivals: &[Arrival],
) -> Result<PolicyOutcome, ExecError> {
    let mut cloud = CloudConfig {
        quotas: sc.quotas.clone(),
        ..CloudConfig::default()
    };
    let profile = region.map(|key| {
        cloudsim::region(key).unwrap_or_else(|| {
            panic!(
                "scenario `{}`: unknown region `{key}` (known: {})",
                sc.name,
                cloudsim::region_keys().join(", ")
            )
        })
    });
    if let Some(p) = profile {
        cloud = p.apply(&cloud);
        // The scenario's quotas are the experiment's control variable;
        // they win over the region profile's account defaults.
        cloud.quotas = sc.quotas.clone();
    }
    if let Some(m) = &sc.spot_market {
        cloud.vm.spot_discount = m.discount;
        cloud.faults.spot_preemption_prob = m.preemption_prob;
        cloud.faults.spot_preemption_after = m.preemption_after;
    }
    let mut env = CloudEnv::new(cloud, seed);
    let faas = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    let needs_pool = matches!(
        placement,
        Placement::Policy(Policy::SharedPool) | Placement::Plan(..)
    );
    let pool =
        needs_pool.then(|| SharedPool::new(&mut env, &sc.pool, profile.map(|p| p.master_instance)));
    let pipelined = sc.pipelined
        || matches!(placement, Placement::Plan(_, ExecutionMode::Pipelined));
    let placement = match placement {
        Placement::Policy(p) => CellPlacement::Policy(p),
        Placement::Plan(backends, _) => CellPlacement::Plan(backends.to_vec()),
    };

    let mut state = CellState {
        sc: sc.clone(),
        placement,
        pipelined,
        env,
        faas,
        pool,
        adm: Admission::new(sc.quotas.clone()),
        jobs: Vec::new(),
        waiting: VecDeque::new(),
        arrival_tokens: HashMap::new(),
    };
    for a in arrivals {
        let delay = a.at.saturating_since(SimTime::ZERO);
        let token = state.env.external_timer(delay);
        state.arrival_tokens.insert(token, a.clone());
    }
    let cell = CellRef {
        st: Rc::new(RefCell::new(state)),
        exec: AsyncExecutor::new(),
    };
    reactor(&cell)?;
    let CellRef { st, exec } = cell;
    drop(exec); // all job futures completed; frees their state handles
    let state = match Rc::try_unwrap(st) {
        Ok(inner) => inner.into_inner(),
        Err(_) => unreachable!("job futures outlive the cell reactor"),
    };
    Ok(state.into_outcome(label))
}

/// The cell's event loop: pump the world, feed stage completions to the
/// job futures through the single join path, then let queued or gated
/// submissions progress.
fn reactor(cell: &CellRef) -> Result<(), ExecError> {
    loop {
        if cell.st.borrow().done() {
            break;
        }
        let ev = cell.st.borrow_mut().env.pump();
        match ev {
            EnvEvent::Timer(token) => {
                let a = cell
                    .st
                    .borrow_mut()
                    .arrival_tokens
                    .remove(&token)
                    .expect("every external timer is an arrival");
                spawn_job(cell, &a);
                cell.exec.run_ready();
                cell.st.borrow_mut().progress_stages()?;
            }
            EnvEvent::Progress => {
                cell.st.borrow_mut().scan_completions()?;
                cell.exec.run_ready();
                cell.st.borrow_mut().progress_stages()?;
            }
            EnvEvent::Drained => {
                cell.st.borrow_mut().scan_completions()?;
                cell.exec.run_ready();
                let progressed = cell.st.borrow_mut().progress_stages()?;
                let st = cell.st.borrow();
                if st.done() {
                    break;
                }
                if !progressed {
                    return Err(ExecError::Stalled(format!(
                        "fleet cell drained with {} jobs unfinished",
                        st.jobs.iter().filter(|j| j.finished.is_none()).count()
                    )));
                }
            }
        }
    }
    let st = &mut *cell.st.borrow_mut();
    if let Some(pool) = st.pool.as_mut() {
        pool.shutdown(&mut st.env);
    }
    Ok(())
}

/// Registers an arriving job and spawns its lifecycle future. The
/// future's first poll (still within the arrival event) submits the
/// job's first stage (barrier) or its gated FaaS stages (pipelined).
fn spawn_job(cell: &CellRef, a: &Arrival) {
    let (idx, gates, pipelined) = {
        let stref = &mut *cell.st.borrow_mut();
        let tenant = &stref.sc.tenants[a.tenant];
        let idx = stref.jobs.len();
        let w = tenant.workload();
        let stages = w.stages;
        let (edges, pipe) = if stref.pipelined {
            let edges = w.edges;
            let pipe = stages
                .iter()
                .map(|s| PipeStage {
                    handle: None,
                    complete: false,
                    released: vec![false; s.tasks],
                    throttle_noted: false,
                })
                .collect();
            (edges, pipe)
        } else {
            (Vec::new(), Vec::new())
        };
        let gates: Vec<Gate> = stages.iter().map(|_| cell.exec.gate()).collect();
        let name = a.job_name(&stref.sc);
        let arrived = stref.env.now();
        stref.jobs.push(JobRun {
            tenant: a.tenant,
            name,
            stages,
            edges,
            next_stage: 0,
            arrived,
            finished: None,
            active: None,
            pipe,
            stage_done: gates.clone(),
            own: None,
        });
        (idx, gates, stref.pipelined)
    };
    let cell = cell.clone();
    cell.exec.clone().spawn(job_future(cell, idx, gates, pipelined));
}

/// One job's lifecycle as straight-line `await` code.
async fn job_future(cell: CellRef, idx: usize, gates: Vec<Gate>, pipelined: bool) {
    if pipelined {
        {
            // Every always-FaaS stage submits up front with its tasks
            // gated: setup overlaps upstream work, tasks launch one by
            // one as their upstream partitions (and the Lambda quota)
            // allow. Pool/own stages launch from `pipe_pass` once their
            // dependencies drain.
            let st = &mut *cell.st.borrow_mut();
            for s in 0..st.jobs[idx].stages.len() {
                if st.faas_always(s) {
                    st.submit_stage(idx, s, ExecSlot::Faas, true);
                }
            }
        }
        // Fan every stage's completion in through the one join path.
        let stage_waits: Vec<AioJoinHandle<()>> = gates
            .iter()
            .map(|g| {
                let g = g.clone();
                cell.exec.spawn(async move { g.wait().await })
            })
            .collect();
        join_all(stage_waits).await;
    } else {
        // The barrier chain: submit (or queue on admission), then block
        // until the stage drains, stage after stage.
        for gate in &gates {
            cell.st.borrow_mut().advance_or_wait(idx);
            gate.wait().await;
        }
    }
    cell.st.borrow_mut().finish_job(idx);
}

/// Where a stage runs.
#[derive(Debug, Clone, Copy)]
enum ExecSlot {
    /// The shared FaaS executor.
    Faas,
    /// The job's own per-job fleet.
    Own,
    /// A shared-pool lease.
    Pool(usize),
}

/// One stage's dataflow state inside a pipelined cell.
struct PipeStage {
    /// The submitted job, once launched (FaaS stages launch gated at
    /// arrival; pool/own stages launch when their dependencies drain).
    handle: Option<(JobHandle, ExecSlot)>,
    /// Whole stage finished and its result taken.
    complete: bool,
    /// Per-task released flags (gated FaaS stages).
    released: Vec<bool>,
    /// Whether this stage already counted one quota throttle.
    throttle_noted: bool,
}

/// One in-flight (or finished) job inside a cell.
struct JobRun {
    tenant: usize,
    name: String,
    stages: Vec<Stage>,
    /// Stage-level dataflow edges from the tenant's workload
    /// description (pipelined cells only).
    edges: Vec<Vec<StageEdge>>,
    next_stage: usize,
    arrived: SimTime,
    finished: Option<SimTime>,
    active: Option<(JobHandle, ExecSlot)>,
    /// Per-stage dataflow state (pipelined cells only).
    pipe: Vec<PipeStage>,
    /// Per-stage completion gates the job future awaits; opened by
    /// [`CellState::scan_completions`].
    stage_done: Vec<Gate>,
    /// The per-job fleet executor ([`Policy::PerJobFleet`] only).
    own: Option<FunctionExecutor>,
}

/// Shared handle to one cell: its state plus the async kernel the job
/// futures run on.
#[derive(Clone)]
struct CellRef {
    st: Rc<RefCell<CellState>>,
    exec: AsyncExecutor,
}

struct CellState {
    sc: Scenario,
    placement: CellPlacement,
    /// Dependency-driven scheduling instead of BSP barriers.
    pipelined: bool,
    env: CloudEnv,
    faas: FunctionExecutor,
    pool: Option<SharedPool>,
    adm: Admission,
    jobs: Vec<JobRun>,
    /// Jobs whose next stage awaits quota headroom, FIFO (barrier cells
    /// only; pipelined cells rescan in job order instead).
    waiting: VecDeque<usize>,
    /// Pending arrival timers, token → arrival.
    arrival_tokens: HashMap<u64, Arrival>,
}

impl CellState {
    fn done(&self) -> bool {
        self.arrival_tokens.is_empty()
            && self.waiting.is_empty()
            && self.jobs.iter().all(|j| j.finished.is_some())
    }

    /// Stamps a job finished (its future ran out of stages to await).
    fn finish_job(&mut self, idx: usize) {
        self.jobs[idx].finished = Some(self.env.now());
        if let Some(mut own) = self.jobs[idx].own.take() {
            own.shutdown(&mut self.env);
        }
    }

    /// The one `try_result` dispatch in the driver: polls a stage's
    /// handle on whichever executor its slot names. Both scheduling
    /// disciplines consume completions through here.
    fn try_stage_result(
        &mut self,
        idx: usize,
        handle: JobHandle,
        slot: ExecSlot,
    ) -> Option<Result<Vec<Payload>, ExecError>> {
        match slot {
            ExecSlot::Faas => self.faas.try_result(&mut self.env, handle),
            ExecSlot::Own => self.jobs[idx]
                .own
                .as_mut()
                .expect("own slot has an executor")
                .try_result(&mut self.env, handle),
            ExecSlot::Pool(lease) => self
                .pool
                .as_mut()
                .expect("pool slot has a pool")
                .exec_mut(lease)
                .try_result(&mut self.env, handle),
        }
    }

    /// Polls every in-flight stage (jobs in arrival order, stages in
    /// pipeline order) and opens the completion gate of each stage that
    /// drained; the job futures take it from there.
    fn scan_completions(&mut self) -> Result<(), ExecError> {
        for idx in 0..self.jobs.len() {
            if self.pipelined {
                if self.jobs[idx].finished.is_some() {
                    continue;
                }
                for s in 0..self.jobs[idx].stages.len() {
                    if self.jobs[idx].pipe[s].complete {
                        continue;
                    }
                    let Some((handle, slot)) = self.jobs[idx].pipe[s].handle else {
                        continue;
                    };
                    let Some(result) = self.try_stage_result(idx, handle, slot) else {
                        continue;
                    };
                    result?;
                    self.jobs[idx].pipe[s].complete = true;
                    self.jobs[idx].stage_done[s].open();
                }
            } else {
                let Some((handle, slot)) = self.jobs[idx].active else {
                    continue;
                };
                let Some(result) = self.try_stage_result(idx, handle, slot) else {
                    continue;
                };
                result?;
                self.jobs[idx].active = None;
                let s = self.jobs[idx].next_stage;
                self.jobs[idx].next_stage += 1;
                self.jobs[idx].stage_done[s].open();
            }
        }
        Ok(())
    }

    /// Makes queued or gated stages progress after any event, whichever
    /// scheduling discipline the cell runs.
    fn progress_stages(&mut self) -> Result<bool, ExecError> {
        if self.pipelined {
            self.pipe_pass()
        } else {
            self.drain_waiting()
        }
    }

    /// Whether a stage's placement is unconditionally cloud functions
    /// (eligible for gated submission and task-granular release).
    fn faas_always(&self, stage_idx: usize) -> bool {
        match &self.placement {
            CellPlacement::Policy(Policy::Serverless) => true,
            CellPlacement::Policy(_) => false,
            CellPlacement::Plan(backends) => backends[stage_idx] == StageBackend::Functions,
        }
    }

    /// Attempts the job's next stage; queues it (counting the throttle)
    /// when the region has no headroom.
    fn advance_or_wait(&mut self, idx: usize) {
        if !self.try_advance(idx, self.jobs[idx].next_stage) {
            self.adm.note_throttle();
            self.waiting.push_back(idx);
        }
    }

    /// Re-attempts queued submissions in FIFO order, stopping at the
    /// first that still does not fit (head-of-line, like a real
    /// admission queue). Returns whether anything was admitted.
    fn drain_waiting(&mut self) -> Result<bool, ExecError> {
        let mut progressed = false;
        while let Some(&idx) = self.waiting.front() {
            if !self.try_advance(idx, self.jobs[idx].next_stage) {
                break;
            }
            self.waiting.pop_front();
            progressed = true;
        }
        Ok(progressed)
    }

    /// One dependency-driven scheduling pass: launches pool/own stages
    /// whose upstream stages have fully drained, and releases gated
    /// FaaS tasks whose upstream *partitions* are done — each release
    /// individually admitted against the Lambda quota. Deterministic:
    /// jobs in arrival order, stages in pipeline order, tasks in index
    /// order. Returns whether anything launched or released.
    fn pipe_pass(&mut self) -> Result<bool, ExecError> {
        let mut progressed = false;
        let mut released_now = 0usize;
        for idx in 0..self.jobs.len() {
            if self.jobs[idx].finished.is_some() {
                continue;
            }
            for s in 0..self.jobs[idx].stages.len() {
                if self.jobs[idx].pipe[s].complete {
                    continue;
                }
                if self.jobs[idx].pipe[s].handle.is_none() {
                    // Pool/own-placed stage: the in-memory exchange
                    // reads whole inputs, so it waits for every
                    // upstream stage to drain — then launches at once.
                    let ready = self.jobs[idx].edges[s]
                        .iter()
                        .all(|e| self.jobs[idx].pipe[e.from].complete);
                    if !ready {
                        continue;
                    }
                    if self.try_advance(idx, s) {
                        progressed = true;
                    } else {
                        self.note_stage_throttle(idx, s);
                    }
                } else if self.release_ready_tasks(idx, s, &mut released_now) {
                    progressed = true;
                }
            }
        }
        Ok(progressed)
    }

    /// Releases every gated task of stage `s` whose upstream partitions
    /// are done, stopping at the first that the Lambda quota cannot
    /// admit. Returns whether any task was released.
    fn release_ready_tasks(&mut self, idx: usize, s: usize, released_now: &mut usize) -> bool {
        let (handle, _) = self.jobs[idx].pipe[s].handle.expect("caller checked submission");
        let tasks = self.jobs[idx].stages[s].tasks;
        let mut any = false;
        for t in 0..tasks {
            if self.jobs[idx].pipe[s].released[t] {
                continue;
            }
            let job = &self.jobs[idx];
            let ready = job.edges[s].iter().all(|e| {
                let up = &job.pipe[e.from];
                if up.complete {
                    return true;
                }
                let Some((uh, _)) = up.handle else {
                    return false;
                };
                fan_in_range(e.fan_in, job.stages[e.from].tasks, tasks, t)
                    .all(|u| uh.task_done(&self.env, u))
            });
            if !ready {
                continue;
            }
            // Count this pass's not-yet-visible releases on top of the
            // world's active sandboxes: admission at task granularity.
            if !self.adm.admits_faas(self.env.world(), *released_now + 1) {
                self.note_stage_throttle(idx, s);
                break;
            }
            self.jobs[idx].pipe[s].released[t] = true;
            handle.release_task(&mut self.env, t);
            *released_now += 1;
            any = true;
        }
        any
    }

    /// Counts at most one quota throttle per stage (pipelined cells
    /// rescan stages every pass; the barrier path counts per queueing).
    fn note_stage_throttle(&mut self, idx: usize, s: usize) {
        if !self.jobs[idx].pipe[s].throttle_noted {
            self.adm.note_throttle();
            self.jobs[idx].pipe[s].throttle_noted = true;
        }
    }

    /// Tries to submit the job's given stage. Returns `false` when the
    /// admission controller has no headroom for it yet.
    fn try_advance(&mut self, idx: usize, stage_idx: usize) -> bool {
        debug_assert!(if self.pipelined {
            self.jobs[idx].pipe[stage_idx].handle.is_none()
        } else {
            self.jobs[idx].active.is_none()
        });
        let stateful = self.jobs[idx].stages[stage_idx].is_stateful();
        let tasks = self.jobs[idx].stages[stage_idx].tasks;
        let wants_pool = match &self.placement {
            CellPlacement::Policy(Policy::Serverless) => false,
            CellPlacement::Policy(Policy::PerJobFleet) => {
                return self.try_advance_own(idx, stage_idx);
            }
            CellPlacement::Policy(Policy::SharedPool) => {
                // The pool is home; a stateless stage *degrades* to
                // cloud functions when every executor is busy and the
                // Lambda quota still has headroom (burst capacity).
                // Stateful stages always lease (the exchange needs the
                // master's memory).
                let saturated = !self
                    .pool
                    .as_ref()
                    .expect("shared-pool placement builds a pool")
                    .any_idle(&self.env);
                if !stateful && saturated && self.adm.admits_faas(self.env.world(), tasks) {
                    self.adm.note_degrade();
                    self.submit_stage(idx, stage_idx, ExecSlot::Faas, false);
                    return true;
                }
                true
            }
            CellPlacement::Plan(backends) => backends[stage_idx] == StageBackend::Serverful,
        };
        if wants_pool {
            let lease = self
                .pool
                .as_mut()
                .expect("pool placements build a pool")
                .lease(&self.env);
            self.submit_stage(idx, stage_idx, ExecSlot::Pool(lease), false);
            return true;
        }
        if self.adm.admits_faas(self.env.world(), tasks) {
            self.submit_stage(idx, stage_idx, ExecSlot::Faas, false);
            return true;
        }
        false
    }

    /// Per-job-fleet advance: provision the job's own executor on first
    /// use, gated by the EC2 capacity quota.
    fn try_advance_own(&mut self, idx: usize, stage_idx: usize) -> bool {
        if self.jobs[idx].own.is_none() {
            // Resolved against the *cell's* catalog — a region cell may
            // price (or lack) instances the default catalog doesn't.
            let itype = *self
                .env
                .world()
                .lookup_instance(&self.sc.pool.instance)
                .expect("scenario instance is in the region's catalog");
            if !self.adm.admits_vm(self.env.world(), itype.vcpus as f64) {
                return false;
            }
            let mut cfg = ExecutorConfig::default();
            cfg.standalone.instance_override = Some(self.sc.pool.instance.clone());
            cfg.standalone.fleet_label = Some(format!("{}:vm", self.jobs[idx].name));
            cfg.standalone.recovery = self.sc.pool.recovery;
            let exec = FunctionExecutor::new(&mut self.env, Backend::vm(), cfg);
            self.jobs[idx].own = Some(exec);
        }
        self.submit_stage(idx, stage_idx, ExecSlot::Own, false);
        true
    }

    /// Seeds the stage's inputs and maps it on the chosen executor.
    ///
    /// Stage I/O model: stateless stages read/write their per-task
    /// volumes through object storage (spread over their prefixes);
    /// stateful stages on FaaS exchange through a *single* contended
    /// prefix (the paper's hindrance), while on a VM the exchange stays
    /// in the master's memory and only the CPU time is simulated.
    fn submit_stage(&mut self, idx: usize, stage_idx: usize, slot: ExecSlot, gated: bool) {
        let stage = self.jobs[idx].stages[stage_idx].clone();
        let job_name = self.jobs[idx].name.clone();
        let on_faas = matches!(slot, ExecSlot::Faas);
        let (read_bytes, write_bytes, read_spread, write_spread) = match stage.kind {
            StageKind::Stateless {
                read_spread,
                write_spread,
            } => (
                (stage.read_mb_per_task * 1e6) as u64,
                (stage.write_mb_per_task * 1e6) as u64,
                read_spread,
                write_spread,
            ),
            StageKind::Stateful { exchange_gb } if on_faas => {
                let share = (exchange_gb * 1e9 / stage.tasks as f64) as u64;
                (share, share, 1, 1)
            }
            StageKind::Stateful { .. } => (0, 0, 1, 1),
        };
        let prefix = format!("{job_name}/{}", stage.name);
        if read_bytes > 0 {
            for t in 0..stage.tasks {
                self.env.seed_object(
                    BUCKET,
                    &stage_key(&prefix, "in", t, read_spread),
                    ObjectBody::opaque(read_bytes),
                );
            }
        }
        let cpu = stage.cpu_secs_per_task;
        let in_prefix = prefix.clone();
        let factory: serverful::job::TaskFactory = Arc::new(move |input: &Payload| {
            let t = input.as_u64().expect("task index") as usize;
            let mut script = ScriptTask::new();
            if read_bytes > 0 {
                script = script.get(BUCKET, stage_key(&in_prefix, "in", t, read_spread));
            }
            script = script.compute(cpu);
            if write_bytes > 0 {
                script = script.put(
                    BUCKET,
                    stage_key(&in_prefix, "out", t, write_spread),
                    ObjectBody::opaque(write_bytes),
                );
            }
            script.finish_value(Payload::Unit).boxed()
        });
        let inputs: Vec<Payload> = (0..stage.tasks).map(|t| Payload::U64(t as u64)).collect();
        let mut opts = MapOptions::named(format!("{job_name}:{}", stage.name));
        if stage.is_stateful() {
            opts = opts.stateful();
        }
        if gated {
            opts = opts.gated();
        }
        let handle = {
            let env = &mut self.env;
            match slot {
                ExecSlot::Faas => self.faas.map_with(env, factory, inputs, opts),
                ExecSlot::Own => self.jobs[idx]
                    .own
                    .as_mut()
                    .expect("own slot has an executor")
                    .map_with(env, factory, inputs, opts),
                ExecSlot::Pool(lease) => self
                    .pool
                    .as_mut()
                    .expect("pool slot has a pool")
                    .exec_mut(lease)
                    .map_with(env, factory, inputs, opts),
            }
        };
        if self.pipelined {
            self.jobs[idx].pipe[stage_idx].handle = Some((handle, slot));
        } else {
            self.jobs[idx].active = Some((handle, slot));
        }
    }

    /// Extracts the cell's measurements.
    fn into_outcome(self, label: String) -> PolicyOutcome {
        let faults = self.env.world().fault_ledger();
        let preemptions = faults.injected(FaultKind::SpotPreemption);
        let spot_fallbacks = faults.spot_fallbacks;
        let science_digest = science_digest(self.env.world());
        let ledger = self.env.world().ledger();
        let total = ledger.total();
        let tenant_jobs: Vec<usize> = (0..self.sc.tenants.len())
            .map(|t| self.jobs.iter().filter(|j| j.tenant == t).count())
            .collect();
        let all_jobs: usize = tenant_jobs.iter().sum();
        // Direct cost carries the job's `{tenant}#{seq}` billing label;
        // shared-pool VM time is a common good, split by job count.
        let pool_cost = ledger.total_labelled("shared-pool");
        let tenant_cost_usd: Vec<f64> = self
            .sc
            .tenants
            .iter()
            .enumerate()
            .map(|(t, spec)| {
                let direct = ledger.total_labelled(&format!("{}#", spec.name));
                let share = if all_jobs > 0 {
                    pool_cost * tenant_jobs[t] as f64 / all_jobs as f64
                } else {
                    0.0
                };
                direct + share
            })
            .collect();
        let jobs = self
            .jobs
            .into_iter()
            .map(|j| JobOutcome {
                tenant: j.tenant,
                name: j.name,
                arrived: j.arrived,
                finished: j.finished.expect("the reactor completes every job"),
            })
            .collect();
        PolicyOutcome {
            label,
            jobs,
            cost_usd: total,
            tenant_cost_usd,
            throttled: self.adm.throttled,
            degraded: self.adm.degraded,
            pool_leases: self.pool.as_ref().map_or(0, |p| p.leases),
            pool_hits: self.pool.as_ref().map_or(0, |p| p.hits),
            preemptions,
            spot_fallbacks,
            science_digest,
        }
    }
}

/// Deterministic FNV-1a digest of the science outputs in the fleet
/// workspace bucket, mirroring the chaos suite's digest over the
/// metaspace workspace: recovery snapshots and job plumbing
/// (`recovery/`, `jobs/`) and warm-up keys are excluded, so a cell that
/// lost spot VMs mid-run and recovered digests identically to a
/// fault-free one.
fn science_digest(world: &World) -> u64 {
    let store = world.store();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    };
    for key in store.list_prefix(BUCKET, "") {
        if key.starts_with("recovery/") || key.starts_with("jobs/") || key.starts_with("warmup-") {
            continue;
        }
        key.as_bytes().iter().for_each(|b| mix(*b));
        mix(0);
        let body = store.get(BUCKET, &key).expect("listed key exists");
        body.len().to_le_bytes().iter().for_each(|b| mix(*b));
        if let Some(bytes) = body.bytes() {
            bytes.iter().for_each(|b| mix(*b));
        }
    }
    h
}

/// The storage key of one task's stage input/output.
fn stage_key(prefix: &str, dir: &str, task: usize, spread: usize) -> String {
    format!("{prefix}-{dir}{}/{dir}-{task:05}", task % spread.max(1))
}
