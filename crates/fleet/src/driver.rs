//! The traffic driver: runs one scenario's arrival schedule through a
//! shared simulated region, once per deployment policy.
//!
//! Each policy runs in its own *cell*: a fresh [`cloudsim::World`]
//! seeded identically, replaying the identical arrival schedule, so the
//! per-policy outcomes differ only by policy. Cells are independent
//! single-threaded simulations; [`run_scenario`] fans them out over
//! [`planner::parallel_map`] and merges in index order, which makes the
//! full report byte-identical for any `--threads`.
//!
//! Inside a cell the driver owns the event loop (the executors never
//! block): arrivals are [`serverful::CloudEnv::external_timer`]s, jobs
//! advance stage-by-stage through non-blocking
//! [`serverful::FunctionExecutor::try_result`] polls, and every stage
//! submission first passes the [`Admission`] controller.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use cloudsim::{CloudConfig, ObjectBody};
use metaspace::pipeline::{Stage, StageKind};
use metaspace::plan::StageBackend;
use serverful::executor::MapOptions;
use serverful::{
    Backend, CloudEnv, EnvEvent, ExecError, ExecutorConfig, FunctionExecutor, JobHandle, Payload,
    ScriptTask,
};
use simkernel::SimTime;

use crate::admission::Admission;
use crate::arrivals::{self, Arrival};
use crate::pool::SharedPool;
use crate::scenario::{Policy, Scenario};

/// Object-storage bucket fleet jobs stage data through.
const BUCKET: &str = "fleet-workspace";

/// One completed job's timing.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Index into the scenario's tenant list.
    pub tenant: usize,
    /// Job name, `{tenant}#{seq}`.
    pub name: String,
    /// Arrival (submission) time.
    pub arrived: SimTime,
    /// Completion time of the last stage.
    pub finished: SimTime,
}

impl JobOutcome {
    /// Arrival-to-completion latency, seconds — queueing included.
    pub fn latency_secs(&self) -> f64 {
        self.finished.saturating_since(self.arrived).as_secs_f64()
    }
}

/// Everything one policy cell measured.
#[derive(Debug, Clone)]
pub struct PolicyOutcome {
    /// Policy (or plan) label.
    pub label: String,
    /// Completed jobs, in arrival order.
    pub jobs: Vec<JobOutcome>,
    /// Total dollars billed in the cell's region.
    pub cost_usd: f64,
    /// Dollars directly attributable to each tenant's jobs (billing
    /// labels), index-aligned with the scenario's tenants. Shared-pool
    /// VM cost is split pro-rata by completed jobs on top.
    pub tenant_cost_usd: Vec<f64>,
    /// Stage submissions that waited for quota headroom.
    pub throttled: usize,
    /// Stage submissions rerouted between pool and FaaS under pressure.
    pub degraded: usize,
    /// Shared-pool leases granted (0 without a pool).
    pub pool_leases: usize,
    /// Shared-pool leases that found warm VMs.
    pub pool_hits: usize,
}

impl PolicyOutcome {
    /// Latency percentile over completed jobs (0 with no jobs).
    pub fn latency_percentile(&self, p: f64) -> f64 {
        let lat: Vec<f64> = self.jobs.iter().map(JobOutcome::latency_secs).collect();
        telemetry::stats::percentile(&lat, p).unwrap_or(0.0)
    }

    /// Warm-lease fraction in percent; `None` when the policy leased
    /// nothing from a shared pool.
    pub fn pool_hit_pct(&self) -> Option<f64> {
        (self.pool_leases > 0).then(|| self.pool_hits as f64 / self.pool_leases as f64 * 100.0)
    }

    /// Latency percentile over one tenant's jobs (0 with no jobs).
    pub fn tenant_latency_percentile(&self, tenant: usize, p: f64) -> f64 {
        let lat: Vec<f64> = self
            .jobs
            .iter()
            .filter(|j| j.tenant == tenant)
            .map(JobOutcome::latency_secs)
            .collect();
        telemetry::stats::percentile(&lat, p).unwrap_or(0.0)
    }

    /// Completed jobs of one tenant.
    pub fn tenant_jobs(&self, tenant: usize) -> usize {
        self.jobs.iter().filter(|j| j.tenant == tenant).count()
    }
}

/// A full fleet run: every policy's outcome over the same traffic.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// Seed of the arrival schedule and every cell's world.
    pub seed: u64,
    /// Per-policy outcomes, in [`run_scenario`]'s fixed policy order.
    pub policies: Vec<PolicyOutcome>,
}

impl FleetReport {
    /// The outcome of one policy, if it ran.
    pub fn policy(&self, label: &str) -> Option<&PolicyOutcome> {
        self.policies.iter().find(|p| p.label == label)
    }
}

/// How a cell places each stage.
#[derive(Clone, Copy)]
pub(crate) enum Placement<'a> {
    /// One of the three named policies.
    Policy(Policy),
    /// An explicit per-stage backend assignment (what-if evaluation of
    /// a [`metaspace::plan::DeploymentPlan`] under load).
    Plan(&'a [StageBackend]),
}

/// Runs every policy cell over the scenario's traffic and merges the
/// outcomes.
///
/// # Errors
///
/// Propagates the first cell failure (stage failure or a stalled
/// simulation), in policy order.
pub fn run_scenario(sc: &Scenario, seed: u64, threads: usize) -> Result<FleetReport, ExecError> {
    let policies = [Policy::Serverless, Policy::PerJobFleet, Policy::SharedPool];
    let outcomes = planner::parallel_map(&policies, threads, |_, policy| {
        run_cell(sc, Placement::Policy(*policy), policy.to_string(), seed)
    });
    let mut merged = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        merged.push(outcome?);
    }
    Ok(FleetReport {
        scenario: sc.clone(),
        seed,
        policies: merged,
    })
}

/// Runs a single policy cell.
///
/// # Errors
///
/// Propagates stage failures and stalled simulations.
pub fn run_policy(sc: &Scenario, policy: Policy, seed: u64) -> Result<PolicyOutcome, ExecError> {
    run_cell(sc, Placement::Policy(policy), policy.to_string(), seed)
}

/// Runs one cell: fresh world, full arrival schedule, one placement.
pub(crate) fn run_cell(
    sc: &Scenario,
    placement: Placement<'_>,
    label: String,
    seed: u64,
) -> Result<PolicyOutcome, ExecError> {
    let cloud = CloudConfig {
        quotas: sc.quotas.clone(),
        ..CloudConfig::default()
    };
    let mut env = CloudEnv::new(cloud, seed);
    let faas = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    let needs_pool = matches!(
        placement,
        Placement::Policy(Policy::SharedPool) | Placement::Plan(_)
    );
    let pool = needs_pool.then(|| SharedPool::new(&mut env, &sc.pool));

    let mut cell = Cell {
        sc,
        placement,
        env,
        faas,
        pool,
        adm: Admission::new(sc.quotas.clone()),
        jobs: Vec::new(),
        waiting: VecDeque::new(),
        arrival_tokens: HashMap::new(),
    };
    for a in arrivals::schedule(sc, seed) {
        let delay = a.at.saturating_since(SimTime::ZERO);
        let token = cell.env.external_timer(delay);
        cell.arrival_tokens.insert(token, a);
    }
    cell.run()?;
    Ok(cell.into_outcome(label))
}

/// Where a stage runs.
#[derive(Debug, Clone, Copy)]
enum ExecSlot {
    /// The shared FaaS executor.
    Faas,
    /// The job's own per-job fleet.
    Own,
    /// A shared-pool lease.
    Pool(usize),
}

/// One in-flight (or finished) job inside a cell.
struct JobRun {
    tenant: usize,
    name: String,
    stages: Vec<Stage>,
    next_stage: usize,
    arrived: SimTime,
    finished: Option<SimTime>,
    active: Option<(JobHandle, ExecSlot)>,
    /// The per-job fleet executor ([`Policy::PerJobFleet`] only).
    own: Option<FunctionExecutor>,
}

struct Cell<'a> {
    sc: &'a Scenario,
    placement: Placement<'a>,
    env: CloudEnv,
    faas: FunctionExecutor,
    pool: Option<SharedPool>,
    adm: Admission,
    jobs: Vec<JobRun>,
    /// Jobs whose next stage awaits quota headroom, FIFO.
    waiting: VecDeque<usize>,
    /// Pending arrival timers, token → arrival.
    arrival_tokens: HashMap<u64, Arrival>,
}

impl Cell<'_> {
    fn run(&mut self) -> Result<(), ExecError> {
        loop {
            if self.done() {
                break;
            }
            match self.env.pump() {
                EnvEvent::Timer(token) => {
                    let a = self
                        .arrival_tokens
                        .remove(&token)
                        .expect("every external timer is an arrival");
                    self.spawn_job(&a);
                    self.drain_waiting()?;
                }
                EnvEvent::Progress => {
                    self.poll_active()?;
                    self.drain_waiting()?;
                }
                EnvEvent::Drained => {
                    self.poll_active()?;
                    let progressed = self.drain_waiting()?;
                    if self.done() {
                        break;
                    }
                    if !progressed {
                        return Err(ExecError::Stalled(format!(
                            "fleet cell drained with {} jobs unfinished",
                            self.jobs.iter().filter(|j| j.finished.is_none()).count()
                        )));
                    }
                }
            }
        }
        if let Some(pool) = self.pool.as_mut() {
            pool.shutdown(&mut self.env);
        }
        Ok(())
    }

    fn done(&self) -> bool {
        self.arrival_tokens.is_empty()
            && self.waiting.is_empty()
            && self.jobs.iter().all(|j| j.finished.is_some())
    }

    /// Registers an arriving job and tries to start its first stage.
    fn spawn_job(&mut self, a: &Arrival) {
        let tenant = &self.sc.tenants[a.tenant];
        let idx = self.jobs.len();
        self.jobs.push(JobRun {
            tenant: a.tenant,
            name: a.job_name(self.sc),
            stages: tenant.stages(),
            next_stage: 0,
            arrived: self.env.now(),
            finished: None,
            active: None,
            own: None,
        });
        self.advance_or_wait(idx);
    }

    /// Attempts the job's next stage; queues it (counting the throttle)
    /// when the region has no headroom.
    fn advance_or_wait(&mut self, idx: usize) {
        if !self.try_advance(idx) {
            self.adm.note_throttle();
            self.waiting.push_back(idx);
        }
    }

    /// Re-attempts queued submissions in FIFO order, stopping at the
    /// first that still does not fit (head-of-line, like a real
    /// admission queue). Returns whether anything was admitted.
    fn drain_waiting(&mut self) -> Result<bool, ExecError> {
        let mut progressed = false;
        while let Some(&idx) = self.waiting.front() {
            if !self.try_advance(idx) {
                break;
            }
            self.waiting.pop_front();
            progressed = true;
        }
        Ok(progressed)
    }

    /// Tries to submit the job's next stage. Returns `false` when the
    /// admission controller has no headroom for it yet.
    fn try_advance(&mut self, idx: usize) -> bool {
        debug_assert!(self.jobs[idx].active.is_none());
        let stage_idx = self.jobs[idx].next_stage;
        let stateful = self.jobs[idx].stages[stage_idx].is_stateful();
        let tasks = self.jobs[idx].stages[stage_idx].tasks;
        let wants_pool = match self.placement {
            Placement::Policy(Policy::Serverless) => false,
            Placement::Policy(Policy::PerJobFleet) => {
                return self.try_advance_own(idx);
            }
            Placement::Policy(Policy::SharedPool) => {
                // The pool is home; a stateless stage *degrades* to
                // cloud functions when every executor is busy and the
                // Lambda quota still has headroom (burst capacity).
                // Stateful stages always lease (the exchange needs the
                // master's memory).
                let saturated = !self
                    .pool
                    .as_ref()
                    .expect("shared-pool placement builds a pool")
                    .any_idle(&self.env);
                if !stateful && saturated && self.adm.admits_faas(self.env.world(), tasks) {
                    self.adm.note_degrade();
                    self.submit_stage(idx, ExecSlot::Faas);
                    return true;
                }
                true
            }
            Placement::Plan(backends) => backends[stage_idx] == StageBackend::Serverful,
        };
        if wants_pool {
            let lease = self
                .pool
                .as_mut()
                .expect("pool placements build a pool")
                .lease(&self.env);
            self.submit_stage(idx, ExecSlot::Pool(lease));
            return true;
        }
        if self.adm.admits_faas(self.env.world(), tasks) {
            self.submit_stage(idx, ExecSlot::Faas);
            return true;
        }
        false
    }

    /// Per-job-fleet advance: provision the job's own executor on first
    /// use, gated by the EC2 capacity quota.
    fn try_advance_own(&mut self, idx: usize) -> bool {
        if self.jobs[idx].own.is_none() {
            let itype = cloudsim::instance_type(&self.sc.pool.instance)
                .expect("scenario instance is in the catalog");
            if !self.adm.admits_vm(self.env.world(), itype.vcpus as f64) {
                return false;
            }
            let mut cfg = ExecutorConfig::default();
            cfg.standalone.instance_override = Some(self.sc.pool.instance.clone());
            cfg.standalone.fleet_label = Some(format!("{}:vm", self.jobs[idx].name));
            let exec = FunctionExecutor::new(&mut self.env, Backend::vm(), cfg);
            self.jobs[idx].own = Some(exec);
        }
        self.submit_stage(idx, ExecSlot::Own);
        true
    }

    /// Seeds the stage's inputs and maps it on the chosen executor.
    ///
    /// Stage I/O model: stateless stages read/write their per-task
    /// volumes through object storage (spread over their prefixes);
    /// stateful stages on FaaS exchange through a *single* contended
    /// prefix (the paper's hindrance), while on a VM the exchange stays
    /// in the master's memory and only the CPU time is simulated.
    fn submit_stage(&mut self, idx: usize, slot: ExecSlot) {
        let stage_idx = self.jobs[idx].next_stage;
        let stage = self.jobs[idx].stages[stage_idx].clone();
        let job_name = self.jobs[idx].name.clone();
        let on_faas = matches!(slot, ExecSlot::Faas);
        let (read_bytes, write_bytes, read_spread, write_spread) = match stage.kind {
            StageKind::Stateless {
                read_spread,
                write_spread,
            } => (
                (stage.read_mb_per_task * 1e6) as u64,
                (stage.write_mb_per_task * 1e6) as u64,
                read_spread,
                write_spread,
            ),
            StageKind::Stateful { exchange_gb } if on_faas => {
                let share = (exchange_gb * 1e9 / stage.tasks as f64) as u64;
                (share, share, 1, 1)
            }
            StageKind::Stateful { .. } => (0, 0, 1, 1),
        };
        let prefix = format!("{job_name}/{}", stage.name);
        if read_bytes > 0 {
            for t in 0..stage.tasks {
                self.env.seed_object(
                    BUCKET,
                    &stage_key(&prefix, "in", t, read_spread),
                    ObjectBody::opaque(read_bytes),
                );
            }
        }
        let cpu = stage.cpu_secs_per_task;
        let in_prefix = prefix.clone();
        let factory: serverful::job::TaskFactory = Arc::new(move |input: &Payload| {
            let t = input.as_u64().expect("task index") as usize;
            let mut script = ScriptTask::new();
            if read_bytes > 0 {
                script = script.get(BUCKET, stage_key(&in_prefix, "in", t, read_spread));
            }
            script = script.compute(cpu);
            if write_bytes > 0 {
                script = script.put(
                    BUCKET,
                    stage_key(&in_prefix, "out", t, write_spread),
                    ObjectBody::opaque(write_bytes),
                );
            }
            script.finish_value(Payload::Unit).boxed()
        });
        let inputs: Vec<Payload> = (0..stage.tasks).map(|t| Payload::U64(t as u64)).collect();
        let mut opts = MapOptions::named(format!("{job_name}:{}", stage.name));
        if stage.is_stateful() {
            opts = opts.stateful();
        }
        let handle = {
            let env = &mut self.env;
            match slot {
                ExecSlot::Faas => self.faas.map_with(env, factory, inputs, opts),
                ExecSlot::Own => self.jobs[idx]
                    .own
                    .as_mut()
                    .expect("own slot has an executor")
                    .map_with(env, factory, inputs, opts),
                ExecSlot::Pool(lease) => self
                    .pool
                    .as_mut()
                    .expect("pool slot has a pool")
                    .exec_mut(lease)
                    .map_with(env, factory, inputs, opts),
            }
        };
        self.jobs[idx].active = Some((handle, slot));
    }

    /// Polls every in-flight stage; on completion, advances the job or
    /// records it finished.
    fn poll_active(&mut self) -> Result<(), ExecError> {
        for idx in 0..self.jobs.len() {
            let Some((handle, slot)) = self.jobs[idx].active else {
                continue;
            };
            let polled = match slot {
                ExecSlot::Faas => self.faas.try_result(&mut self.env, handle),
                ExecSlot::Own => self.jobs[idx]
                    .own
                    .as_mut()
                    .expect("own slot has an executor")
                    .try_result(&mut self.env, handle),
                ExecSlot::Pool(lease) => self
                    .pool
                    .as_mut()
                    .expect("pool slot has a pool")
                    .exec_mut(lease)
                    .try_result(&mut self.env, handle),
            };
            let Some(result) = polled else { continue };
            result?;
            self.jobs[idx].active = None;
            self.jobs[idx].next_stage += 1;
            if self.jobs[idx].next_stage == self.jobs[idx].stages.len() {
                self.jobs[idx].finished = Some(self.env.now());
                if let Some(mut own) = self.jobs[idx].own.take() {
                    own.shutdown(&mut self.env);
                }
            } else {
                self.advance_or_wait(idx);
            }
        }
        Ok(())
    }

    /// Extracts the cell's measurements.
    fn into_outcome(self, label: String) -> PolicyOutcome {
        let ledger = self.env.world().ledger();
        let total = ledger.total();
        let tenant_jobs: Vec<usize> = (0..self.sc.tenants.len())
            .map(|t| self.jobs.iter().filter(|j| j.tenant == t).count())
            .collect();
        let all_jobs: usize = tenant_jobs.iter().sum();
        // Direct cost carries the job's `{tenant}#{seq}` billing label;
        // shared-pool VM time is a common good, split by job count.
        let pool_cost = ledger.total_labelled("shared-pool");
        let tenant_cost_usd: Vec<f64> = self
            .sc
            .tenants
            .iter()
            .enumerate()
            .map(|(t, spec)| {
                let direct = ledger.total_labelled(&format!("{}#", spec.name));
                let share = if all_jobs > 0 {
                    pool_cost * tenant_jobs[t] as f64 / all_jobs as f64
                } else {
                    0.0
                };
                direct + share
            })
            .collect();
        let jobs = self
            .jobs
            .into_iter()
            .map(|j| JobOutcome {
                tenant: j.tenant,
                name: j.name,
                arrived: j.arrived,
                finished: j.finished.expect("run() completes every job"),
            })
            .collect();
        PolicyOutcome {
            label,
            jobs,
            cost_usd: total,
            tenant_cost_usd,
            throttled: self.adm.throttled,
            degraded: self.adm.degraded,
            pool_leases: self.pool.as_ref().map_or(0, |p| p.leases),
            pool_hits: self.pool.as_ref().map_or(0, |p| p.hits),
        }
    }
}

/// The storage key of one task's stage input/output.
fn stage_key(prefix: &str, dir: &str, task: usize, spread: usize) -> String {
    format!("{prefix}-{dir}{}/{dir}-{task:05}", task % spread.max(1))
}
