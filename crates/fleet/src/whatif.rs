//! What-if planning *under load*: evaluates deployment plans against a
//! traffic scenario instead of a single idle-region job.
//!
//! The planner's [`planner::Evaluator`] measures one job alone in a
//! fresh region; a plan that looks cheap there can throttle or queue
//! once dozens of jobs share the regional quotas. [`plan_under_load`]
//! re-uses the fleet driver to run a whole scenario with every stage
//! placed by an explicit [`metaspace::plan::DeploymentPlan`];
//! [`search_under_load`] plugs that evaluation into
//! [`planner::search_with`], so the existing beam/grid machinery
//! searches for the plan that is cheapest *under traffic*.

use metaspace::plan::{DeploymentPlan, PlanKind};
use planner::{PlanOutcome, SearchConfig, SearchReport, SearchSpace};
use serverful::ExecError;

use crate::driver::{run_cell, Placement, PolicyOutcome};
use crate::scenario::Scenario;

/// Runs the scenario's full traffic with every job's stages placed by
/// `plan` (`Functions` stages on FaaS behind the admission controller,
/// `Serverful` stages leased from the shared pool).
///
/// # Errors
///
/// Rejects cluster plans (the fleet driver places stages on FaaS or
/// the pool) and propagates cell failures.
pub fn plan_under_load(
    sc: &Scenario,
    plan: &DeploymentPlan,
    seed: u64,
) -> Result<PolicyOutcome, ExecError> {
    let PlanKind::Functions(f) = &plan.kind else {
        return Err(ExecError::Unsupported(format!(
            "plan `{}`: fleet traffic places stages on FaaS or the shared pool, not a cluster",
            plan.name
        )));
    };
    let stages = sc.tenants[0].stages();
    if f.backends.len() != stages.len() {
        return Err(ExecError::Unsupported(format!(
            "plan `{}` assigns {} stages but tenant jobs have {}",
            plan.name,
            f.backends.len(),
            stages.len()
        )));
    }
    run_cell(sc, Placement::Plan(&f.backends, f.execution), plan.name.clone(), seed)
}

/// Evaluates `plan` under load and folds the fleet outcome into the
/// planner's objective shape: cost = the whole run's bill, makespan =
/// the p99 job latency (tail under contention, not a lone job's wall
/// clock), waste = throttled submissions.
///
/// # Errors
///
/// Same conditions as [`plan_under_load`].
pub fn evaluate_under_load(
    sc: &Scenario,
    plan: &DeploymentPlan,
    seed: u64,
) -> Result<PlanOutcome, ExecError> {
    let outcome = plan_under_load(sc, plan, seed)?;
    Ok(PlanOutcome {
        plan: plan.clone(),
        cost_usd: outcome.cost_usd,
        makespan_secs: outcome.latency_percentile(99.0),
        waste: outcome.throttled as f64,
    })
}

/// Searches the plan space for the deployment that wins *under this
/// scenario's traffic*. Cluster candidates are skipped (counted as
/// failed evaluations in the report), exactly like invalid plans in the
/// idle-region search.
pub fn search_under_load(
    sc: &Scenario,
    seed: u64,
    space: &SearchSpace,
    cfg: &SearchConfig,
) -> SearchReport {
    let stages = sc.tenants[0].stages();
    planner::search_with(
        &stages,
        &|plan| evaluate_under_load(sc, plan, seed),
        space,
        cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaspace::plan::ClusterPlan;

    #[test]
    fn cluster_plans_are_rejected() {
        let plan = DeploymentPlan {
            name: "spark".into(),
            kind: PlanKind::Cluster(ClusterPlan {
                instance: "c5.4xlarge".into(),
                nodes: 4,
            }),
        };
        let err = plan_under_load(&Scenario::smoke(), &plan, 42).unwrap_err();
        assert!(matches!(err, ExecError::Unsupported(_)));
    }

    #[test]
    fn mismatched_stage_counts_are_rejected() {
        use metaspace::plan::FunctionsPlan;
        let plan = DeploymentPlan::functions("short", FunctionsPlan::serverless(3));
        let err = plan_under_load(&Scenario::smoke(), &plan, 42).unwrap_err();
        assert!(matches!(err, ExecError::Unsupported(_)));
    }
}
