//! The cross-job shared VM pool.
//!
//! Extends serverful's proactive provisioning across *jobs*: a fixed
//! set of serverful executors stays alive for the whole run, leased to
//! whichever job next needs a stateful stage (or a degraded stateless
//! one). The executors keep their instances warm between leases
//! ([`serverful::StandaloneConfig::reuse_instances`]) and tear them
//! down after the scenario's keep-alive window
//! ([`serverful::StandaloneConfig::idle_timeout_secs`]), so pool cost
//! tracks load instead of wall clock.

use serverful::{Backend, CloudEnv, ExecMode, ExecutorConfig, FunctionExecutor};

use crate::scenario::PoolConfig;

/// A shared pool of warm serverful executors plus its lease statistics.
pub struct SharedPool {
    execs: Vec<FunctionExecutor>,
    /// Total leases granted.
    pub leases: usize,
    /// Leases that found the chosen executor's VMs already warm (no
    /// boot time on the critical path).
    pub hits: usize,
}

impl SharedPool {
    /// Creates the pool's executors. VMs provision lazily on the first
    /// lease of each executor, so an unused pool costs nothing.
    ///
    /// With [`PoolConfig::workers`] `> 0` each executor runs fleet-mode
    /// (a dedicated master plus that many `instance`-typed workers, the
    /// layout whose worker slots can bid spot); `master_instance`
    /// overrides the master type for regions whose catalog lacks the
    /// AWS default (see [`cloudsim::RegionProfile::master_instance`]).
    pub fn new(env: &mut CloudEnv, cfg: &PoolConfig, master_instance: Option<&str>) -> Self {
        assert!(cfg.size > 0, "shared pool needs at least one executor");
        let execs = (0..cfg.size)
            .map(|i| {
                let mut exec_cfg = ExecutorConfig::default();
                exec_cfg.standalone.instance_override = Some(cfg.instance.clone());
                exec_cfg.standalone.idle_timeout_secs = Some(cfg.idle_timeout_secs);
                exec_cfg.standalone.fleet_label = Some(format!("shared-pool-{i}"));
                exec_cfg.standalone.recovery = cfg.recovery;
                exec_cfg.standalone.bid = cfg.bid;
                if cfg.workers > 0 {
                    exec_cfg.standalone.exec_mode = ExecMode::Fleet {
                        instance_type: cfg.instance.clone(),
                        count: cfg.workers,
                    };
                }
                if let Some(master) = master_instance {
                    exec_cfg.standalone.master_instance = master.to_owned();
                }
                FunctionExecutor::new(env, Backend::vm(), exec_cfg)
            })
            .collect();
        SharedPool {
            execs,
            leases: 0,
            hits: 0,
        }
    }

    /// Leases an executor for one stage: the first warm idle executor,
    /// else the one with the shortest backlog (first index on ties —
    /// deterministic). Returns the executor's index; counts the lease a
    /// *hit* when the chosen executor was warm.
    pub fn lease(&mut self, env: &CloudEnv) -> usize {
        let chosen = self
            .execs
            .iter()
            .enumerate()
            .find(|(_, e)| e.warm(env) && e.backlog(env) == 0)
            .map(|(i, _)| i)
            .unwrap_or_else(|| {
                (0..self.execs.len())
                    .min_by_key(|&i| self.execs[i].backlog(env))
                    .expect("pool is non-empty")
            });
        self.leases += 1;
        if self.execs[chosen].warm(env) {
            self.hits += 1;
        }
        chosen
    }

    /// The executor behind a lease.
    pub fn exec_mut(&mut self, lease: usize) -> &mut FunctionExecutor {
        &mut self.execs[lease]
    }

    /// Whether some executor has nothing running or queued — when every
    /// executor is busy the driver bursts stateless stages to cloud
    /// functions instead of queueing behind the pool.
    pub fn any_idle(&self, env: &CloudEnv) -> bool {
        self.execs.iter().any(|e| e.backlog(env) == 0)
    }

    /// Warm-lease fraction in percent; `None` before the first lease.
    pub fn hit_pct(&self) -> Option<f64> {
        (self.leases > 0).then(|| self.hits as f64 / self.leases as f64 * 100.0)
    }

    /// Tears down every executor's remaining VMs.
    pub fn shutdown(&mut self, env: &mut CloudEnv) {
        for e in &mut self.execs {
            e.shutdown(env);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_pool_leases_are_misses() {
        let mut env = CloudEnv::new_default(3);
        let mut pool = SharedPool::new(&mut env, &PoolConfig::default(), None);
        let lease = pool.lease(&env);
        assert!(lease < PoolConfig::default().size);
        assert_eq!(pool.leases, 1);
        assert_eq!(pool.hits, 0, "nothing is provisioned yet");
        assert_eq!(pool.hit_pct(), Some(0.0));
    }

    #[test]
    fn empty_lease_history_has_no_hit_rate() {
        let mut env = CloudEnv::new_default(3);
        let pool = SharedPool::new(&mut env, &PoolConfig::default(), None);
        assert_eq!(pool.hit_pct(), None);
    }
}
