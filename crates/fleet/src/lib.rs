//! Multi-tenant traffic simulation over the serverful-functions stack.
//!
//! The paper evaluates one job at a time in an otherwise idle region.
//! Production regions are not idle: many tenants submit annotation jobs
//! concurrently, they share the account's Lambda burst-concurrency and
//! EC2 capacity quotas, and a serverful deployment can amortise warm
//! VMs *across* jobs rather than per job. This crate closes that gap:
//!
//! * [`scenario`] — tenants (Table 2 jobs, scaled), a Poisson arrival
//!   process, shared [`cloudsim::RegionQuotas`] and pool knobs;
//! * [`arrivals`] — the seeded arrival schedule, a pure function of
//!   `(scenario, seed)`;
//! * [`admission`] — the region-level admission controller: stages are
//!   throttled (queued) when the shared quotas have no headroom, or
//!   degraded (rerouted between the pool and cloud functions) under
//!   pressure;
//! * [`pool`] — the cross-job shared VM pool, extending serverful's
//!   proactive provisioning with keep-alive leases between jobs;
//! * [`driver`] — the per-policy event loop; every policy cell replays
//!   identical traffic in a fresh deterministic world, and cells merge
//!   in fixed order, so reports are byte-identical for any thread
//!   count;
//! * [`report`] — plain-text rendering over [`telemetry`]'s fleet
//!   tables;
//! * [`whatif`] — deployment-plan search *under load*, reusing
//!   [`planner::search_with`].
//!
//! The headline experiment (`repro fleet mixed`, EXPERIMENTS.md): at
//! high arrival rates the warm shared pool beats per-job fleets *and*
//! pure serverless on cost at a comparable p99, while the Lambda quota
//! visibly throttles the pure-serverless cells.
//!
//! # Example
//!
//! Run a small two-tenant scenario and compare the three policies:
//!
//! ```
//! use fleet::{report, run_scenario, Scenario};
//!
//! let mut sc = Scenario::smoke();
//! sc.duration_secs = 30.0; // a few arrivals are enough for a doctest
//! sc.max_jobs = 3;
//! let fleet = run_scenario(&sc, 42, 1).expect("smoke traffic completes");
//! assert_eq!(fleet.policies.len(), 3);
//! let text = report::render(&fleet);
//! assert!(text.contains("serverless") && text.contains("shared-pool"));
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod arrivals;
pub mod driver;
pub mod pool;
pub mod report;
pub mod scenario;
pub mod whatif;

pub use admission::Admission;
pub use arrivals::{schedule, Arrival};
pub use driver::{run_policy, run_scenario, FleetReport, JobOutcome, PolicyOutcome};
pub use pool::SharedPool;
pub use scenario::{Policy, PoolConfig, RegionOutage, Scenario, TenantSpec};
