//! Scenario definitions: tenants, traffic shape, quotas, pool knobs.

use cloudsim::RegionQuotas;
use metaspace::pipeline::Stage;
use metaspace::workloads;
use workload::{ScaleOptions, Workload};

/// One tenant of the simulated region: a lab or team repeatedly
/// submitting replicas of a bundled workload.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant name; job names and billing labels are prefixed with it.
    pub name: String,
    /// Bundled workload the tenant submits — any
    /// [`metaspace::workloads`] name: a Table 2 job (`Brain`), its
    /// `metaspace-` alias, or a DSL family (`terasort-small`).
    pub job: String,
    /// Relative arrival weight in the traffic mix.
    pub weight: f64,
    /// Stage-graph scale factor in `(0, 1]`; see
    /// [`workload::Workload::scaled_with`].
    pub scale: f64,
}

impl TenantSpec {
    /// The tenant's (scaled) workload description.
    ///
    /// # Panics
    ///
    /// Panics if `job` names no bundled workload.
    pub fn workload(&self) -> Workload {
        workloads::named(&self.job)
            .unwrap_or_else(|| panic!("tenant `{}`: unknown workload `{}`", self.name, self.job))
            .scaled_with(
                self.scale,
                // Floor of 2 tasks per stage: the historical
                // `scaled_stages` behaviour the fleet goldens bake in.
                &ScaleOptions {
                    min_tasks: 2,
                    ..ScaleOptions::default()
                },
            )
    }

    /// The tenant's (scaled) stage graph.
    pub fn stages(&self) -> Vec<Stage> {
        self.workload().stages
    }
}

/// The deployment policy a fleet run compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Every stage of every job on cloud functions, subject to the
    /// shared Lambda concurrency quota.
    Serverless,
    /// Every job provisions its own serverful fleet at arrival and
    /// tears it down at completion (boot time and minimum billing paid
    /// per job).
    PerJobFleet,
    /// Every stage leased from a shared warm pool of serverful
    /// executors kept alive across jobs; when the whole pool is busy,
    /// stateless stages degrade (burst) to cloud functions under the
    /// shared Lambda quota instead of queueing.
    SharedPool,
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Policy::Serverless => f.write_str("serverless"),
            Policy::PerJobFleet => f.write_str("per-job-fleet"),
            Policy::SharedPool => f.write_str("shared-pool"),
        }
    }
}

/// Knobs of the cross-job shared VM pool.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolConfig {
    /// Number of serverful executors in the pool (each one master VM).
    pub size: usize,
    /// Instance type each pool executor provisions.
    pub instance: String,
    /// Keep-alive window: an executor idle this long tears its VM down
    /// (re-provisioned cold on the next lease).
    pub idle_timeout_secs: f64,
    /// Master fault tolerance of every serverful executor the scenario
    /// creates (shared-pool members and per-job fleets alike). Presets
    /// keep the paper's protected master.
    pub recovery: serverful::RecoveryMode,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            size: 2,
            instance: "c5.2xlarge".to_owned(),
            idle_timeout_secs: 240.0,
            recovery: serverful::RecoveryMode::Protected,
        }
    }
}

/// A complete traffic scenario: who submits what, how often, under
/// which regional quotas.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (appears in the report header).
    pub name: String,
    /// The tenants sharing the region.
    pub tenants: Vec<TenantSpec>,
    /// Mean job arrivals per minute across all tenants (Poisson).
    pub arrival_rate_per_min: f64,
    /// Arrival window, seconds; jobs arriving inside it always run to
    /// completion.
    pub duration_secs: f64,
    /// Shared regional service quotas.
    pub quotas: RegionQuotas,
    /// Shared-pool knobs (used by [`Policy::SharedPool`]; the per-job
    /// fleet borrows the instance type).
    pub pool: PoolConfig,
    /// Hard cap on generated arrivals, a safety net against runaway
    /// rate/duration combinations.
    pub max_jobs: usize,
    /// When set, jobs run their stage graphs dependency-driven
    /// ([`serverful::ExecutionMode::Pipelined`]): FaaS stages release
    /// tasks as their upstream partitions complete (quota admission at
    /// task granularity), serverful stages start as soon as their
    /// dependencies fully drain. Presets leave this off (BSP barriers,
    /// the pre-dataflow behaviour).
    pub pipelined: bool,
}

impl Scenario {
    /// The debug-fast scenario CI's determinism gate runs: two tenants,
    /// tiny scaled jobs, a Lambda quota low enough to throttle.
    pub fn smoke() -> Scenario {
        Scenario {
            name: "smoke".to_owned(),
            tenants: vec![
                TenantSpec {
                    name: "brain-lab".to_owned(),
                    job: "Brain".to_owned(),
                    weight: 3.0,
                    scale: 0.02,
                },
                TenantSpec {
                    name: "xeno-core".to_owned(),
                    job: "Xenograft".to_owned(),
                    weight: 1.0,
                    scale: 0.008,
                },
            ],
            arrival_rate_per_min: 6.0,
            duration_secs: 90.0,
            quotas: RegionQuotas {
                lambda_concurrency: 8,
                ec2_vcpus: 256.0,
            },
            pool: PoolConfig {
                size: 1,
                instance: "c5.2xlarge".to_owned(),
                idle_timeout_secs: 180.0,
                ..PoolConfig::default()
            },
            max_jobs: 24,
            pipelined: false,
        }
    }

    /// The paper-scale scenario of EXPERIMENTS.md: three tenants mixing
    /// all Table 2 jobs at an arrival rate that saturates the shared
    /// Lambda quota.
    pub fn mixed() -> Scenario {
        Scenario {
            name: "mixed".to_owned(),
            tenants: vec![
                TenantSpec {
                    name: "brain-lab".to_owned(),
                    job: "Brain".to_owned(),
                    weight: 4.0,
                    scale: 0.0175,
                },
                TenantSpec {
                    name: "xeno-core".to_owned(),
                    job: "Xenograft".to_owned(),
                    weight: 2.0,
                    scale: 0.007,
                },
                TenantSpec {
                    name: "x089-batch".to_owned(),
                    job: "X089".to_owned(),
                    weight: 1.0,
                    scale: 0.00525,
                },
            ],
            arrival_rate_per_min: 16.0,
            duration_secs: 480.0,
            quotas: RegionQuotas {
                lambda_concurrency: 48,
                ec2_vcpus: 256.0,
            },
            pool: PoolConfig {
                size: 12,
                instance: "c5.2xlarge".to_owned(),
                idle_timeout_secs: 90.0,
                ..PoolConfig::default()
            },
            max_jobs: 120,
            pipelined: false,
        }
    }

    /// Looks a scenario up by name (case-insensitive).
    pub fn named(name: &str) -> Option<Scenario> {
        match name.to_ascii_lowercase().as_str() {
            "smoke" => Some(Scenario::smoke()),
            "mixed" => Some(Scenario::mixed()),
            _ => None,
        }
    }

    /// Names [`Scenario::named`] resolves.
    pub fn all_names() -> &'static [&'static str] {
        &["smoke", "mixed"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_scenarios_resolve() {
        for name in Scenario::all_names() {
            let sc = Scenario::named(name).expect("listed scenario resolves");
            assert!(!sc.tenants.is_empty());
            assert!(sc.arrival_rate_per_min > 0.0);
        }
        assert!(Scenario::named("nope").is_none());
    }

    #[test]
    fn tenant_stage_graphs_build() {
        for t in Scenario::mixed().tenants {
            let stages = t.stages();
            assert_eq!(stages.len(), 9);
            assert!(stages.iter().all(|s| s.tasks >= 2));
        }
    }

    #[test]
    fn dsl_family_tenants_resolve_with_their_declared_edges() {
        let t = TenantSpec {
            name: "sorters".to_owned(),
            job: "terasort-small".to_owned(),
            weight: 1.0,
            scale: 0.1,
        };
        let w = t.workload();
        w.validate().expect("scaled family stays valid");
        assert_eq!(w.stages.len(), 3);
        assert!(w.stages.iter().all(|s| s.tasks >= 2));
        // validate -> sort is one-to-one, which the METASPACE
        // name-match fallback (linear all-to-all) would get wrong: the
        // declared edges must survive into the fleet.
        assert!(w
            .edges
            .iter()
            .any(|deps| deps.iter().any(|e| e.fan_in == serverful::FanIn::OneToOne)));
    }
}
