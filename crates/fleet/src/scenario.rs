//! Scenario definitions: tenants, traffic shape, quotas, pool knobs,
//! region placement and spot-market shape.

use cloudsim::{RegionQuotas, SpotMarket};
use metaspace::pipeline::Stage;
use metaspace::workloads;
use workload::{ScaleOptions, Workload};

/// One tenant of the simulated region: a lab or team repeatedly
/// submitting replicas of a bundled workload.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant name; job names and billing labels are prefixed with it.
    pub name: String,
    /// Bundled workload the tenant submits — any
    /// [`metaspace::workloads`] name: a Table 2 job (`Brain`), its
    /// `metaspace-` alias, or a DSL family (`terasort-small`).
    pub job: String,
    /// Relative arrival weight in the traffic mix.
    pub weight: f64,
    /// Stage-graph scale factor in `(0, 1]`; see
    /// [`workload::Workload::scaled_with`].
    pub scale: f64,
}

impl TenantSpec {
    /// The tenant's (scaled) workload description.
    ///
    /// # Panics
    ///
    /// Panics if `job` names no bundled workload.
    pub fn workload(&self) -> Workload {
        workloads::named(&self.job)
            .unwrap_or_else(|| panic!("tenant `{}`: unknown workload `{}`", self.name, self.job))
            .scaled_with(
                self.scale,
                // Floor of 2 tasks per stage: the historical
                // `scaled_stages` behaviour the fleet goldens bake in.
                &ScaleOptions {
                    min_tasks: 2,
                    ..ScaleOptions::default()
                },
            )
    }

    /// The tenant's (scaled) stage graph.
    pub fn stages(&self) -> Vec<Stage> {
        self.workload().stages
    }
}

/// The deployment policy a fleet run compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Every stage of every job on cloud functions, subject to the
    /// shared Lambda concurrency quota.
    Serverless,
    /// Every job provisions its own serverful fleet at arrival and
    /// tears it down at completion (boot time and minimum billing paid
    /// per job).
    PerJobFleet,
    /// Every stage leased from a shared warm pool of serverful
    /// executors kept alive across jobs; when the whole pool is busy,
    /// stateless stages degrade (burst) to cloud functions under the
    /// shared Lambda quota instead of queueing.
    SharedPool,
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Policy::Serverless => f.write_str("serverless"),
            Policy::PerJobFleet => f.write_str("per-job-fleet"),
            Policy::SharedPool => f.write_str("shared-pool"),
        }
    }
}

/// Knobs of the cross-job shared VM pool.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolConfig {
    /// Number of serverful executors in the pool (each one master VM).
    pub size: usize,
    /// Instance type each pool executor provisions.
    pub instance: String,
    /// Keep-alive window: an executor idle this long tears its VM down
    /// (re-provisioned cold on the next lease).
    pub idle_timeout_secs: f64,
    /// Master fault tolerance of every serverful executor the scenario
    /// creates (shared-pool members and per-job fleets alike). Presets
    /// keep the paper's protected master.
    pub recovery: serverful::RecoveryMode,
    /// Dedicated worker VMs per pool executor. `0` (the default, and
    /// the historical layout) runs each executor consolidated: one VM
    /// that doubles as master. `> 0` switches executors to fleet mode —
    /// an orchestrating master plus this many `instance`-typed workers,
    /// which is the only layout where a spot [`PoolConfig::bid`] bites
    /// (masters always run on-demand).
    pub workers: usize,
    /// How pool worker slots bid for VM capacity: on-demand (the
    /// paper's behaviour) or discounted-but-preemptible spot with a
    /// bounded per-slot preemption budget, falling back to on-demand
    /// once the budget is spent.
    pub bid: serverful::BidPolicy,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            size: 2,
            instance: "c5.2xlarge".to_owned(),
            idle_timeout_secs: 240.0,
            recovery: serverful::RecoveryMode::Protected,
            workers: 0,
            bid: serverful::BidPolicy::OnDemand,
        }
    }
}

/// A scheduled regional outage: while it lasts, arriving jobs cannot be
/// admitted in the scenario's home region and spill to a secondary one.
///
/// The spillover split is a pure function of the precomputed arrival
/// schedule — each policy then runs one cell per region over its share
/// of the traffic, so the whole run stays byte-deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionOutage {
    /// Outage start, seconds into the run.
    pub start_secs: f64,
    /// Outage length, seconds.
    pub duration_secs: f64,
    /// Region key (see [`cloudsim::region`]) jobs arriving during the
    /// outage run in instead.
    pub spill_to: String,
}

impl RegionOutage {
    /// Whether an arrival at `at_secs` falls inside the outage window
    /// (start inclusive, end exclusive).
    pub fn covers(&self, at_secs: f64) -> bool {
        at_secs >= self.start_secs && at_secs < self.start_secs + self.duration_secs
    }
}

/// A complete traffic scenario: who submits what, how often, under
/// which regional quotas.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (appears in the report header).
    pub name: String,
    /// The tenants sharing the region.
    pub tenants: Vec<TenantSpec>,
    /// Mean job arrivals per minute across all tenants (Poisson).
    pub arrival_rate_per_min: f64,
    /// Arrival window, seconds; jobs arriving inside it always run to
    /// completion.
    pub duration_secs: f64,
    /// Shared regional service quotas.
    pub quotas: RegionQuotas,
    /// Shared-pool knobs (used by [`Policy::SharedPool`]; the per-job
    /// fleet borrows the instance type).
    pub pool: PoolConfig,
    /// Hard cap on generated arrivals, a safety net against runaway
    /// rate/duration combinations.
    pub max_jobs: usize,
    /// When set, jobs run their stage graphs dependency-driven
    /// ([`serverful::ExecutionMode::Pipelined`]): FaaS stages release
    /// tasks as their upstream partitions complete (quota admission at
    /// task granularity), serverful stages start as soon as their
    /// dependencies fully drain. Presets leave this off (BSP barriers,
    /// the pre-dataflow behaviour).
    pub pipelined: bool,
    /// Home region key (see [`cloudsim::region`]). `None` — the
    /// default, and every pre-existing preset — leaves the cell's
    /// [`cloudsim::CloudConfig`] untouched, so historical runs stay
    /// byte-identical. The scenario's own [`Scenario::quotas`] always
    /// win over the region profile's (they are the experiment's control
    /// variable).
    pub region: Option<String>,
    /// Overrides the region's spot-market shape (discount, preemption
    /// probability and window) — how a *preemption storm* is dialled in
    /// without minting a whole synthetic region. `None` keeps the
    /// region profile's market.
    pub spot_market: Option<SpotMarket>,
    /// A scheduled regional outage with cross-region spillover; `None`
    /// (all presets before `spillover`) runs all traffic at home.
    pub outage: Option<RegionOutage>,
}

impl Scenario {
    /// The debug-fast scenario CI's determinism gate runs: two tenants,
    /// tiny scaled jobs, a Lambda quota low enough to throttle.
    pub fn smoke() -> Scenario {
        Scenario {
            name: "smoke".to_owned(),
            tenants: vec![
                TenantSpec {
                    name: "brain-lab".to_owned(),
                    job: "Brain".to_owned(),
                    weight: 3.0,
                    scale: 0.02,
                },
                TenantSpec {
                    name: "xeno-core".to_owned(),
                    job: "Xenograft".to_owned(),
                    weight: 1.0,
                    scale: 0.008,
                },
            ],
            arrival_rate_per_min: 6.0,
            duration_secs: 90.0,
            quotas: RegionQuotas {
                lambda_concurrency: 8,
                ec2_vcpus: 256.0,
            },
            pool: PoolConfig {
                size: 1,
                instance: "c5.2xlarge".to_owned(),
                idle_timeout_secs: 180.0,
                ..PoolConfig::default()
            },
            max_jobs: 24,
            pipelined: false,
            region: None,
            spot_market: None,
            outage: None,
        }
    }

    /// The paper-scale scenario of EXPERIMENTS.md: three tenants mixing
    /// all Table 2 jobs at an arrival rate that saturates the shared
    /// Lambda quota.
    pub fn mixed() -> Scenario {
        Scenario {
            name: "mixed".to_owned(),
            tenants: vec![
                TenantSpec {
                    name: "brain-lab".to_owned(),
                    job: "Brain".to_owned(),
                    weight: 4.0,
                    scale: 0.0175,
                },
                TenantSpec {
                    name: "xeno-core".to_owned(),
                    job: "Xenograft".to_owned(),
                    weight: 2.0,
                    scale: 0.007,
                },
                TenantSpec {
                    name: "x089-batch".to_owned(),
                    job: "X089".to_owned(),
                    weight: 1.0,
                    scale: 0.00525,
                },
            ],
            arrival_rate_per_min: 16.0,
            duration_secs: 480.0,
            quotas: RegionQuotas {
                lambda_concurrency: 48,
                ec2_vcpus: 256.0,
            },
            pool: PoolConfig {
                size: 12,
                instance: "c5.2xlarge".to_owned(),
                idle_timeout_secs: 90.0,
                ..PoolConfig::default()
            },
            max_jobs: 120,
            pipelined: false,
            region: None,
            spot_market: None,
            outage: None,
        }
    }

    /// A preemption storm in GCP's volatile spot market: the smoke
    /// tenants run against `gcp-us-central1` with a spot-bidding shared
    /// pool (fleet-mode executors, so worker slots are spot-eligible)
    /// and a market override that reclaims almost every spot VM. The
    /// release-gated test asserts the storm cell's science digest is
    /// byte-identical to the same scenario run all on-demand — spot
    /// reclaims change when and what the run pays, never what it
    /// computes.
    pub fn spot_storm() -> Scenario {
        Scenario {
            name: "spot-storm".to_owned(),
            region: Some("gcp-us-central1".to_owned()),
            spot_market: Some(SpotMarket {
                discount: 0.75,
                preemption_prob: 0.85,
                preemption_after: (15.0, 90.0),
            }),
            pool: PoolConfig {
                size: 2,
                instance: "n2-standard-8".to_owned(),
                idle_timeout_secs: 180.0,
                workers: 2,
                bid: serverful::BidPolicy::spot(),
                ..PoolConfig::default()
            },
            ..Scenario::smoke_shaped("spot-storm")
        }
    }

    /// A regional outage with cross-region spillover: the smoke tenants
    /// run at home in `aws-us-east-1` until a mid-run outage window
    /// diverts arriving jobs to `aws-eu-west-1` (same shapes, ~11%
    /// price premium). Every policy runs one home cell and one spill
    /// cell over its deterministic share of the schedule.
    pub fn spillover() -> Scenario {
        Scenario {
            name: "spillover".to_owned(),
            region: Some("aws-us-east-1".to_owned()),
            outage: Some(RegionOutage {
                start_secs: 30.0,
                duration_secs: 40.0,
                spill_to: "aws-eu-west-1".to_owned(),
            }),
            ..Scenario::smoke_shaped("spillover")
        }
    }

    /// The smoke scenario's traffic shape under a different name — the
    /// base the region/spot presets specialise.
    fn smoke_shaped(name: &str) -> Scenario {
        Scenario {
            name: name.to_owned(),
            ..Scenario::smoke()
        }
    }

    /// Looks a scenario up by name (case-insensitive).
    pub fn named(name: &str) -> Option<Scenario> {
        match name.to_ascii_lowercase().as_str() {
            "smoke" => Some(Scenario::smoke()),
            "mixed" => Some(Scenario::mixed()),
            "spot-storm" => Some(Scenario::spot_storm()),
            "spillover" => Some(Scenario::spillover()),
            _ => None,
        }
    }

    /// Names [`Scenario::named`] resolves.
    pub fn all_names() -> &'static [&'static str] {
        &["smoke", "mixed", "spot-storm", "spillover"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_scenarios_resolve() {
        for name in Scenario::all_names() {
            let sc = Scenario::named(name).expect("listed scenario resolves");
            assert!(!sc.tenants.is_empty());
            assert!(sc.arrival_rate_per_min > 0.0);
        }
        assert!(Scenario::named("nope").is_none());
    }

    #[test]
    fn regioned_presets_name_registered_regions_and_catalog_instances() {
        for sc in [Scenario::spot_storm(), Scenario::spillover()] {
            let key = sc.region.as_deref().expect("regioned preset");
            let profile = cloudsim::region(key).expect("region is registered");
            assert!(
                profile.instance_type(&sc.pool.instance).is_some(),
                "{}: pool instance `{}` missing from {key}'s catalog",
                sc.name,
                sc.pool.instance
            );
            if let Some(o) = &sc.outage {
                cloudsim::region(&o.spill_to).expect("spill region is registered");
            }
        }
    }

    #[test]
    fn spot_storm_pool_is_spot_eligible() {
        let sc = Scenario::spot_storm();
        assert!(sc.pool.bid.is_spot());
        assert!(
            sc.pool.workers > 0,
            "spot bids only bite on dedicated worker slots; consolidated VMs are masters"
        );
        let m = sc.spot_market.expect("storm overrides the market");
        assert!(m.preemption_prob > 0.5, "a storm should reclaim most spot VMs");
    }

    #[test]
    fn outage_window_is_half_open() {
        let o = RegionOutage {
            start_secs: 30.0,
            duration_secs: 40.0,
            spill_to: "aws-eu-west-1".into(),
        };
        assert!(!o.covers(29.9));
        assert!(o.covers(30.0));
        assert!(o.covers(69.9));
        assert!(!o.covers(70.0));
    }

    #[test]
    fn tenant_stage_graphs_build() {
        for t in Scenario::mixed().tenants {
            let stages = t.stages();
            assert_eq!(stages.len(), 9);
            assert!(stages.iter().all(|s| s.tasks >= 2));
        }
    }

    #[test]
    fn dsl_family_tenants_resolve_with_their_declared_edges() {
        let t = TenantSpec {
            name: "sorters".to_owned(),
            job: "terasort-small".to_owned(),
            weight: 1.0,
            scale: 0.1,
        };
        let w = t.workload();
        w.validate().expect("scaled family stays valid");
        assert_eq!(w.stages.len(), 3);
        assert!(w.stages.iter().all(|s| s.tasks >= 2));
        // validate -> sort is one-to-one, which the METASPACE
        // name-match fallback (linear all-to-all) would get wrong: the
        // declared edges must survive into the fleet.
        assert!(w
            .edges
            .iter()
            .any(|deps| deps.iter().any(|e| e.fan_in == serverful::FanIn::OneToOne)));
    }
}
