//! The seeded arrival process: who submits a job, and when.

use simkernel::{SimRng, SimTime};

use crate::scenario::Scenario;

/// One scheduled job arrival.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// Virtual time the job is submitted.
    pub at: SimTime,
    /// Index into the scenario's tenant list.
    pub tenant: usize,
    /// Per-tenant submission counter (the `#seq` of the job name).
    pub seq: usize,
}

impl Arrival {
    /// The job's name under the scenario: `{tenant}#{seq}`.
    pub fn job_name(&self, sc: &Scenario) -> String {
        format!("{}#{}", sc.tenants[self.tenant].name, self.seq)
    }
}

/// Draws the scenario's full arrival schedule from one seed: Poisson
/// inter-arrival gaps at the scenario rate, tenants picked by weight.
/// The schedule is a pure function of `(scenario, seed)` — every policy
/// cell of a run replays the identical traffic.
pub fn schedule(sc: &Scenario, seed: u64) -> Vec<Arrival> {
    assert!(sc.arrival_rate_per_min > 0.0, "arrival rate must be positive");
    // A fixed stream id keeps the arrival draw independent of any other
    // use of the seed (each policy cell's world forks its own streams).
    let mut rng = SimRng::seed_from(seed ^ 0xf1ee_7a11);
    let weights: Vec<f64> = sc.tenants.iter().map(|t| t.weight).collect();
    let mean_gap_secs = 60.0 / sc.arrival_rate_per_min;
    let mut out = Vec::new();
    let mut seqs = vec![0usize; sc.tenants.len()];
    let mut t = 0.0f64;
    loop {
        t += rng.exponential(mean_gap_secs);
        if t > sc.duration_secs || out.len() >= sc.max_jobs {
            break;
        }
        let tenant = rng.weighted_index(&weights);
        out.push(Arrival {
            at: SimTime::from_secs_f64(t),
            tenant,
            seq: seqs[tenant],
        });
        seqs[tenant] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn schedule_is_deterministic_and_ordered() {
        let sc = Scenario::smoke();
        let a = schedule(&sc, 42);
        let b = schedule(&sc, 42);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(!a.is_empty(), "smoke scenario generates traffic");
    }

    #[test]
    fn different_seeds_differ() {
        let sc = Scenario::smoke();
        assert_ne!(schedule(&sc, 1), schedule(&sc, 2));
    }

    #[test]
    fn weights_bias_the_mix() {
        let mut sc = Scenario::smoke();
        sc.duration_secs = 10_000.0;
        sc.max_jobs = 2_000;
        let arrivals = schedule(&sc, 7);
        let heavy = arrivals.iter().filter(|a| a.tenant == 0).count();
        let light = arrivals.iter().filter(|a| a.tenant == 1).count();
        // Tenant 0 has 3x the weight of tenant 1.
        assert!(heavy > 2 * light, "heavy {heavy} light {light}");
    }

    #[test]
    fn max_jobs_caps_the_schedule() {
        let mut sc = Scenario::smoke();
        sc.max_jobs = 3;
        sc.duration_secs = 10_000.0;
        assert_eq!(schedule(&sc, 42).len(), 3);
    }

    #[test]
    fn sequence_numbers_are_per_tenant() {
        let sc = Scenario::smoke();
        let arrivals = schedule(&sc, 42);
        for tenant in 0..sc.tenants.len() {
            let seqs: Vec<usize> = arrivals
                .iter()
                .filter(|a| a.tenant == tenant)
                .map(|a| a.seq)
                .collect();
            assert_eq!(seqs, (0..seqs.len()).collect::<Vec<_>>());
        }
    }
}
