//! The region-level admission controller.
//!
//! [`cloudsim::World`] tracks usage ([`cloudsim::World::faas_active`],
//! [`cloudsim::World::vm_vcpus_active`]); *policy* lives here: a stage
//! submission is admitted only while it fits under the shared
//! [`RegionQuotas`], otherwise the driver queues it (throttle) or — for
//! the shared-pool policy — reroutes it to a warm VM (degrade).

use cloudsim::{RegionQuotas, World};

/// Admission decisions plus the throttle/degrade counters the report
/// surfaces.
#[derive(Debug, Clone)]
pub struct Admission {
    quotas: RegionQuotas,
    /// Stage submissions that had to wait for quota headroom.
    pub throttled: usize,
    /// Stage submissions rerouted between the pool and cloud functions
    /// under pressure (a saturated pool bursting a stateless stage to
    /// FaaS).
    pub degraded: usize,
}

impl Admission {
    /// Creates a controller over the given quotas.
    pub fn new(quotas: RegionQuotas) -> Self {
        Admission {
            quotas,
            throttled: 0,
            degraded: 0,
        }
    }

    /// Whether a FaaS stage of `tasks` sandboxes fits under the Lambda
    /// concurrency quota right now. An idle region always admits, so a
    /// stage wider than the whole quota degrades to sequential-by-quota
    /// behaviour instead of deadlocking.
    pub fn admits_faas(&self, world: &World, tasks: usize) -> bool {
        world.faas_active() == 0 || world.faas_active() + tasks <= self.quotas.lambda_concurrency
    }

    /// Whether provisioning `vcpus` more EC2 vCPUs fits under the
    /// region's capacity limit (same idle-region escape hatch).
    pub fn admits_vm(&self, world: &World, vcpus: f64) -> bool {
        world.vm_vcpus_active() == 0.0
            || world.vm_vcpus_active() + vcpus <= self.quotas.ec2_vcpus
    }

    /// Records one throttled submission.
    pub fn note_throttle(&mut self) {
        self.throttled += 1;
    }

    /// Records one degraded submission.
    pub fn note_degrade(&mut self) {
        self.degraded += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsim::{CloudConfig, World};

    #[test]
    fn idle_region_always_admits() {
        let world = World::new(CloudConfig::default(), 1);
        let adm = Admission::new(RegionQuotas {
            lambda_concurrency: 4,
            ec2_vcpus: 2.0,
        });
        // Wider than the whole quota, but nothing is running.
        assert!(adm.admits_faas(&world, 1000));
        assert!(adm.admits_vm(&world, 64.0));
    }

    #[test]
    fn counters_accumulate() {
        let mut adm = Admission::new(RegionQuotas::default());
        adm.note_throttle();
        adm.note_throttle();
        adm.note_degrade();
        assert_eq!((adm.throttled, adm.degraded), (2, 1));
    }
}
