//! Plain-text rendering of a fleet run.
//!
//! Deterministic by construction: every number comes from the
//! simulation's virtual clock and ledgers, every row order from the
//! scenario definition, so the same `(scenario, seed)` renders the same
//! bytes regardless of thread count.

use telemetry::{fleet_policy_comparison, fleet_tenant_table, FleetPolicyRow, FleetTenantRow};

use crate::driver::{FleetReport, PolicyOutcome};

/// Renders the full report: header, policy comparison, per-tenant
/// breakdown per policy.
pub fn render(report: &FleetReport) -> String {
    let sc = &report.scenario;
    let mut out = String::new();
    out.push_str(&format!(
        "fleet scenario `{}` (seed {}): {:.1} jobs/min for {:.0}s, quotas: {} lambda / {:.0} vCPUs\n",
        sc.name,
        report.seed,
        sc.arrival_rate_per_min,
        sc.duration_secs,
        sc.quotas.lambda_concurrency,
        sc.quotas.ec2_vcpus,
    ));
    // Region, outage and spot lines render only when the scenario sets
    // the corresponding knob, so pre-provider reports stay byte-stable.
    if let Some(region) = &sc.region {
        out.push_str(&format!("region: {region}\n"));
    }
    if let Some(o) = &sc.outage {
        out.push_str(&format!(
            "outage: {:.0}s..{:.0}s spills arrivals to {}\n",
            o.start_secs,
            o.start_secs + o.duration_secs,
            o.spill_to,
        ));
    }
    if sc.pool.bid.is_spot() {
        out.push_str(&format!(
            "pool bid: spot ({} workers per executor)\n",
            sc.pool.workers,
        ));
    }
    out.push_str(&format!(
        "tenants: {}\n\n",
        sc.tenants
            .iter()
            .map(|t| format!("{} ({}, x{:.3}, w{:.0})", t.name, t.job, t.scale, t.weight))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&fleet_policy_comparison(
        &report.policies.iter().map(policy_row).collect::<Vec<_>>(),
    ));
    if sc.pool.bid.is_spot() {
        for p in &report.policies {
            out.push_str(&format!(
                "spot ({}): {} preemptions, {} on-demand fallbacks, science digest {:016x}\n",
                p.label, p.preemptions, p.spot_fallbacks, p.science_digest,
            ));
        }
    }
    for p in &report.policies {
        out.push_str(&format!("\nper-tenant ({}):\n", p.label));
        let rows: Vec<FleetTenantRow> = sc
            .tenants
            .iter()
            .enumerate()
            .map(|(t, spec)| FleetTenantRow {
                tenant: spec.name.clone(),
                jobs: p.tenant_jobs(t),
                cost_usd: p.tenant_cost_usd[t],
                p50_secs: p.tenant_latency_percentile(t, 50.0),
                p99_secs: p.tenant_latency_percentile(t, 99.0),
            })
            .collect();
        out.push_str(&fleet_tenant_table(&rows));
    }
    out
}

/// Converts one policy outcome into its comparison-table row.
pub fn policy_row(p: &PolicyOutcome) -> FleetPolicyRow {
    FleetPolicyRow {
        policy: p.label.clone(),
        jobs: p.jobs.len(),
        cost_usd: p.cost_usd,
        p50_secs: p.latency_percentile(50.0),
        p99_secs: p.latency_percentile(99.0),
        throttled: p.throttled,
        degraded: p.degraded,
        pool_hit_pct: p.pool_hit_pct(),
    }
}
