//! Service-model behaviours: burst limits, request-rate admission,
//! billing attribution, the managed service, and host-to-host transfers.

use cloudsim::{instance_type, CloudConfig, Notify, ObjectBody, OpId, World};
use simkernel::SimTime;
use telemetry::CostCategory;

fn pump_all_sandboxes(world: &mut World, n: usize) -> Vec<SimTime> {
    let mut times = Vec::new();
    while times.len() < n {
        match world.step() {
            Some((t, Notify::SandboxUp { .. })) => times.push(t),
            Some(_) => {}
            None => panic!("drained with {} of {n} sandboxes up", times.len()),
        }
    }
    times
}

#[test]
fn faas_burst_limit_throttles_sandbox_starts() {
    let mut cfg = CloudConfig::default();
    cfg.faas.burst = 10;
    cfg.faas.starts_per_sec = 5.0;
    cfg.faas.cold_start_median = 0.2;
    cfg.faas.cold_start_sigma = 0.01;
    let mut w = World::new(cfg, 31);
    for _ in 0..30 {
        w.faas_invoke(1769, "lambda");
    }
    let times = pump_all_sandboxes(&mut w, 30);
    // The first 10 start right after invoke+cold; the remaining 20 drip
    // at 5/s => the last lands around (20/5) = 4 s later.
    let first = times.iter().copied().min().unwrap().as_secs_f64();
    let last = times.iter().copied().max().unwrap().as_secs_f64();
    assert!(last - first > 3.0, "burst not throttled: {first}..{last}");
}

#[test]
fn storage_request_rate_limits_admission() {
    let mut cfg = CloudConfig::default();
    cfg.storage.put_rate_per_sec = 100.0; // 10 ms gap
    let mut w = World::new(cfg, 33);
    let client = w.client_host();
    let ops: Vec<OpId> = (0..200)
        .map(|i| w.put_object(client, "b", &format!("k{i}"), ObjectBody::opaque(1)))
        .collect();
    let mut remaining: std::collections::HashSet<OpId> = ops.into_iter().collect();
    let mut last = SimTime::ZERO;
    while !remaining.is_empty() {
        match w.step() {
            Some((t, Notify::Op { op, .. })) => {
                if remaining.remove(&op) {
                    last = last.max(t);
                }
            }
            Some(_) => {}
            None => panic!("drained early"),
        }
    }
    // 200 requests at 100/s take at least 2 s regardless of size.
    assert!(last.as_secs_f64() >= 1.9, "got {last}");
}

#[test]
fn billing_labels_attribute_charges() {
    let mut w = World::new(CloudConfig::default(), 35);
    let client = w.client_host();
    w.set_bill_label("stage-a");
    let op = w.put_object(client, "b", "x", ObjectBody::opaque(1));
    drain_op(&mut w, op);
    w.set_bill_label("stage-b");
    let op = w.put_object(client, "b", "y", ObjectBody::opaque(1));
    drain_op(&mut w, op);
    let ledger = w.ledger();
    assert!(ledger.total_labelled("stage-a") > 0.0);
    assert!(ledger.total_labelled("stage-b") > 0.0);
    assert_eq!(ledger.total_labelled("stage-c"), 0.0);
}

fn drain_op(w: &mut World, op: OpId) {
    loop {
        match w.step() {
            Some((_, Notify::Op { op: done, .. })) if done == op => return,
            Some(_) => {}
            None => panic!("drained before {op}"),
        }
    }
}

#[test]
fn emr_jobs_run_independently() {
    let mut w = World::new(CloudConfig::default(), 37);
    let a = w.emr_submit(10, 1.0);
    let _b = w.emr_submit(200, 2.0);
    let mut done = Vec::new();
    while done.len() < 2 {
        match w.step() {
            Some((t, Notify::EmrDone { job })) => done.push((job, t)),
            Some(_) => {}
            None => panic!("drained"),
        }
    }
    let (first_job, first_t) = done[0];
    assert_eq!(first_job, a, "the small job finishes first");
    let (_, second_t) = done[1];
    assert!(second_t > first_t);
    assert!(w.ledger().total_for(CostCategory::ManagedService) > 0.0);
}

#[test]
fn net_transfer_is_bounded_by_the_slower_nic() {
    let mut w = World::new(CloudConfig::default(), 39);
    let m4 = instance_type("m4.4xlarge").unwrap(); // 2.0 Gbit/s
    let c5 = instance_type("c5.4xlarge").unwrap(); // 5.0 Gbit/s
    let vm_a = w.vm_provision(m4, "x");
    let vm_b = w.vm_provision(c5, "x");
    let mut up = 0;
    while up < 2 {
        if let Some((_, Notify::VmUp { .. })) = w.step() {
            up += 1;
        }
    }
    let a = w.vm_host(vm_a);
    let b = w.vm_host(vm_b);
    let t0 = w.now();
    // 2.5 GB over a 2 Gbit/s (250 MB/s) bottleneck: ~10 s.
    let op = w.net_transfer(a, b, 2_500_000_000);
    drain_op(&mut w, op);
    let secs = (w.now() - t0).as_secs_f64();
    assert!((9.5..12.0).contains(&secs), "got {secs}");
}

#[test]
fn concurrent_transfers_share_a_nic() {
    let mut w = World::new(CloudConfig::default(), 41);
    let m4 = instance_type("m4.4xlarge").unwrap();
    let c5 = instance_type("c5.4xlarge").unwrap();
    let hub = w.vm_provision(m4, "x");
    let spoke1 = w.vm_provision(c5, "x");
    let spoke2 = w.vm_provision(c5, "x");
    let mut up = 0;
    while up < 3 {
        if let Some((_, Notify::VmUp { .. })) = w.step() {
            up += 1;
        }
    }
    let hub_host = w.vm_host(hub);
    let t0 = w.now();
    // Two 1.25 GB transfers out of the same 250 MB/s NIC: 10 s total.
    let op1 = w.net_transfer(hub_host, w.vm_host(spoke1), 1_250_000_000);
    let op2 = w.net_transfer(hub_host, w.vm_host(spoke2), 1_250_000_000);
    let mut remaining: std::collections::HashSet<OpId> = [op1, op2].into_iter().collect();
    while !remaining.is_empty() {
        match w.step() {
            Some((_, Notify::Op { op, .. })) => {
                remaining.remove(&op);
            }
            Some(_) => {}
            None => panic!("drained before both transfers finished"),
        }
    }
    let secs = (w.now() - t0).as_secs_f64();
    assert!((9.5..12.0).contains(&secs), "got {secs}");
}

#[test]
fn opaque_and_real_bodies_cost_the_same_to_move() {
    let run = |body: ObjectBody| {
        let mut w = World::new(CloudConfig::default(), 43);
        let client = w.client_host();
        let op = w.put_object(client, "b", "k", body);
        drain_op(&mut w, op);
        w.now()
    };
    let real = run(ObjectBody::real(vec![7u8; 1_000_000]));
    let opaque = run(ObjectBody::opaque(1_000_000));
    assert_eq!(real, opaque, "timing must not depend on materialisation");
}

#[test]
fn vcpu_seconds_track_provisioning_windows() {
    let mut w = World::new(CloudConfig::default(), 45);
    let it = instance_type("c5.large").unwrap(); // 2 vCPUs
    let vm = w.vm_provision(it, "fleet");
    let up_at = loop {
        if let Some((t, Notify::VmUp { .. })) = w.step() {
            break t;
        }
    };
    let op = w.compute(w.vm_host(vm), 100.0);
    drain_op(&mut w, op);
    w.vm_terminate(vm);
    let end = w.now();
    let provisioned = w.cpu_monitor().provisioned_vcpu_seconds(up_at, end);
    assert!((provisioned - 200.0).abs() < 1.0, "got {provisioned}");
    let busy = w.cpu_monitor().busy_vcpu_seconds(up_at, end);
    assert!((busy - 100.0).abs() < 1.0, "got {busy}");
}
