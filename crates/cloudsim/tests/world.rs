//! End-to-end tests of the cloud region model.

use cloudsim::{
    instance_type, CloudConfig, Notify, ObjectBody, OpId, OpOutcome, World,
};
use simkernel::{SimDuration, SimTime};
use telemetry::CostCategory;

fn world() -> World {
    World::new(CloudConfig::default(), 7)
}

/// Pumps until a specific op completes, returning (time, outcome).
fn run_until_op(world: &mut World, op: OpId) -> (SimTime, OpOutcome) {
    while let Some((t, n)) = world.step() {
        if let Notify::Op { op: done, outcome } = n {
            if done == op {
                return (t, outcome);
            }
        }
    }
    panic!("simulation drained before {op} completed");
}

fn run_until_vm_up(world: &mut World, vm: cloudsim::VmId) -> SimTime {
    while let Some((t, n)) = world.step() {
        if let Notify::VmUp { vm: up } = n {
            if up == vm {
                return t;
            }
        }
    }
    panic!("simulation drained before {vm} came up");
}

fn run_until_sandbox_up(world: &mut World, sb: cloudsim::SandboxId) -> SimTime {
    while let Some((t, n)) = world.step() {
        if let Notify::SandboxUp { sandbox } = n {
            if sandbox == sb {
                return t;
            }
        }
    }
    panic!("simulation drained before {sb} came up");
}

#[test]
fn put_then_get_roundtrips_real_bytes() {
    let mut w = world();
    let client = w.client_host();
    let put = w.put_object(client, "b", "k", ObjectBody::real(vec![9u8; 1024]));
    let (t_put, outcome) = run_until_op(&mut w, put);
    assert!(matches!(outcome, OpOutcome::PutOk));
    assert!(t_put.as_secs_f64() > 0.0);

    let get = w.get_object(client, "b", "k");
    let (_, outcome) = run_until_op(&mut w, get);
    match outcome {
        OpOutcome::GetOk { body } => {
            assert_eq!(body.bytes().unwrap().as_ref(), &[9u8; 1024][..]);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn get_of_missing_key_reports_missing() {
    let mut w = world();
    let client = w.client_host();
    let get = w.get_object(client, "b", "nope");
    let (_, outcome) = run_until_op(&mut w, get);
    assert!(matches!(outcome, OpOutcome::GetMissing));
}

#[test]
fn list_returns_sorted_matching_keys() {
    let mut w = world();
    let client = w.client_host();
    for key in ["x/2", "x/1", "y/1"] {
        let op = w.put_object(client, "b", key, ObjectBody::opaque(1));
        run_until_op(&mut w, op);
    }
    let op = w.list_objects(client, "b", "x/");
    let (_, outcome) = run_until_op(&mut w, op);
    match outcome {
        OpOutcome::ListOk { keys } => assert_eq!(keys, vec!["x/1", "x/2"]),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn transfer_time_scales_with_size() {
    // 85 MB at 85 MB/s per connection ≈ 1 s plus latency.
    let mut w = world();
    let client = w.client_host();
    let op = w.put_object(client, "b", "large", ObjectBody::opaque(85_000_000));
    let (t, _) = run_until_op(&mut w, op);
    assert!(
        (1.0..1.4).contains(&t.as_secs_f64()),
        "expected ~1 s transfer, got {t}"
    );
}

#[test]
fn concurrent_transfers_contend_on_aggregate_bandwidth() {
    // Saturate one key prefix (0.85 GB/s) with 200 concurrent 85 MB
    // reads: demand is 17 GB/s, so each flow gets ~2.5 MB/s and takes
    // ~35x longer than it would alone — the storage-saturation effect
    // the paper's stateful stages suffer from.
    let mut cfg = CloudConfig::default();
    cfg.storage.get_rate_per_sec = 1e6; // isolate bandwidth effect
    cfg.storage.put_rate_per_sec = 1e6;
    let mut w = World::new(cfg, 7);
    let client = w.client_host();
    // Client NIC would bottleneck; give transfers distinct hosts by using
    // sandboxes.
    let mut hosts = Vec::new();
    for _ in 0..200 {
        let sb = w.faas_invoke(1769, "lambda");
        hosts.push(sb);
    }
    let mut up = 0;
    while up < hosts.len() {
        match w.step() {
            Some((_, Notify::SandboxUp { .. })) => up += 1,
            Some(_) => {}
            None => panic!("drained before all sandboxes came up"),
        }
    }
    let sandbox_hosts: Vec<_> = hosts.iter().map(|&sb| w.sandbox_host(sb)).collect();
    let seed = w.put_object(client, "b", "obj", ObjectBody::opaque(85_000_000));
    run_until_op(&mut w, seed);
    let t0 = w.now();
    let ops: Vec<OpId> = sandbox_hosts
        .iter()
        .map(|&h| w.get_object(h, "b", "obj"))
        .collect();
    let mut remaining: std::collections::HashSet<OpId> = ops.into_iter().collect();
    let mut last = t0;
    while !remaining.is_empty() {
        match w.step() {
            Some((t, Notify::Op { op, outcome })) if remaining.remove(&op) => {
                assert!(matches!(outcome, OpOutcome::GetOk { .. }));
                last = last.max(t);
            }
            Some(_) => {}
            None => panic!("drained before all GETs completed"),
        }
    }
    let elapsed = (last - t0).as_secs_f64();
    // Alone each GET would take ~1 s; under per-prefix contention ~35 s.
    assert!(
        (25.0..50.0).contains(&elapsed),
        "expected contention-stretched transfers, got {elapsed} s"
    );
}

#[test]
fn compute_queues_fifo_on_vcpu_slots() {
    let mut w = world();
    let it = instance_type("c5.large").unwrap(); // 2 vCPUs
    let vm = w.vm_provision(it, "vm");
    let t_up = run_until_vm_up(&mut w, vm);
    let host = w.vm_host(vm);
    // Three 10 s jobs on 2 slots: makespan 20 s.
    let ops: Vec<OpId> = (0..3).map(|_| w.compute(host, 10.0)).collect();
    let mut finish = Vec::new();
    for op in ops {
        let (t, outcome) = run_until_op(&mut w, op);
        assert!(matches!(outcome, OpOutcome::ComputeOk));
        finish.push((t - t_up).as_secs_f64());
    }
    finish.sort_by(f64::total_cmp);
    assert!((finish[0] - 10.0).abs() < 1e-6);
    assert!((finish[1] - 10.0).abs() < 1e-6);
    assert!((finish[2] - 20.0).abs() < 1e-6);
}

#[test]
fn sandbox_fractional_vcpu_slows_compute() {
    let mut w = world();
    // 885 MB ≈ 0.5 vCPU -> 5 s of CPU takes ~10 s.
    let sb = w.faas_invoke(885, "lambda");
    let t_up = run_until_sandbox_up(&mut w, sb);
    let host = w.sandbox_host(sb);
    let op = w.compute(host, 5.0);
    let (t, _) = run_until_op(&mut w, op);
    let dur = (t - t_up).as_secs_f64();
    assert!((dur - 9.99).abs() < 0.2, "got {dur}");
}

#[test]
fn faas_billing_covers_runtime_and_request() {
    let mut w = world();
    let sb = w.faas_invoke(1769, "lambda");
    run_until_sandbox_up(&mut w, sb);
    let host = w.sandbox_host(sb);
    let op = w.compute(host, 10.0);
    run_until_op(&mut w, op);
    w.faas_release(sb);
    let compute = w.ledger().total_for(CostCategory::FaasCompute);
    // 1769 MB ≈ 1.7275 GiB for 10 s at $1.66667e-5/GiB-s ≈ $2.879e-4.
    let expected = (1769.0 / 1024.0) * 10.0 * 0.0000166667;
    assert!(
        (compute - expected).abs() / expected < 0.01,
        "compute {compute} vs {expected}"
    );
    assert!(w.ledger().total_for(CostCategory::FaasRequests) > 0.0);
}

#[test]
fn vm_billing_enforces_minimum_and_rate() {
    let mut w = world();
    let it = instance_type("m4.4xlarge").unwrap();
    let vm = w.vm_provision(it, "vm");
    run_until_vm_up(&mut w, vm);
    // Terminate quickly: billed the 60 s minimum.
    w.vm_terminate(vm);
    let cost = w.ledger().total_for(CostCategory::VmCompute);
    let expected = 60.0 * it.hourly_usd / 3600.0;
    assert!((cost - expected).abs() < 1e-9, "cost {cost} vs {expected}");
}

#[test]
fn vm_billing_grows_past_minimum() {
    let mut w = world();
    let it = instance_type("m4.4xlarge").unwrap();
    let vm = w.vm_provision(it, "vm");
    run_until_vm_up(&mut w, vm);
    let host = w.vm_host(vm);
    let op = w.compute(host, 300.0);
    run_until_op(&mut w, op);
    w.vm_terminate(vm);
    let cost = w.ledger().total_for(CostCategory::VmCompute);
    let low = 300.0 * it.usd_per_second();
    assert!(cost > low, "cost {cost} should exceed {low}");
    assert!(cost < 310.0 * it.usd_per_second());
}

#[test]
fn kv_queue_push_pop_fifo_and_empty() {
    let mut w = world();
    let it = instance_type("c5.4xlarge").unwrap();
    let vm = w.vm_provision(it, "vm");
    run_until_vm_up(&mut w, vm);
    let kv = w.kv_create(vm);
    let client = w.client_host();
    for i in 0..3u8 {
        let op = w.kv_push(client, kv, "tasks", ObjectBody::real(vec![i]));
        let (_, outcome) = run_until_op(&mut w, op);
        assert!(matches!(outcome, OpOutcome::KvOk));
    }
    for i in 0..3u8 {
        let op = w.kv_pop(client, kv, "tasks");
        let (_, outcome) = run_until_op(&mut w, op);
        match outcome {
            OpOutcome::KvValue { body: Some(body) } => {
                assert_eq!(body.bytes().unwrap().as_ref(), &[i]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    let op = w.kv_pop(client, kv, "tasks");
    let (_, outcome) = run_until_op(&mut w, op);
    assert!(matches!(outcome, OpOutcome::KvValue { body: None }));
}

#[test]
fn kv_local_access_is_much_faster_than_remote() {
    let mut w = world();
    let it = instance_type("m4.4xlarge").unwrap(); // 2 Gbit/s NIC
    let vm = w.vm_provision(it, "vm");
    run_until_vm_up(&mut w, vm);
    let kv = w.kv_create(vm);
    let vm_host = w.vm_host(vm);
    let client = w.client_host();
    let body = ObjectBody::opaque(500_000_000); // 500 MB
    let op = w.kv_put(client, kv, "blob", body);
    run_until_op(&mut w, op);

    // Remote read from the client: ~500 MB at min(600 MB/s, NIC 250 MB/s).
    let t0 = w.now();
    let op = w.kv_get(client, kv, "blob");
    let (t1, _) = run_until_op(&mut w, op);
    let remote = (t1 - t0).as_secs_f64();

    // Local read on the VM itself: 500 MB at 4 GB/s.
    let t0 = w.now();
    let op = w.kv_get(vm_host, kv, "blob");
    let (t1, _) = run_until_op(&mut w, op);
    let local = (t1 - t0).as_secs_f64();

    assert!(
        remote / local > 5.0,
        "local {local} s should be much faster than remote {remote} s"
    );
}

#[test]
fn emr_job_startup_dominates_short_maps() {
    let mut w = world();
    let job = w.emr_submit(100, 5.0);
    let done_at = loop {
        match w.step() {
            Some((t, Notify::EmrDone { job: j })) if j == job => break t,
            Some(_) => continue,
            None => panic!("drained"),
        }
    };
    // ~112 s startup + 3 waves x 5.25 s + teardown ≈ 130 s.
    let secs = done_at.as_secs_f64();
    assert!((115.0..150.0).contains(&secs), "got {secs}");
    assert!(w.ledger().total_for(CostCategory::ManagedService) > 0.0);
}

#[test]
fn timer_fires_with_tag() {
    let mut w = world();
    w.timer(SimDuration::from_secs(5), 42);
    match w.step() {
        Some((t, Notify::Timer { tag })) => {
            assert_eq!(tag, 42);
            assert_eq!(t.as_secs_f64(), 5.0);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn sleep_completes_after_duration() {
    let mut w = world();
    let op = w.sleep(SimDuration::from_secs(3));
    let (t, outcome) = run_until_op(&mut w, op);
    assert!(matches!(outcome, OpOutcome::SleepOk));
    assert_eq!(t.as_secs_f64(), 3.0);
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut w = World::new(CloudConfig::default(), 99);
        let _client = w.client_host();
        let sb = w.faas_invoke(1769, "lambda");
        run_until_sandbox_up(&mut w, sb);
        let host = w.sandbox_host(sb);
        let put = w.put_object(host, "b", "x", ObjectBody::opaque(10_000_000));
        let (t, _) = run_until_op(&mut w, put);
        t
    };
    assert_eq!(run(), run());
}

#[test]
fn cpu_monitor_tracks_provision_and_busy() {
    let mut w = world();
    let it = instance_type("c5.large").unwrap();
    let vm = w.vm_provision(it, "cluster");
    let t_up = run_until_vm_up(&mut w, vm);
    let host = w.vm_host(vm);
    let op = w.compute(host, 10.0);
    run_until_op(&mut w, op);
    let end = w.now();
    // One of two vCPUs busy over the compute window -> 50 %.
    let samples = w
        .cpu_monitor()
        .utilisation_samples(t_up, end, SimDuration::from_secs(1));
    assert!(!samples.is_empty());
    assert!(samples.iter().all(|&s| (s - 50.0).abs() < 1e-9));
}

#[test]
fn spot_vm_bills_at_the_discounted_rate() {
    let mut cfg = CloudConfig::default();
    cfg.faults.spot_preemption_prob = 0.0; // never reclaimed
    let mut w = World::new(cfg, 7);
    let it = instance_type("m4.4xlarge").unwrap();
    let vm = w.vm_provision_with(it, "vm", cloudsim::Tenancy::Spot);
    run_until_vm_up(&mut w, vm);
    assert_eq!(w.vm_tenancy(vm), cloudsim::Tenancy::Spot);
    w.vm_terminate(vm);
    let cost = w.ledger().total_for(CostCategory::VmCompute);
    // 60 s minimum at (1 - 0.65) of the on-demand rate.
    let expected = 60.0 * it.usd_per_second() * 0.35;
    assert!((cost - expected).abs() < 1e-9, "cost {cost} vs {expected}");
}

#[test]
fn spot_preemption_fires_in_window_and_is_ledgered() {
    let mut cfg = CloudConfig::default();
    cfg.faults.spot_preemption_prob = 1.0;
    cfg.faults.spot_preemption_after = (30.0, 60.0);
    let mut w = World::new(cfg, 11);
    let it = instance_type("m4.4xlarge").unwrap();
    let vm = w.vm_provision_with(it, "vm", cloudsim::Tenancy::Spot);
    let t_up = run_until_vm_up(&mut w, vm);
    let (t_fail, fault) = loop {
        let (t, n) = w.step().expect("preemption must fire");
        if let Notify::VmFailed { vm: failed, fault } = n {
            assert_eq!(failed, vm);
            break (t, fault);
        }
    };
    assert_eq!(fault, cloudsim::FaultKind::SpotPreemption);
    let dt = (t_fail - t_up).as_secs_f64();
    assert!((30.0..=60.0).contains(&dt), "preempted after {dt}s");
    assert_eq!(
        w.fault_ledger().injected(cloudsim::FaultKind::SpotPreemption),
        1
    );
    // The wasted uptime bills at the spot rate.
    let cost = w.ledger().total_for(CostCategory::VmCompute);
    let expected = dt.max(60.0) * it.usd_per_second() * 0.35;
    assert!((cost - expected).abs() < 1e-9, "cost {cost} vs {expected}");
}

#[test]
fn on_demand_runs_are_untouched_by_spot_knobs() {
    // Enabling a violent spot market must not change an on-demand run:
    // spot RNG is drawn per spot provision, never ambiently.
    let run = |prob: f64| {
        let mut cfg = CloudConfig::default();
        cfg.faults.spot_preemption_prob = prob;
        let mut w = World::new(cfg, 13);
        let it = instance_type("m4.4xlarge").unwrap();
        let vm = w.vm_provision(it, "vm");
        run_until_vm_up(&mut w, vm);
        let host = w.vm_host(vm);
        let op = w.compute(host, 120.0);
        run_until_op(&mut w, op);
        w.vm_terminate(vm);
        (w.now(), w.ledger().total_for(CostCategory::VmCompute))
    };
    assert_eq!(run(0.0), run(1.0));
}
