//! Providers, regions and the spot market.
//!
//! The paper prices everything against one hard-coded region (AWS
//! us-east-1, 30 June 2024). This module generalises that into a
//! [`Provider`] registry over N heterogeneous regions: each
//! [`RegionProfile`] carries its own instance catalog and price list,
//! FaaS tariff and cold-start distribution, quota shape, and a
//! [`SpotMarket`] — discounted VM capacity that the provider may
//! reclaim at any time (surfacing as
//! [`FaultKind::SpotPreemption`](crate::FaultKind::SpotPreemption)).
//!
//! The **default region** (`aws/us-east-1`) reproduces the paper's
//! numbers exactly: running with no region selected touches neither the
//! configuration nor any RNG stream, so every pre-existing golden and
//! determinism gate is unaffected. Selecting a region rewrites a
//! [`CloudConfig`] through [`RegionProfile::apply`]; everything else in
//! the simulator is region-agnostic and reads the catalog and tariffs
//! out of the config it was built with.
//!
//! # Example
//!
//! ```
//! use cloudsim::provider::{self, Provider};
//!
//! // The registry spans at least two providers.
//! let names: Vec<&str> = provider::providers().iter().map(|p| p.name()).collect();
//! assert!(names.contains(&"aws") && names.contains(&"gcp"));
//!
//! // Regions resolve by `{provider}-{region}` key.
//! let eu = provider::region("aws-eu-west-1").expect("registered");
//! let us = provider::default_region();
//! assert!(eu.price_of("c5.4xlarge").unwrap() > us.price_of("c5.4xlarge").unwrap());
//!
//! // Spot capacity is discounted but preemptible.
//! assert!(us.spot.discount > 0.0 && us.spot.preemption_prob > 0.0);
//! ```

use crate::config::{CloudConfig, RegionQuotas};
use crate::pricing::{InstanceType, LambdaTariff, CATALOG};

/// A provider's spot-market shape for one region: how deep the discount
/// runs and how often capacity is reclaimed.
///
/// The discount applies to VM uptime billed for instances provisioned
/// with [`Tenancy::Spot`](crate::Tenancy::Spot); the preemption
/// probability is drawn once per spot provision (see
/// [`FaultConfig`](crate::FaultConfig)), so an on-demand-only run never
/// consumes spot RNG state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpotMarket {
    /// Fractional discount off the on-demand price in `(0, 1)`; a spot
    /// instance bills `(1 - discount) ×` the on-demand rate.
    pub discount: f64,
    /// Probability that a spot provision is eventually reclaimed,
    /// drawn at provision time.
    pub preemption_prob: f64,
    /// Uniform window, seconds after the VM comes up, in which a
    /// planned preemption fires.
    pub preemption_after: (f64, f64),
}

/// One provider region: a named price list plus the model parameters
/// that differ between clouds.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionProfile {
    /// Provider short name (`"aws"`, `"gcp"`).
    pub provider: &'static str,
    /// Region name within the provider (`"us-east-1"`).
    pub region: &'static str,
    /// Instance catalog with this region's on-demand prices, sorted by
    /// memory (the sizing policy scans smallest-first).
    pub catalog: &'static [InstanceType],
    /// Default master/orchestrator instance for serverful pools — the
    /// smallest general-purpose box in this catalog.
    pub master_instance: &'static str,
    /// Lithops-style backend label of this region's FaaS offering
    /// (`"aws_lambda"`, `"gcp_cloudfunctions"`). Billing and trace
    /// labels derive from here instead of hard-coding AWS names.
    pub faas_label: &'static str,
    /// Lithops-style backend label of this region's VM offering
    /// (`"aws_ec2"`, `"gcp_gce"`).
    pub vm_label: &'static str,
    /// FaaS tariff (price per GiB-second and the memory→vCPU mapping).
    pub faas_tariff: LambdaTariff,
    /// FaaS cold-start log-normal median, seconds.
    pub cold_start_median: f64,
    /// FaaS cold-start log-normal sigma.
    pub cold_start_sigma: f64,
    /// Account-level quota shape of the region.
    pub quotas: RegionQuotas,
    /// The region's spot market.
    pub spot: SpotMarket,
}

impl RegionProfile {
    /// The registry key, `{provider}-{region}` (e.g. `aws-us-east-1`).
    pub fn key(&self) -> String {
        format!("{}-{}", self.provider, self.region)
    }

    /// Looks up an instance type in this region's catalog.
    pub fn instance_type(&self, name: &str) -> Option<&'static InstanceType> {
        self.catalog.iter().find(|it| it.name == name)
    }

    /// This region's on-demand hourly price for an instance, if the
    /// catalog carries it.
    pub fn price_of(&self, name: &str) -> Option<f64> {
        self.instance_type(name).map(|it| it.hourly_usd)
    }

    /// Rewrites a [`CloudConfig`] to run in this region: catalog and
    /// spot discount, FaaS tariff and cold-start shape, quotas, and the
    /// spot-preemption fault knobs. Everything else (storage, KV, EMR,
    /// ambient fault probabilities) is carried over from `base`
    /// unchanged, so chaos overlays compose with region selection.
    ///
    /// Applying the default region changes *only* the spot knobs — the
    /// default [`CloudConfig`] already is `aws-us-east-1` minus a spot
    /// market, and spot knobs never draw RNG unless spot capacity is
    /// actually provisioned.
    pub fn apply(&self, base: &CloudConfig) -> CloudConfig {
        let mut cfg = base.clone();
        cfg.vm.catalog = self.catalog;
        cfg.vm.spot_discount = self.spot.discount;
        cfg.faas.tariff = self.faas_tariff;
        cfg.faas.cold_start_median = self.cold_start_median;
        cfg.faas.cold_start_sigma = self.cold_start_sigma;
        cfg.quotas = self.quotas.clone();
        cfg.faults.spot_preemption_prob = self.spot.preemption_prob;
        cfg.faults.spot_preemption_after = self.spot.preemption_after;
        cfg
    }
}

/// A cloud provider: a named family of regions sharing billing idioms.
///
/// The trait exists so callers can enumerate the market generically
/// ([`providers`]) and future backends (a trace-driven region, an
/// on-premise cluster) can register without touching the planner or the
/// fleet; data-only regions stay `const`-constructible.
pub trait Provider {
    /// Provider short name (`"aws"`).
    fn name(&self) -> &'static str;
    /// Every region this provider offers, in registry order.
    fn regions(&self) -> &'static [RegionProfile];
}

/// Amazon-shaped provider: the paper's price list plus an EU replica.
pub struct Aws;

/// Google-shaped provider: a distinct catalog, slower cold starts, a
/// deeper but more volatile spot market.
pub struct Gcp;

impl Provider for Aws {
    fn name(&self) -> &'static str {
        "aws"
    }
    fn regions(&self) -> &'static [RegionProfile] {
        &AWS_REGIONS
    }
}

impl Provider for Gcp {
    fn name(&self) -> &'static str {
        "gcp"
    }
    fn regions(&self) -> &'static [RegionProfile] {
        &GCP_REGIONS
    }
}

/// EU prices: the same instance shapes at the typical ~11% premium over
/// us-east-1 (eu-west-1, 30 June 2024 shape).
const EU_PRICE_MULT: f64 = 1.11;

/// Scales one catalog entry's hourly price (const so regional catalogs
/// stay `'static` data).
const fn at_price(base: InstanceType, mult: f64) -> InstanceType {
    InstanceType {
        hourly_usd: base.hourly_usd * mult,
        ..base
    }
}

/// The eu-west-1 catalog: us-east-1 shapes at EU prices.
static AWS_EU_WEST_1_CATALOG: [InstanceType; 10] = [
    at_price(CATALOG[0], EU_PRICE_MULT),
    at_price(CATALOG[1], EU_PRICE_MULT),
    at_price(CATALOG[2], EU_PRICE_MULT),
    at_price(CATALOG[3], EU_PRICE_MULT),
    at_price(CATALOG[4], EU_PRICE_MULT),
    at_price(CATALOG[5], EU_PRICE_MULT),
    at_price(CATALOG[6], EU_PRICE_MULT),
    at_price(CATALOG[7], EU_PRICE_MULT),
    at_price(CATALOG[8], EU_PRICE_MULT),
    at_price(CATALOG[9], EU_PRICE_MULT),
];

/// The GCP catalog (us-central1 on-demand, 30 June 2024 shape), sorted
/// by memory like every catalog. Names follow the `n2`/`m1`/`m2`
/// families; network baselines are the per-VM egress caps.
static GCP_US_CENTRAL1_CATALOG: [InstanceType; 9] = [
    InstanceType {
        name: "e2-standard-2",
        vcpus: 2,
        mem_gib: 8.0,
        hourly_usd: 0.067,
        net_gbps: 4.0,
    },
    InstanceType {
        name: "n2-standard-8",
        vcpus: 8,
        mem_gib: 32.0,
        hourly_usd: 0.3885,
        net_gbps: 16.0,
    },
    InstanceType {
        name: "n2-highmem-8",
        vcpus: 8,
        mem_gib: 64.0,
        hourly_usd: 0.5241,
        net_gbps: 16.0,
    },
    InstanceType {
        name: "n2-highmem-16",
        vcpus: 16,
        mem_gib: 128.0,
        hourly_usd: 1.0482,
        net_gbps: 32.0,
    },
    InstanceType {
        name: "n2-highmem-32",
        vcpus: 32,
        mem_gib: 256.0,
        hourly_usd: 2.0963,
        net_gbps: 32.0,
    },
    InstanceType {
        name: "n2-highmem-64",
        vcpus: 64,
        mem_gib: 512.0,
        hourly_usd: 4.1926,
        net_gbps: 50.0,
    },
    InstanceType {
        name: "n2-highmem-96",
        vcpus: 96,
        mem_gib: 768.0,
        hourly_usd: 6.2889,
        net_gbps: 75.0,
    },
    InstanceType {
        name: "m1-megamem-96",
        vcpus: 96,
        mem_gib: 1433.6,
        hourly_usd: 10.6740,
        net_gbps: 32.0,
    },
    InstanceType {
        name: "m2-ultramem-208",
        vcpus: 208,
        mem_gib: 5888.0,
        hourly_usd: 42.1860,
        net_gbps: 32.0,
    },
];

static AWS_REGIONS: [RegionProfile; 2] = [
    // The paper's region. `apply` on the default CloudConfig changes
    // only the spot knobs (asserted in tests).
    RegionProfile {
        provider: "aws",
        region: "us-east-1",
        catalog: CATALOG,
        master_instance: "c5.large",
        faas_label: "aws_lambda",
        vm_label: "aws_ec2",
        faas_tariff: LambdaTariff {
            usd_per_gib_second: 0.0000166667,
            usd_per_request: 0.0000002,
            mb_per_vcpu: 1769.0,
        },
        cold_start_median: 2.5,
        cold_start_sigma: 0.35,
        quotas: RegionQuotas {
            lambda_concurrency: 10_000,
            ec2_vcpus: 4096.0,
        },
        spot: SpotMarket {
            discount: 0.65,
            preemption_prob: 0.05,
            preemption_after: (30.0, 600.0),
        },
    },
    RegionProfile {
        provider: "aws",
        region: "eu-west-1",
        catalog: &AWS_EU_WEST_1_CATALOG,
        master_instance: "c5.large",
        faas_label: "aws_lambda",
        vm_label: "aws_ec2",
        faas_tariff: LambdaTariff {
            // EU Lambda GiB-seconds price the same premium as EC2.
            usd_per_gib_second: 0.0000185,
            usd_per_request: 0.0000002,
            mb_per_vcpu: 1769.0,
        },
        cold_start_median: 2.5,
        cold_start_sigma: 0.35,
        quotas: RegionQuotas {
            lambda_concurrency: 6_000,
            ec2_vcpus: 2560.0,
        },
        // Shallower discount, calmer market than us-east-1.
        spot: SpotMarket {
            discount: 0.55,
            preemption_prob: 0.03,
            preemption_after: (60.0, 900.0),
        },
    },
];

static GCP_REGIONS: [RegionProfile; 1] = [RegionProfile {
    provider: "gcp",
    region: "us-central1",
    catalog: &GCP_US_CENTRAL1_CATALOG,
    master_instance: "e2-standard-2",
    faas_label: "gcp_cloudfunctions",
    vm_label: "gcp_gce",
    faas_tariff: LambdaTariff {
        // Cloud-Functions-shaped: cheaper GiB-seconds, CPU bundled at a
        // coarser memory step.
        usd_per_gib_second: 0.0000145,
        usd_per_request: 0.0000004,
        mb_per_vcpu: 2048.0,
    },
    // Measurably slower, heavier-tailed cold starts.
    cold_start_median: 3.2,
    cold_start_sigma: 0.45,
    quotas: RegionQuotas {
        lambda_concurrency: 3_000,
        ec2_vcpus: 2400.0,
    },
    // The deepest discount with the stormiest reclaim behaviour.
    spot: SpotMarket {
        discount: 0.75,
        preemption_prob: 0.12,
        preemption_after: (20.0, 300.0),
    },
}];

/// Every registered provider, in registry order.
pub fn providers() -> &'static [&'static (dyn Provider + Sync)] {
    static PROVIDERS: [&(dyn Provider + Sync); 2] = [&Aws, &Gcp];
    &PROVIDERS
}

/// Every registered region across all providers, in registry order.
pub fn regions() -> Vec<&'static RegionProfile> {
    AWS_REGIONS.iter().chain(GCP_REGIONS.iter()).collect()
}

/// Looks a region up by its `{provider}-{region}` key
/// (case-insensitive).
pub fn region(key: &str) -> Option<&'static RegionProfile> {
    let key = key.to_ascii_lowercase();
    regions().into_iter().find(|r| r.key() == key)
}

/// The paper's region (`aws-us-east-1`): the profile whose application
/// to the default config is a no-op except for enabling its spot
/// market.
pub fn default_region() -> &'static RegionProfile {
    &AWS_REGIONS[0]
}

/// The registered region a config was derived from, identified by its
/// catalog — every region owns a distinct `'static` catalog slice, so
/// pointer identity suffices. `None` for hand-built configs carrying a
/// custom catalog. The default [`CloudConfig`] shares the us-east-1
/// catalog and resolves to [`default_region`].
pub fn region_of(cfg: &CloudConfig) -> Option<&'static RegionProfile> {
    regions()
        .into_iter()
        .find(|r| std::ptr::eq(cfg.vm.catalog, r.catalog))
}

/// Keys of every registered region, in registry order — the values a
/// plan's `region` knob and the planner's region dimension range over.
pub fn region_keys() -> Vec<String> {
    regions().into_iter().map(RegionProfile::key).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_every_key_and_rejects_unknowns() {
        for r in regions() {
            let found = region(&r.key()).expect("registered key resolves");
            assert_eq!(found.key(), r.key());
        }
        assert!(region("aws-mars-north-1").is_none());
        assert_eq!(region("AWS-US-EAST-1").unwrap().key(), "aws-us-east-1");
    }

    #[test]
    fn every_catalog_is_sorted_by_memory_and_carries_the_master() {
        for r in regions() {
            for pair in r.catalog.windows(2) {
                assert!(
                    pair[0].mem_gib <= pair[1].mem_gib,
                    "{}: {} before {}",
                    r.key(),
                    pair[0].name,
                    pair[1].name
                );
            }
            assert!(
                r.instance_type(r.master_instance).is_some(),
                "{}: master instance {} missing from its own catalog",
                r.key(),
                r.master_instance
            );
        }
    }

    #[test]
    fn spot_markets_are_sane() {
        for r in regions() {
            assert!((0.0..1.0).contains(&r.spot.discount), "{}", r.key());
            assert!(
                (0.0..1.0).contains(&r.spot.preemption_prob),
                "{}",
                r.key()
            );
            assert!(r.spot.preemption_after.0 < r.spot.preemption_after.1);
        }
    }

    #[test]
    fn default_region_apply_only_enables_the_spot_market() {
        let base = CloudConfig::default();
        let applied = default_region().apply(&base);
        let mut expected = base.clone();
        expected.faults.spot_preemption_prob = default_region().spot.preemption_prob;
        expected.faults.spot_preemption_after = default_region().spot.preemption_after;
        assert_eq!(applied, expected);
    }

    #[test]
    fn eu_prices_carry_the_premium_and_gcp_prices_differ() {
        let us = default_region();
        let eu = region("aws-eu-west-1").unwrap();
        for (a, b) in us.catalog.iter().zip(eu.catalog.iter()) {
            assert_eq!(a.name, b.name);
            assert!((b.hourly_usd - a.hourly_usd * EU_PRICE_MULT).abs() < 1e-12);
        }
        let gcp = region("gcp-us-central1").unwrap();
        assert!(gcp.instance_type("c5.4xlarge").is_none());
        assert!(gcp.instance_type("n2-highmem-16").is_some());
    }

    #[test]
    fn providers_enumerate_their_regions() {
        let mut total = 0;
        for p in providers() {
            assert!(!p.regions().is_empty(), "{} has no regions", p.name());
            for r in p.regions() {
                assert_eq!(r.provider, p.name());
                total += 1;
            }
        }
        assert_eq!(total, regions().len());
    }
}
