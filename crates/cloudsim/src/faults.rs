//! Deterministic, seed-driven fault injection.
//!
//! [`FaultConfig`] turns on failure classes with per-class
//! probabilities; the `FaultInjector` draws every fault decision from
//! its **own** RNG stream, seeded from the world seed XOR a fixed salt.
//! Two invariants make chaos runs reproducible and the fault layer
//! zero-cost when disabled:
//!
//! * a probability of zero never draws from the RNG, so a world with
//!   all probabilities at zero produces the byte-identical event trace
//!   of a world built before this module existed;
//! * the injector's stream is independent of the world's latency RNG,
//!   so enabling one fault class never perturbs latencies or the
//!   schedule of the other classes beyond the failures themselves.
//!
//! Fault decisions are made when a resource is acquired (invoke,
//! provision, request admission), which keys the schedule to the
//! deterministic order of simulated operations rather than to wall
//! time.

use simkernel::{SimDuration, SimRng, SimTime};
pub use telemetry::FaultKind;

/// Salt folded into the world seed for the injector's RNG stream.
const FAULT_SEED_SALT: u64 = 0xFA17_1D1C_7AB1_E5EE;

/// Probabilities and windows for every injectable failure class.
///
/// All probabilities default to zero (injection disabled). Values are
/// per *decision point*: per invoke for sandbox faults, per provision
/// for VM faults, per request for storage faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability that a FaaS invocation fails during cold start
    /// (surfaces as [`FaultKind::SandboxInvokeError`]; user code never
    /// runs and nothing is billed).
    pub sandbox_invoke_error_prob: f64,
    /// Probability that a sandbox crashes mid-execution
    /// ([`FaultKind::SandboxCrash`]; the crashed execution is billed,
    /// as AWS bills failed Lambda runs).
    pub sandbox_crash_prob: f64,
    /// Uniform window, seconds after user code starts, in which a
    /// planned sandbox crash fires.
    pub sandbox_crash_after: (f64, f64),
    /// Probability that a VM provision request fails at boot
    /// ([`FaultKind::VmBootFailure`]; nothing is billed).
    pub vm_boot_failure_prob: f64,
    /// Probability that a VM is lost while running
    /// ([`FaultKind::VmLoss`]; its uptime is billed). Hosts protected
    /// with [`World::protect_host`](crate::World::protect_host) and
    /// hosts running a KV server (masters) are spared.
    pub vm_loss_prob: f64,
    /// Uniform window, seconds after the VM comes up, in which a
    /// planned loss fires.
    pub vm_loss_after: (f64, f64),
    /// Probability that a storage request fails with a transient 5xx
    /// ([`FaultKind::StorageTransient`]; the failed request is not
    /// billed).
    pub storage_error_prob: f64,
    /// Probability that a storage request is throttled with a 503
    /// SlowDown ([`FaultKind::StorageSlowDown`]; not billed).
    pub storage_slowdown_prob: f64,
    /// Probability that a **spot** VM provision is eventually reclaimed
    /// by the provider ([`FaultKind::SpotPreemption`]; uptime is billed
    /// at the spot rate). Drawn only for spot provisions, so on-demand
    /// runs never consume this stream; set by
    /// [`RegionProfile::apply`](crate::provider::RegionProfile::apply)
    /// from the region's [`SpotMarket`](crate::provider::SpotMarket).
    pub spot_preemption_prob: f64,
    /// Uniform window, seconds after the spot VM comes up, in which a
    /// planned preemption fires.
    pub spot_preemption_after: (f64, f64),
    /// Restricts injection to a virtual-time window `[start, end)` in
    /// seconds; `None` means faults can fire at any time.
    pub window: Option<(f64, f64)>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            sandbox_invoke_error_prob: 0.0,
            sandbox_crash_prob: 0.0,
            sandbox_crash_after: (0.5, 20.0),
            vm_boot_failure_prob: 0.0,
            vm_loss_prob: 0.0,
            vm_loss_after: (5.0, 120.0),
            storage_error_prob: 0.0,
            storage_slowdown_prob: 0.0,
            spot_preemption_prob: 0.0,
            spot_preemption_after: (30.0, 600.0),
            window: None,
        }
    }
}

impl FaultConfig {
    /// Injection fully disabled (the default).
    pub fn disabled() -> FaultConfig {
        FaultConfig::default()
    }

    /// The chaos-suite profile: 5% sandbox crashes, 2% VM boot
    /// failures, 10% storage throttling — the rates the repository's
    /// chaos tests run the paper's workloads under.
    pub fn chaos() -> FaultConfig {
        FaultConfig {
            sandbox_invoke_error_prob: 0.02,
            sandbox_crash_prob: 0.05,
            vm_boot_failure_prob: 0.02,
            vm_loss_prob: 0.02,
            storage_error_prob: 0.05,
            storage_slowdown_prob: 0.05,
            ..FaultConfig::default()
        }
    }

    /// Scales every probability of the chaos profile so that the
    /// *storage* classes sum to `rate` and the compute classes match it
    /// (used by the fault-rate ablation sweep).
    pub fn at_rate(rate: f64) -> FaultConfig {
        FaultConfig {
            sandbox_invoke_error_prob: rate * 0.5,
            sandbox_crash_prob: rate,
            vm_boot_failure_prob: rate,
            vm_loss_prob: rate,
            storage_error_prob: rate * 0.5,
            storage_slowdown_prob: rate * 0.5,
            ..FaultConfig::default()
        }
    }

    /// True when at least one *ambient* failure class can fire. Spot
    /// preemption is deliberately excluded: it is a market property
    /// that only applies to capacity explicitly provisioned as spot,
    /// not an injected chaos overlay.
    pub fn any_enabled(&self) -> bool {
        self.sandbox_invoke_error_prob > 0.0
            || self.sandbox_crash_prob > 0.0
            || self.vm_boot_failure_prob > 0.0
            || self.vm_loss_prob > 0.0
            || self.storage_error_prob > 0.0
            || self.storage_slowdown_prob > 0.0
    }
}

/// Draws fault decisions from a dedicated RNG stream.
#[derive(Debug)]
pub(crate) struct FaultInjector {
    cfg: FaultConfig,
    rng: SimRng,
}

impl FaultInjector {
    pub(crate) fn new(cfg: FaultConfig, world_seed: u64) -> FaultInjector {
        FaultInjector {
            cfg,
            rng: SimRng::seed_from(world_seed ^ FAULT_SEED_SALT),
        }
    }

    fn active(&self, now: SimTime) -> bool {
        match self.cfg.window {
            None => true,
            Some((start, end)) => {
                let t = now.as_secs_f64();
                t >= start && t < end
            }
        }
    }

    /// Bernoulli draw; consumes RNG state only when `prob > 0` and the
    /// window is open (the zero-cost-when-disabled invariant).
    fn roll(&mut self, prob: f64, now: SimTime) -> bool {
        if prob <= 0.0 || !self.active(now) {
            return false;
        }
        self.rng.next_f64() < prob
    }

    fn draw_delay(&mut self, (lo, hi): (f64, f64)) -> SimDuration {
        SimDuration::from_secs_f64(self.rng.uniform(lo.min(hi), lo.max(hi).max(lo + 1e-9)))
    }

    /// Fault decision for a FaaS invocation, drawn at invoke time.
    pub(crate) fn sandbox_fault(&mut self, now: SimTime) -> Option<SandboxFault> {
        if self.roll(self.cfg.sandbox_invoke_error_prob, now) {
            return Some(SandboxFault::InvokeError);
        }
        if self.roll(self.cfg.sandbox_crash_prob, now) {
            let after = self.draw_delay(self.cfg.sandbox_crash_after);
            return Some(SandboxFault::CrashAfter(after));
        }
        None
    }

    /// Fault decision for a VM provision request, drawn at provision
    /// time.
    pub(crate) fn vm_fault(&mut self, now: SimTime) -> Option<VmFault> {
        if self.roll(self.cfg.vm_boot_failure_prob, now) {
            return Some(VmFault::BootFailure);
        }
        if self.roll(self.cfg.vm_loss_prob, now) {
            let after = self.draw_delay(self.cfg.vm_loss_after);
            return Some(VmFault::LossAfter(after));
        }
        None
    }

    /// Preemption decision for a **spot** VM provision, drawn at
    /// provision time (never called for on-demand provisions, which
    /// keeps every on-demand RNG stream byte-identical to a world
    /// without a spot market). Returns how long after coming up the VM
    /// is reclaimed.
    pub(crate) fn spot_fault(&mut self, now: SimTime) -> Option<SimDuration> {
        if self.roll(self.cfg.spot_preemption_prob, now) {
            return Some(self.draw_delay(self.cfg.spot_preemption_after));
        }
        None
    }

    /// Fault decision for a storage request, drawn at issue time.
    pub(crate) fn storage_fault(&mut self, now: SimTime) -> Option<FaultKind> {
        if self.roll(self.cfg.storage_error_prob, now) {
            return Some(FaultKind::StorageTransient);
        }
        if self.roll(self.cfg.storage_slowdown_prob, now) {
            return Some(FaultKind::StorageSlowDown);
        }
        None
    }
}

/// A planned sandbox failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum SandboxFault {
    InvokeError,
    CrashAfter(SimDuration),
}

/// A planned VM failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum VmFault {
    BootFailure,
    LossAfter(SimDuration),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_never_draws() {
        let mut inj = FaultInjector::new(FaultConfig::disabled(), 42);
        let before = inj.rng.clone();
        for i in 0..100u64 {
            let now = SimTime::from_micros(i * 1_000_000);
            assert!(inj.sandbox_fault(now).is_none());
            assert!(inj.vm_fault(now).is_none());
            assert!(inj.storage_fault(now).is_none());
            assert!(inj.spot_fault(now).is_none());
        }
        // The RNG stream was never advanced.
        assert_eq!(format!("{before:?}"), format!("{:?}", inj.rng));
    }

    #[test]
    fn same_seed_replays_the_same_schedule() {
        let cfg = FaultConfig::chaos();
        let mut a = FaultInjector::new(cfg.clone(), 7);
        let mut b = FaultInjector::new(cfg, 7);
        for i in 0..1000u64 {
            let now = SimTime::from_micros(i * 10_000);
            assert_eq!(a.sandbox_fault(now), b.sandbox_fault(now));
            assert_eq!(a.storage_fault(now), b.storage_fault(now));
            assert_eq!(a.vm_fault(now), b.vm_fault(now));
        }
    }

    #[test]
    fn probabilities_are_roughly_respected() {
        let cfg = FaultConfig {
            storage_error_prob: 0.2,
            ..FaultConfig::default()
        };
        let mut inj = FaultInjector::new(cfg, 3);
        let n = 20_000;
        let hits = (0..n)
            .filter(|&i| {
                inj.storage_fault(SimTime::from_micros(i as u64))
                    .is_some()
            })
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed rate {rate}");
    }

    #[test]
    fn window_gates_injection() {
        let cfg = FaultConfig {
            storage_error_prob: 1.0,
            window: Some((10.0, 20.0)),
            ..FaultConfig::default()
        };
        let mut inj = FaultInjector::new(cfg, 9);
        assert!(inj.storage_fault(SimTime::from_micros(5_000_000)).is_none());
        assert!(inj.storage_fault(SimTime::from_micros(15_000_000)).is_some());
        assert!(inj.storage_fault(SimTime::from_micros(25_000_000)).is_none());
    }

    #[test]
    fn crash_delays_fall_inside_the_configured_window() {
        let cfg = FaultConfig {
            sandbox_crash_prob: 1.0,
            sandbox_crash_after: (1.0, 4.0),
            ..FaultConfig::default()
        };
        let mut inj = FaultInjector::new(cfg, 11);
        for i in 0..200u64 {
            match inj.sandbox_fault(SimTime::from_micros(i)) {
                Some(SandboxFault::CrashAfter(d)) => {
                    let secs = d.as_secs_f64();
                    assert!((1.0..=4.0).contains(&secs), "delay {secs}");
                }
                other => panic!("expected a planned crash, got {other:?}"),
            }
        }
    }

    #[test]
    fn spot_preemptions_replay_and_fall_in_the_window() {
        let cfg = FaultConfig {
            spot_preemption_prob: 1.0,
            spot_preemption_after: (20.0, 300.0),
            ..FaultConfig::default()
        };
        // A pure spot market is not "chaos enabled": it never fires
        // without explicitly provisioned spot capacity.
        assert!(!cfg.any_enabled());
        let mut a = FaultInjector::new(cfg.clone(), 5);
        let mut b = FaultInjector::new(cfg, 5);
        for i in 0..200u64 {
            let now = SimTime::from_micros(i);
            let (da, db) = (a.spot_fault(now), b.spot_fault(now));
            assert_eq!(da, db, "seeded preemption schedule replays");
            let secs = da.expect("prob 1.0 always preempts").as_secs_f64();
            assert!((20.0..=300.0).contains(&secs), "delay {secs}");
        }
    }

    #[test]
    fn chaos_profile_enables_every_class() {
        assert!(!FaultConfig::disabled().any_enabled());
        let chaos = FaultConfig::chaos();
        assert!(chaos.any_enabled());
        assert!(chaos.sandbox_crash_prob >= 0.05);
        assert!(chaos.storage_error_prob + chaos.storage_slowdown_prob >= 0.10);
        assert!(chaos.vm_boot_failure_prob >= 0.02);
    }
}
