//! A calibrated cloud-region model.
//!
//! `cloudsim` is the substrate the paper ran on, rebuilt as a
//! deterministic discrete-event simulation: an S3-like object storage
//! service whose throughput saturates under parallelism, a Lambda-like
//! FaaS control plane (cold starts, burst limits, memory→vCPU mapping,
//! GB-second billing), an EC2-like VM lifecycle (instance catalog, AMI
//! boot delays, per-second billing with a one-minute minimum), an
//! EMR-Serverless-like managed service, and a Redis-like KV store that
//! the serverful master runs for task distribution.
//!
//! All prices are the us-east-1 on-demand prices the paper quotes
//! (30 June 2024); see [`pricing`].
//!
//! The central type is [`World`]. Clients issue asynchronous operations
//! (`get_object`, `compute`, `vm_provision`, ...), receive [`OpId`]s, and
//! pump [`World::step`] to receive [`Notify`] completions in virtual-time
//! order. Everything above this crate — the Lithops-like framework, the
//! Spark-like baseline — is written against that interface.
//!
//! # Example
//!
//! ```
//! use cloudsim::{CloudConfig, Notify, ObjectBody, OpOutcome, World};
//!
//! let mut world = World::new(CloudConfig::default(), 42);
//! let client = world.client_host();
//! let op = world.put_object(client, "bucket", "hello", ObjectBody::opaque(1024));
//! let (t, notify) = world.step().expect("put completes");
//! match notify {
//!     Notify::Op { op: done, outcome: cloudsim::OpOutcome::PutOk } => assert_eq!(done, op),
//!     other => panic!("unexpected {other:?}"),
//! }
//! assert!(t.as_secs_f64() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod emr;
pub mod faults;
pub mod host;
pub mod ids;
pub mod pricing;
pub mod provider;
pub mod store;
pub mod util;
pub mod world;

pub use config::{CloudConfig, FaasConfig, KvConfig, RegionQuotas, StorageConfig, VmConfig};
pub use emr::EmrJobId;
pub use faults::{FaultConfig, FaultKind};
pub use host::HostId;
pub use ids::{KvId, OpId, SandboxId, VmId};
pub use pricing::{
    catalog, instance_type, instances_within_mem, largest_instance_within_mem,
    smallest_instance_with_mem, InstanceType, LambdaTariff, S3Tariff,
};
pub use provider::{
    default_region, providers, region, region_keys, region_of, regions, Provider, RegionProfile,
    SpotMarket,
};
pub use store::{ObjectBody, ObjectStore};
pub use world::{Notify, OpOutcome, Tenancy, World};
