//! The price list.
//!
//! On-demand us-east-1 prices as the paper quotes them (30 June 2024):
//! a c5.4xlarge vCPU costs 0.12e-4 $/s while a Lambda vCPU-equivalent
//! (1769 MB of memory) costs 0.28e-4 $/s — the 2.3× asymmetry the whole
//! argument for serverful stateful stages rests on.

/// An EC2-like instance type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceType {
    /// API name, e.g. `"m4.4xlarge"`.
    pub name: &'static str,
    /// Number of vCPUs.
    pub vcpus: u32,
    /// Memory in GiB.
    pub mem_gib: f64,
    /// On-demand hourly price in dollars.
    pub hourly_usd: f64,
    /// Network baseline bandwidth in Gbit/s.
    pub net_gbps: f64,
}

impl InstanceType {
    /// Price per instance-second.
    pub fn usd_per_second(&self) -> f64 {
        self.hourly_usd / 3600.0
    }

    /// Price per vCPU-second.
    pub fn usd_per_vcpu_second(&self) -> f64 {
        self.usd_per_second() / self.vcpus as f64
    }

    /// NIC bandwidth in bytes/second.
    pub fn net_bytes_per_sec(&self) -> f64 {
        self.net_gbps * 1e9 / 8.0
    }
}

/// The instance catalog used by the paper and by the sizing policy.
/// Sorted by memory so the sizing policy can scan smallest-first.
pub const CATALOG: &[InstanceType] = &[
    InstanceType {
        name: "c5.large",
        vcpus: 2,
        mem_gib: 4.0,
        hourly_usd: 0.085,
        net_gbps: 2.0,
    },
    InstanceType {
        name: "c5.2xlarge",
        vcpus: 8,
        mem_gib: 16.0,
        hourly_usd: 0.34,
        net_gbps: 5.0,
    },
    InstanceType {
        name: "c5.4xlarge",
        vcpus: 16,
        mem_gib: 32.0,
        hourly_usd: 0.68,
        net_gbps: 5.0,
    },
    InstanceType {
        name: "m4.4xlarge",
        vcpus: 16,
        mem_gib: 64.0,
        hourly_usd: 0.80,
        net_gbps: 2.0,
    },
    InstanceType {
        name: "r5.4xlarge",
        vcpus: 16,
        mem_gib: 128.0,
        hourly_usd: 1.008,
        net_gbps: 5.0,
    },
    InstanceType {
        name: "r5.8xlarge",
        vcpus: 32,
        mem_gib: 256.0,
        hourly_usd: 2.016,
        net_gbps: 10.0,
    },
    InstanceType {
        name: "r5.16xlarge",
        vcpus: 64,
        mem_gib: 512.0,
        hourly_usd: 4.032,
        net_gbps: 20.0,
    },
    InstanceType {
        name: "m6a.32xlarge",
        vcpus: 128,
        mem_gib: 512.0,
        hourly_usd: 5.5296,
        net_gbps: 50.0,
    },
    InstanceType {
        name: "r5.24xlarge",
        vcpus: 96,
        mem_gib: 768.0,
        hourly_usd: 6.048,
        net_gbps: 25.0,
    },
    InstanceType {
        name: "u7i-12tb.224xlarge",
        vcpus: 896,
        mem_gib: 12288.0,
        hourly_usd: 113.568,
        net_gbps: 100.0,
    },
];

/// The full instance catalog.
pub fn catalog() -> &'static [InstanceType] {
    CATALOG
}

/// Looks up an instance type by name.
///
/// # Example
///
/// ```
/// let it = cloudsim::instance_type("c5.4xlarge").expect("in catalog");
/// // The paper's quoted vCPU price: 0.12e-4 $/s.
/// assert!((it.usd_per_vcpu_second() - 0.118e-4).abs() < 0.01e-4);
/// ```
pub fn instance_type(name: &str) -> Option<&'static InstanceType> {
    CATALOG.iter().find(|it| it.name == name)
}

/// The smallest catalog instance with at least `need_gib` of memory —
/// the scan the sizing policy's "empirically defined bounds" rule makes
/// (the catalog is sorted by memory, so first match = smallest).
///
/// # Example
///
/// ```
/// let it = cloudsim::smallest_instance_with_mem(40.0).expect("fits");
/// assert_eq!(it.name, "m4.4xlarge"); // 64 GiB
/// ```
pub fn smallest_instance_with_mem(need_gib: f64) -> Option<&'static InstanceType> {
    CATALOG.iter().find(|it| it.mem_gib >= need_gib)
}

/// The largest catalog instance with at most `bound_gib` of memory —
/// the fallback when a requirement exceeds the bound table and work
/// must split into sequential rounds.
pub fn largest_instance_within_mem(bound_gib: f64) -> Option<&'static InstanceType> {
    CATALOG.iter().rfind(|it| it.mem_gib <= bound_gib)
}

/// The catalog instances whose memory lies within `bound_gib` — the
/// slice a bounded search (sizing policy, deployment planner) may pick
/// from. Preserves catalog order (sorted by memory).
pub fn instances_within_mem(bound_gib: f64) -> impl Iterator<Item = &'static InstanceType> {
    CATALOG.iter().filter(move |it| it.mem_gib <= bound_gib)
}

/// AWS Lambda tariff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LambdaTariff {
    /// Dollars per GiB-second of configured memory.
    pub usd_per_gib_second: f64,
    /// Dollars per invocation.
    pub usd_per_request: f64,
    /// Memory that buys one full vCPU, in MB (AWS documents 1769 MB).
    pub mb_per_vcpu: f64,
}

impl Default for LambdaTariff {
    fn default() -> Self {
        LambdaTariff {
            usd_per_gib_second: 0.0000166667,
            usd_per_request: 0.0000002,
            mb_per_vcpu: 1769.0,
        }
    }
}

impl LambdaTariff {
    /// The vCPU share a memory configuration buys (AWS allocates CPU
    /// proportionally to memory).
    pub fn vcpus_for_mb(&self, mem_mb: u32) -> f64 {
        mem_mb as f64 / self.mb_per_vcpu
    }

    /// Cost of one sandbox running for `secs` with `mem_mb` of memory.
    pub fn compute_usd(&self, mem_mb: u32, secs: f64) -> f64 {
        let gib = mem_mb as f64 / 1024.0;
        gib * secs * self.usd_per_gib_second
    }

    /// Effective price per vCPU-second at a memory configuration.
    pub fn usd_per_vcpu_second(&self, mem_mb: u32) -> f64 {
        self.compute_usd(mem_mb, 1.0) / self.vcpus_for_mb(mem_mb)
    }
}

/// S3-like request tariff (data transfer within a region is free).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct S3Tariff {
    /// Dollars per GET request.
    pub usd_per_get: f64,
    /// Dollars per PUT request.
    pub usd_per_put: f64,
    /// Dollars per LIST request.
    pub usd_per_list: f64,
}

impl Default for S3Tariff {
    fn default() -> Self {
        S3Tariff {
            usd_per_get: 0.0000004,
            usd_per_put: 0.000005,
            usd_per_list: 0.000005,
        }
    }
}

/// EMR-Serverless-like managed tariff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmrTariff {
    /// Dollars per worker vCPU-second.
    pub usd_per_vcpu_second: f64,
    /// Dollars per worker GiB-second of memory.
    pub usd_per_gib_second: f64,
}

impl Default for EmrTariff {
    fn default() -> Self {
        EmrTariff {
            usd_per_vcpu_second: 0.052624 / 3600.0,
            usd_per_gib_second: 0.0057785 / 3600.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_sorted_by_memory() {
        for pair in CATALOG.windows(2) {
            assert!(
                pair[0].mem_gib <= pair[1].mem_gib,
                "{} before {}",
                pair[0].name,
                pair[1].name
            );
        }
    }

    #[test]
    fn paper_quoted_vcpu_prices_hold() {
        // Paper Section 4.2: c5.4xlarge vCPU = 0.12e-4 $/s.
        let c5 = instance_type("c5.4xlarge").unwrap();
        assert!((c5.usd_per_vcpu_second() - 0.12e-4).abs() < 0.005e-4);
        // Paper: Lambda at 1769 MB = 0.28e-4 $/s per vCPU.
        let lambda = LambdaTariff::default();
        assert!((lambda.usd_per_vcpu_second(1769) - 0.28e-4).abs() < 0.01e-4);
        // The asymmetry that motivates the whole paper: ~2.3x.
        let ratio = lambda.usd_per_vcpu_second(1769) / c5.usd_per_vcpu_second();
        assert!((2.0..2.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn lambda_vcpu_mapping() {
        let t = LambdaTariff::default();
        assert!((t.vcpus_for_mb(1769) - 1.0).abs() < 1e-12);
        assert!((t.vcpus_for_mb(3538) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lambda_compute_cost_scales_with_memory_and_time() {
        let t = LambdaTariff::default();
        let one = t.compute_usd(1024, 10.0);
        assert!((one - 10.0 * 0.0000166667).abs() < 1e-12);
        assert!((t.compute_usd(2048, 10.0) - 2.0 * one).abs() < 1e-12);
    }

    #[test]
    fn instance_lookup_misses_gracefully() {
        assert!(instance_type("nope.large").is_none());
    }

    #[test]
    fn catalog_scans_agree_with_each_other() {
        // smallest ≥ need and largest ≤ bound bracket every memory size.
        for it in CATALOG {
            assert_eq!(
                smallest_instance_with_mem(it.mem_gib).unwrap().mem_gib,
                it.mem_gib
            );
            assert_eq!(
                largest_instance_within_mem(it.mem_gib).unwrap().mem_gib,
                it.mem_gib
            );
        }
        assert!(smallest_instance_with_mem(f64::INFINITY).is_none());
        assert!(largest_instance_within_mem(0.0).is_none());
        let bounded: Vec<&str> = instances_within_mem(64.0).map(|it| it.name).collect();
        assert_eq!(bounded, ["c5.large", "c5.2xlarge", "c5.4xlarge", "m4.4xlarge"]);
    }

    #[test]
    fn net_bandwidth_converts_to_bytes() {
        let it = instance_type("m4.4xlarge").unwrap();
        assert_eq!(it.net_bytes_per_sec(), 2.0e9 / 8.0);
    }
}
