//! The managed-analytics-service model (EMR-Serverless-like).
//!
//! Table 1 of the paper compares a 100×5 s map across AWS Lambda, EC2 and
//! EMR Serverless; the managed service loses badly (134.87 s) because of
//! application startup. This module models exactly that shape: a long
//! startup, a fixed default worker pool executing the map in waves, a
//! teardown, and premium per-vCPU/GiB-second billing.
//!
//! Jobs are submitted through [`World::emr_submit`](crate::World::emr_submit)
//! and complete as [`Notify::EmrDone`](crate::Notify::EmrDone).

use std::fmt;

use simkernel::{SimTime, SlotPool};

/// Identifies a managed-service job within one [`World`](crate::World).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EmrJobId(u64);

impl EmrJobId {
    #[doc(hidden)]
    pub fn from_index(index: u64) -> Self {
        EmrJobId(index)
    }

    #[doc(hidden)]
    pub fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for EmrJobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "emr-job-{}", self.0)
    }
}

/// Internal job state.
#[derive(Debug)]
pub(crate) struct EmrJob {
    pub cpu_secs_per_task: f64,
    pub vcpus: usize,
    pub remaining: usize,
    pub started: Option<SimTime>,
    slots: SlotPool<()>,
    queued: usize,
}

impl EmrJob {
    pub(crate) fn new(tasks: usize, cpu_secs_per_task: f64, vcpus: usize) -> Self {
        EmrJob {
            cpu_secs_per_task,
            vcpus,
            remaining: tasks,
            started: None,
            slots: SlotPool::new(vcpus),
            queued: tasks,
        }
    }

    /// Submits every task; returns how many were admitted immediately.
    pub(crate) fn start_all(&mut self) -> usize {
        let mut admitted = 0;
        for _ in 0..self.queued {
            if self.slots.submit(()).is_some() {
                admitted += 1;
            }
        }
        self.queued = 0;
        admitted
    }

    /// Marks one running task done; returns true if a queued task was
    /// admitted in its place (the caller schedules its completion).
    pub(crate) fn task_done(&mut self) -> bool {
        self.remaining -= 1;
        self.slots.release().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waves_form_when_tasks_exceed_vcpus() {
        let mut job = EmrJob::new(100, 5.0, 48);
        assert_eq!(job.start_all(), 48);
        // First 48 finish; each admits a replacement until the queue
        // drains (52 queued).
        let mut replacements = 0;
        for _ in 0..48 {
            if job.task_done() {
                replacements += 1;
            }
        }
        assert_eq!(replacements, 48);
        for _ in 0..48 {
            if job.task_done() {
                replacements += 1;
            }
        }
        assert_eq!(replacements, 52);
        for _ in 0..4 {
            job.task_done();
        }
        assert_eq!(job.remaining, 0);
    }

    #[test]
    fn small_job_fits_one_wave() {
        let mut job = EmrJob::new(10, 1.0, 48);
        assert_eq!(job.start_all(), 10);
        for _ in 0..10 {
            assert!(!job.task_done());
        }
        assert_eq!(job.remaining, 0);
    }

    #[test]
    fn display_id() {
        assert_eq!(EmrJobId::from_index(2).to_string(), "emr-job-2");
    }
}
