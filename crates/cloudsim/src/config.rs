//! Calibration knobs for the cloud model.
//!
//! Defaults are calibrated so the microbenchmark shapes of the paper hold
//! (see EXPERIMENTS.md): object storage saturates under a few GB/s of
//! aggregate demand, Lambda sandboxes start in about a second, VMs boot
//! from a pre-built AMI in about half a minute, and the managed analytics
//! service takes about two minutes to spin up.

use crate::faults::FaultConfig;
use crate::pricing::{EmrTariff, InstanceType, LambdaTariff, S3Tariff, CATALOG};

/// Object-storage model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageConfig {
    /// Aggregate service throughput shared by all in-flight transfers,
    /// bytes/s.
    pub aggregate_bps: f64,
    /// Throughput available under one top-level key prefix, bytes/s.
    /// S3-like stores scale per prefix; an all-to-all exchange whose
    /// pieces live under a single prefix saturates this — the resource
    /// behind the paper's "serverless sort hindrance".
    pub per_prefix_bps: f64,
    /// Per-connection throughput cap, bytes/s (~85 MB/s is typical for a
    /// single S3 GET stream).
    pub per_conn_bps: f64,
    /// Mean / std of GET time-to-first-byte, seconds.
    pub get_latency: (f64, f64),
    /// Mean / std of PUT first-byte latency, seconds.
    pub put_latency: (f64, f64),
    /// Mean / std of LIST latency, seconds.
    pub list_latency: (f64, f64),
    /// Admission rate for GET-class requests, requests/s (per-prefix rate
    /// limits in real S3).
    pub get_rate_per_sec: f64,
    /// Admission rate for PUT-class requests, requests/s.
    pub put_rate_per_sec: f64,
    /// Request tariff.
    pub tariff: S3Tariff,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            aggregate_bps: 30.0e9,
            per_prefix_bps: 0.5e9,
            per_conn_bps: 85.0e6,
            get_latency: (0.025, 0.008),
            put_latency: (0.035, 0.010),
            list_latency: (0.040, 0.010),
            get_rate_per_sec: 5500.0,
            put_rate_per_sec: 3500.0,
            tariff: S3Tariff {
                usd_per_get: 0.0000004,
                usd_per_put: 0.000005,
                usd_per_list: 0.000005,
            },
        }
    }
}

/// FaaS (cloud-function) model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FaasConfig {
    /// Client-to-control-plane invoke latency mean/std, seconds.
    pub invoke_latency: (f64, f64),
    /// Cold-start median, seconds (container fetch + runtime init).
    pub cold_start_median: f64,
    /// Cold-start log-normal sigma.
    pub cold_start_sigma: f64,
    /// Sandbox starts allowed immediately (burst concurrency).
    pub burst: u32,
    /// Sandbox start rate after the burst is exhausted, starts/s.
    pub starts_per_sec: f64,
    /// Sandbox NIC bandwidth, bytes/s.
    pub sandbox_net_bps: f64,
    /// Tariff (also defines the memory→vCPU mapping).
    pub tariff: LambdaTariff,
}

impl Default for FaasConfig {
    fn default() -> Self {
        FaasConfig {
            invoke_latency: (0.025, 0.008),
            cold_start_median: 2.5,
            cold_start_sigma: 0.35,
            burst: 3000,
            starts_per_sec: 500.0,
            sandbox_net_bps: 100.0e6,
            tariff: LambdaTariff::default(),
        }
    }
}

/// VM (EC2-like) model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct VmConfig {
    /// Mean / std of boot time from a pre-built AMI, seconds.
    pub boot: (f64, f64),
    /// Mean / std of the post-boot agent/SSH setup, seconds.
    pub setup: (f64, f64),
    /// Seconds of billed time a terminate costs (deprovisioning tail).
    pub terminate_secs: f64,
    /// Minimum billed seconds per instance (AWS bills at least 60 s).
    pub min_billed_secs: f64,
    /// The region's instance catalog and price list; defaults to the
    /// paper's us-east-1 catalog ([`crate::pricing::CATALOG`]). Set by
    /// [`RegionProfile::apply`](crate::provider::RegionProfile::apply)
    /// when a non-default region is selected.
    pub catalog: &'static [InstanceType],
    /// Fractional discount applied to uptime billed for instances
    /// provisioned as [`Tenancy::Spot`](crate::Tenancy::Spot); see
    /// [`SpotMarket::discount`](crate::provider::SpotMarket::discount).
    /// Irrelevant (and never read) for on-demand provisions.
    pub spot_discount: f64,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            boot: (33.0, 3.5),
            setup: (2.5, 0.5),
            terminate_secs: 1.5,
            min_billed_secs: 60.0,
            catalog: CATALOG,
            spot_discount: 0.65,
        }
    }
}

impl VmConfig {
    /// Looks up an instance type in the configured regional catalog.
    pub fn instance_type(&self, name: &str) -> Option<&'static InstanceType> {
        self.catalog.iter().find(|it| it.name == name)
    }

    /// The uptime price multiplier of a spot instance,
    /// `1 - spot_discount`, clamped to `[0, 1]`.
    pub fn spot_price_mult(&self) -> f64 {
        (1.0 - self.spot_discount).clamp(0.0, 1.0)
    }
}

/// Redis-like KV service parameters (runs on the master VM).
#[derive(Debug, Clone, PartialEq)]
pub struct KvConfig {
    /// Per-operation latency mean/std, seconds.
    pub op_latency: (f64, f64),
    /// Per-connection cap for KV transfers, bytes/s.
    pub per_conn_bps: f64,
    /// Throughput for host-local (same-VM, shared-memory) transfers,
    /// bytes/s per flow.
    pub local_bps: f64,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            op_latency: (0.0008, 0.0002),
            per_conn_bps: 600.0e6,
            local_bps: 4.0e9,
        }
    }
}

/// Managed-analytics-service (EMR-Serverless-like) parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct EmrConfig {
    /// Mean / std of application startup, seconds. Table 1 measures
    /// 134.87 s end-to-end for 100×5 s of work, which is dominated by this.
    pub startup: (f64, f64),
    /// Worker vCPUs available with default execution parameters.
    pub default_vcpus: u32,
    /// GiB of memory per worker vCPU (billing).
    pub gib_per_vcpu: f64,
    /// Per-task dispatch overhead, seconds.
    pub dispatch_overhead: f64,
    /// Teardown, seconds.
    pub teardown: (f64, f64),
    /// Tariff.
    pub tariff: EmrTariff,
}

impl Default for EmrConfig {
    fn default() -> Self {
        EmrConfig {
            startup: (120.0, 6.0),
            default_vcpus: 48,
            gib_per_vcpu: 4.0,
            dispatch_overhead: 0.25,
            teardown: (4.0, 1.0),
            tariff: EmrTariff::default(),
        }
    }
}

/// Region-level account quotas shared by every tenant of the simulated
/// region.
///
/// Real clouds cap an *account*, not a job: Lambda has a regional
/// concurrent-execution limit and EC2 a regional vCPU limit. A single
/// METASPACE run rarely notices either, but a fleet of concurrent jobs
/// does — which is exactly the contention the `fleet` crate's admission
/// controller models. The [`World`](crate::World) only *counts* usage
/// ([`World::faas_active`](crate::World::faas_active),
/// [`World::vm_vcpus_active`](crate::World::vm_vcpus_active)); admission
/// policy lives in the layer that decides whether to queue or degrade.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionQuotas {
    /// Maximum concurrently-active Lambda sandboxes for the account.
    pub lambda_concurrency: usize,
    /// Maximum total vCPUs across running EC2 instances for the account.
    pub ec2_vcpus: f64,
}

impl Default for RegionQuotas {
    fn default() -> Self {
        // Generous enough that single-job reproductions never hit them;
        // fleet scenarios tighten these deliberately.
        RegionQuotas {
            lambda_concurrency: 10_000,
            ec2_vcpus: 4096.0,
        }
    }
}

/// Top-level cloud model configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CloudConfig {
    /// Object storage knobs.
    pub storage: StorageConfig,
    /// FaaS knobs.
    pub faas: FaasConfig,
    /// VM knobs.
    pub vm: VmConfig,
    /// KV knobs.
    pub kv: KvConfig,
    /// Managed-service knobs.
    pub emr: EmrConfig,
    /// Client (Lithops scheduler host) knobs.
    pub client: ClientConfig,
    /// Fault-injection knobs (all disabled by default).
    pub faults: FaultConfig,
    /// Region-level account quotas (generous by default).
    pub quotas: RegionQuotas,
}

/// The host that runs the framework client/scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientConfig {
    /// Client NIC bandwidth, bytes/s.
    pub net_bps: f64,
    /// Client vCPUs (scheduler work runs here).
    pub vcpus: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            net_bps: 1.25e9, // 10 Gbit/s in-region VM
            vcpus: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_internally_consistent() {
        let cfg = CloudConfig::default();
        assert!(!cfg.faults.any_enabled(), "faults must default to off");
        assert!(cfg.storage.per_conn_bps < cfg.storage.aggregate_bps);
        assert!(cfg.faas.cold_start_median > 0.0);
        assert!(cfg.vm.boot.0 > cfg.vm.setup.0);
        assert!(cfg.kv.local_bps > cfg.kv.per_conn_bps);
        assert!(cfg.emr.startup.0 > cfg.vm.boot.0);
    }

    #[test]
    fn config_is_cloneable_and_comparable() {
        let a = CloudConfig::default();
        let mut b = a.clone();
        assert_eq!(a, b);
        b.storage.aggregate_bps *= 2.0;
        assert_ne!(a, b);
    }
}
