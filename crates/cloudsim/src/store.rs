//! The object-storage data plane.
//!
//! [`ObjectStore`] holds the durable state behind the storage service's
//! timing model. Objects carry an [`ObjectBody`]: either real bytes (used
//! by correctness tests and small-scale examples, so a distributed sort
//! can be verified to actually sort) or an *opaque* declared size (used by
//! paper-scale benchmark runs, where materialising hundreds of GB would
//! be pointless — timing depends only on the size).

use std::collections::BTreeMap;
use std::fmt;

use bytes::Bytes;

/// The contents of a stored object.
#[derive(Clone, PartialEq, Eq)]
pub enum ObjectBody {
    /// Real bytes; `len` is their actual length.
    Real(Bytes),
    /// A size-only stand-in for large synthetic payloads.
    Opaque {
        /// Logical size in bytes.
        size: u64,
    },
}

impl ObjectBody {
    /// Creates a real body from bytes.
    pub fn real(data: impl Into<Bytes>) -> Self {
        ObjectBody::Real(data.into())
    }

    /// Creates a size-only body.
    pub fn opaque(size: u64) -> Self {
        ObjectBody::Opaque { size }
    }

    /// Logical length in bytes (drives transfer time either way).
    pub fn len(&self) -> u64 {
        match self {
            ObjectBody::Real(b) => b.len() as u64,
            ObjectBody::Opaque { size } => *size,
        }
    }

    /// True if the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The real bytes, if this body carries any.
    pub fn bytes(&self) -> Option<&Bytes> {
        match self {
            ObjectBody::Real(b) => Some(b),
            ObjectBody::Opaque { .. } => None,
        }
    }
}

impl fmt::Debug for ObjectBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectBody::Real(b) => write!(f, "Real({} bytes)", b.len()),
            ObjectBody::Opaque { size } => write!(f, "Opaque({size} bytes)"),
        }
    }
}

impl From<Vec<u8>> for ObjectBody {
    fn from(v: Vec<u8>) -> Self {
        ObjectBody::Real(Bytes::from(v))
    }
}

impl From<Bytes> for ObjectBody {
    fn from(b: Bytes) -> Self {
        ObjectBody::Real(b)
    }
}

/// A bucket/key-addressed object map with ordered keys (so `LIST` returns
/// keys in lexicographic order, as S3 does).
///
/// # Example
///
/// ```
/// use cloudsim::{ObjectBody, ObjectStore};
///
/// let mut store = ObjectStore::new();
/// store.put("b", "jobs/0/status", ObjectBody::opaque(64));
/// store.put("b", "jobs/1/status", ObjectBody::opaque(64));
/// assert_eq!(store.list_prefix("b", "jobs/").len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ObjectStore {
    buckets: BTreeMap<String, BTreeMap<String, ObjectBody>>,
}

impl ObjectStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ObjectStore::default()
    }

    /// Inserts (or replaces) an object, returning the previous body if
    /// any.
    pub fn put(&mut self, bucket: &str, key: &str, body: ObjectBody) -> Option<ObjectBody> {
        self.buckets
            .entry(bucket.to_owned())
            .or_default()
            .insert(key.to_owned(), body)
    }

    /// Reads an object.
    pub fn get(&self, bucket: &str, key: &str) -> Option<&ObjectBody> {
        self.buckets.get(bucket)?.get(key)
    }

    /// Removes an object, returning it if present.
    pub fn delete(&mut self, bucket: &str, key: &str) -> Option<ObjectBody> {
        self.buckets.get_mut(bucket)?.remove(key)
    }

    /// Keys in `bucket` starting with `prefix`, in lexicographic order.
    pub fn list_prefix(&self, bucket: &str, prefix: &str) -> Vec<String> {
        match self.buckets.get(bucket) {
            None => Vec::new(),
            Some(objs) => objs
                .range(prefix.to_owned()..)
                .take_while(|(k, _)| k.starts_with(prefix))
                .map(|(k, _)| k.clone())
                .collect(),
        }
    }

    /// Number of objects across all buckets.
    pub fn object_count(&self) -> usize {
        self.buckets.values().map(BTreeMap::len).sum()
    }

    /// Total logical bytes stored.
    pub fn total_bytes(&self) -> u64 {
        self.buckets
            .values()
            .flat_map(|b| b.values())
            .map(ObjectBody::len)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip_real_bytes() {
        let mut store = ObjectStore::new();
        store.put("b", "k", ObjectBody::real(vec![1, 2, 3]));
        let body = store.get("b", "k").unwrap();
        assert_eq!(body.len(), 3);
        assert_eq!(body.bytes().unwrap().as_ref(), &[1, 2, 3]);
    }

    #[test]
    fn opaque_body_has_no_bytes_but_a_length() {
        let body = ObjectBody::opaque(1 << 30);
        assert_eq!(body.len(), 1 << 30);
        assert!(body.bytes().is_none());
        assert!(!body.is_empty());
    }

    #[test]
    fn put_replaces_and_returns_previous() {
        let mut store = ObjectStore::new();
        assert!(store.put("b", "k", ObjectBody::opaque(1)).is_none());
        let prev = store.put("b", "k", ObjectBody::opaque(2)).unwrap();
        assert_eq!(prev.len(), 1);
        assert_eq!(store.get("b", "k").unwrap().len(), 2);
    }

    #[test]
    fn list_prefix_is_ordered_and_bounded() {
        let mut store = ObjectStore::new();
        for key in ["a/2", "a/1", "a/3", "b/1", "a"] {
            store.put("bk", key, ObjectBody::opaque(0));
        }
        assert_eq!(store.list_prefix("bk", "a/"), vec!["a/1", "a/2", "a/3"]);
        assert_eq!(store.list_prefix("bk", "c/"), Vec::<String>::new());
        assert_eq!(store.list_prefix("missing", ""), Vec::<String>::new());
    }

    #[test]
    fn delete_removes() {
        let mut store = ObjectStore::new();
        store.put("b", "k", ObjectBody::opaque(5));
        assert_eq!(store.delete("b", "k").unwrap().len(), 5);
        assert!(store.get("b", "k").is_none());
        assert!(store.delete("b", "k").is_none());
    }

    #[test]
    fn totals_track_contents() {
        let mut store = ObjectStore::new();
        store.put("b", "x", ObjectBody::opaque(10));
        store.put("b", "y", ObjectBody::real(vec![0u8; 20]));
        store.put("c", "z", ObjectBody::opaque(30));
        assert_eq!(store.object_count(), 3);
        assert_eq!(store.total_bytes(), 60);
    }
}
