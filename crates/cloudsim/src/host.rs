//! Compute hosts.
//!
//! Both FaaS sandboxes and VMs present the same compute abstraction: a
//! host with a number of vCPU slots, a speed factor, and a NIC. A VM
//! host has `vcpus` integer slots at full speed; a sandbox host has a
//! single slot whose speed is the fractional vCPU share its memory
//! configuration buys (AWS allocates CPU proportionally to memory below
//! 1769 MB).

use std::fmt;

use simkernel::SlotPool;
use telemetry::FleetTag;

use crate::ids::OpId;

/// Identifies a host (sandbox or VM) within one
/// [`World`](crate::World).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(u64);

impl HostId {
    #[doc(hidden)]
    pub fn from_index(index: u64) -> Self {
        HostId(index)
    }

    #[doc(hidden)]
    pub fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host-{}", self.0)
    }
}

/// A compute job waiting for or occupying a slot.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingCompute {
    pub op: OpId,
    pub cpu_secs: f64,
}

/// Internal host state.
#[derive(Debug)]
pub(crate) struct Host {
    /// vCPUs provisioned (can be fractional for sandboxes).
    pub vcpus: f64,
    /// Compute speed factor: wall time = cpu_secs / speed.
    pub speed: f64,
    /// NIC bandwidth in bytes/s; registered as the host's flow-group cap.
    pub nic_bps: f64,
    /// Compute slots.
    pub slots: SlotPool<PendingCompute>,
    /// Fleet for CPU-utilisation accounting; `None` for the client host.
    pub fleet: Option<FleetTag>,
    /// Whether the host can currently accept work.
    pub alive: bool,
}

impl Host {
    pub(crate) fn new(vcpus: f64, speed: f64, nic_bps: f64, fleet: Option<FleetTag>) -> Self {
        assert!(vcpus > 0.0, "host needs positive vCPUs");
        assert!(speed > 0.0, "host needs positive speed");
        assert!(nic_bps > 0.0, "host needs positive NIC bandwidth");
        let slot_count = (vcpus.floor() as usize).max(1);
        Host {
            vcpus,
            speed,
            nic_bps,
            slots: SlotPool::new(slot_count),
            fleet,
            alive: false,
        }
    }

    /// The busy-vCPU increment one running compute represents.
    pub(crate) fn busy_equiv(&self) -> f64 {
        // A VM slot runs at speed 1.0 and occupies one vCPU; a sandbox's
        // single slot occupies its fractional share.
        self.speed.min(self.vcpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_host_has_one_slot_per_vcpu() {
        let host = Host::new(16.0, 1.0, 1e9, None);
        assert_eq!(host.slots.capacity(), 16);
        assert_eq!(host.busy_equiv(), 1.0);
    }

    #[test]
    fn small_sandbox_has_single_fractional_slot() {
        // A 443 MB sandbox: 0.25 vCPU, one slot, quarter speed.
        let host = Host::new(0.25, 0.25, 1e8, None);
        assert_eq!(host.slots.capacity(), 1);
        assert_eq!(host.busy_equiv(), 0.25);
    }

    #[test]
    fn display_host_id() {
        assert_eq!(HostId::from_index(4).to_string(), "host-4");
    }

    #[test]
    #[should_panic(expected = "positive vCPUs")]
    fn zero_vcpus_panics() {
        Host::new(0.0, 1.0, 1e9, None);
    }
}
