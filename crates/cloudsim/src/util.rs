//! Small modelling utilities shared across services.

use simkernel::{SimDuration, SimTime};

/// A serialising rate limiter: admissions are spaced at least `1/rate`
/// apart. Models per-prefix request-rate limits on the storage service
/// and client-side API call pacing.
///
/// # Example
///
/// ```
/// use cloudsim::util::RateLimiter;
/// use simkernel::SimTime;
///
/// let mut rl = RateLimiter::per_second(10.0); // one admission per 100 ms
/// let t0 = SimTime::ZERO;
/// assert_eq!(rl.admit(t0).as_secs_f64(), 0.0);
/// assert_eq!(rl.admit(t0).as_secs_f64(), 0.1);
/// assert_eq!(rl.admit(t0).as_secs_f64(), 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct RateLimiter {
    gap: SimDuration,
    next_free: SimTime,
}

impl RateLimiter {
    /// Creates a limiter admitting `rate` requests per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive and finite.
    pub fn per_second(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        RateLimiter {
            gap: SimDuration::from_secs_f64(1.0 / rate),
            next_free: SimTime::ZERO,
        }
    }

    /// Returns the admission time for a request arriving at `now` and
    /// reserves the slot.
    pub fn admit(&mut self, now: SimTime) -> SimTime {
        let start = now.max(self.next_free);
        self.next_free = start + self.gap;
        start
    }
}

/// A token bucket: `burst` immediate admissions, refilled at `rate`
/// per second. Models FaaS burst-concurrency scaling.
///
/// # Example
///
/// ```
/// use cloudsim::util::TokenBucket;
/// use simkernel::SimTime;
///
/// let mut tb = TokenBucket::new(2.0, 1.0); // burst 2, +1 token/s
/// let t0 = SimTime::ZERO;
/// assert_eq!(tb.admit(t0).as_secs_f64(), 0.0);
/// assert_eq!(tb.admit(t0).as_secs_f64(), 0.0);
/// assert_eq!(tb.admit(t0).as_secs_f64(), 1.0); // waits for refill
/// ```
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: f64,
    rate: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// Creates a bucket with `capacity` burst tokens refilled at `rate`
    /// tokens per second. The bucket starts full.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `rate` is not positive and finite.
    pub fn new(capacity: f64, rate: f64) -> Self {
        assert!(capacity.is_finite() && capacity > 0.0, "capacity must be positive");
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        TokenBucket {
            capacity,
            rate,
            tokens: capacity,
            last: SimTime::ZERO,
        }
    }

    /// Returns the time at which one token is available for a request
    /// arriving at `now`, consuming it. Tokens may run into deficit; the
    /// deficit expresses the backlog of admissions already promised.
    /// Arrivals that predate an earlier arrival (possible because callers
    /// add jittered latencies) are treated as arriving at the later time.
    pub fn admit(&mut self, now: SimTime) -> SimTime {
        let now = now.max(self.last);
        // Refill for the elapsed interval, clamped at capacity.
        let dt = (now - self.last).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate).min(self.capacity);
        self.last = now;
        self.tokens -= 1.0;
        if self.tokens >= 0.0 {
            now
        } else {
            now + SimDuration::from_secs_f64(-self.tokens / self.rate)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn rate_limiter_spaces_admissions() {
        let mut rl = RateLimiter::per_second(2.0);
        assert_eq!(rl.admit(t(0.0)), t(0.0));
        assert_eq!(rl.admit(t(0.0)), t(0.5));
        assert_eq!(rl.admit(t(0.0)), t(1.0));
        // A late arrival is not penalised.
        assert_eq!(rl.admit(t(10.0)), t(10.0));
    }

    #[test]
    fn token_bucket_burst_then_rate() {
        let mut tb = TokenBucket::new(3.0, 2.0);
        assert_eq!(tb.admit(t(0.0)), t(0.0));
        assert_eq!(tb.admit(t(0.0)), t(0.0));
        assert_eq!(tb.admit(t(0.0)), t(0.0));
        // Burst exhausted: next admissions at +0.5 s each.
        assert_eq!(tb.admit(t(0.0)), t(0.5));
        assert_eq!(tb.admit(t(0.5)), t(1.0));
    }

    #[test]
    fn token_bucket_refills_up_to_capacity() {
        let mut tb = TokenBucket::new(2.0, 1.0);
        tb.admit(t(0.0));
        tb.admit(t(0.0));
        // After 100 s only 2 tokens are back (capacity).
        assert_eq!(tb.admit(t(100.0)), t(100.0));
        assert_eq!(tb.admit(t(100.0)), t(100.0));
        assert_eq!(tb.admit(t(100.0)), t(101.0));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        RateLimiter::per_second(0.0);
    }
}
