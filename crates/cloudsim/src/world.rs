//! The simulated cloud region.
//!
//! [`World`] owns the event queue and every service model. Frameworks
//! drive it with an issue-then-pump pattern:
//!
//! 1. issue asynchronous operations (`get_object`, `compute`,
//!    `vm_provision`, ...), each returning a handle;
//! 2. call [`World::step`] repeatedly; internal events (bandwidth-pool
//!    ticks, admissions, boots) are processed silently and completed
//!    operations surface as [`Notify`] values in virtual-time order.
//!
//! Billing flows into a [`telemetry::CostLedger`] and CPU occupancy into
//! a [`telemetry::CpuMonitor`], both owned by the world.

use std::collections::{HashMap, HashSet, VecDeque};

use simkernel::fair_share::FlowId;
use simkernel::{EventQueue, EventToken, FairShare, SchedStats, SimDuration, SimRng, SimTime};
use telemetry::trace::{SpanId, Tracer};
use telemetry::{
    CostCategory, CostLedger, CpuMonitor, FaultKind, FaultLedger, FleetTag, SuppressReason,
};

use crate::config::CloudConfig;
use crate::emr::{EmrJob, EmrJobId};
use crate::faults::{FaultInjector, SandboxFault, VmFault};
use crate::host::{Host, HostId, PendingCompute};
use crate::ids::{KvId, OpId, SandboxId, VmId};
use crate::pricing::InstanceType;
use crate::store::{ObjectBody, ObjectStore};
use crate::util::{RateLimiter, TokenBucket};

/// A completion surfaced by [`World::step`].
#[derive(Debug)]
#[non_exhaustive]
pub enum Notify {
    /// An asynchronous operation finished.
    Op {
        /// The handle returned when the operation was issued.
        op: OpId,
        /// What happened.
        outcome: OpOutcome,
    },
    /// A FaaS sandbox finished its cold start and is executing.
    SandboxUp {
        /// The sandbox.
        sandbox: SandboxId,
    },
    /// A VM finished booting and is ready for work.
    VmUp {
        /// The VM.
        vm: VmId,
    },
    /// A timer set with [`World::timer`] fired.
    Timer {
        /// The caller-chosen tag.
        tag: u64,
    },
    /// A managed-service job finished (all tasks done, application torn
    /// down).
    EmrDone {
        /// The job.
        job: EmrJobId,
    },
    /// An injected fault took a sandbox down: either the invocation
    /// errored during cold start or the sandbox crashed mid-execution.
    /// The sandbox is dead; do not release it again.
    SandboxFailed {
        /// The sandbox.
        sandbox: SandboxId,
        /// What happened.
        fault: FaultKind,
    },
    /// An injected fault took a VM down: the provision request failed
    /// at boot or the running instance was lost. The VM is dead; do not
    /// terminate it again.
    VmFailed {
        /// The VM.
        vm: VmId,
        /// What happened.
        fault: FaultKind,
    },
}

/// The result of a completed operation.
#[derive(Debug)]
#[non_exhaustive]
pub enum OpOutcome {
    /// Object stored.
    PutOk,
    /// Object fetched.
    GetOk {
        /// The object body (real bytes or opaque size).
        body: ObjectBody,
    },
    /// GET on a key that does not exist.
    GetMissing,
    /// Keys matching the listed prefix, in lexicographic order.
    ListOk {
        /// Matching keys.
        keys: Vec<String>,
    },
    /// Object deleted (or did not exist).
    DeleteOk,
    /// Compute segment finished.
    ComputeOk,
    /// Sleep elapsed.
    SleepOk,
    /// KV write (put/push) applied.
    KvOk,
    /// KV read (get/pop) result; `None` if the key/queue was empty.
    KvValue {
        /// The value, if present.
        body: Option<ObjectBody>,
    },
    /// Host-to-host transfer finished.
    TransferOk,
    /// The KV server this operation targeted died (its host was lost)
    /// before the operation completed. Not retryable against the same
    /// server; recovery must re-route to a replacement.
    KvUnreachable,
    /// The operation failed with an injected transient fault; the
    /// caller may retry it.
    Faulted {
        /// The injected fault class.
        fault: FaultKind,
    },
}

/// Internal events.
#[derive(Debug)]
enum Ev {
    StorageStart { op: OpId },
    StorageTick,
    VpcStart { op: OpId },
    VpcTick,
    KvStart { op: OpId },
    KvTick { kv: KvId },
    ComputeDone { host: HostId, op: OpId },
    SleepDone { op: OpId },
    SandboxUp { sandbox: SandboxId },
    VmUp { vm: VmId },
    Timer { tag: u64 },
    EmrUp { job: EmrJobId },
    EmrTaskDone { job: EmrJobId },
    EmrTorn { job: EmrJobId },
    // Injected faults.
    StorageFault { op: OpId, fault: FaultKind },
    SandboxInvokeFail { sandbox: SandboxId },
    SandboxCrash { sandbox: SandboxId },
    VmBootFail { vm: VmId },
    VmCrash { vm: VmId },
    VmPreempt { vm: VmId },
}

/// How a VM's capacity is bought.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Tenancy {
    /// Regular on-demand capacity at the catalog price (the default —
    /// and the paper's only mode).
    #[default]
    OnDemand,
    /// Spot capacity: uptime bills at `(1 - discount) ×` the catalog
    /// price ([`VmConfig::spot_discount`](crate::VmConfig)), but the
    /// provider may reclaim the instance at any time — surfacing as
    /// [`Notify::VmFailed`] with [`FaultKind::SpotPreemption`].
    Spot,
}

/// What to do when a storage/KV flow completes.
#[derive(Debug)]
enum FlowDone {
    Get { op: OpId, body: ObjectBody },
    Put {
        op: OpId,
        bucket: String,
        key: String,
        body: ObjectBody,
    },
    KvValue { op: OpId, kv: KvId, body: ObjectBody },
    KvPut { op: OpId, kv: KvId, key: String, body: ObjectBody },
    KvPush { op: OpId, kv: KvId, queue: String, body: ObjectBody },
    TransferDone { op: OpId },
}

/// Pending operation state between issue and completion.
#[derive(Debug)]
enum OpKind {
    Get { from: HostId, bucket: String, key: String },
    Put { from: HostId, bucket: String, key: String, body: ObjectBody },
    List { bucket: String, prefix: String },
    Delete { bucket: String, key: String },
    Compute,
    Sleep,
    KvPut { from: HostId, kv: KvId, key: String, body: ObjectBody },
    KvGet { from: HostId, kv: KvId, key: String },
    KvPush { from: HostId, kv: KvId, queue: String, body: ObjectBody },
    KvPop { from: HostId, kv: KvId, queue: String },
    Transfer { from: HostId, to: HostId, bytes: u64 },
}

#[derive(Debug)]
struct Sandbox {
    host: HostId,
    mem_mb: u32,
    started: Option<SimTime>,
    released: bool,
    fleet: FleetTag,
    /// Bill label captured at invoke time, so the charge lands on the
    /// job that created the sandbox even if another job's label is
    /// current when it retires (concurrent multi-job worlds).
    bill_label: String,
    /// Injected crash scheduled to fire this long after user code
    /// starts (decided at invoke time).
    planned_crash: Option<SimDuration>,
    /// Trace span covering invoke + burst admission + cold start.
    cold_span: SpanId,
    /// Trace span covering the billed execution window.
    exec_span: SpanId,
    /// Parent span recorded at invoke time, inherited by `exec_span`.
    span_parent: SpanId,
}

#[derive(Debug)]
struct Vm {
    host: HostId,
    itype: InstanceType,
    up_at: Option<SimTime>,
    terminated: bool,
    fleet: FleetTag,
    /// Bill label captured at provision time (see [`Sandbox::bill_label`]).
    bill_label: String,
    /// Injected loss scheduled to fire this long after the VM comes up
    /// (decided at provision time).
    planned_loss: Option<SimDuration>,
    /// How the capacity was bought (spot uptime bills discounted).
    tenancy: Tenancy,
    /// Uptime price multiplier: 1.0 on-demand, `1 - discount` for spot.
    price_mult: f64,
    /// Spot reclaim scheduled to fire this long after the VM comes up
    /// (decided at provision time; spot tenancy only).
    planned_preempt: Option<SimDuration>,
    /// Trace span covering boot + agent setup.
    boot_span: SpanId,
    /// Trace span covering the billed uptime.
    run_span: SpanId,
    /// Parent span recorded at provision time, inherited by `run_span`.
    span_parent: SpanId,
}

#[derive(Debug)]
struct Kv {
    host: HostId,
    pool: FairShare,
    tick: Option<EventToken>,
    flows: HashMap<FlowId, FlowDone>,
    data: HashMap<String, ObjectBody>,
    queues: HashMap<String, VecDeque<ObjectBody>>,
    /// Set when the hosting VM was killed; every subsequent (or still
    /// in-flight) operation resolves as [`OpOutcome::KvUnreachable`].
    dead: bool,
}

/// The simulated cloud region. See the [module docs](self).
#[derive(Debug)]
pub struct World {
    cfg: CloudConfig,
    queue: EventQueue<Ev>,
    rng: SimRng,
    outbox: VecDeque<Notify>,

    // Object storage.
    store: ObjectStore,
    st_pool: FairShare,
    st_tick: Option<EventToken>,
    st_flows: HashMap<FlowId, FlowDone>,
    st_get_rl: RateLimiter,
    st_put_rl: RateLimiter,
    prefix_groups: HashMap<String, u64>,

    // Direct host-to-host transfers (cluster shuffle traffic).
    vpc_pool: FairShare,
    vpc_tick: Option<EventToken>,
    vpc_flows: HashMap<FlowId, FlowDone>,

    // Hosts / sandboxes / VMs / KV.
    hosts: Vec<Host>,
    client: HostId,
    sandboxes: Vec<Sandbox>,
    faas_bucket: TokenBucket,
    vms: Vec<Vm>,
    kvs: Vec<Kv>,
    emr_jobs: Vec<EmrJob>,

    // Op bookkeeping.
    ops: HashMap<OpId, OpKind>,
    next_op: u64,
    /// Host-local KV transfers finishing after a plain delay.
    local_finishers: HashMap<OpId, FlowDone>,

    // Fault injection.
    faults: FaultInjector,
    /// Hosts the injector must never take down mid-job (masters; hosts
    /// running a KV server are spared automatically).
    protected_hosts: HashSet<HostId>,

    // Telemetry.
    ledger: CostLedger,
    cpu: CpuMonitor,
    fault_ledger: FaultLedger,
    fleets: HashMap<String, FleetTag>,
    bill_label: String,

    // Region-quota usage (the counters the fleet admission controller
    // reads; enforcement policy lives above this crate).
    active_sandboxes: usize,
    active_vm_vcpus: f64,

    // Tracing (zero-cost while the tracer is disabled).
    tracer: Tracer,
    /// Parent for spans opened at issue time; set by the framework
    /// around the operations it issues on behalf of a task.
    trace_parent: SpanId,
    /// Open span per in-flight operation.
    op_spans: HashMap<OpId, SpanId>,
}

impl World {
    /// Creates a region from a configuration and a deterministic seed.
    pub fn new(cfg: CloudConfig, seed: u64) -> World {
        let mut st_pool = FairShare::new(cfg.storage.aggregate_bps, cfg.storage.per_conn_bps);
        let mut hosts = Vec::new();
        let client_host = Host::new(cfg.client.vcpus as f64, 1.0, cfg.client.net_bps, None);
        st_pool.set_group_cap(0, client_host.nic_bps);
        let mut vpc_pool = FairShare::new(f64::INFINITY, 1.25e9);
        vpc_pool.set_group_cap(0, client_host.nic_bps);
        hosts.push(client_host);
        hosts[0].alive = true;
        let faas_bucket = TokenBucket::new(cfg.faas.burst as f64, cfg.faas.starts_per_sec);
        let st_get_rl = RateLimiter::per_second(cfg.storage.get_rate_per_sec);
        let st_put_rl = RateLimiter::per_second(cfg.storage.put_rate_per_sec);
        let faults = FaultInjector::new(cfg.faults.clone(), seed);
        World {
            queue: EventQueue::new(),
            rng: SimRng::seed_from(seed),
            outbox: VecDeque::new(),
            store: ObjectStore::new(),
            st_pool,
            st_tick: None,
            st_flows: HashMap::new(),
            st_get_rl,
            st_put_rl,
            prefix_groups: HashMap::new(),
            vpc_pool,
            vpc_tick: None,
            vpc_flows: HashMap::new(),
            hosts,
            client: HostId::from_index(0),
            sandboxes: Vec::new(),
            faas_bucket,
            vms: Vec::new(),
            kvs: Vec::new(),
            emr_jobs: Vec::new(),
            ops: HashMap::new(),
            next_op: 0,
            local_finishers: HashMap::new(),
            faults,
            protected_hosts: HashSet::new(),
            ledger: CostLedger::new(),
            cpu: CpuMonitor::new(),
            fault_ledger: FaultLedger::new(),
            fleets: HashMap::new(),
            bill_label: String::new(),
            active_sandboxes: 0,
            active_vm_vcpus: 0.0,
            tracer: Tracer::new(),
            trace_parent: SpanId::NONE,
            op_spans: HashMap::new(),
            cfg,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The host the framework client (scheduler) runs on.
    pub fn client_host(&self) -> HostId {
        self.client
    }

    /// The configuration the world was built with.
    pub fn config(&self) -> &CloudConfig {
        &self.cfg
    }

    /// Read access to the object store (for tests and result collection
    /// outside the timed path).
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// Inserts an object directly, bypassing the timing and billing
    /// models. For experiment setup (pre-loading input datasets), never
    /// for the measured path.
    pub fn seed_object(&mut self, bucket: &str, key: &str, body: ObjectBody) {
        self.store.put(bucket, key, body);
    }

    /// The billing ledger.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Mutable billing ledger (e.g. to reset between warm-up and
    /// measurement).
    pub fn ledger_mut(&mut self) -> &mut CostLedger {
        &mut self.ledger
    }

    /// Cloud-function sandboxes currently counted against the account's
    /// regional concurrency (invoked and not yet retired). The `fleet`
    /// admission controller compares this against
    /// [`RegionQuotas::lambda_concurrency`](crate::RegionQuotas).
    pub fn faas_active(&self) -> usize {
        self.active_sandboxes
    }

    /// Total vCPUs of VMs currently counted against the account's
    /// regional EC2 capacity (provisioned and not yet terminated).
    /// Compared against [`RegionQuotas::ec2_vcpus`](crate::RegionQuotas).
    pub fn vm_vcpus_active(&self) -> f64 {
        self.active_vm_vcpus
    }

    /// The CPU monitor.
    pub fn cpu_monitor(&self) -> &CpuMonitor {
        &self.cpu
    }

    /// Mutable CPU monitor (frameworks add their scheduler occupancy).
    pub fn cpu_monitor_mut(&mut self) -> &mut CpuMonitor {
        &mut self.cpu
    }

    /// The fault/retry ledger.
    pub fn fault_ledger(&self) -> &FaultLedger {
        &self.fault_ledger
    }

    /// Mutable fault/retry ledger (frameworks record their retries and
    /// give-ups next to the world's injection counters).
    pub fn fault_ledger_mut(&mut self) -> &mut FaultLedger {
        &mut self.fault_ledger
    }

    /// Turns span recording on or off. Off (the default) makes every
    /// tracing hook a no-op.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracer.set_enabled(on);
    }

    /// The trace collector.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable trace collector (frameworks record their own spans —
    /// jobs, task attempts, pipeline stages — into the same trace).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Sets the parent span that operations issued from now on are
    /// attributed to (the framework's current task attempt). Pass
    /// [`SpanId::NONE`] to clear.
    pub fn set_trace_parent(&mut self, parent: SpanId) {
        self.trace_parent = parent;
    }

    /// Lifetime scheduler counters from the event queue (events
    /// scheduled / fired / cancelled).
    pub fn sched_stats(&self) -> SchedStats {
        self.queue.stats()
    }

    /// True while a host can issue and receive operations.
    pub fn host_alive(&self, host: HostId) -> bool {
        self.hosts[host.index() as usize].alive
    }

    /// Marks a host as exempt from injected mid-job VM loss. Frameworks
    /// protect single points of failure the paper's design assumes are
    /// reliable (the master VM; hosts running a KV server are spared
    /// automatically).
    pub fn protect_host(&mut self, host: HostId) {
        self.protected_hosts.insert(host);
    }

    /// Registers (or fetches) a fleet tag by name for CPU accounting.
    pub fn fleet(&mut self, name: &str) -> FleetTag {
        if let Some(&tag) = self.fleets.get(name) {
            return tag;
        }
        let tag = self.cpu.register(name);
        self.fleets.insert(name.to_owned(), tag);
        tag
    }

    /// Sets the label attached to subsequent billing entries (typically
    /// the current job/stage name).
    pub fn set_bill_label(&mut self, label: impl Into<String>) {
        self.bill_label = label.into();
    }

    /// Advances the simulation until something noteworthy happens.
    /// Internal events are handled silently. Returns `None` when the
    /// simulation has fully drained.
    pub fn step(&mut self) -> Option<(SimTime, Notify)> {
        loop {
            if let Some(n) = self.outbox.pop_front() {
                return Some((self.queue.now(), n));
            }
            let (t, ev) = self.queue.next()?;
            self.handle(ev, t);
        }
    }

    /// True when no events or notifications are pending.
    pub fn is_idle(&mut self) -> bool {
        self.outbox.is_empty() && self.queue.peek_time().is_none()
    }

    /// vCPUs of a host.
    pub fn host_vcpus(&self, host: HostId) -> f64 {
        self.hosts[host.index() as usize].vcpus
    }

    /// Adjusts a host's busy-vCPU accounting by a *fraction* of one
    /// task's share. Frameworks use this to model the (de)serialisation
    /// CPU that user code burns while overlapping storage I/O ("reads
    /// and writes are parallelized to overlap (de)serialization with
    /// I/O"). No scheduling effect — accounting only.
    pub fn task_io_busy(&mut self, host: HostId, delta_fraction: f64) {
        let h = &self.hosts[host.index() as usize];
        if let Some(fleet) = h.fleet {
            let delta = delta_fraction * h.busy_equiv();
            let now = self.queue.now();
            self.cpu.add_busy(fleet, now, delta);
        }
    }

    // ------------------------------------------------------------------
    // Object storage operations
    // ------------------------------------------------------------------

    /// Starts an asynchronous GET from `from`'s vantage point.
    pub fn get_object(&mut self, from: HostId, bucket: &str, key: &str) -> OpId {
        self.assert_alive(from);
        let op = self.alloc_op(OpKind::Get {
            from,
            bucket: bucket.to_owned(),
            key: key.to_owned(),
        });
        self.trace_op_begin(op, "GET", "storage", Some(key), None);
        let at = self.st_get_rl.admit(self.queue.now());
        let lat = self.lat(self.cfg.storage.get_latency);
        if let Some(fault) = self.faults.storage_fault(self.queue.now()) {
            // Failed requests (5xx / SlowDown) are not billed.
            self.queue.schedule_at(at + lat, Ev::StorageFault { op, fault });
            return op;
        }
        self.charge(CostCategory::StorageRequests, self.cfg.storage.tariff.usd_per_get);
        self.queue.schedule_at(at + lat, Ev::StorageStart { op });
        op
    }

    /// Starts an asynchronous PUT.
    pub fn put_object(
        &mut self,
        from: HostId,
        bucket: &str,
        key: &str,
        body: ObjectBody,
    ) -> OpId {
        self.assert_alive(from);
        let bytes = body.len();
        let op = self.alloc_op(OpKind::Put {
            from,
            bucket: bucket.to_owned(),
            key: key.to_owned(),
            body,
        });
        self.trace_op_begin(op, "PUT", "storage", Some(key), Some(bytes));
        let at = self.st_put_rl.admit(self.queue.now());
        let lat = self.lat(self.cfg.storage.put_latency);
        if let Some(fault) = self.faults.storage_fault(self.queue.now()) {
            self.queue.schedule_at(at + lat, Ev::StorageFault { op, fault });
            return op;
        }
        self.charge(CostCategory::StorageRequests, self.cfg.storage.tariff.usd_per_put);
        self.queue.schedule_at(at + lat, Ev::StorageStart { op });
        op
    }

    /// Starts an asynchronous LIST of keys under `prefix`.
    pub fn list_objects(&mut self, from: HostId, bucket: &str, prefix: &str) -> OpId {
        self.assert_alive(from);
        let op = self.alloc_op(OpKind::List {
            bucket: bucket.to_owned(),
            prefix: prefix.to_owned(),
        });
        self.trace_op_begin(op, "LIST", "storage", Some(prefix), None);
        let at = self.st_get_rl.admit(self.queue.now());
        let lat = self.lat(self.cfg.storage.list_latency);
        if let Some(fault) = self.faults.storage_fault(self.queue.now()) {
            self.queue.schedule_at(at + lat, Ev::StorageFault { op, fault });
            return op;
        }
        self.charge(CostCategory::StorageRequests, self.cfg.storage.tariff.usd_per_list);
        self.queue.schedule_at(at + lat, Ev::StorageStart { op });
        op
    }

    /// Starts an asynchronous DELETE.
    pub fn delete_object(&mut self, from: HostId, bucket: &str, key: &str) -> OpId {
        self.assert_alive(from);
        let op = self.alloc_op(OpKind::Delete {
            bucket: bucket.to_owned(),
            key: key.to_owned(),
        });
        self.trace_op_begin(op, "DELETE", "storage", Some(key), None);
        let at = self.st_put_rl.admit(self.queue.now());
        let lat = self.lat(self.cfg.storage.put_latency);
        if let Some(fault) = self.faults.storage_fault(self.queue.now()) {
            self.queue.schedule_at(at + lat, Ev::StorageFault { op, fault });
            return op;
        }
        self.queue.schedule_at(at + lat, Ev::StorageStart { op });
        op
    }

    // ------------------------------------------------------------------
    // Compute / sleep / timer
    // ------------------------------------------------------------------

    /// Runs `cpu_secs` of single-threaded compute on one of `host`'s
    /// slots (FIFO if all slots are busy).
    ///
    /// # Panics
    ///
    /// Panics if the host is not alive or `cpu_secs` is negative.
    pub fn compute(&mut self, host: HostId, cpu_secs: f64) -> OpId {
        self.assert_alive(host);
        assert!(cpu_secs >= 0.0, "compute time cannot be negative");
        let op = self.alloc_op(OpKind::Compute);
        let pending = PendingCompute { op, cpu_secs };
        let admitted = self.hosts[host.index() as usize].slots.submit(pending);
        if let Some(p) = admitted {
            self.start_compute(host, p);
        }
        op
    }

    /// Completes after `duration` without occupying any resource
    /// (framework-internal waits).
    pub fn sleep(&mut self, duration: SimDuration) -> OpId {
        let op = self.alloc_op(OpKind::Sleep);
        self.queue.schedule_in(duration, Ev::SleepDone { op });
        op
    }

    /// Fires [`Notify::Timer`] with `tag` after `delay`.
    pub fn timer(&mut self, delay: SimDuration, tag: u64) {
        self.queue.schedule_in(delay, Ev::Timer { tag });
    }

    /// Moves `bytes` directly between two hosts over the VPC network
    /// (cluster shuffle traffic). Both hosts' NICs constrain the flow.
    ///
    /// # Panics
    ///
    /// Panics if either host is not alive.
    pub fn net_transfer(&mut self, from: HostId, to: HostId, bytes: u64) -> OpId {
        self.assert_alive(from);
        self.assert_alive(to);
        let op = self.alloc_op(OpKind::Transfer { from, to, bytes });
        self.trace_op_begin(op, "TRANSFER", "vpc", None, Some(bytes));
        // TCP setup / first-byte latency within a VPC.
        let lat = self.lat((0.0008, 0.0002));
        self.queue.schedule_in(lat, Ev::VpcStart { op });
        op
    }

    // ------------------------------------------------------------------
    // FaaS
    // ------------------------------------------------------------------

    /// Invokes a cloud function with `mem_mb` of memory. The sandbox
    /// surfaces as [`Notify::SandboxUp`] after invoke latency, burst
    /// admission and cold start.
    pub fn faas_invoke(&mut self, mem_mb: u32, fleet: &str) -> SandboxId {
        assert!(mem_mb >= 128, "Lambda memory must be at least 128 MB");
        let tariff = self.cfg.faas.tariff;
        let vcpus = tariff.vcpus_for_mb(mem_mb);
        let speed = vcpus.min(1.0);
        let fleet_tag = self.fleet(fleet);
        let host = self.add_host(Host::new(
            vcpus,
            speed,
            self.cfg.faas.sandbox_net_bps,
            Some(fleet_tag),
        ));
        let sandbox = SandboxId::from_index(self.sandboxes.len() as u64);
        let now = self.queue.now();
        let fault = self.faults.sandbox_fault(now);
        let cold_span = self
            .tracer
            .begin(now, "cold-start", "faas", fleet, self.trace_parent);
        self.tracer.attr_u64(cold_span, "mem_mb", mem_mb as u64);
        self.sandboxes.push(Sandbox {
            host,
            mem_mb,
            started: None,
            released: false,
            fleet: fleet_tag,
            bill_label: self.bill_label.clone(),
            planned_crash: match fault {
                Some(SandboxFault::CrashAfter(after)) => Some(after),
                _ => None,
            },
            cold_span,
            exec_span: SpanId::NONE,
            span_parent: self.trace_parent,
        });
        self.active_sandboxes += 1;
        let invoke = self.lat(self.cfg.faas.invoke_latency);
        let admitted = self.faas_bucket.admit(now + invoke);
        let cold = SimDuration::from_secs_f64(
            self.rng
                .lognormal_median(self.cfg.faas.cold_start_median, self.cfg.faas.cold_start_sigma),
        );
        if matches!(fault, Some(SandboxFault::InvokeError)) {
            // The runtime fails to initialise: the error surfaces where
            // the sandbox would have come up; nothing is billed.
            self.queue
                .schedule_at(admitted + cold, Ev::SandboxInvokeFail { sandbox });
        } else {
            self.queue.schedule_at(admitted + cold, Ev::SandboxUp { sandbox });
        }
        sandbox
    }

    /// Ends a sandbox, billing its execution time.
    ///
    /// # Panics
    ///
    /// Panics if the sandbox never started or was already released.
    pub fn faas_release(&mut self, sandbox: SandboxId) {
        self.retire_sandbox(sandbox);
    }

    /// Abandons a running sandbox whose work will be redone elsewhere
    /// (speculative straggler re-dispatch): bills it like a release and
    /// books the billed GB-seconds as wasted.
    ///
    /// # Panics
    ///
    /// Panics if the sandbox never started or was already released.
    pub fn faas_abandon(&mut self, sandbox: SandboxId) {
        let gb_secs = self.retire_sandbox(sandbox);
        self.fault_ledger.wasted_gb_secs += gb_secs;
    }

    /// Bills and tears down a started sandbox; returns its billed
    /// GB-seconds.
    fn retire_sandbox(&mut self, sandbox: SandboxId) -> f64 {
        let now = self.queue.now();
        let sb = &mut self.sandboxes[sandbox.index() as usize];
        let started = sb.started.expect("released a sandbox that never started");
        assert!(!sb.released, "sandbox released twice");
        sb.released = true;
        let secs = (now - started).as_secs_f64();
        let tariff = self.cfg.faas.tariff;
        let compute = tariff.compute_usd(sb.mem_mb, secs);
        let gb_secs = sb.mem_mb as f64 / 1024.0 * secs;
        let host = sb.host;
        let fleet = sb.fleet;
        let exec_span = sb.exec_span;
        let label = sb.bill_label.clone();
        let vcpus = self.hosts[host.index() as usize].vcpus;
        self.hosts[host.index() as usize].alive = false;
        self.cpu.add_provisioned(fleet, now, -vcpus);
        self.active_sandboxes -= 1;
        self.charge_as(CostCategory::FaasCompute, compute, label.clone());
        self.charge_as(CostCategory::FaasRequests, tariff.usd_per_request, label);
        self.tracer.attr_f64(exec_span, "gb_secs", gb_secs);
        self.tracer.end(exec_span, now);
        gb_secs
    }

    /// The host a sandbox executes on.
    pub fn sandbox_host(&self, sandbox: SandboxId) -> HostId {
        self.sandboxes[sandbox.index() as usize].host
    }

    // ------------------------------------------------------------------
    // VMs
    // ------------------------------------------------------------------

    /// Provisions an on-demand VM of the given type; it surfaces as
    /// [`Notify::VmUp`] after boot and agent setup.
    pub fn vm_provision(&mut self, itype: &InstanceType, fleet: &str) -> VmId {
        self.vm_provision_with(itype, fleet, Tenancy::OnDemand)
    }

    /// Provisions a VM with an explicit [`Tenancy`]. Spot provisions
    /// bill uptime at the configured discount and draw a seeded
    /// preemption decision at provision time (on-demand provisions
    /// never touch the spot RNG stream, preserving byte-identical
    /// replays of spot-free runs).
    pub fn vm_provision_with(
        &mut self,
        itype: &InstanceType,
        fleet: &str,
        tenancy: Tenancy,
    ) -> VmId {
        let fleet_tag = self.fleet(fleet);
        let host = self.add_host(Host::new(
            itype.vcpus as f64,
            1.0,
            itype.net_bytes_per_sec(),
            Some(fleet_tag),
        ));
        let vm = VmId::from_index(self.vms.len() as u64);
        let fault = self.faults.vm_fault(self.queue.now());
        let (price_mult, planned_preempt) = match tenancy {
            Tenancy::OnDemand => (1.0, None),
            Tenancy::Spot => (
                self.cfg.vm.spot_price_mult(),
                self.faults.spot_fault(self.queue.now()),
            ),
        };
        let boot_span =
            self.tracer
                .begin(self.queue.now(), "vm-boot", "vm", fleet, self.trace_parent);
        self.tracer.attr_str(boot_span, "instance_type", itype.name);
        if tenancy == Tenancy::Spot {
            self.tracer.attr_str(boot_span, "tenancy", "spot");
        }
        self.vms.push(Vm {
            host,
            itype: *itype,
            up_at: None,
            terminated: false,
            fleet: fleet_tag,
            bill_label: self.bill_label.clone(),
            planned_loss: match fault {
                Some(VmFault::LossAfter(after)) => Some(after),
                _ => None,
            },
            tenancy,
            price_mult,
            planned_preempt,
            boot_span,
            run_span: SpanId::NONE,
            span_parent: self.trace_parent,
        });
        self.active_vm_vcpus += itype.vcpus as f64;
        let boot = self.lat_floor(self.cfg.vm.boot, 5.0);
        let setup = self.lat_floor(self.cfg.vm.setup, 0.5);
        if matches!(fault, Some(VmFault::BootFailure)) {
            // Capacity errors surface at boot time; nothing is billed.
            self.queue.schedule_in(boot, Ev::VmBootFail { vm });
        } else {
            self.queue.schedule_in(boot + setup, Ev::VmUp { vm });
        }
        vm
    }

    /// Terminates a VM, billing its uptime (per-second with the
    /// configured minimum).
    ///
    /// # Panics
    ///
    /// Panics if the VM never came up or was already terminated.
    pub fn vm_terminate(&mut self, vm: VmId) {
        let now = self.queue.now();
        let rec = &mut self.vms[vm.index() as usize];
        let up_at = rec.up_at.expect("terminated a VM that never came up");
        assert!(!rec.terminated, "VM terminated twice");
        rec.terminated = true;
        let secs = (now - up_at).as_secs_f64() + self.cfg.vm.terminate_secs;
        let billed = secs.max(self.cfg.vm.min_billed_secs);
        let cost = billed * rec.itype.usd_per_second() * rec.price_mult;
        let host = rec.host;
        let fleet = rec.fleet;
        let run_span = rec.run_span;
        let label = rec.bill_label.clone();
        let itype_vcpus = rec.itype.vcpus as f64;
        let vcpus = self.hosts[host.index() as usize].vcpus;
        self.hosts[host.index() as usize].alive = false;
        self.cpu.add_provisioned(fleet, now, -vcpus);
        self.active_vm_vcpus -= itype_vcpus;
        self.charge_as(CostCategory::VmCompute, cost, label);
        self.tracer.attr_f64(run_span, "billed_secs", billed);
        self.tracer.end(run_span, now);
    }

    /// The host a VM provides.
    pub fn vm_host(&self, vm: VmId) -> HostId {
        self.vms[vm.index() as usize].host
    }

    /// The instance type a VM was provisioned as.
    pub fn vm_instance_type(&self, vm: VmId) -> InstanceType {
        self.vms[vm.index() as usize].itype
    }

    /// How a VM's capacity was bought.
    pub fn vm_tenancy(&self, vm: VmId) -> Tenancy {
        self.vms[vm.index() as usize].tenancy
    }

    /// The regional instance catalog this world was configured with.
    pub fn catalog(&self) -> &'static [InstanceType] {
        self.cfg.vm.catalog
    }

    /// Looks up an instance type in this world's regional catalog (the
    /// region-aware replacement for the free function
    /// [`crate::instance_type`], which always answers from the default
    /// us-east-1 catalog).
    pub fn lookup_instance(&self, name: &str) -> Option<&'static InstanceType> {
        self.cfg.vm.instance_type(name)
    }

    // ------------------------------------------------------------------
    // KV (Redis-on-master)
    // ------------------------------------------------------------------

    /// Starts a Redis-like KV server on a running VM.
    ///
    /// # Panics
    ///
    /// Panics if the VM is not up.
    pub fn kv_create(&mut self, vm: VmId) -> KvId {
        let host = self.vm_host(vm);
        self.assert_alive(host);
        let nic = self.hosts[host.index() as usize].nic_bps;
        let pool = FairShare::new(nic, self.cfg.kv.per_conn_bps);
        let kv = KvId::from_index(self.kvs.len() as u64);
        self.kvs.push(Kv {
            host,
            pool,
            tick: None,
            flows: HashMap::new(),
            data: HashMap::new(),
            queues: HashMap::new(),
            dead: false,
        });
        kv
    }

    /// True while a KV server's hosting VM is up (operations against a
    /// dead server resolve as [`OpOutcome::KvUnreachable`]).
    pub fn kv_alive(&self, kv: KvId) -> bool {
        !self.kvs[kv.index() as usize].dead
    }

    /// Asynchronously stores `body` under `key` in a KV server.
    pub fn kv_put(&mut self, from: HostId, kv: KvId, key: &str, body: ObjectBody) -> OpId {
        self.kv_op(
            from,
            OpKind::KvPut {
                from,
                kv,
                key: key.to_owned(),
                body,
            },
        )
    }

    /// Asynchronously fetches `key` from a KV server.
    pub fn kv_get(&mut self, from: HostId, kv: KvId, key: &str) -> OpId {
        self.kv_op(
            from,
            OpKind::KvGet {
                from,
                kv,
                key: key.to_owned(),
            },
        )
    }

    /// Asynchronously appends `body` to a KV queue.
    pub fn kv_push(&mut self, from: HostId, kv: KvId, queue: &str, body: ObjectBody) -> OpId {
        self.kv_op(
            from,
            OpKind::KvPush {
                from,
                kv,
                queue: queue.to_owned(),
                body,
            },
        )
    }

    /// Asynchronously pops the head of a KV queue (`None` if empty).
    pub fn kv_pop(&mut self, from: HostId, kv: KvId, queue: &str) -> OpId {
        self.kv_op(
            from,
            OpKind::KvPop {
                from,
                kv,
                queue: queue.to_owned(),
            },
        )
    }

    fn kv_op(&mut self, from: HostId, kind: OpKind) -> OpId {
        self.assert_alive(from);
        let label: Option<(&'static str, String, Option<u64>)> =
            if self.tracer.is_enabled() {
                Some(match &kind {
                    OpKind::KvPut { key, body, .. } => ("KV PUT", key.clone(), Some(body.len())),
                    OpKind::KvGet { key, .. } => ("KV GET", key.clone(), None),
                    OpKind::KvPush { queue, body, .. } => {
                        ("KV PUSH", queue.clone(), Some(body.len()))
                    }
                    OpKind::KvPop { queue, .. } => ("KV POP", queue.clone(), None),
                    other => unreachable!("non-KV op kind: {other:?}"),
                })
            } else {
                None
            };
        let op = self.alloc_op(kind);
        if let Some((name, key, bytes)) = label {
            self.trace_op_begin(op, name, "kv", Some(&key), bytes);
        }
        let lat = self.lat(self.cfg.kv.op_latency);
        self.queue.schedule_in(lat, Ev::KvStart { op });
        op
    }

    // ------------------------------------------------------------------
    // Managed service (EMR-Serverless-like)
    // ------------------------------------------------------------------

    /// Submits a map job of `tasks` tasks, each `cpu_secs_per_task`
    /// seconds of CPU, to the managed analytics service. Completion
    /// surfaces as [`Notify::EmrDone`]; billing covers the application
    /// lifetime.
    pub fn emr_submit(&mut self, tasks: usize, cpu_secs_per_task: f64) -> EmrJobId {
        assert!(tasks > 0, "managed job needs at least one task");
        let job = EmrJobId::from_index(self.emr_jobs.len() as u64);
        self.emr_jobs.push(EmrJob::new(
            tasks,
            cpu_secs_per_task,
            self.cfg.emr.default_vcpus as usize,
        ));
        let startup = self.lat_floor(self.cfg.emr.startup, 10.0);
        self.queue.schedule_in(startup, Ev::EmrUp { job });
        job
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn alloc_op(&mut self, kind: OpKind) -> OpId {
        let op = OpId::from_index(self.next_op);
        self.next_op += 1;
        self.ops.insert(op, kind);
        op
    }

    /// Opens a span for an in-flight operation (no-op while tracing is
    /// off). `key` attributes object/KV keys; storage keys also get
    /// their top-level prefix, the unit of bandwidth contention.
    fn trace_op_begin(
        &mut self,
        op: OpId,
        name: &'static str,
        track: &'static str,
        key: Option<&str>,
        bytes: Option<u64>,
    ) {
        if !self.tracer.is_enabled() {
            return;
        }
        let span = self
            .tracer
            .begin(self.queue.now(), name, "storage", track, self.trace_parent);
        if let Some(key) = key {
            self.tracer.attr_str(span, "key", key);
            if track == "storage" {
                let prefix = key.split('/').next().unwrap_or(key);
                self.tracer.attr_str(span, "prefix", prefix);
            }
        }
        if let Some(bytes) = bytes {
            self.tracer.attr_u64(span, "bytes", bytes);
        }
        self.op_spans.insert(op, span);
    }

    fn add_host(&mut self, host: Host) -> HostId {
        let id = HostId::from_index(self.hosts.len() as u64);
        self.st_pool.set_group_cap(id.index(), host.nic_bps);
        self.vpc_pool.set_group_cap(id.index(), host.nic_bps);
        self.hosts.push(host);
        id
    }

    fn assert_alive(&self, host: HostId) {
        assert!(
            self.hosts[host.index() as usize].alive,
            "{host} is not alive"
        );
    }

    fn lat(&mut self, (mean, std): (f64, f64)) -> SimDuration {
        self.rng.latency(mean, std)
    }

    fn lat_floor(&mut self, (mean, std): (f64, f64), floor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.rng.normal_at_least(mean, std, floor))
    }

    fn charge(&mut self, category: CostCategory, amount: f64) {
        let label = self.bill_label.clone();
        self.charge_as(category, amount, label);
    }

    /// Charges under an explicit label; used by sandbox/VM retirement,
    /// which must bill the job that *created* the resource rather than
    /// whichever label is current at teardown time.
    fn charge_as(&mut self, category: CostCategory, amount: f64, label: String) {
        self.ledger.charge(self.queue.now(), category, amount, label);
    }

    fn notify_op(&mut self, op: OpId, outcome: OpOutcome) {
        self.ops.remove(&op);
        if let Some(span) = self.op_spans.remove(&op) {
            match &outcome {
                OpOutcome::GetOk { body } => self.tracer.attr_u64(span, "bytes", body.len()),
                OpOutcome::KvValue { body: Some(body) } => {
                    self.tracer.attr_u64(span, "bytes", body.len())
                }
                OpOutcome::GetMissing => self.tracer.attr_str(span, "result", "missing"),
                OpOutcome::Faulted { fault } => self.tracer.attr_str(span, "fault", fault.name()),
                _ => {}
            }
            self.tracer.end(span, self.queue.now());
        }
        self.outbox.push_back(Notify::Op { op, outcome });
    }

    fn handle(&mut self, ev: Ev, now: SimTime) {
        match ev {
            Ev::StorageStart { op } => self.on_storage_start(op, now),
            Ev::StorageTick => {
                self.st_collect(now);
                self.st_reschedule(now);
            }
            Ev::VpcStart { op } => self.on_vpc_start(op, now),
            Ev::VpcTick => {
                self.vpc_collect(now);
                self.vpc_reschedule(now);
            }
            Ev::KvStart { op } => self.on_kv_start(op, now),
            Ev::KvTick { kv } => {
                self.kv_collect(kv, now);
                self.kv_reschedule(kv, now);
            }
            Ev::ComputeDone { host, op } => self.on_compute_done(host, op, now),
            Ev::SleepDone { op } => {
                if let Some(done) = self.local_finishers.remove(&op) {
                    self.ops.remove(&op);
                    self.finish_flow(done);
                } else {
                    self.notify_op(op, OpOutcome::SleepOk);
                }
            }
            Ev::SandboxUp { sandbox } => self.on_sandbox_up(sandbox, now),
            Ev::VmUp { vm } => self.on_vm_up(vm, now),
            Ev::Timer { tag } => self.outbox.push_back(Notify::Timer { tag }),
            Ev::EmrUp { job } => self.on_emr_up(job, now),
            Ev::EmrTaskDone { job } => self.on_emr_task_done(job, now),
            Ev::EmrTorn { job } => self.on_emr_torn(job, now),
            Ev::StorageFault { op, fault } => {
                self.fault_ledger.record_fault(fault);
                self.tracer.instant(now, fault.name(), "fault", "faults");
                self.notify_op(op, OpOutcome::Faulted { fault });
            }
            Ev::SandboxInvokeFail { sandbox } => self.on_sandbox_invoke_fail(sandbox),
            Ev::SandboxCrash { sandbox } => self.on_sandbox_crash(sandbox, now),
            Ev::VmBootFail { vm } => self.on_vm_boot_fail(vm),
            Ev::VmCrash { vm } => self.on_vm_crash(vm, now),
            Ev::VmPreempt { vm } => self.on_vm_preempt(vm, now),
        }
    }

    // --- storage flow plumbing ---

    fn on_storage_start(&mut self, op: OpId, now: SimTime) {
        let kind = self.ops.remove(&op).expect("unknown storage op");
        match kind {
            OpKind::Get { from, bucket, key } => match self.store.get(&bucket, &key) {
                None => self.notify_op(op, OpOutcome::GetMissing),
                Some(body) => {
                    let body = body.clone();
                    let len = body.len();
                    self.st_begin_flow(now, len, from, &key, FlowDone::Get { op, body });
                }
            },
            OpKind::Put {
                from,
                bucket,
                key,
                body,
            } => {
                let len = body.len();
                let prefix_key = key.clone();
                self.st_begin_flow(
                    now,
                    len,
                    from,
                    &prefix_key,
                    FlowDone::Put { op, bucket, key, body },
                );
            }
            OpKind::List { bucket, prefix } => {
                let keys = self.store.list_prefix(&bucket, &prefix);
                self.notify_op(op, OpOutcome::ListOk { keys });
            }
            OpKind::Delete { bucket, key } => {
                self.store.delete(&bucket, &key);
                self.notify_op(op, OpOutcome::DeleteOk);
            }
            other => unreachable!("non-storage op in storage start: {other:?}"),
        }
    }

    fn st_begin_flow(
        &mut self,
        now: SimTime,
        bytes: u64,
        from: HostId,
        key: &str,
        done: FlowDone,
    ) {
        self.st_collect(now);
        let prefix_group = self.prefix_group(key);
        let flow = self
            .st_pool
            .start(now, bytes, &[from.index(), prefix_group]);
        self.st_flows.insert(flow, done);
        self.st_reschedule(now);
    }

    /// The flow group for a key's top-level prefix. S3-like stores scale
    /// throughput per key prefix, so each top-level prefix gets its own
    /// bandwidth pool — all-to-all shuffle traffic under one prefix
    /// saturates while wide scans across many prefixes scale out.
    fn prefix_group(&mut self, key: &str) -> u64 {
        const PREFIX_GROUP_BASE: u64 = 1 << 48;
        let prefix = key.split('/').next().unwrap_or(key).to_owned();
        let next = PREFIX_GROUP_BASE + self.prefix_groups.len() as u64;
        let id = *self.prefix_groups.entry(prefix).or_insert(next);
        if !self.st_pool.has_group(id) {
            self.st_pool
                .set_group_cap(id, self.cfg.storage.per_prefix_bps);
        }
        id
    }

    fn st_collect(&mut self, now: SimTime) {
        for flow in self.st_pool.advance(now) {
            let done = self.st_flows.remove(&flow).expect("unknown storage flow");
            self.finish_flow(done);
        }
    }

    fn st_reschedule(&mut self, now: SimTime) {
        if let Some(tok) = self.st_tick.take() {
            self.queue.cancel(tok);
        }
        if let Some(at) = self.st_pool.next_completion() {
            let at = at.max(now);
            self.st_tick = Some(self.queue.schedule_at(at, Ev::StorageTick));
        }
    }

    fn on_vpc_start(&mut self, op: OpId, now: SimTime) {
        let kind = self.ops.remove(&op).expect("unknown transfer op");
        let OpKind::Transfer { from, to, bytes } = kind else {
            unreachable!("non-transfer op in vpc start")
        };
        self.vpc_collect(now);
        let flow = self.vpc_pool.start(now, bytes, &[from.index(), to.index()]);
        self.vpc_flows.insert(flow, FlowDone::TransferDone { op });
        self.vpc_reschedule(now);
    }

    fn vpc_collect(&mut self, now: SimTime) {
        for flow in self.vpc_pool.advance(now) {
            let done = self.vpc_flows.remove(&flow).expect("unknown vpc flow");
            self.finish_flow(done);
        }
    }

    fn vpc_reschedule(&mut self, now: SimTime) {
        if let Some(tok) = self.vpc_tick.take() {
            self.queue.cancel(tok);
        }
        if let Some(at) = self.vpc_pool.next_completion() {
            let at = at.max(now);
            self.vpc_tick = Some(self.queue.schedule_at(at, Ev::VpcTick));
        }
    }

    fn finish_flow(&mut self, done: FlowDone) {
        match done {
            FlowDone::Get { op, body } => self.notify_op(op, OpOutcome::GetOk { body }),
            FlowDone::Put {
                op,
                bucket,
                key,
                body,
            } => {
                self.store.put(&bucket, &key, body);
                self.notify_op(op, OpOutcome::PutOk);
            }
            FlowDone::KvValue { op, kv, body } => {
                if self.kvs[kv.index() as usize].dead {
                    self.notify_op(op, OpOutcome::KvUnreachable);
                } else {
                    self.notify_op(op, OpOutcome::KvValue { body: Some(body) })
                }
            }
            FlowDone::KvPut { op, kv, key, body } => {
                if self.kvs[kv.index() as usize].dead {
                    self.notify_op(op, OpOutcome::KvUnreachable);
                } else {
                    self.kvs[kv.index() as usize].data.insert(key, body);
                    self.notify_op(op, OpOutcome::KvOk);
                }
            }
            FlowDone::KvPush {
                op,
                kv,
                queue,
                body,
            } => {
                if self.kvs[kv.index() as usize].dead {
                    self.notify_op(op, OpOutcome::KvUnreachable);
                } else {
                    self.kvs[kv.index() as usize]
                        .queues
                        .entry(queue)
                        .or_default()
                        .push_back(body);
                    self.notify_op(op, OpOutcome::KvOk);
                }
            }
            FlowDone::TransferDone { op } => {
                self.notify_op(op, OpOutcome::TransferOk);
            }
        }
    }

    // --- KV flow plumbing ---

    fn on_kv_start(&mut self, op: OpId, now: SimTime) {
        let kind = self.ops.remove(&op).expect("unknown KV op");
        let target = match &kind {
            OpKind::KvPut { kv, .. }
            | OpKind::KvGet { kv, .. }
            | OpKind::KvPush { kv, .. }
            | OpKind::KvPop { kv, .. } => *kv,
            other => unreachable!("non-KV op in KV start: {other:?}"),
        };
        if self.kvs[target.index() as usize].dead {
            self.notify_op(op, OpOutcome::KvUnreachable);
            return;
        }
        match kind {
            OpKind::KvPut { from, kv, key, body } => {
                let len = body.len();
                self.kv_begin_flow(kv, now, len, from, FlowDone::KvPut { op, kv, key, body });
            }
            OpKind::KvPush {
                from,
                kv,
                queue,
                body,
            } => {
                let len = body.len();
                self.kv_begin_flow(
                    kv,
                    now,
                    len,
                    from,
                    FlowDone::KvPush { op, kv, queue, body },
                );
            }
            OpKind::KvGet { from, kv, key } => {
                match self.kvs[kv.index() as usize].data.get(&key).cloned() {
                    None => self.notify_op(op, OpOutcome::KvValue { body: None }),
                    Some(body) => {
                        let len = body.len();
                        self.kv_begin_flow(kv, now, len, from, FlowDone::KvValue { op, kv, body });
                    }
                }
            }
            OpKind::KvPop { from, kv, queue } => {
                let popped = self.kvs[kv.index() as usize]
                    .queues
                    .get_mut(&queue)
                    .and_then(VecDeque::pop_front);
                match popped {
                    None => self.notify_op(op, OpOutcome::KvValue { body: None }),
                    Some(body) => {
                        let len = body.len();
                        self.kv_begin_flow(kv, now, len, from, FlowDone::KvValue { op, kv, body });
                    }
                }
            }
            other => unreachable!("non-KV op in KV start: {other:?}"),
        }
    }

    fn kv_begin_flow(
        &mut self,
        kv: KvId,
        now: SimTime,
        bytes: u64,
        from: HostId,
        done: FlowDone,
    ) {
        self.kv_collect(kv, now);
        let kv_host = self.kvs[kv.index() as usize].host;
        let local = kv_host == from;
        // Local (same-VM) exchanges move through shared memory: very fast
        // and not constrained by the NIC. Remote exchanges contend on the
        // KV host's NIC and the requester's NIC.
        if local {
            // Same-VM exchange through shared memory: a fixed-rate copy,
            // not constrained by any NIC.
            let delay = SimDuration::from_secs_f64(bytes as f64 / self.cfg.kv.local_bps);
            self.schedule_flow_finish(delay, done);
            return;
        }
        let from_nic = self.hosts[from.index() as usize].nic_bps;
        let state = &mut self.kvs[kv.index() as usize];
        state.pool.set_group_cap(from.index(), from_nic);
        let flow = state.pool.start(now, bytes, &[from.index()]);
        state.flows.insert(flow, done);
        self.kv_reschedule(kv, now);
    }

    /// Finishes a flow after a fixed delay (host-local transfers).
    fn schedule_flow_finish(&mut self, delay: SimDuration, done: FlowDone) {
        let op = self.alloc_op(OpKind::Sleep);
        self.local_finishers.insert(op, done);
        self.queue.schedule_in(delay, Ev::SleepDone { op });
    }

    fn kv_collect(&mut self, kv: KvId, now: SimTime) {
        let completed = self.kvs[kv.index() as usize].pool.advance(now);
        for flow in completed {
            let done = self.kvs[kv.index() as usize]
                .flows
                .remove(&flow)
                .expect("unknown KV flow");
            self.finish_flow(done);
        }
    }

    fn kv_reschedule(&mut self, kv: KvId, now: SimTime) {
        let state = &mut self.kvs[kv.index() as usize];
        if let Some(tok) = state.tick.take() {
            self.queue.cancel(tok);
        }
        if let Some(at) = state.pool.next_completion() {
            let at = at.max(now);
            state.tick = Some(self.queue.schedule_at(at, Ev::KvTick { kv }));
        }
    }

    // --- compute ---

    fn start_compute(&mut self, host: HostId, p: PendingCompute) {
        let now = self.queue.now();
        let h = &self.hosts[host.index() as usize];
        let dur = SimDuration::from_secs_f64(p.cpu_secs / h.speed);
        let equiv = h.busy_equiv();
        if let Some(fleet) = h.fleet {
            self.cpu.add_busy(fleet, now, equiv);
        }
        self.queue.schedule_in(dur, Ev::ComputeDone { host, op: p.op });
    }

    fn on_compute_done(&mut self, host: HostId, op: OpId, now: SimTime) {
        let h = &mut self.hosts[host.index() as usize];
        let equiv = h.busy_equiv();
        let fleet = h.fleet;
        let next = h.slots.release();
        if let Some(fleet) = fleet {
            self.cpu.add_busy(fleet, now, -equiv);
        }
        self.notify_op(op, OpOutcome::ComputeOk);
        if let Some(p) = next {
            self.start_compute(host, p);
        }
    }

    // --- lifecycle events ---

    fn on_sandbox_up(&mut self, sandbox: SandboxId, now: SimTime) {
        let sb = &mut self.sandboxes[sandbox.index() as usize];
        sb.started = Some(now);
        let host = sb.host;
        let fleet = sb.fleet;
        let planned_crash = sb.planned_crash;
        let cold_span = sb.cold_span;
        let span_parent = sb.span_parent;
        self.tracer.end(cold_span, now);
        if self.tracer.is_enabled() {
            let track = self.cpu.fleet_name(fleet).to_owned();
            let span = self.tracer.begin(now, "sandbox", "faas", &track, span_parent);
            self.sandboxes[sandbox.index() as usize].exec_span = span;
        }
        self.hosts[host.index() as usize].alive = true;
        let vcpus = self.hosts[host.index() as usize].vcpus;
        self.cpu.add_provisioned(fleet, now, vcpus);
        if let Some(after) = planned_crash {
            self.queue.schedule_in(after, Ev::SandboxCrash { sandbox });
        }
        self.outbox.push_back(Notify::SandboxUp { sandbox });
    }

    fn on_vm_up(&mut self, vm: VmId, now: SimTime) {
        let rec = &mut self.vms[vm.index() as usize];
        rec.up_at = Some(now);
        let host = rec.host;
        let fleet = rec.fleet;
        let planned_loss = rec.planned_loss;
        let planned_preempt = rec.planned_preempt;
        let boot_span = rec.boot_span;
        let span_parent = rec.span_parent;
        let itype_name = rec.itype.name;
        self.tracer.end(boot_span, now);
        if self.tracer.is_enabled() {
            let track = self.cpu.fleet_name(fleet).to_owned();
            let span = self.tracer.begin(now, "vm", "vm", &track, span_parent);
            self.tracer.attr_str(span, "instance_type", itype_name);
            self.vms[vm.index() as usize].run_span = span;
        }
        self.hosts[host.index() as usize].alive = true;
        let vcpus = self.hosts[host.index() as usize].vcpus;
        self.cpu.add_provisioned(fleet, now, vcpus);
        if let Some(after) = planned_loss {
            self.queue.schedule_in(after, Ev::VmCrash { vm });
        }
        if let Some(after) = planned_preempt {
            self.queue.schedule_in(after, Ev::VmPreempt { vm });
        }
        self.outbox.push_back(Notify::VmUp { vm });
    }

    // --- injected faults ---

    /// The invocation failed during cold start: user code never ran, the
    /// host never came alive, nothing is billed.
    fn on_sandbox_invoke_fail(&mut self, sandbox: SandboxId) {
        let sb = &mut self.sandboxes[sandbox.index() as usize];
        debug_assert!(sb.started.is_none());
        sb.released = true;
        let cold_span = sb.cold_span;
        self.active_sandboxes -= 1;
        let now = self.queue.now();
        self.tracer.attr_str(cold_span, "fault", FaultKind::SandboxInvokeError.name());
        self.tracer.end(cold_span, now);
        self.tracer
            .instant(now, FaultKind::SandboxInvokeError.name(), "fault", "faults");
        self.fault_ledger.record_fault(FaultKind::SandboxInvokeError);
        self.outbox.push_back(Notify::SandboxFailed {
            sandbox,
            fault: FaultKind::SandboxInvokeError,
        });
    }

    /// A planned crash fires mid-execution. If the sandbox finished
    /// first (already released) the plan is moot. AWS bills crashed
    /// Lambda executions, so the partial run is billed — and booked as
    /// wasted GB-seconds, since its output never materialised.
    fn on_sandbox_crash(&mut self, sandbox: SandboxId, now: SimTime) {
        if self.sandboxes[sandbox.index() as usize].released {
            return;
        }
        let gb_secs = self.retire_sandbox(sandbox);
        let exec_span = self.sandboxes[sandbox.index() as usize].exec_span;
        self.tracer
            .attr_str(exec_span, "fault", FaultKind::SandboxCrash.name());
        self.tracer
            .instant(now, FaultKind::SandboxCrash.name(), "fault", "faults");
        self.fault_ledger.wasted_gb_secs += gb_secs;
        self.fault_ledger.record_fault(FaultKind::SandboxCrash);
        self.outbox.push_back(Notify::SandboxFailed {
            sandbox,
            fault: FaultKind::SandboxCrash,
        });
    }

    /// The provision request failed: the VM never came up, nothing is
    /// billed.
    fn on_vm_boot_fail(&mut self, vm: VmId) {
        let rec = &mut self.vms[vm.index() as usize];
        debug_assert!(rec.up_at.is_none());
        rec.terminated = true;
        let lost_vcpus = rec.itype.vcpus as f64;
        let boot_span = rec.boot_span;
        self.active_vm_vcpus -= lost_vcpus;
        let now = self.queue.now();
        self.tracer
            .attr_str(boot_span, "fault", FaultKind::VmBootFailure.name());
        self.tracer.end(boot_span, now);
        self.tracer
            .instant(now, FaultKind::VmBootFailure.name(), "fault", "faults");
        self.fault_ledger.record_fault(FaultKind::VmBootFailure);
        self.outbox.push_back(Notify::VmFailed {
            vm,
            fault: FaultKind::VmBootFailure,
        });
    }

    /// A planned VM loss fires. Terminated VMs and protected hosts
    /// (masters, KV hosts — the single points of failure the paper's
    /// design keeps reliable) are spared, with the swallowed injection
    /// recorded in the fault ledger. Uptime until the loss is billed
    /// (per-second, with the minimum) and booked as wasted
    /// instance-seconds.
    fn on_vm_crash(&mut self, vm: VmId, now: SimTime) {
        if self.vm_loss_suppressed(vm, FaultKind::VmLoss) {
            return;
        }
        self.vm_crash_teardown(vm, now, FaultKind::VmLoss);
    }

    /// A planned spot preemption fires. The same suppression rules as
    /// injected VM loss apply (terminated VMs are moot; protected and
    /// KV hosts are spared and the swallowed reclaim is ledgered — a
    /// framework that puts a master on spot capacity against advice
    /// still keeps its deterministic gates).
    fn on_vm_preempt(&mut self, vm: VmId, now: SimTime) {
        if self.vm_loss_suppressed(vm, FaultKind::SpotPreemption) {
            return;
        }
        self.vm_crash_teardown(vm, now, FaultKind::SpotPreemption);
    }

    /// Shared suppression check for mid-run VM loss classes: already
    /// terminated (moot), protected host or live KV host (spared, the
    /// swallowed injection recorded under `kind`).
    fn vm_loss_suppressed(&mut self, vm: VmId, kind: FaultKind) -> bool {
        let rec = &self.vms[vm.index() as usize];
        if rec.terminated {
            return true;
        }
        let host = rec.host;
        if self.protected_hosts.contains(&host) {
            self.fault_ledger
                .record_suppressed(kind, SuppressReason::ProtectedHost);
            return true;
        }
        if self.kvs.iter().any(|kv| kv.host == host && !kv.dead) {
            self.fault_ledger
                .record_suppressed(kind, SuppressReason::KvHost);
            return true;
        }
        false
    }

    /// Forcibly terminates a running VM right now, bypassing fault
    /// suppression — the chaos suite's master-kill switch. Any KV
    /// server on the host dies with it: its in-flight remote flows
    /// resolve as [`OpOutcome::KvUnreachable`] before the
    /// [`Notify::VmFailed`] surfaces, and queued or future operations
    /// against it resolve the same way. Billing follows the
    /// injected-loss path (uptime billed and booked as wasted).
    /// Returns `false` (no-op) if the VM never came up or already
    /// terminated.
    pub fn kill_vm(&mut self, vm: VmId) -> bool {
        let rec = &self.vms[vm.index() as usize];
        if rec.terminated || rec.up_at.is_none() {
            return false;
        }
        let host = rec.host;
        self.kill_kvs_on(host);
        let now = self.queue.now();
        self.vm_crash_teardown(vm, now, FaultKind::VmLoss);
        true
    }

    /// Marks every KV server on `host` dead and fails its in-flight
    /// remote flows as [`OpOutcome::KvUnreachable`] (in ascending op
    /// order, for determinism). Host-local exchanges and queued op
    /// starts resolve lazily through the `dead` flag when their timers
    /// fire.
    fn kill_kvs_on(&mut self, host: HostId) {
        let mut orphans: Vec<OpId> = Vec::new();
        for state in &mut self.kvs {
            if state.host != host || state.dead {
                continue;
            }
            state.dead = true;
            if let Some(tok) = state.tick.take() {
                self.queue.cancel(tok);
            }
            for (_, done) in state.flows.drain() {
                let (FlowDone::Get { op, .. }
                | FlowDone::Put { op, .. }
                | FlowDone::KvValue { op, .. }
                | FlowDone::KvPut { op, .. }
                | FlowDone::KvPush { op, .. }
                | FlowDone::TransferDone { op }) = done;
                orphans.push(op);
            }
        }
        orphans.sort_by_key(|op| op.index());
        for op in orphans {
            self.notify_op(op, OpOutcome::KvUnreachable);
        }
    }

    /// The shared teardown of a mid-job VM loss (injected crash, forced
    /// kill or spot preemption): bill the uptime as wasted — at the spot
    /// rate for spot tenancy — release the host and surface
    /// [`Notify::VmFailed`] carrying `kind`.
    fn vm_crash_teardown(&mut self, vm: VmId, now: SimTime, kind: FaultKind) {
        let rec = &mut self.vms[vm.index() as usize];
        let host = rec.host;
        let up_at = rec.up_at.expect("crashed a VM that never came up");
        rec.terminated = true;
        let secs = (now - up_at).as_secs_f64();
        let billed = secs.max(self.cfg.vm.min_billed_secs);
        let cost = billed * rec.itype.usd_per_second() * rec.price_mult;
        let fleet = rec.fleet;
        let run_span = rec.run_span;
        let label = rec.bill_label.clone();
        let lost_vcpus = rec.itype.vcpus as f64;
        let vcpus = self.hosts[host.index() as usize].vcpus;
        self.hosts[host.index() as usize].alive = false;
        self.cpu.add_provisioned(fleet, now, -vcpus);
        self.active_vm_vcpus -= lost_vcpus;
        self.charge_as(CostCategory::VmCompute, cost, label);
        self.tracer.attr_str(run_span, "fault", kind.name());
        self.tracer.attr_f64(run_span, "wasted_secs", billed);
        self.tracer.end(run_span, now);
        self.tracer.instant(now, kind.name(), "fault", "faults");
        self.fault_ledger.wasted_instance_secs += billed;
        self.fault_ledger.record_fault(kind);
        self.outbox.push_back(Notify::VmFailed { vm, fault: kind });
    }

    // --- EMR ---

    fn on_emr_up(&mut self, job: EmrJobId, now: SimTime) {
        let dispatch = self.cfg.emr.dispatch_overhead;
        let rec = &mut self.emr_jobs[job.index() as usize];
        rec.started = Some(now);
        let admitted = rec.start_all();
        for _ in 0..admitted {
            let dur = SimDuration::from_secs_f64(dispatch + rec.cpu_secs_per_task);
            self.queue.schedule_in(dur, Ev::EmrTaskDone { job });
        }
    }

    fn on_emr_task_done(&mut self, job: EmrJobId, _now: SimTime) {
        let dispatch = self.cfg.emr.dispatch_overhead;
        let rec = &mut self.emr_jobs[job.index() as usize];
        let more = rec.task_done();
        if more {
            let dur = SimDuration::from_secs_f64(dispatch + rec.cpu_secs_per_task);
            self.queue.schedule_in(dur, Ev::EmrTaskDone { job });
        } else if rec.remaining == 0 {
            let teardown = self.lat_floor(self.cfg.emr.teardown, 1.0);
            self.queue.schedule_in(teardown, Ev::EmrTorn { job });
        }
    }

    fn on_emr_torn(&mut self, job: EmrJobId, now: SimTime) {
        let rec = &self.emr_jobs[job.index() as usize];
        let started = rec.started.expect("EMR job torn down before start");
        let secs = (now - started).as_secs_f64();
        let vcpus = rec.vcpus as f64;
        let gib = vcpus * self.cfg.emr.gib_per_vcpu;
        let tariff = self.cfg.emr.tariff;
        let cost = vcpus * secs * tariff.usd_per_vcpu_second
            + gib * secs * tariff.usd_per_gib_second;
        self.charge(CostCategory::ManagedService, cost);
        self.outbox.push_back(Notify::EmrDone { job });
    }
}
