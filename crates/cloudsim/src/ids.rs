//! Identifier newtypes for cloud entities.
//!
//! Each identifier is issued by exactly one [`World`](crate::World) and is
//! only meaningful within it. The newtypes keep op handles, sandboxes, VMs
//! and KV servers from being confused for one another at compile time.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(u64);

        impl $name {
            #[doc(hidden)]
    pub fn from_index(index: u64) -> Self {
                $name(index)
            }

            #[doc(hidden)]
    pub fn index(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "-{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Handle for an asynchronous operation (storage, compute, KV, sleep).
    /// Completion arrives as [`Notify::Op`](crate::Notify::Op).
    OpId,
    "op"
);

id_type!(
    /// A FaaS sandbox (one cloud-function instance).
    SandboxId,
    "sandbox"
);

id_type!(
    /// A virtual machine instance.
    VmId,
    "vm"
);

id_type!(
    /// A Redis-like KV server hosted on a VM.
    KvId,
    "kv"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(OpId::from_index(3).to_string(), "op-3");
        assert_eq!(VmId::from_index(0).to_string(), "vm-0");
        assert_eq!(SandboxId::from_index(9).to_string(), "sandbox-9");
        assert_eq!(KvId::from_index(1).to_string(), "kv-1");
    }

    #[test]
    fn ids_are_ordered_by_issue_index() {
        assert!(OpId::from_index(1) < OpId::from_index(2));
    }
}
