//! Generating the candidate-plan space from the instance catalog and
//! the stage model.
//!
//! The knobs are exactly the ones the paper fixes by hand in §4.3:
//! which stages go serverful, which instance hosts them, how many VMs,
//! how much Lambda memory, how aggressively to size memory. The catalog
//! ([`cloudsim::catalog`]) is the single source of truth for instance
//! choices — the same table [`serverful::SizingPolicy`] scans.

use std::collections::BTreeMap;

use cloudsim::instances_within_mem;
use metaspace::pipeline::{Stage, StageKind};
use metaspace::plan::{ClusterPlan, DeploymentPlan, FunctionsPlan, PlanKind, StageBackend};
use serverful::{ExecutionMode, RecoveryMode, SizingPolicy};

/// The instance the sizing policy would pick for a backend mask — the
/// same rule the runner applies (largest serverful stateful exchange
/// drives the choice). Explicit-instance candidates equal to this are
/// redundant deployments and get pruned.
fn auto_instance(
    stages: &[Stage],
    backends: &[StageBackend],
    mem_factor: f64,
    region: Option<&str>,
) -> String {
    let bytes = stages
        .iter()
        .zip(backends)
        .filter(|(_, b)| **b == StageBackend::Serverful)
        .filter_map(|(s, _)| match s.kind {
            StageKind::Stateful { exchange_gb } => Some((exchange_gb * 1e9) as u64),
            StageKind::Stateless { .. } => None,
        })
        .max()
        .unwrap_or(0);
    let sizing = SizingPolicy {
        mem_factor,
        ..SizingPolicy::default()
    };
    let catalog = region
        .and_then(cloudsim::region)
        .map_or_else(cloudsim::catalog, |p| p.catalog);
    sizing.plan_from(catalog, bytes).0.name.to_owned()
}

/// The cross product of knob choices the search enumerates. Candidate
/// generation is deterministic: plans come out deduplicated (by
/// [`DeploymentPlan::key`]) and sorted by key.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Candidate backend assignments (each aligned with the stage list).
    pub backend_masks: Vec<Vec<StageBackend>>,
    /// Candidate Lambda memory configurations, MB.
    pub memories_mb: Vec<u32>,
    /// Candidate serverful hosts; `None` lets the sizing policy pick.
    pub instances: Vec<Option<String>>,
    /// Candidate serverful fleet sizes.
    pub vm_counts: Vec<usize>,
    /// Candidate sizing factors.
    pub mem_factors: Vec<f64>,
    /// Candidate execution modes (BSP barriers vs dataflow pipelining).
    pub executions: Vec<ExecutionMode>,
    /// Candidate master recovery modes. Checkpointing buys fault
    /// tolerance with periodic snapshot I/O (its cost shows up in the
    /// evaluator's simulated billing and makespan, not a side formula);
    /// decentralized pays per-task bundle/counter round-trips instead.
    pub recoveries: Vec<RecoveryMode>,
    /// Candidate provider regions, as `{provider}-{region}` registry
    /// keys ([`cloudsim::region_keys`]); `None` is the paper's
    /// `aws-us-east-1` with no spot market. Every preset except
    /// [`SearchSpace::provider_sweep`] pins this to `vec![None]` so
    /// pre-provider candidate sets stay byte-stable.
    pub regions: Vec<Option<String>>,
    /// Candidate spot bids for serverful worker slots: `false` is
    /// on-demand everywhere (the paper), `true` bids discounted
    /// preemptible capacity.
    pub spots: Vec<bool>,
    /// Candidate fixed-cluster deployments.
    pub clusters: Vec<ClusterPlan>,
}

/// The structured backend assignments the search considers: every
/// stateful stage varies independently (`2^k` combinations for `k`
/// stateful stages), while the stateless stages move as one block —
/// all on functions, or all on the serverful fleet. The block is one
/// search knob (stateless stages are individually homogeneous:
/// embarrassingly parallel read→compute→write), which keeps the mask
/// count at `2^(k+1)` instead of `2^stages`.
fn backend_masks(stages: &[Stage]) -> Vec<Vec<StageBackend>> {
    let stateful: Vec<usize> = stages
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_stateful())
        .map(|(i, _)| i)
        .collect();
    let mut masks = Vec::new();
    for stateless_backend in [StageBackend::Functions, StageBackend::Serverful] {
        for bits in 0..(1u32 << stateful.len()) {
            let mut mask: Vec<StageBackend> = vec![stateless_backend; stages.len()];
            for (b, &idx) in stateful.iter().enumerate() {
                mask[idx] = if bits & (1 << b) != 0 {
                    StageBackend::Serverful
                } else {
                    StageBackend::Functions
                };
            }
            masks.push(mask);
        }
    }
    masks
}

impl SearchSpace {
    /// The tiny space for smoke tests and CI: the three named
    /// deployments' knob settings only (pure functions, the paper's
    /// hybrid mask, the paper's cluster).
    pub fn smoke(stages: &[Stage]) -> SearchSpace {
        let hybrid_mask = match DeploymentPlan::hybrid(stages).kind {
            PlanKind::Functions(f) => f.backends,
            PlanKind::Cluster(_) => unreachable!("hybrid is a functions plan"),
        };
        SearchSpace {
            backend_masks: vec![
                vec![StageBackend::Functions; stages.len()],
                hybrid_mask,
            ],
            memories_mb: vec![1769],
            instances: vec![None],
            vm_counts: vec![1],
            mem_factors: vec![2.5],
            // Barrier only: the smoke space stays exactly the paper's
            // three named deployments.
            executions: vec![ExecutionMode::Barrier],
            recoveries: vec![RecoveryMode::Protected],
            regions: vec![None],
            spots: vec![false],
            clusters: vec![ClusterPlan::paper()],
        }
    }

    /// The default space: every structured backend placement
    /// (`2^(k+1)` masks — see `backend_masks`), two Lambda memory
    /// settings, the policy's automatic host plus every catalog
    /// instance within the 128 GiB class, fleets of 1–8 workers.
    ///
    /// The cluster family contains exactly the paper's fixed production
    /// deployment: METASPACE's migration goal was leaving that cluster
    /// behind, so the planner treats it as the *given baseline* to beat
    /// rather than a free knob — the decision space is where each stage
    /// of the serverless pipeline runs (functions vs serverful fleet).
    pub fn standard(stages: &[Stage]) -> SearchSpace {
        // Hosts the empirical bound table covers (plus one class above,
        // so the search can question the paper's 64 GiB cut-off), but
        // never the smallest boxes the stateful working set cannot fit.
        let instances: Vec<Option<String>> = std::iter::once(None)
            .chain(
                instances_within_mem(128.0)
                    .filter(|it| it.mem_gib >= 16.0)
                    .map(|it| Some(it.name.to_owned())),
            )
            .collect();
        SearchSpace {
            backend_masks: backend_masks(stages),
            memories_mb: vec![1769, 3538],
            instances,
            vm_counts: (1..=8).collect(),
            mem_factors: vec![2.5],
            executions: vec![ExecutionMode::Barrier, ExecutionMode::Pipelined],
            // The standard space keeps the paper's protected master;
            // sweeping fault tolerance is `recovery_sweep`'s job.
            recoveries: vec![RecoveryMode::Protected],
            regions: vec![None],
            spots: vec![false],
            clusters: vec![ClusterPlan::paper()],
        }
    }

    /// The fault-tolerance sweep: the paper's hybrid knobs crossed with
    /// every [`RecoveryMode`] and both execution modes, so the planner
    /// prices what surviving a master loss costs (checkpoint I/O vs
    /// storage-routed dispatch) against the unprotected baseline.
    pub fn recovery_sweep(stages: &[Stage]) -> SearchSpace {
        let hybrid_mask = match DeploymentPlan::hybrid(stages).kind {
            PlanKind::Functions(f) => f.backends,
            PlanKind::Cluster(_) => unreachable!("hybrid is a functions plan"),
        };
        SearchSpace {
            backend_masks: vec![hybrid_mask],
            memories_mb: vec![1769],
            instances: vec![None],
            vm_counts: vec![1, 4],
            mem_factors: vec![2.5],
            executions: vec![ExecutionMode::Barrier, ExecutionMode::Pipelined],
            recoveries: RecoveryMode::ALL.to_vec(),
            regions: vec![None],
            spots: vec![false],
            clusters: Vec::new(),
        }
    }

    /// The provider-market sweep: the paper's hybrid mask crossed with
    /// every registered region (plus the default) and both tenancies,
    /// so the planner prices where a workflow should run and whether
    /// discounted-but-preemptible spot capacity beats on-demand once
    /// replacement VMs and re-queued bundles are billed.
    pub fn provider_sweep(stages: &[Stage]) -> SearchSpace {
        let hybrid_mask = match DeploymentPlan::hybrid(stages).kind {
            PlanKind::Functions(f) => f.backends,
            PlanKind::Cluster(_) => unreachable!("hybrid is a functions plan"),
        };
        SearchSpace {
            backend_masks: vec![hybrid_mask],
            memories_mb: vec![1769],
            instances: vec![None],
            vm_counts: vec![1, 4],
            mem_factors: vec![2.5],
            executions: vec![ExecutionMode::Barrier],
            recoveries: vec![RecoveryMode::Protected],
            regions: std::iter::once(None)
                .chain(cloudsim::region_keys().into_iter().map(Some))
                .collect(),
            spots: vec![false, true],
            clusters: Vec::new(),
        }
    }

    /// Enumerates the concrete candidate plans: the cross product of the
    /// knobs, canonicalised (a mask with no serverful stage ignores the
    /// VM knobs), deduplicated by key and sorted by key. The three named
    /// deployments keep their names when present.
    pub fn candidates(&self, stages: &[Stage]) -> Vec<DeploymentPlan> {
        let serverless = DeploymentPlan::serverless(stages);
        let hybrid = DeploymentPlan::hybrid(stages);
        let spark = DeploymentPlan::cluster();
        let named: BTreeMap<String, &str> = [
            (serverless.key(), "serverless"),
            (hybrid.key(), "hybrid"),
            (spark.key(), "spark"),
        ]
        .into_iter()
        .collect();

        let mut by_key: BTreeMap<String, DeploymentPlan> = BTreeMap::new();
        let mut add = |plan: DeploymentPlan| {
            let key = plan.key();
            let plan = match named.get(&key) {
                Some(name) => DeploymentPlan {
                    name: (*name).to_owned(),
                    ..plan
                },
                None => DeploymentPlan {
                    name: key.clone(),
                    ..plan
                },
            };
            by_key.entry(key).or_insert(plan);
        };

        let default_region = cloudsim::default_region().key();
        for mask in &self.backend_masks {
            let pure_functions = !mask.contains(&StageBackend::Serverful);
            let pure_serverful = !mask.contains(&StageBackend::Functions);
            for region in &self.regions {
                // Naming the default region selects the configuration
                // the simulator already runs (`apply` only switches on
                // the spot market, which `plan.spot` governs anyway),
                // so it canonicalises to the suffix-free `None`.
                let region = match region {
                    Some(key) if *key == default_region => &None,
                    other => other,
                };
                for &memory_mb in &self.memories_mb {
                    for instance in &self.instances {
                        // An explicit host must exist in the candidate
                        // region's catalog (instance names are
                        // per-provider); the auto twin is pruned as a
                        // duplicate deployment.
                        if let Some(name) = instance {
                            let catalog = region
                                .as_deref()
                                .and_then(cloudsim::region)
                                .map_or_else(cloudsim::catalog, |p| p.catalog);
                            if !catalog.iter().any(|it| it.name == *name) {
                                continue;
                            }
                        }
                        for &vm_count in &self.vm_counts {
                            for &mem_factor in &self.mem_factors {
                                if !pure_functions {
                                    if let Some(name) = instance {
                                        // Same deployment as the `auto`
                                        // candidate — prune the duplicate.
                                        if *name
                                            == auto_instance(
                                                stages,
                                                mask,
                                                mem_factor,
                                                region.as_deref(),
                                            )
                                        {
                                            continue;
                                        }
                                    }
                                }
                                for &execution in &self.executions {
                                    for &recovery in &self.recoveries {
                                        for &spot in &self.spots {
                                            // A spot bid only bites on
                                            // fleet worker slots; the
                                            // consolidated single VM is
                                            // the master and always
                                            // bills on-demand, so its
                                            // spot twin is the same
                                            // deployment.
                                            if spot && (pure_functions || vm_count < 2) {
                                                continue;
                                            }
                                            // Inert knobs are
                                            // canonicalised to their
                                            // defaults so each distinct
                                            // deployment appears once:
                                            // the VM knobs, recovery
                                            // mode and spot bid without
                                            // serverful stages, the
                                            // Lambda memory without
                                            // function stages.
                                            let f = if pure_functions {
                                                FunctionsPlan {
                                                    backends: mask.clone(),
                                                    memory_mb,
                                                    execution,
                                                    region: region.clone(),
                                                    ..FunctionsPlan::serverless(mask.len())
                                                }
                                            } else {
                                                FunctionsPlan {
                                                    backends: mask.clone(),
                                                    memory_mb: if pure_serverful {
                                                        1769
                                                    } else {
                                                        memory_mb
                                                    },
                                                    instance: instance.clone(),
                                                    vm_count,
                                                    mem_factor,
                                                    execution,
                                                    recovery,
                                                    region: region.clone(),
                                                    spot,
                                                    ..FunctionsPlan::serverless(mask.len())
                                                }
                                            };
                                            add(DeploymentPlan::functions("candidate", f));
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        for cluster in &self.clusters {
            add(DeploymentPlan::cluster_of("candidate", cluster.clone()));
        }
        by_key.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaspace::{jobs, pipeline};

    #[test]
    fn smoke_space_is_exactly_the_three_named_plans() {
        let stages = pipeline::stages(&jobs::brain());
        let plans = SearchSpace::smoke(&stages).candidates(&stages);
        let names: Vec<&str> = plans.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(plans.len(), 3, "{names:?}");
        assert!(names.contains(&"serverless"));
        assert!(names.contains(&"hybrid"));
        assert!(names.contains(&"spark"));
    }

    #[test]
    fn candidates_are_deduplicated_and_sorted_by_key() {
        let stages = pipeline::stages(&jobs::brain());
        let plans = SearchSpace::standard(&stages).candidates(&stages);
        let keys: Vec<String> = plans.iter().map(|p| p.key()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(keys, sorted, "sorted and unique");
        assert!(plans.len() > 20, "standard space is a real space: {}", plans.len());
    }

    #[test]
    fn pure_functions_masks_collapse_vm_knobs() {
        let stages = pipeline::stages(&jobs::brain());
        let plans = SearchSpace::standard(&stages).candidates(&stages);
        let pure: Vec<&DeploymentPlan> = plans
            .iter()
            .filter(|p| matches!(&p.kind, PlanKind::Functions(f) if !f.uses_serverful()))
            .collect();
        // One per (memory setting × execution mode), not one per
        // (memory × instance × fleet).
        let space = SearchSpace::standard(&stages);
        assert_eq!(pure.len(), space.memories_mb.len() * space.executions.len());
    }

    #[test]
    fn standard_space_pairs_every_deployment_with_both_executions() {
        let stages = pipeline::stages(&jobs::brain());
        let plans = SearchSpace::standard(&stages).candidates(&stages);
        let (mut barrier, mut pipelined) = (0usize, 0usize);
        for p in &plans {
            if let PlanKind::Functions(f) = &p.kind {
                match f.execution {
                    ExecutionMode::Barrier => barrier += 1,
                    ExecutionMode::Pipelined => pipelined += 1,
                }
            }
        }
        assert_eq!(barrier, pipelined, "every barrier plan has a pipelined twin");
        assert!(pipelined > 0);
    }

    #[test]
    fn standard_space_contains_the_paper_deployments() {
        let stages = pipeline::stages(&jobs::xenograft());
        let plans = SearchSpace::standard(&stages).candidates(&stages);
        assert!(plans.iter().any(|p| p.name == "serverless"));
        assert!(plans.iter().any(|p| p.name == "hybrid"));
        assert!(plans.iter().any(|p| p.key() == DeploymentPlan::cluster().key()));
    }

    #[test]
    fn mask_count_is_two_to_the_stateful_stages_plus_block() {
        let stages = pipeline::stages(&jobs::brain());
        let k = stages.iter().filter(|s| s.is_stateful()).count();
        assert_eq!(backend_masks(&stages).len(), 1 << (k + 1));
    }

    #[test]
    fn recovery_sweep_covers_every_mode_per_deployment() {
        let stages = pipeline::stages(&jobs::brain());
        let plans = SearchSpace::recovery_sweep(&stages).candidates(&stages);
        let mut per_mode = std::collections::BTreeMap::new();
        for p in &plans {
            if let PlanKind::Functions(f) = &p.kind {
                *per_mode.entry(f.recovery.name()).or_insert(0usize) += 1;
            }
        }
        assert_eq!(per_mode.len(), RecoveryMode::ALL.len(), "{per_mode:?}");
        let counts: Vec<usize> = per_mode.values().copied().collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{per_mode:?}");
        assert!(counts[0] >= 4, "fleet × execution per mode: {per_mode:?}");
    }

    #[test]
    fn pure_functions_masks_collapse_the_recovery_knob() {
        // Recovery is a serverful-master property: with no serverful
        // stage the knob is inert and must not multiply candidates.
        let stages = pipeline::stages(&jobs::brain());
        let mut space = SearchSpace::smoke(&stages);
        space.backend_masks = vec![vec![StageBackend::Functions; stages.len()]];
        let baseline = space.candidates(&stages).len();
        space.recoveries = RecoveryMode::ALL.to_vec();
        let swept = space.candidates(&stages).len();
        assert_eq!(baseline, swept);
    }

    #[test]
    fn provider_sweep_crosses_regions_and_tenancies() {
        let stages = pipeline::stages(&jobs::brain());
        let plans = SearchSpace::provider_sweep(&stages).candidates(&stages);
        // Every non-default region appears; the default region
        // canonicalises to the suffix-free key instead of growing a
        // redundant `:@` marker for the same deployment.
        let default_region = cloudsim::default_region().key();
        for key in cloudsim::region_keys() {
            let marker = format!(":@{key}");
            let present = plans.iter().any(|p| p.key().contains(&marker));
            if key == default_region {
                assert!(!present, "default region {key} should stay suffix-free");
            } else {
                assert!(present, "missing region {key}");
            }
        }
        assert!(plans.iter().any(|p| !p.key().contains(":@")));
        // Both tenancies appear; spot plans exist only where the bid can
        // bite (fleet-mode vm4, never the consolidated master), and each
        // has an on-demand twin differing only by the `:sp` marker.
        let spot: Vec<&DeploymentPlan> =
            plans.iter().filter(|p| p.key().ends_with(":sp")).collect();
        assert!(!spot.is_empty());
        for p in &spot {
            assert!(
                p.key().contains(":vm4"),
                "{} bids spot on a consolidated master",
                p.key()
            );
            let twin = p.key().trim_end_matches(":sp").to_owned();
            assert!(
                plans.iter().any(|q| q.key() == twin),
                "{} has no on-demand twin",
                p.key()
            );
        }
    }

    #[test]
    fn default_spaces_stay_in_the_default_region() {
        // Pre-provider candidate sets must stay byte-stable: no smoke,
        // standard or recovery-sweep key may grow a region or spot
        // marker.
        let stages = pipeline::stages(&jobs::brain());
        for space in [
            SearchSpace::smoke(&stages),
            SearchSpace::standard(&stages),
            SearchSpace::recovery_sweep(&stages),
        ] {
            for p in space.candidates(&stages) {
                let key = p.key();
                assert!(!key.contains(":@") && !key.ends_with(":sp"), "{key}");
            }
        }
    }

    #[test]
    fn explicit_instances_matching_the_auto_choice_are_skipped() {
        let stages = pipeline::stages(&jobs::brain());
        let plans = SearchSpace::standard(&stages).candidates(&stages);
        // For every serverful plan with an explicit instance there is no
        // duplicate deployment: the `auto` twin resolves elsewhere.
        for p in &plans {
            if let PlanKind::Functions(f) = &p.kind {
                if let Some(name) = &f.instance {
                    let auto_twin =
                        auto_instance(&stages, &f.backends, f.mem_factor, f.region.as_deref());
                    assert_ne!(
                        name, &auto_twin,
                        "{p}: explicit instance duplicates the sizing policy's choice"
                    );
                }
            }
        }
    }
}
