//! What-if deployment planning over the deterministic cloud simulator.
//!
//! The paper's headline hybrid deployment — stateless stages on cloud
//! functions, stateful operations on a right-sized VM — is a point the
//! authors picked *by hand* from empirical bounds (§4.3). This crate
//! automates that choice: because `cloudsim` worlds are deterministic
//! and cheap, every candidate [`metaspace::plan::DeploymentPlan`] can be
//! evaluated exactly, in parallel, and the results merged into a
//! reproducible Pareto frontier over (cost, makespan).
//!
//! The pieces:
//!
//! * [`SearchSpace`] — generates candidate plans from the instance
//!   catalog and the stage model (backend masks, hosts, fleets, Lambda
//!   memory, sizing factors, cluster shapes);
//! * [`Evaluator`] — runs one candidate through a fresh simulated world
//!   and returns `(cost_usd, makespan, waste)` from the telemetry
//!   ledgers;
//! * [`search()`] — exhaustive grid for small spaces, seeded beam/local
//!   search for large ones, fanned out over [`parallel_map`]'s
//!   hand-rolled `std::thread::scope` work queue;
//! * [`ParetoFrontier`] — the deterministic non-dominated set, with a
//!   [`ParetoFrontier::stable_digest`] that is byte-identical for any
//!   worker count and insertion order.
//!
//! The acceptance experiment (`repro plan brain`, EXPERIMENTS.md):
//! given only the catalog and the workload, the planner rediscovers a
//! hybrid plan that matches the paper's hand-picked one — serverful
//! sort stages, policy-sized host — and dominates pure serverless on
//! cost while beating the fixed cluster on makespan.
//!
//! # Example
//!
//! ```
//! use metaspace::{jobs, pipeline};
//! use planner::{search, Evaluator, SearchConfig, SearchSpace};
//!
//! let stages = pipeline::stages(&jobs::brain());
//! let ev = Evaluator::new("brain-toy", stages, 42);
//! let space = SearchSpace::smoke(&ev.stages);
//! # // Paper-scale runs are slow in debug; doctests only build this.
//! # if false {
//! let report = search(&ev, &space, &SearchConfig::default());
//! for p in report.frontier.points() {
//!     println!("{}: ${:.2} {:.0}s", p.plan, p.cost_usd, p.makespan_secs);
//! }
//! # }
//! ```

#![warn(missing_docs)]

pub mod eval;
pub mod pareto;
pub mod queue;
pub mod search;
pub mod space;

pub use eval::{Evaluator, PlanOutcome};
pub use pareto::ParetoFrontier;
pub use queue::parallel_map;
pub use search::{search, search_with, Objective, SearchConfig, SearchReport};
pub use space::SearchSpace;
