//! The search engine: exhaustive grid for small spaces, seeded
//! beam/local search for large ones.
//!
//! Determinism argument (holds for any worker count):
//!
//! 1. Every candidate's outcome is a pure function of
//!    `(workload, plan, seed)` — each evaluation builds its own fresh
//!    `World` ([`crate::Evaluator`]).
//! 2. The parallel fan-out ([`crate::parallel_map`]) returns results in
//!    input order regardless of scheduling.
//! 3. Every selection (seeding, beam ranking, frontier ordering) uses
//!    total orders: `f64::total_cmp` on objectives, then the stable
//!    plan key.
//!
//! So the evaluated set, the beam trajectory and the final frontier are
//! pure functions of `(workload, space, config)` — `--threads 8`
//! reproduces `--threads 1` byte for byte.

use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;

use metaspace::plan::{DeploymentPlan, PlanKind};

use crate::eval::{Evaluator, PlanOutcome};
use crate::pareto::ParetoFrontier;
use crate::queue::parallel_map;
use crate::space::SearchSpace;

/// What the search optimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Minimise dollars.
    Cost,
    /// Minimise makespan.
    Latency,
    /// Keep the whole non-dominated set.
    #[default]
    Pareto,
}

impl Objective {
    /// Parses a CLI objective name.
    pub fn parse(s: &str) -> Option<Objective> {
        match s {
            "cost" => Some(Objective::Cost),
            "latency" => Some(Objective::Latency),
            "pareto" => Some(Objective::Pareto),
            _ => None,
        }
    }

    /// Ranks two outcomes under this objective (total order; Pareto
    /// ranks cheapest-first like the frontier itself).
    pub fn rank(self, a: &PlanOutcome, b: &PlanOutcome) -> Ordering {
        let primary = match self {
            Objective::Latency => a.makespan_secs.total_cmp(&b.makespan_secs),
            Objective::Cost | Objective::Pareto => a.cost_usd.total_cmp(&b.cost_usd),
        };
        let secondary = match self {
            Objective::Latency => a.cost_usd.total_cmp(&b.cost_usd),
            Objective::Cost | Objective::Pareto => {
                a.makespan_secs.total_cmp(&b.makespan_secs)
            }
        };
        primary
            .then(secondary)
            .then_with(|| a.plan.key().cmp(&b.plan.key()))
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Objective::Cost => "cost",
            Objective::Latency => "latency",
            Objective::Pareto => "pareto",
        })
    }
}

/// Search knobs.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// What to optimise.
    pub objective: Objective,
    /// Worker threads for the evaluation fan-out (≥ 1; purely a speed
    /// knob, never a result knob).
    pub threads: usize,
    /// Seed for both the simulations and the beam search's seeding.
    pub seed: u64,
    /// Spaces up to this many candidates are searched exhaustively;
    /// larger ones get the seeded beam search.
    pub grid_limit: usize,
    /// Plans kept per beam round.
    pub beam_width: usize,
    /// Beam expansion rounds.
    pub beam_rounds: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            objective: Objective::Pareto,
            threads: 1,
            seed: 42,
            grid_limit: 96,
            beam_width: 8,
            beam_rounds: 4,
        }
    }
}

/// What a search produced.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// The non-dominated set over everything evaluated.
    pub frontier: ParetoFrontier,
    /// Every evaluated outcome, sorted by the configured objective.
    pub ranked: Vec<PlanOutcome>,
    /// Candidates evaluated.
    pub evaluated: usize,
    /// Candidates whose simulation failed (skipped).
    pub failed: usize,
    /// Candidates the space contained.
    pub space_size: usize,
    /// Whether the whole space was enumerated (vs beam search).
    pub exhaustive: bool,
}

impl SearchReport {
    /// The winner under the configured objective (`None` only for an
    /// empty space).
    pub fn best(&self) -> Option<&PlanOutcome> {
        self.ranked.first()
    }
}

/// `splitmix64`: the tiny standard seed mixer (no crates.io RNGs here).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Knob distance between two candidates, mirroring the knobs the space
/// generator varies: each *stateful* stage's backend is its own knob,
/// the stateless stages' placement moves as one block knob (like
/// `SearchSpace`'s masks), and every scalar (memory, instance, fleet
/// size, sizing factor, retry budget) is one knob. Plans from different
/// families (functions vs cluster) are never neighbours.
fn knob_distance(stages: &[metaspace::Stage], a: &DeploymentPlan, b: &DeploymentPlan) -> usize {
    match (&a.kind, &b.kind) {
        (PlanKind::Functions(x), PlanKind::Functions(y)) => {
            if x.backends.len() != stages.len() || y.backends.len() != stages.len() {
                return usize::MAX;
            }
            let stateful_diff = stages
                .iter()
                .zip(x.backends.iter().zip(&y.backends))
                .filter(|(s, (p, q))| s.is_stateful() && p != q)
                .count();
            let stateless_diff = usize::from(
                stages
                    .iter()
                    .zip(x.backends.iter().zip(&y.backends))
                    .any(|(s, (p, q))| !s.is_stateful() && p != q),
            );
            stateful_diff
                + stateless_diff
                + usize::from(x.memory_mb != y.memory_mb)
                + usize::from(x.instance != y.instance)
                + usize::from(x.vm_count != y.vm_count)
                + usize::from(x.mem_factor.to_bits() != y.mem_factor.to_bits())
                + usize::from(x.max_attempts != y.max_attempts)
        }
        (PlanKind::Cluster(x), PlanKind::Cluster(y)) => {
            usize::from(x.instance != y.instance) + usize::from(x.nodes != y.nodes)
        }
        _ => usize::MAX,
    }
}

/// Runs the search: grid when the space fits under
/// [`SearchConfig::grid_limit`], seeded beam search otherwise.
pub fn search(evaluator: &Evaluator, space: &SearchSpace, cfg: &SearchConfig) -> SearchReport {
    search_with(
        &evaluator.stages,
        &|plan| evaluator.evaluate(plan),
        space,
        cfg,
    )
}

/// [`search`] over an arbitrary evaluation function: the same grid/beam
/// engine, with the objective measured however the caller likes. The
/// `fleet` crate uses this to evaluate a plan *under load* — the
/// outcome of one plan measured inside a multi-tenant traffic scenario
/// rather than an isolated single-job world. `eval` must be a pure
/// function of the plan (plus captured constants) for the determinism
/// argument in the module docs to hold.
pub fn search_with(
    stages: &[metaspace::Stage],
    eval: &(dyn Fn(&DeploymentPlan) -> Result<PlanOutcome, serverful::ExecError> + Sync),
    space: &SearchSpace,
    cfg: &SearchConfig,
) -> SearchReport {
    let candidates = space.candidates(stages);
    let exhaustive = candidates.len() <= cfg.grid_limit;
    let mut outcomes: Vec<PlanOutcome> = Vec::new();
    let mut failed = 0usize;
    let mut evaluate_batch = |batch: &[DeploymentPlan], outcomes: &mut Vec<PlanOutcome>| {
        let results = parallel_map(batch, cfg.threads, |_, plan| eval(plan));
        for r in results {
            match r {
                Ok(o) => outcomes.push(o),
                Err(_) => failed += 1,
            }
        }
    };

    if exhaustive {
        evaluate_batch(&candidates, &mut outcomes);
    } else {
        // Seed the beam: the named deployments (the paper's three
        // points, when the space contains them) plus a deterministic
        // random sample of the rest.
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut seeds: Vec<DeploymentPlan> = candidates
            .iter()
            .filter(|p| matches!(p.name.as_str(), "serverless" | "hybrid" | "spark"))
            .cloned()
            .collect();
        let mut rng = cfg.seed;
        while seeds.len() < cfg.beam_width.min(candidates.len()) {
            let pick = (splitmix64(&mut rng) % candidates.len() as u64) as usize;
            let plan = &candidates[pick];
            if seeds.iter().all(|s| s.key() != plan.key()) {
                seeds.push(plan.clone());
            }
        }
        for s in &seeds {
            seen.insert(s.key());
        }
        evaluate_batch(&seeds, &mut outcomes);

        for _ in 0..cfg.beam_rounds {
            // The beam: best evaluated plans under the objective.
            let mut ranked: Vec<&PlanOutcome> = outcomes.iter().collect();
            ranked.sort_by(|a, b| cfg.objective.rank(a, b));
            ranked.truncate(cfg.beam_width);
            // Expand: every unvisited candidate one knob away from a
            // beam plan. Candidate order (sorted by key) keeps the
            // batch deterministic.
            let batch: Vec<DeploymentPlan> = candidates
                .iter()
                .filter(|c| !seen.contains(&c.key()))
                .filter(|c| {
                    ranked
                        .iter()
                        .any(|o| knob_distance(stages, &o.plan, c) <= 1)
                })
                .cloned()
                .collect();
            if batch.is_empty() {
                break;
            }
            for b in &batch {
                seen.insert(b.key());
            }
            evaluate_batch(&batch, &mut outcomes);
        }
    }

    let frontier = ParetoFrontier::from_outcomes(outcomes.iter().cloned());
    let mut ranked = outcomes;
    ranked.sort_by(|a, b| cfg.objective.rank(a, b));
    SearchReport {
        evaluated: ranked.len(),
        failed,
        space_size: candidates.len(),
        exhaustive,
        frontier,
        ranked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaspace::{jobs, pipeline, Stage, StageKind};

    fn toy_stages() -> Vec<Stage> {
        vec![
            Stage {
                name: "map".into(),
                tasks: 8,
                cpu_secs_per_task: 0.5,
                read_mb_per_task: 2.0,
                write_mb_per_task: 2.0,
                kind: StageKind::Stateless {
                    read_spread: 2,
                    write_spread: 2,
                },
            },
            Stage {
                name: "shuffle".into(),
                tasks: 8,
                cpu_secs_per_task: 0.5,
                read_mb_per_task: 0.0,
                write_mb_per_task: 0.0,
                kind: StageKind::Stateful { exchange_gb: 0.05 },
            },
            Stage {
                name: "reduce".into(),
                tasks: 4,
                cpu_secs_per_task: 0.5,
                read_mb_per_task: 1.0,
                write_mb_per_task: 1.0,
                kind: StageKind::Stateless {
                    read_spread: 2,
                    write_spread: 2,
                },
            },
        ]
    }

    #[test]
    fn smoke_grid_finds_all_three_named_plans() {
        let ev = Evaluator::new("toy", toy_stages(), 42);
        let space = SearchSpace::smoke(&ev.stages);
        let report = search(&ev, &space, &SearchConfig::default());
        assert!(report.exhaustive);
        assert_eq!(report.evaluated, 3);
        assert_eq!(report.failed, 0);
        assert!(!report.frontier.is_empty());
        assert!(report.best().is_some());
    }

    #[test]
    fn frontier_has_no_dominated_point() {
        let ev = Evaluator::new("toy", toy_stages(), 42);
        let report = search(&ev, &SearchSpace::smoke(&ev.stages), &SearchConfig::default());
        let pts = report.frontier.points();
        for a in pts {
            for b in pts {
                assert!(!a.dominates(b), "{} dominates {}", a.plan, b.plan);
            }
        }
        // And every evaluated non-frontier plan is dominated or equal.
        for o in &report.ranked {
            let on_frontier = pts.iter().any(|p| p.plan.key() == o.plan.key());
            assert!(on_frontier || report.frontier.dominated(o), "{}", o.plan);
        }
    }

    #[test]
    fn thread_count_never_changes_the_frontier() {
        let ev = Evaluator::new("toy", toy_stages(), 42);
        let space = SearchSpace::standard(&ev.stages);
        let digest_of = |threads: usize| {
            let cfg = SearchConfig {
                threads,
                ..SearchConfig::default()
            };
            search(&ev, &space, &cfg).frontier.stable_digest()
        };
        let one = digest_of(1);
        assert_eq!(one, digest_of(8), "1 vs 8 workers");
        assert_eq!(one, digest_of(3), "1 vs 3 workers");
        assert!(!one.is_empty());
    }

    #[test]
    fn repeated_same_seed_runs_are_identical() {
        let ev = Evaluator::new("toy", toy_stages(), 7);
        let space = SearchSpace::smoke(&ev.stages);
        let cfg = SearchConfig {
            threads: 4,
            seed: 7,
            ..SearchConfig::default()
        };
        let a = search(&ev, &space, &cfg).frontier.stable_digest();
        let b = search(&ev, &space, &cfg).frontier.stable_digest();
        assert_eq!(a, b);
    }

    #[test]
    fn beam_search_is_deterministic_and_visits_fewer_candidates() {
        let ev = Evaluator::new("toy", toy_stages(), 42);
        let space = SearchSpace::standard(&ev.stages);
        let cfg = SearchConfig {
            grid_limit: 4, // force the beam path
            beam_width: 4,
            beam_rounds: 2,
            threads: 8,
            ..SearchConfig::default()
        };
        let a = search(&ev, &space, &cfg);
        let b = search(&ev, &space, &cfg);
        assert!(!a.exhaustive);
        assert!(a.evaluated < a.space_size, "beam prunes the space");
        assert_eq!(a.frontier.stable_digest(), b.frontier.stable_digest());
        let serial = search(
            &ev,
            &space,
            &SearchConfig {
                threads: 1,
                ..cfg
            },
        );
        assert_eq!(a.frontier.stable_digest(), serial.frontier.stable_digest());
    }

    #[test]
    fn objectives_rank_differently() {
        let ev = Evaluator::new("toy", toy_stages(), 42);
        let space = SearchSpace::smoke(&ev.stages);
        let by = |objective| {
            search(
                &ev,
                &space,
                &SearchConfig {
                    objective,
                    ..SearchConfig::default()
                },
            )
        };
        let cost = by(Objective::Cost);
        let latency = by(Objective::Latency);
        let best_cost = cost.best().unwrap();
        let best_latency = latency.best().unwrap();
        // The cost winner is never more expensive than the latency
        // winner, and vice versa on makespan.
        assert!(best_cost.cost_usd <= best_latency.cost_usd);
        assert!(best_latency.makespan_secs <= best_cost.makespan_secs);
    }

    #[test]
    fn brain_smoke_search_reproduces_paper_ordering() {
        // Release-only: paper-scale simulations are slow in debug.
        if cfg!(debug_assertions) {
            return;
        }
        let ev = Evaluator::for_job(&jobs::brain(), 42);
        let report = search(&ev, &SearchSpace::smoke(&ev.stages), &SearchConfig::default());
        let by_name = |name: &str| {
            report
                .ranked
                .iter()
                .find(|o| o.plan.name == name)
                .expect("evaluated")
        };
        let (serverless, hybrid, spark) = (by_name("serverless"), by_name("hybrid"), by_name("spark"));
        // The paper's Brain ordering (Table 4 / Figure 4): the hybrid
        // dominates pure serverless outright, while the warm Spark
        // cluster stays fastest — so spark evicts hybrid and is the
        // smoke frontier's sole survivor.
        assert!(hybrid.dominates(serverless), "hybrid beats serverless");
        assert!(spark.makespan_secs <= hybrid.makespan_secs, "spark fastest");
        assert!(report.frontier.by_name("spark").is_some());
        let _ = pipeline::stages(&jobs::brain());
    }
}
