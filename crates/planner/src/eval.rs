//! Runs one candidate plan through a fresh simulated world.

use cloudsim::CloudConfig;
use metaspace::jobs::JobSpec;
use metaspace::pipeline::{self, Stage, StageEdge, Workload};
use metaspace::plan::DeploymentPlan;
use metaspace::runner::run_plan_graph;
use serverful::ExecError;

/// The measured objectives of one plan: what the search engine trades
/// off. All three come out of the telemetry ledgers of the plan's own
/// fresh [`cloudsim::World`].
#[derive(Debug, Clone)]
pub struct PlanOutcome {
    /// The plan evaluated.
    pub plan: DeploymentPlan,
    /// Dollars billed for the measured window.
    pub cost_usd: f64,
    /// End-to-end wall-clock seconds.
    pub makespan_secs: f64,
    /// Billed-but-wasted resources (retries, stragglers) from the fault
    /// ledger; zero in fault-free runs.
    pub waste: f64,
}

impl PlanOutcome {
    /// Pareto dominance under (cost, makespan) minimisation: at least
    /// as good on both objectives and strictly better on one.
    pub fn dominates(&self, other: &PlanOutcome) -> bool {
        self.cost_usd <= other.cost_usd
            && self.makespan_secs <= other.makespan_secs
            && (self.cost_usd < other.cost_usd || self.makespan_secs < other.makespan_secs)
    }

    /// The paper's cost-performance metric, `1 / (latency × cost)`.
    pub fn cost_performance(&self) -> f64 {
        1.0 / (self.makespan_secs * self.cost_usd)
    }
}

/// Evaluates candidate plans for one fixed workload.
///
/// Every call builds a *fresh* simulated region from the same
/// `CloudConfig` and seed, so evaluations are independent and the
/// outcome of a plan is a pure function of `(workload, plan, seed)` —
/// the property the parallel search leans on for determinism.
#[derive(Debug, Clone)]
pub struct Evaluator {
    /// Run label (job name).
    pub label: String,
    /// The stage graph to deploy.
    pub stages: Vec<Stage>,
    /// The dataflow edges between stages (per downstream stage).
    pub edges: Vec<Vec<StageEdge>>,
    /// Cloud configuration each world is built from.
    pub cloud: CloudConfig,
    /// Simulation seed shared by every evaluation.
    pub seed: u64,
}

impl Evaluator {
    /// An evaluator for one of the paper's Table 2 jobs.
    pub fn for_job(job: &JobSpec, seed: u64) -> Evaluator {
        Evaluator::for_workload(&pipeline::job_workload(job), seed)
    }

    /// An evaluator for any workload description — the planner's entry
    /// point for the DSL families; the candidate space it searches
    /// ([`crate::SearchSpace`]) is derived from the same stage list.
    pub fn for_workload(w: &Workload, seed: u64) -> Evaluator {
        Evaluator {
            label: w.name.clone(),
            stages: w.stages.clone(),
            edges: w.edges.clone(),
            cloud: CloudConfig::default(),
            seed,
        }
    }

    /// An evaluator for a bare stage list, with edges recovered by the
    /// METASPACE name match (linear all-to-all chain otherwise).
    pub fn new(label: impl Into<String>, stages: Vec<Stage>, seed: u64) -> Evaluator {
        let edges = pipeline::edges(&stages);
        Evaluator {
            label: label.into(),
            stages,
            edges,
            cloud: CloudConfig::default(),
            seed,
        }
    }

    /// Runs `plan` in a fresh world and measures it.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures (malformed plans, exhausted retry
    /// budgets under fault injection). The search engine skips failed
    /// candidates rather than aborting.
    pub fn evaluate(&self, plan: &DeploymentPlan) -> Result<PlanOutcome, ExecError> {
        let (report, _) = run_plan_graph(
            &self.label,
            &self.stages,
            &self.edges,
            plan,
            self.seed,
            self.cloud.clone(),
            false,
        )?;
        Ok(PlanOutcome {
            plan: plan.clone(),
            cost_usd: report.cost_usd,
            makespan_secs: report.wall_secs,
            waste: report.waste,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaspace::plan::{FunctionsPlan, StageBackend};

    fn tiny_stages() -> Vec<Stage> {
        vec![
            Stage {
                name: "load".into(),
                tasks: 4,
                cpu_secs_per_task: 1.0,
                read_mb_per_task: 1.0,
                write_mb_per_task: 1.0,
                kind: metaspace::StageKind::Stateless {
                    read_spread: 2,
                    write_spread: 2,
                },
            },
            Stage {
                name: "sort".into(),
                tasks: 4,
                cpu_secs_per_task: 1.0,
                read_mb_per_task: 0.0,
                write_mb_per_task: 0.0,
                kind: metaspace::StageKind::Stateful { exchange_gb: 0.01 },
            },
        ]
    }

    #[test]
    fn outcome_is_deterministic_across_repeated_evaluations() {
        let ev = Evaluator::new("toy", tiny_stages(), 7);
        let plan = DeploymentPlan::hybrid(&ev.stages);
        let a = ev.evaluate(&plan).unwrap();
        let b = ev.evaluate(&plan).unwrap();
        assert_eq!(a.cost_usd.to_bits(), b.cost_usd.to_bits());
        assert_eq!(a.makespan_secs.to_bits(), b.makespan_secs.to_bits());
    }

    #[test]
    fn malformed_plans_are_rejected_not_run() {
        let ev = Evaluator::new("toy", tiny_stages(), 7);
        let bad = DeploymentPlan::functions(
            "bad",
            FunctionsPlan {
                backends: vec![StageBackend::Functions], // wrong length
                ..match DeploymentPlan::serverless(&ev.stages).kind {
                    metaspace::PlanKind::Functions(f) => f,
                    _ => unreachable!(),
                }
            },
        );
        assert!(ev.evaluate(&bad).is_err());
    }

    #[test]
    fn workload_evaluators_deploy_the_declared_edges() {
        // A DSL family whose graph the METASPACE name match does not
        // know: the evaluator must run the declared diamond, not the
        // linear fallback, and stay deterministic.
        let w = metaspace::workloads::named("montage")
            .expect("bundled family")
            .scaled(0.05);
        let ev = Evaluator::for_workload(&w, 7);
        assert_eq!(ev.edges, w.edges);
        let plan = DeploymentPlan::hybrid(&ev.stages);
        let a = ev.evaluate(&plan).unwrap();
        let b = ev.evaluate(&plan).unwrap();
        assert_eq!(a.cost_usd.to_bits(), b.cost_usd.to_bits());
        assert_eq!(a.makespan_secs.to_bits(), b.makespan_secs.to_bits());
    }

    #[test]
    fn dominance_requires_a_strict_edge() {
        let ev = Evaluator::new("toy", tiny_stages(), 7);
        let out = ev.evaluate(&DeploymentPlan::hybrid(&ev.stages)).unwrap();
        assert!(!out.dominates(&out), "a point never dominates itself");
        let mut cheaper = out.clone();
        cheaper.cost_usd *= 0.5;
        assert!(cheaper.dominates(&out));
        assert!(!out.dominates(&cheaper));
    }
}
