//! A hand-rolled parallel work queue over `std::thread::scope`.
//!
//! No crates.io here, so no rayon: workers pull item indices from a
//! shared atomic counter, keep their results tagged with those indices,
//! and the merge step sorts by index. The output is therefore a pure
//! function of the input — identical for 1 worker or 64, however the
//! OS schedules them.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on `threads` scoped workers and returns
/// the results in input order.
///
/// `f` receives `(index, &item)`. With `threads <= 1` (or a single
/// item) everything runs on the calling thread.
///
/// # Example
///
/// ```
/// let squares = planner::parallel_map(&[1u64, 2, 3, 4], 3, |_, x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let tagged: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    local.push((i, f(i, item)));
                }
                tagged.lock().expect("worker panicked holding lock").extend(local);
            });
        }
    });
    let mut tagged = tagged.into_inner().expect("worker panicked holding lock");
    tagged.sort_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_at_any_width() {
        let items: Vec<usize> = (0..257).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 3).collect();
        for threads in [1, 2, 7, 64] {
            let got = parallel_map(&items, threads, |_, x| x * 3);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 8, |_, x| *x).is_empty());
        assert_eq!(parallel_map(&[9u32], 8, |_, x| *x), vec![9]);
    }

    #[test]
    fn index_matches_item() {
        let items: Vec<usize> = (0..100).collect();
        let got = parallel_map(&items, 5, |i, x| (i, *x));
        for (i, (idx, val)) in got.iter().enumerate() {
            assert_eq!((i, i), (*idx, *val));
        }
    }
}
