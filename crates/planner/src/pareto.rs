//! A deterministic Pareto frontier over (cost, makespan).
//!
//! The frontier is a *set* in objective space: inserting the same
//! outcomes in any order yields the same frontier, and rendering it
//! yields the same bytes. Determinism comes from total orderings
//! everywhere a float comparison could tie — `f64::total_cmp` on the
//! objectives, then the plan's stable
//! [`metaspace::plan::DeploymentPlan::key`] as the final tiebreak.

use std::cmp::Ordering;

use crate::eval::PlanOutcome;

/// The non-dominated set of evaluated plans, kept sorted by
/// (cost, makespan, plan key).
#[derive(Debug, Clone, Default)]
pub struct ParetoFrontier {
    points: Vec<PlanOutcome>,
}

/// The total order frontier points are kept in.
fn point_cmp(a: &PlanOutcome, b: &PlanOutcome) -> Ordering {
    a.cost_usd
        .total_cmp(&b.cost_usd)
        .then_with(|| a.makespan_secs.total_cmp(&b.makespan_secs))
        .then_with(|| a.plan.key().cmp(&b.plan.key()))
}

impl ParetoFrontier {
    /// An empty frontier.
    pub fn new() -> ParetoFrontier {
        ParetoFrontier::default()
    }

    /// Builds a frontier from a batch of outcomes.
    pub fn from_outcomes(outcomes: impl IntoIterator<Item = PlanOutcome>) -> ParetoFrontier {
        let mut f = ParetoFrontier::new();
        for o in outcomes {
            f.insert(o);
        }
        f
    }

    /// Offers one outcome: kept if no current point dominates it, and
    /// any points it dominates (or duplicates by plan key) are evicted.
    pub fn insert(&mut self, outcome: PlanOutcome) {
        let key = outcome.plan.key();
        if self
            .points
            .iter()
            .any(|p| p.dominates(&outcome) || p.plan.key() == key)
        {
            return;
        }
        self.points.retain(|p| !outcome.dominates(p));
        let at = self
            .points
            .binary_search_by(|p| point_cmp(p, &outcome))
            .unwrap_or_else(|i| i);
        self.points.insert(at, outcome);
    }

    /// Merges another frontier in.
    pub fn merge(&mut self, other: ParetoFrontier) {
        for p in other.points {
            self.insert(p);
        }
    }

    /// The frontier, sorted by (cost, makespan, plan key).
    pub fn points(&self) -> &[PlanOutcome] {
        &self.points
    }

    /// Number of non-dominated plans.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether nothing has survived (or been offered).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The cheapest plan (ties broken by makespan, then key).
    pub fn cheapest(&self) -> Option<&PlanOutcome> {
        self.points.first()
    }

    /// The fastest plan (ties broken by cost, then key).
    pub fn fastest(&self) -> Option<&PlanOutcome> {
        self.points.iter().min_by(|a, b| {
            a.makespan_secs
                .total_cmp(&b.makespan_secs)
                .then_with(|| a.cost_usd.total_cmp(&b.cost_usd))
                .then_with(|| a.plan.key().cmp(&b.plan.key()))
        })
    }

    /// Finds a frontier plan by name.
    pub fn by_name(&self, name: &str) -> Option<&PlanOutcome> {
        self.points.iter().find(|p| p.plan.name == name)
    }

    /// Whether `outcome` is dominated by some frontier point.
    pub fn dominated(&self, outcome: &PlanOutcome) -> bool {
        self.points.iter().any(|p| p.dominates(outcome))
    }

    /// A stable text rendering: one `key cost makespan` line per point.
    /// Byte-identical across runs, worker counts and insertion orders —
    /// the determinism tests compare exactly this.
    pub fn stable_digest(&self) -> String {
        let mut out = String::new();
        for p in &self.points {
            out.push_str(&format!(
                "{} cost={:.9} makespan={:.9} waste={:.9}\n",
                p.plan.key(),
                p.cost_usd,
                p.makespan_secs,
                p.waste
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaspace::plan::{ClusterPlan, DeploymentPlan, FunctionsPlan, StageBackend};

    fn outcome(name: &str, serverful: usize, cost: f64, makespan: f64) -> PlanOutcome {
        // Distinct `serverful` values give distinct plan keys.
        let plan = DeploymentPlan::functions(
            name,
            FunctionsPlan {
                backends: (0..4)
                    .map(|i| {
                        if i < serverful {
                            StageBackend::Serverful
                        } else {
                            StageBackend::Functions
                        }
                    })
                    .collect(),
                memory_mb: 1769,
                instance: None,
                vm_count: 1,
                mem_factor: 2.5,
                max_attempts: 3,
                execution: serverful::ExecutionMode::Barrier,
                recovery: serverful::RecoveryMode::Protected,
                region: None,
                spot: false,
            },
        );
        PlanOutcome {
            plan,
            cost_usd: cost,
            makespan_secs: makespan,
            waste: 0.0,
        }
    }

    #[test]
    fn dominated_points_are_evicted() {
        let mut f = ParetoFrontier::new();
        f.insert(outcome("a", 0, 10.0, 10.0));
        f.insert(outcome("b", 1, 5.0, 5.0)); // dominates a
        assert_eq!(f.len(), 1);
        assert_eq!(f.points()[0].plan.name, "b");
        f.insert(outcome("c", 2, 20.0, 20.0)); // dominated, dropped
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn incomparable_points_coexist() {
        let mut f = ParetoFrontier::new();
        f.insert(outcome("cheap", 0, 1.0, 10.0));
        f.insert(outcome("fast", 1, 10.0, 1.0));
        assert_eq!(f.len(), 2);
        assert_eq!(f.cheapest().unwrap().plan.name, "cheap");
        assert_eq!(f.fastest().unwrap().plan.name, "fast");
    }

    #[test]
    fn insertion_order_does_not_change_the_digest() {
        let pts = [
            outcome("a", 0, 3.0, 7.0),
            outcome("b", 1, 1.0, 9.0),
            outcome("c", 2, 9.0, 1.0),
            outcome("d", 3, 2.0, 8.0),
            outcome("e", 4, 5.0, 5.0),
        ];
        let forward = ParetoFrontier::from_outcomes(pts.clone()).stable_digest();
        let reverse =
            ParetoFrontier::from_outcomes(pts.iter().rev().cloned()).stable_digest();
        assert_eq!(forward, reverse);
        assert!(!forward.is_empty());
    }

    #[test]
    fn duplicate_keys_are_inserted_once() {
        let mut f = ParetoFrontier::new();
        f.insert(outcome("a", 0, 3.0, 7.0));
        f.insert(outcome("a2", 0, 3.0, 7.0)); // same key
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn merge_equals_bulk_insert() {
        let left = ParetoFrontier::from_outcomes([
            outcome("a", 0, 3.0, 7.0),
            outcome("b", 1, 1.0, 9.0),
        ]);
        let right = ParetoFrontier::from_outcomes([
            outcome("c", 2, 9.0, 1.0),
            outcome("d", 3, 0.5, 0.5),
        ]);
        let mut merged = left.clone();
        merged.merge(right);
        // d dominates everything except nothing dominates it.
        assert_eq!(merged.len(), 1);
        assert_eq!(merged.points()[0].plan.name, "d");
    }

    #[test]
    fn cluster_and_functions_keys_never_collide() {
        let mut f = ParetoFrontier::new();
        f.insert(outcome("fn", 0, 1.0, 1.0));
        f.insert(PlanOutcome {
            plan: DeploymentPlan::cluster_of("cl", ClusterPlan::paper()),
            cost_usd: 1.0,
            makespan_secs: 1.0,
            waste: 0.0,
        });
        assert_eq!(f.len(), 2, "equal objectives, different families");
    }
}
