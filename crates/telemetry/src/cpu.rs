//! CPU-utilisation traces.
//!
//! The paper's Table 3 compares CPU usage of the serverless and Spark
//! deployments: average, standard deviation, extrema, and the average
//! restricted to stateful operations. [`CpuMonitor`] reproduces that
//! measurement: each *fleet* (the Lambda pool, the cluster, the standalone
//! workers, the scheduler) reports busy-vCPU and provisioned-vCPU step
//! signals, and utilisation is sampled at a fixed interval as
//! `100 × Σ busy / Σ provisioned`.

use simkernel::{SimDuration, SimTime, StepSeries};

use crate::stats::Summary;

/// Handle to a registered fleet within one [`CpuMonitor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FleetTag(usize);

#[derive(Debug)]
struct Fleet {
    name: String,
    busy: StepSeries,
    provisioned: StepSeries,
}

/// Records busy/provisioned vCPU counts per fleet over virtual time.
///
/// # Example
///
/// ```
/// use simkernel::{SimDuration, SimTime};
/// use telemetry::CpuMonitor;
///
/// let mut mon = CpuMonitor::new();
/// let fleet = mon.register("lambda");
/// mon.add_provisioned(fleet, SimTime::ZERO, 4.0);
/// mon.add_busy(fleet, SimTime::ZERO, 2.0);
/// let samples = mon.utilisation_samples(
///     SimTime::ZERO,
///     SimTime::from_secs_f64(3.0),
///     SimDuration::from_secs(1),
/// );
/// assert_eq!(samples, vec![50.0, 50.0, 50.0]);
/// ```
#[derive(Debug, Default)]
pub struct CpuMonitor {
    fleets: Vec<Fleet>,
}

impl CpuMonitor {
    /// Creates a monitor with no fleets.
    pub fn new() -> Self {
        CpuMonitor::default()
    }

    /// Registers a fleet and returns its tag.
    pub fn register(&mut self, name: impl Into<String>) -> FleetTag {
        self.fleets.push(Fleet {
            name: name.into(),
            busy: StepSeries::new(0.0),
            provisioned: StepSeries::new(0.0),
        });
        FleetTag(self.fleets.len() - 1)
    }

    /// The name a fleet was registered under.
    pub fn fleet_name(&self, tag: FleetTag) -> &str {
        &self.fleets[tag.0].name
    }

    /// Adds `delta` busy vCPUs to a fleet from time `t` (negative to
    /// release).
    pub fn add_busy(&mut self, tag: FleetTag, t: SimTime, delta: f64) {
        let fleet = &mut self.fleets[tag.0];
        fleet.busy.add(t, delta);
        debug_assert!(
            fleet.busy.last_value() >= -1e-9,
            "fleet {} busy count went negative",
            fleet.name
        );
    }

    /// Adds `delta` provisioned vCPUs to a fleet from time `t` (negative
    /// to deprovision).
    pub fn add_provisioned(&mut self, tag: FleetTag, t: SimTime, delta: f64) {
        let fleet = &mut self.fleets[tag.0];
        fleet.provisioned.add(t, delta);
        debug_assert!(
            fleet.provisioned.last_value() >= -1e-9,
            "fleet {} provisioned count went negative",
            fleet.name
        );
    }

    /// Utilisation (percent) sampled every `every` over `[from, to)`,
    /// aggregated across all fleets. Instants where nothing is provisioned
    /// are skipped, matching a monitoring agent that has no hosts to
    /// report on.
    pub fn utilisation_samples(
        &self,
        from: SimTime,
        to: SimTime,
        every: SimDuration,
    ) -> Vec<f64> {
        assert!(!every.is_zero(), "sampling interval must be positive");
        let mut out = Vec::new();
        let mut t = from;
        while t < to {
            let busy: f64 = self.fleets.iter().map(|f| f.busy.value_at(t)).sum();
            let prov: f64 = self.fleets.iter().map(|f| f.provisioned.value_at(t)).sum();
            if prov > 1e-9 {
                out.push(100.0 * busy / prov);
            }
            t += every;
        }
        out
    }

    /// Utilisation samples restricted to the given windows (used for the
    /// "average (stateful operations)" row of Table 3).
    pub fn utilisation_samples_in(
        &self,
        windows: &[(SimTime, SimTime)],
        every: SimDuration,
    ) -> Vec<f64> {
        let mut out = Vec::new();
        for &(from, to) in windows {
            out.extend(self.utilisation_samples(from, to, every));
        }
        out
    }

    /// Total vCPU-seconds provisioned over `[from, to)`, across fleets.
    pub fn provisioned_vcpu_seconds(&self, from: SimTime, to: SimTime) -> f64 {
        self.fleets
            .iter()
            .map(|f| f.provisioned.integral(from, to))
            .sum()
    }

    /// Total busy vCPU-seconds over `[from, to)`, across fleets.
    pub fn busy_vcpu_seconds(&self, from: SimTime, to: SimTime) -> f64 {
        self.fleets.iter().map(|f| f.busy.integral(from, to)).sum()
    }
}

/// The CPU-usage statistics of one deployment run, in percent — the rows
/// of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsageStats {
    /// Mean utilisation over the run.
    pub average: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Peak utilisation.
    pub max: f64,
    /// Trough utilisation.
    pub min: f64,
    /// Mean utilisation during stateful operations only.
    pub stateful_average: f64,
}

impl UsageStats {
    /// Computes usage statistics from a monitor over `[from, to)`,
    /// sampling every `every`, with `stateful_windows` marking the spans
    /// of stateful operations.
    ///
    /// Returns `None` if no samples fall in the interval.
    pub fn compute(
        monitor: &CpuMonitor,
        from: SimTime,
        to: SimTime,
        every: SimDuration,
        stateful_windows: &[(SimTime, SimTime)],
    ) -> Option<UsageStats> {
        let samples = monitor.utilisation_samples(from, to, every);
        let overall = Summary::of(&samples)?;
        let stateful = monitor.utilisation_samples_in(stateful_windows, every);
        let stateful_average = Summary::of(&stateful).map_or(f64::NAN, |s| s.mean);
        Some(UsageStats {
            average: overall.mean,
            std_dev: overall.std_dev,
            max: overall.max,
            min: overall.min,
            stateful_average,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn utilisation_is_busy_over_provisioned() {
        let mut mon = CpuMonitor::new();
        let a = mon.register("a");
        mon.add_provisioned(a, t(0.0), 10.0);
        mon.add_busy(a, t(0.0), 5.0);
        mon.add_busy(a, t(2.0), 5.0);
        let samples = mon.utilisation_samples(t(0.0), t(4.0), SimDuration::from_secs(1));
        assert_eq!(samples, vec![50.0, 50.0, 100.0, 100.0]);
    }

    #[test]
    fn fleets_aggregate() {
        let mut mon = CpuMonitor::new();
        let a = mon.register("a");
        let b = mon.register("b");
        mon.add_provisioned(a, t(0.0), 4.0);
        mon.add_provisioned(b, t(0.0), 4.0);
        mon.add_busy(a, t(0.0), 4.0);
        // 4 busy of 8 provisioned = 50 %.
        let samples = mon.utilisation_samples(t(0.0), t(1.0), SimDuration::from_secs(1));
        assert_eq!(samples, vec![50.0]);
    }

    #[test]
    fn unprovisioned_instants_are_skipped() {
        let mut mon = CpuMonitor::new();
        let a = mon.register("a");
        mon.add_provisioned(a, t(2.0), 2.0);
        mon.add_busy(a, t(2.0), 1.0);
        let samples = mon.utilisation_samples(t(0.0), t(4.0), SimDuration::from_secs(1));
        // t=0 and t=1 have nothing provisioned.
        assert_eq!(samples, vec![50.0, 50.0]);
    }

    #[test]
    fn stateful_windows_select_samples() {
        let mut mon = CpuMonitor::new();
        let a = mon.register("a");
        mon.add_provisioned(a, t(0.0), 10.0);
        mon.add_busy(a, t(0.0), 8.0); // 80 % during [0, 5)
        mon.add_busy(a, t(5.0), -6.0); // 20 % during [5, 10) -- "stateful"
        let stats = UsageStats::compute(
            &mon,
            t(0.0),
            t(10.0),
            SimDuration::from_secs(1),
            &[(t(5.0), t(10.0))],
        )
        .unwrap();
        assert_eq!(stats.average, 50.0);
        assert_eq!(stats.max, 80.0);
        assert_eq!(stats.min, 20.0);
        assert_eq!(stats.stateful_average, 20.0);
    }

    #[test]
    fn vcpu_seconds_integrate() {
        let mut mon = CpuMonitor::new();
        let a = mon.register("a");
        mon.add_provisioned(a, t(0.0), 4.0);
        mon.add_provisioned(a, t(10.0), -4.0);
        assert_eq!(mon.provisioned_vcpu_seconds(t(0.0), t(20.0)), 40.0);
    }
}
