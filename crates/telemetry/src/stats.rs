//! Summary statistics over samples.

use std::fmt;

/// Mean / standard deviation / extrema of a sample set.
///
/// The standard deviation is the *population* deviation (divide by `n`),
/// matching how monitoring dashboards — and the paper's Table 3 — treat a
/// full trace as the population rather than a sample of one.
///
/// # Example
///
/// ```
/// use telemetry::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).expect("non-empty");
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.max, 4.0);
/// assert_eq!(s.min, 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Largest sample.
    pub max: f64,
    /// Smallest sample.
    pub min: f64,
    /// Number of samples.
    pub count: usize,
}

impl Summary {
    /// Computes the summary of `samples`, or `None` if empty.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        Some(Summary {
            mean,
            std_dev: var.sqrt(),
            max,
            min,
            count: samples.len(),
        })
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {:.2} ± {:.2} (min {:.2}, max {:.2}, n={})",
            self.mean, self.std_dev, self.min, self.max, self.count
        )
    }
}

/// Percentile with linear interpolation, `p` in `[0, 100]`.
///
/// Returns `None` on an empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_has_zero_std() {
        let s = Summary::of(&[5.0; 10]).unwrap();
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.count, 10);
    }

    #[test]
    fn summary_population_std() {
        // Population std of [2, 4] is 1.0 (sample std would be sqrt(2)).
        let s = Summary::of(&[2.0, 4.0]).unwrap();
        assert_eq!(s.std_dev, 1.0);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), Some(10.0));
        assert_eq!(percentile(&xs, 100.0), Some(40.0));
        assert_eq!(percentile(&xs, 50.0), Some(25.0));
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [30.0, 10.0, 40.0, 20.0];
        assert_eq!(percentile(&xs, 50.0), Some(25.0));
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_out_of_range() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn display_is_informative() {
        let s = Summary::of(&[1.0, 3.0]).unwrap();
        let text = s.to_string();
        assert!(text.contains("mean 2.00"), "{text}");
        assert!(text.contains("n=2"), "{text}");
    }
}
