//! Measurement substrate for the serverful-functions reproduction.
//!
//! Everything the paper's evaluation *measures* lives here, decoupled from
//! how the system under test produces it:
//!
//! * [`CostLedger`] — an append-only billing ledger ([`cost`]); every
//!   simulated dollar (Lambda GB-seconds, EC2 instance-seconds, S3
//!   requests, managed-service premiums) is a ledger entry.
//! * [`CpuMonitor`] — busy/provisioned vCPU traces per fleet, and the
//!   utilisation statistics of Table 3 ([`cpu`]).
//! * [`Timeline`] — named stage spans for per-stage breakdowns and
//!   Figure 2-style concurrency plots ([`timeline`]).
//! * [`FaultLedger`] — injected-fault and retry counters plus the billed
//!   time wasted on failed attempts ([`faults`]).
//! * [`Tracer`] — span-based tracing on virtual time, exported as
//!   deterministic Chrome trace-event JSON ([`trace`]).
//! * [`stats`] — summary statistics shared by the above.
//! * [`report`] — plain-text table/figure rendering plus paper-vs-measured
//!   comparison rows for EXPERIMENTS.md.
//!
//! # Example
//!
//! ```
//! use simkernel::SimTime;
//! use telemetry::{CostCategory, CostLedger};
//!
//! let mut ledger = CostLedger::new();
//! ledger.charge(SimTime::ZERO, CostCategory::FaasCompute, 0.75, "sort stage");
//! ledger.charge(SimTime::ZERO, CostCategory::StorageRequests, 0.02, "shuffle PUTs");
//! assert!((ledger.total() - 0.77).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod cost;
pub mod cpu;
pub mod faults;
pub mod recovery;
pub mod report;
pub mod stats;
pub mod timeline;
pub mod trace;

pub use cost::{CostCategory, CostLedger};
pub use cpu::{CpuMonitor, FleetTag, UsageStats};
pub use faults::{FaultKind, FaultLedger, SuppressReason};
pub use recovery::RecoveryStats;
pub use report::{
    critical_path, dag_stage_table, fleet_policy_comparison, fleet_tenant_table, plan_comparison,
    stage_overlaps, workload_table, CriticalPath, FleetPolicyRow, FleetTenantRow, PaperRow,
    PlanRow, StageWindow, Table, WorkloadRow,
};
pub use stats::Summary;
pub use timeline::{StageSpan, Timeline};
pub use trace::{SpanId, StageMetrics, Tracer};
