//! Billing ledger.
//!
//! Every simulated charge flows through a [`CostLedger`]: Lambda GB-second
//! and request fees, EC2 instance-seconds, S3 request fees, and managed
//! service premiums. Keeping the raw entries (rather than one running
//! total) lets the harness answer the paper's finer-grained questions,
//! e.g. "the time for reading, exchanging and writing data with cloud
//! functions is charged at $0.75" (Figure 5 discussion).

use std::fmt;

use simkernel::SimTime;

/// What a charge pays for. Categories follow the services in the paper's
/// evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum CostCategory {
    /// Cloud-function compute (GB-seconds).
    FaasCompute,
    /// Cloud-function invocation fees (per request).
    FaasRequests,
    /// Object-storage request fees (GET/PUT/LIST).
    StorageRequests,
    /// Virtual-machine instance time (per-second billing).
    VmCompute,
    /// Managed-service premium (the EMR-Serverless-style baseline).
    ManagedService,
}

impl fmt::Display for CostCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CostCategory::FaasCompute => "faas-compute",
            CostCategory::FaasRequests => "faas-requests",
            CostCategory::StorageRequests => "storage-requests",
            CostCategory::VmCompute => "vm-compute",
            CostCategory::ManagedService => "managed-service",
        };
        f.write_str(name)
    }
}

/// One billed charge.
#[derive(Debug, Clone, PartialEq)]
pub struct CostEntry {
    /// When the charge accrued (end of the billed activity).
    pub at: SimTime,
    /// Service category.
    pub category: CostCategory,
    /// Dollars.
    pub amount: f64,
    /// Free-form attribution, e.g. a stage or job name.
    pub label: String,
}

/// An append-only ledger of simulated charges, in dollars.
///
/// # Example
///
/// ```
/// use simkernel::SimTime;
/// use telemetry::{CostCategory, CostLedger};
///
/// let mut ledger = CostLedger::new();
/// ledger.charge(SimTime::ZERO, CostCategory::VmCompute, 0.05, "sort VM");
/// assert_eq!(ledger.total_for(CostCategory::VmCompute), 0.05);
/// assert_eq!(ledger.total_for(CostCategory::FaasCompute), 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CostLedger {
    entries: Vec<CostEntry>,
}

impl CostLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        CostLedger::default()
    }

    /// Appends a charge.
    ///
    /// # Panics
    ///
    /// Panics if `amount` is negative or not finite; refunds are not a
    /// thing in this simulation.
    pub fn charge(
        &mut self,
        at: SimTime,
        category: CostCategory,
        amount: f64,
        label: impl Into<String>,
    ) {
        assert!(
            amount.is_finite() && amount >= 0.0,
            "charges must be finite and non-negative, got {amount}"
        );
        self.entries.push(CostEntry {
            at,
            category,
            amount,
            label: label.into(),
        });
    }

    /// Sum of all charges.
    pub fn total(&self) -> f64 {
        self.entries.iter().map(|e| e.amount).sum()
    }

    /// Sum of charges in one category.
    pub fn total_for(&self, category: CostCategory) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.category == category)
            .map(|e| e.amount)
            .sum()
    }

    /// Sum of charges whose label contains `needle`; used for per-stage
    /// cost attribution.
    pub fn total_labelled(&self, needle: &str) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.label.contains(needle))
            .map(|e| e.amount)
            .sum()
    }

    /// All entries in append order.
    pub fn entries(&self) -> &[CostEntry] {
        &self.entries
    }

    /// Folds another ledger into this one.
    pub fn absorb(&mut self, other: CostLedger) {
        self.entries.extend(other.entries);
    }

    /// Drops all entries (e.g. to exclude warm-up from a measurement).
    pub fn reset(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> SimTime {
        SimTime::ZERO
    }

    #[test]
    fn totals_by_category() {
        let mut ledger = CostLedger::new();
        ledger.charge(t0(), CostCategory::FaasCompute, 1.0, "a");
        ledger.charge(t0(), CostCategory::FaasCompute, 2.0, "b");
        ledger.charge(t0(), CostCategory::VmCompute, 4.0, "c");
        assert_eq!(ledger.total(), 7.0);
        assert_eq!(ledger.total_for(CostCategory::FaasCompute), 3.0);
        assert_eq!(ledger.total_for(CostCategory::StorageRequests), 0.0);
    }

    #[test]
    fn labelled_totals_match_substring() {
        let mut ledger = CostLedger::new();
        ledger.charge(t0(), CostCategory::FaasCompute, 1.0, "sort/map");
        ledger.charge(t0(), CostCategory::StorageRequests, 0.5, "sort/merge");
        ledger.charge(t0(), CostCategory::FaasCompute, 8.0, "annotate");
        assert_eq!(ledger.total_labelled("sort"), 1.5);
        assert_eq!(ledger.total_labelled("annotate"), 8.0);
    }

    #[test]
    fn absorb_merges_entries() {
        let mut a = CostLedger::new();
        a.charge(t0(), CostCategory::VmCompute, 1.0, "x");
        let mut b = CostLedger::new();
        b.charge(t0(), CostCategory::VmCompute, 2.0, "y");
        a.absorb(b);
        assert_eq!(a.total(), 3.0);
        assert_eq!(a.entries().len(), 2);
    }

    #[test]
    fn reset_clears() {
        let mut ledger = CostLedger::new();
        ledger.charge(t0(), CostCategory::VmCompute, 1.0, "x");
        ledger.reset();
        assert_eq!(ledger.total(), 0.0);
        assert!(ledger.entries().is_empty());
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_charge_panics() {
        CostLedger::new().charge(t0(), CostCategory::VmCompute, -0.1, "refund");
    }
}
