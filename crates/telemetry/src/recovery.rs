//! Master fault-tolerance accounting.
//!
//! The serverful backend's master VM is a single point of failure; the
//! recovery subsystem (`serverful::recovery`) either checkpoints its
//! state or removes it from the data path entirely. This module owns
//! the counters both strategies report through, so chaos experiments
//! can compare them: how often the master was replaced, how much work
//! was re-dispatched, and what the checkpoint stream cost in I/O.

use std::fmt;

/// Counters of recovery activity, the fault-tolerance twin of
/// [`crate::FaultLedger`].
///
/// Comparing two runs' stats for equality is how the chaos matrix
/// checks a seeded master-kill schedule replays exactly; the
/// `master_data_ops` counter is how the decentralized mode proves the
/// master left the data path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Checkpoint snapshots written to object storage.
    pub checkpoints_written: u64,
    /// Bytes of checkpoint payload written.
    pub checkpoint_bytes: u64,
    /// Replacement masters booted after a master-VM loss.
    pub masters_replaced: u64,
    /// Live workers re-adopted by a replacement master (epoch
    /// handshake).
    pub workers_readopted: u64,
    /// Task bundles re-dispatched because their acknowledgement was
    /// lost with the master.
    pub tasks_redispatched: u64,
    /// Downstream task releases triggered directly by completing tasks
    /// (decentralized continuation-passing).
    pub continuations_fired: u64,
    /// Completion-counter objects written to storage by finishing
    /// tasks (decentralized mode).
    pub counters_written: u64,
    /// Data-path operations routed through the master host after job
    /// submission. Decentralized mode must keep this at zero.
    pub master_data_ops: u64,
}

impl RecoveryStats {
    /// An empty stats block.
    pub fn new() -> RecoveryStats {
        RecoveryStats::default()
    }

    /// True when nothing was recorded — the expected state of a
    /// `Protected` run without master faults.
    pub fn is_empty(&self) -> bool {
        *self == RecoveryStats::default()
    }

    /// A plain-text report block (empty string when nothing happened).
    pub fn report(&self) -> String {
        if self.is_empty() {
            return String::new();
        }
        let mut out = String::from("master recovery\n");
        let rows: [(&str, u64); 7] = [
            ("checkpoints written", self.checkpoints_written),
            ("checkpoint bytes", self.checkpoint_bytes),
            ("masters replaced", self.masters_replaced),
            ("workers re-adopted", self.workers_readopted),
            ("tasks re-dispatched", self.tasks_redispatched),
            ("continuations fired", self.continuations_fired),
            ("counters written", self.counters_written),
        ];
        for (name, n) in rows {
            if n > 0 {
                out.push_str(&format!("  {name:<24} {n}\n"));
            }
        }
        out.push_str(&format!(
            "  {:<24} {}\n",
            "master data-path ops", self.master_data_ops
        ));
        out
    }
}

impl fmt::Display for RecoveryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_stats_are_empty_and_report_nothing() {
        let stats = RecoveryStats::new();
        assert!(stats.is_empty());
        assert!(stats.report().is_empty());
    }

    #[test]
    fn report_names_recorded_activity() {
        let mut stats = RecoveryStats::new();
        stats.masters_replaced = 1;
        stats.tasks_redispatched = 4;
        let report = stats.report();
        assert!(report.contains("masters replaced"));
        assert!(report.contains("tasks re-dispatched"));
        assert!(!report.contains("checkpoints written"));
        assert!(report.contains("master data-path ops"));
    }
}
