//! Span-based tracing on virtual time.
//!
//! A [`Tracer`] records *spans* (named intervals with a parent, a track,
//! and typed attributes) and *instants* (point events such as injected
//! faults or retry decisions) against the simulation clock. Because the
//! simulator is deterministic and the clock is integer microseconds, the
//! exported Chrome trace-event JSON is byte-identical across runs with
//! the same seed — which turns the trace from a debugging aid into a
//! regression oracle (see `tests/goldens.rs`).
//!
//! The tracer is zero-cost when disabled: [`Tracer::begin`] returns
//! [`SpanId::NONE`] without allocating, every other entry point is a
//! no-op on `NONE`, and callers guard any expensive label formatting
//! behind [`Tracer::is_enabled`].
//!
//! # Span taxonomy
//!
//! | category  | producer            | meaning                                  |
//! |-----------|---------------------|------------------------------------------|
//! | `job`     | `serverful::env`    | one submitted map job                    |
//! | `task`    | `serverful::env`    | one task *attempt* (retries are new spans) |
//! | `stage`   | `metaspace`         | one pipeline stage                       |
//! | `faas`    | `cloudsim::world`   | sandbox cold start / billed execution    |
//! | `vm`      | `cloudsim::world`   | VM boot / billed lifetime                |
//! | `storage` | `cloudsim::world`   | object-store or KV request               |
//! | `fault`   | `cloudsim::world`   | instant: an injected failure             |
//! | `retry`   | `serverful::env`    | instant: a recovery decision             |
//!
//! # Example
//!
//! ```
//! use simkernel::SimTime;
//! use telemetry::trace::{SpanId, Tracer};
//!
//! let mut tracer = Tracer::enabled();
//! let job = tracer.begin(SimTime::ZERO, "job:sort", "job", "jobs", SpanId::NONE);
//! let task = tracer.begin(SimTime::from_secs_f64(1.0), "task 0", "task", "tasks", job);
//! tracer.attr_u64(task, "bytes", 1024);
//! tracer.end(task, SimTime::from_secs_f64(3.0));
//! tracer.end(job, SimTime::from_secs_f64(3.5));
//! let json = tracer.chrome_json();
//! assert!(json.contains("\"traceEvents\""));
//! ```

use std::fmt::Write as _;

use simkernel::SimTime;

use crate::faults::FaultLedger;
use crate::stats;

/// Identifies a recorded span. The zero value ([`SpanId::NONE`]) is a
/// sentinel meaning "no span" — it is what a disabled tracer hands out,
/// and every operation on it is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SpanId(u32);

impl SpanId {
    /// The "no span" sentinel.
    pub const NONE: SpanId = SpanId(0);

    /// True for the sentinel.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    fn index(self) -> Option<usize> {
        (self.0 > 0).then(|| self.0 as usize - 1)
    }
}

/// A typed attribute value attached to a span or instant.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer (bytes, counts, ids).
    U64(u64),
    /// Floating point (GB-seconds, dollars).
    F64(f64),
    /// Short string (fleet tag, storage key).
    Str(String),
}

#[derive(Debug, Clone)]
struct Span {
    name: String,
    cat: &'static str,
    track: u32,
    parent: SpanId,
    start: SimTime,
    end: Option<SimTime>,
    attrs: Vec<(&'static str, AttrValue)>,
}

#[derive(Debug, Clone)]
struct InstantEv {
    name: String,
    cat: &'static str,
    track: u32,
    at: SimTime,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// Collects spans and instants against the virtual clock.
///
/// Created disabled by default; enable with [`Tracer::set_enabled`] (or
/// construct with [`Tracer::enabled`]). All recording methods are no-ops
/// while disabled.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    tracks: Vec<String>,
    spans: Vec<Span>,
    instants: Vec<InstantEv>,
}

impl Tracer {
    /// A disabled tracer (records nothing).
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// An enabled tracer.
    pub fn enabled() -> Tracer {
        Tracer {
            enabled: true,
            ..Tracer::default()
        }
    }

    /// Turns recording on or off. Spans already recorded are kept.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// True when recording. Callers use this to skip building labels
    /// that [`Tracer::begin`] would discard anyway.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of recorded spans.
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Number of recorded instants.
    pub fn instant_count(&self) -> usize {
        self.instants.len()
    }

    fn track_id(&mut self, name: &str) -> u32 {
        if let Some(i) = self.tracks.iter().position(|t| t == name) {
            return i as u32;
        }
        self.tracks.push(name.to_string());
        (self.tracks.len() - 1) as u32
    }

    /// Opens a span at `at`. Returns [`SpanId::NONE`] when disabled.
    ///
    /// `track` names the horizontal lane the span renders on (a fleet,
    /// "jobs", "storage", …); `parent` links the span into the tree and
    /// may be `NONE` for roots.
    pub fn begin(
        &mut self,
        at: SimTime,
        name: &str,
        cat: &'static str,
        track: &str,
        parent: SpanId,
    ) -> SpanId {
        if !self.enabled {
            return SpanId::NONE;
        }
        let track = self.track_id(track);
        self.spans.push(Span {
            name: name.to_string(),
            cat,
            track,
            parent,
            start: at,
            end: None,
            attrs: Vec::new(),
        });
        SpanId(self.spans.len() as u32)
    }

    /// Closes a span at `at`. No-op on `NONE` or an already-closed span.
    pub fn end(&mut self, id: SpanId, at: SimTime) {
        if let Some(i) = id.index() {
            let span = &mut self.spans[i];
            if span.end.is_none() {
                span.end = Some(at.max(span.start));
            }
        }
    }

    /// Attaches an integer attribute. No-op on `NONE`.
    pub fn attr_u64(&mut self, id: SpanId, key: &'static str, value: u64) {
        if let Some(i) = id.index() {
            self.spans[i].attrs.push((key, AttrValue::U64(value)));
        }
    }

    /// Attaches a float attribute. No-op on `NONE`.
    pub fn attr_f64(&mut self, id: SpanId, key: &'static str, value: f64) {
        if let Some(i) = id.index() {
            self.spans[i].attrs.push((key, AttrValue::F64(value)));
        }
    }

    /// Attaches a string attribute. No-op on `NONE`.
    pub fn attr_str(&mut self, id: SpanId, key: &'static str, value: &str) {
        if let Some(i) = id.index() {
            self.spans[i]
                .attrs
                .push((key, AttrValue::Str(value.to_string())));
        }
    }

    /// Records a point event (fault, retry decision, …). No-op when
    /// disabled.
    pub fn instant(&mut self, at: SimTime, name: &str, cat: &'static str, track: &str) {
        if !self.enabled {
            return;
        }
        let track = self.track_id(track);
        self.instants.push(InstantEv {
            name: name.to_string(),
            cat,
            track,
            at,
            attrs: Vec::new(),
        });
    }

    /// Looks up the value of a span attribute (first occurrence).
    pub fn span_attr(&self, id: SpanId, key: &str) -> Option<&AttrValue> {
        let i = id.index()?;
        self.spans[i]
            .attrs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }

    /// Exports the trace as Chrome trace-event / Perfetto JSON.
    ///
    /// The output is canonical: tracks are numbered in first-use order
    /// (which is deterministic because the simulation is), spans are
    /// emitted in creation order, instants in recording order, and all
    /// timestamps are integer microseconds — so two runs with the same
    /// seed produce byte-identical JSON.
    pub fn chrome_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.spans.len() * 160);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        let mut first = true;
        for (tid, track) in self.tracks.iter().enumerate() {
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(track)
            );
            let _ = write!(
                out,
                ",\n{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_sort_index\",\
                 \"args\":{{\"sort_index\":{tid}}}}}"
            );
        }
        for (i, span) in self.spans.iter().enumerate() {
            sep(&mut out, &mut first);
            let end = span.end.unwrap_or(span.start);
            let dur = end.as_micros() - span.start.as_micros();
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{dur},\
                 \"pid\":1,\"tid\":{},\"args\":{{\"id\":{}",
                escape(&span.name),
                span.cat,
                span.start.as_micros(),
                span.track,
                i + 1,
            );
            if !span.parent.is_none() {
                let _ = write!(out, ",\"parent\":{}", span.parent.0);
            }
            if span.end.is_none() {
                out.push_str(",\"unfinished\":1");
            }
            write_attrs(&mut out, &span.attrs);
            out.push_str("}}");
        }
        for inst in &self.instants {
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\
                 \"tid\":{},\"s\":\"t\",\"args\":{{",
                escape(&inst.name),
                inst.cat,
                inst.at.as_micros(),
                inst.track,
            );
            let mut attrs = String::new();
            write_attrs(&mut attrs, &inst.attrs);
            // write_attrs emits a leading comma for a non-empty list; an
            // instant's args object starts empty, so strip it.
            out.push_str(attrs.strip_prefix(',').unwrap_or(&attrs));
            out.push_str("}}");
        }
        out.push_str("\n]}\n");
        out
    }

    /// Per-stage metrics aggregated from the recorded `task` spans.
    ///
    /// A task span's stage is its `stage` string attribute. Stages are
    /// listed in first-appearance order. Latencies are attempt wall
    /// times; concurrency is the peak number of simultaneously open
    /// task spans within the stage (the Figure 2 quantity).
    pub fn stage_metrics(&self) -> Vec<StageMetrics> {
        let mut stages: Vec<StageMetrics> = Vec::new();
        let mut windows: Vec<Vec<(u64, u64)>> = Vec::new();
        for span in &self.spans {
            if span.cat != "task" {
                continue;
            }
            let stage = span
                .attrs
                .iter()
                .find_map(|(k, v)| match (k, v) {
                    (&"stage", AttrValue::Str(s)) => Some(s.as_str()),
                    _ => None,
                })
                .unwrap_or("?");
            let idx = match stages.iter().position(|m| m.stage == stage) {
                Some(i) => i,
                None => {
                    stages.push(StageMetrics {
                        stage: stage.to_string(),
                        tasks: 0,
                        p50_secs: 0.0,
                        p99_secs: 0.0,
                        peak_concurrency: 0,
                        latencies: Vec::new(),
                    });
                    windows.push(Vec::new());
                    stages.len() - 1
                }
            };
            let end = span.end.unwrap_or(span.start);
            stages[idx].tasks += 1;
            stages[idx]
                .latencies
                .push((end - span.start).as_secs_f64());
            windows[idx].push((span.start.as_micros(), end.as_micros()));
        }
        for (m, w) in stages.iter_mut().zip(windows) {
            m.p50_secs = stats::percentile(&m.latencies, 50.0).unwrap_or(0.0);
            m.p99_secs = stats::percentile(&m.latencies, 99.0).unwrap_or(0.0);
            m.peak_concurrency = peak_concurrency(&w);
        }
        stages
    }

    /// A compact text summary: span census, makespan, the per-stage
    /// table from [`Tracer::stage_metrics`], and — when `faults` has
    /// entries — the wasted-work accounting of the fault ledger.
    pub fn summary(&self, faults: &FaultLedger) -> String {
        let mut out = String::new();
        let mut cats: Vec<(&'static str, usize)> = Vec::new();
        for span in &self.spans {
            match cats.iter_mut().find(|(c, _)| *c == span.cat) {
                Some((_, n)) => *n += 1,
                None => cats.push((span.cat, 1)),
            }
        }
        let census: Vec<String> = cats.iter().map(|(c, n)| format!("{c} {n}")).collect();
        let _ = writeln!(
            out,
            "trace: {} spans ({}), {} instants",
            self.spans.len(),
            census.join(", "),
            self.instants.len()
        );
        let makespan = self
            .spans
            .iter()
            .map(|s| s.end.unwrap_or(s.start))
            .max()
            .unwrap_or(SimTime::ZERO);
        let _ = writeln!(out, "makespan: {:.1}s", makespan.as_secs_f64());
        let metrics = self.stage_metrics();
        if !metrics.is_empty() {
            let _ = writeln!(
                out,
                "\n{:<28} {:>6} {:>9} {:>9} {:>9}",
                "stage", "tasks", "p50(s)", "p99(s)", "peak-conc"
            );
            for m in &metrics {
                let _ = writeln!(
                    out,
                    "{:<28} {:>6} {:>9.2} {:>9.2} {:>9}",
                    m.stage, m.tasks, m.p50_secs, m.p99_secs, m.peak_concurrency
                );
            }
        }
        if !faults.is_empty() {
            out.push('\n');
            out.push_str(&faults.report());
        }
        out
    }
}

/// Aggregated metrics for one stage's task attempts.
#[derive(Debug, Clone, PartialEq)]
pub struct StageMetrics {
    /// Stage name (the `stage` attribute of its task spans).
    pub stage: String,
    /// Number of task attempts.
    pub tasks: usize,
    /// Median attempt latency in seconds.
    pub p50_secs: f64,
    /// 99th-percentile attempt latency in seconds.
    pub p99_secs: f64,
    /// Peak number of simultaneously running attempts.
    pub peak_concurrency: usize,
    /// Raw attempt latencies, in span order.
    pub latencies: Vec<f64>,
}

/// Peak overlap of half-open `(start, end)` microsecond windows.
fn peak_concurrency(windows: &[(u64, u64)]) -> usize {
    // Boundary sweep: +1 at each start, -1 at each end; ends sort before
    // starts at the same instant so a back-to-back handoff is not
    // counted as overlap.
    let mut edges: Vec<(u64, i32)> = Vec::with_capacity(windows.len() * 2);
    for &(s, e) in windows {
        edges.push((s, 1));
        edges.push((e.max(s), -1));
    }
    edges.sort_by_key(|&(t, delta)| (t, delta));
    let mut live = 0i32;
    let mut peak = 0i32;
    for (_, delta) in edges {
        live += delta;
        peak = peak.max(live);
    }
    peak.max(0) as usize
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
}

fn write_attrs(out: &mut String, attrs: &[(&'static str, AttrValue)]) {
    for (key, value) in attrs {
        match value {
            AttrValue::U64(v) => {
                let _ = write!(out, ",\"{key}\":{v}");
            }
            AttrValue::F64(v) => {
                // `{}` on f64 prints the shortest round-trip decimal,
                // which is deterministic; guard against non-finite
                // values, which JSON cannot carry.
                if v.is_finite() {
                    let _ = write!(out, ",\"{key}\":{v}");
                } else {
                    let _ = write!(out, ",\"{key}\":\"{v}\"");
                }
            }
            AttrValue::Str(v) => {
                let _ = write!(out, ",\"{key}\":\"{}\"", escape(v));
            }
        }
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::SimDuration;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut tracer = Tracer::new();
        assert!(!tracer.is_enabled());
        let id = tracer.begin(t(0.0), "x", "task", "tasks", SpanId::NONE);
        assert!(id.is_none());
        tracer.attr_u64(id, "bytes", 7);
        tracer.end(id, t(1.0));
        tracer.instant(t(0.5), "fault", "fault", "faults");
        assert_eq!(tracer.span_count(), 0);
        assert_eq!(tracer.instant_count(), 0);
    }

    #[test]
    fn spans_nest_and_export() {
        let mut tracer = Tracer::enabled();
        let job = tracer.begin(t(0.0), "job:sort", "job", "jobs", SpanId::NONE);
        let task = tracer.begin(t(1.0), "task 0", "task", "lambda", job);
        tracer.attr_u64(task, "bytes", 4096);
        tracer.attr_str(task, "stage", "sort");
        tracer.end(task, t(3.0));
        tracer.end(job, t(3.5));
        let json = tracer.chrome_json();
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\":\"job:sort\""));
        assert!(json.contains("\"ts\":1000000,\"dur\":2000000"));
        assert!(json.contains("\"parent\":1"));
        assert!(json.contains("\"bytes\":4096"));
    }

    #[test]
    fn identical_recordings_export_identically() {
        let build = || {
            let mut tracer = Tracer::enabled();
            let a = tracer.begin(t(0.0), "a", "task", "tasks", SpanId::NONE);
            tracer.attr_f64(a, "gb_secs", 0.125);
            tracer.instant(t(0.25), "storage transient error", "fault", "faults");
            tracer.end(a, t(0.5));
            tracer.chrome_json()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn unfinished_spans_are_flagged_with_zero_duration() {
        let mut tracer = Tracer::enabled();
        tracer.begin(t(2.0), "hung", "vm", "vms", SpanId::NONE);
        let json = tracer.chrome_json();
        assert!(json.contains("\"dur\":0"));
        assert!(json.contains("\"unfinished\":1"));
    }

    #[test]
    fn end_clamps_to_start_and_is_idempotent() {
        let mut tracer = Tracer::enabled();
        let id = tracer.begin(t(5.0), "s", "task", "tasks", SpanId::NONE);
        tracer.end(id, t(4.0)); // earlier than start: clamps
        tracer.end(id, t(9.0)); // second end ignored
        let json = tracer.chrome_json();
        assert!(json.contains("\"ts\":5000000,\"dur\":0"), "{json}");
    }

    #[test]
    fn stage_metrics_group_and_rank() {
        let mut tracer = Tracer::enabled();
        for (i, dur) in [1.0, 2.0, 3.0, 4.0].into_iter().enumerate() {
            let id = tracer.begin(t(0.0), &format!("task {i}"), "task", "tasks", SpanId::NONE);
            tracer.attr_str(id, "stage", "sort");
            tracer.end(id, SimTime::ZERO + SimDuration::from_secs_f64(dur));
        }
        // A second stage running serially.
        for i in 0..2 {
            let id = tracer.begin(
                t(10.0 + i as f64),
                &format!("seg {i}"),
                "task",
                "tasks",
                SpanId::NONE,
            );
            tracer.attr_str(id, "stage", "segment");
            tracer.end(id, t(10.5 + i as f64));
        }
        let metrics = tracer.stage_metrics();
        assert_eq!(metrics.len(), 2);
        assert_eq!(metrics[0].stage, "sort");
        assert_eq!(metrics[0].tasks, 4);
        assert!((metrics[0].p50_secs - 2.5).abs() < 1e-9);
        assert_eq!(metrics[0].peak_concurrency, 4);
        assert_eq!(metrics[1].stage, "segment");
        assert_eq!(metrics[1].peak_concurrency, 1);
    }

    #[test]
    fn peak_concurrency_handles_handoffs() {
        // Back-to-back windows (end == next start) do not overlap.
        assert_eq!(peak_concurrency(&[(0, 10), (10, 20)]), 1);
        assert_eq!(peak_concurrency(&[(0, 10), (5, 20), (6, 7)]), 3);
        assert_eq!(peak_concurrency(&[]), 0);
    }

    #[test]
    fn summary_mentions_stages_and_faults() {
        let mut tracer = Tracer::enabled();
        let id = tracer.begin(t(0.0), "task 0", "task", "tasks", SpanId::NONE);
        tracer.attr_str(id, "stage", "sort");
        tracer.end(id, t(2.0));
        let mut faults = FaultLedger::new();
        faults.record_fault(crate::faults::FaultKind::StorageTransient);
        faults.wasted_gb_secs = 1.25;
        let text = tracer.summary(&faults);
        assert!(text.contains("1 spans"), "{text}");
        assert!(text.contains("sort"), "{text}");
        assert!(text.contains("wasted GB-seconds"), "{text}");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_parses_as_chrome_trace_shape() {
        // A light structural check without a JSON parser: balanced
        // braces/brackets and the required top-level key.
        let mut tracer = Tracer::enabled();
        let id = tracer.begin(t(0.0), "t", "task", "tasks", SpanId::NONE);
        tracer.end(id, t(1.0));
        tracer.instant(t(0.5), "f", "fault", "faults");
        let json = tracer.chrome_json();
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "{json}");
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.trim_end().ends_with("]}"));
    }
}
