//! Plain-text rendering for tables and figures.
//!
//! The reproduction harness prints each paper table/figure as aligned
//! text. [`Table`] renders generic grids; [`PaperRow`] renders a
//! paper-vs-measured comparison with the ratio, which is what
//! EXPERIMENTS.md records; [`bar_chart`] renders the bar figures.

use std::fmt;

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use telemetry::Table;
///
/// let mut t = Table::new(["service", "time"]);
/// t.row(["AWS Lambda", "12.56 s"]);
/// t.row(["AWS EC2", "42.34 s"]);
/// let text = t.to_string();
/// assert!(text.contains("AWS Lambda"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header's.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width does not match header width"
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = widths[c])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// A paper-value vs measured-value comparison row.
///
/// # Example
///
/// ```
/// use telemetry::PaperRow;
///
/// let row = PaperRow::new("Xenograft speedup over Spark", 2.50, 2.41);
/// assert!(row.to_string().contains("2.50"));
/// assert!((row.ratio() - 0.964).abs() < 0.001);
/// ```
#[derive(Debug, Clone)]
pub struct PaperRow {
    metric: String,
    paper: f64,
    measured: f64,
}

impl PaperRow {
    /// Creates a comparison row.
    pub fn new(metric: impl Into<String>, paper: f64, measured: f64) -> Self {
        PaperRow {
            metric: metric.into(),
            paper,
            measured,
        }
    }

    /// measured / paper; 1.0 means an exact match.
    pub fn ratio(&self) -> f64 {
        self.measured / self.paper
    }
}

impl fmt::Display for PaperRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<48} paper {:>10.2}   measured {:>10.2}   (x{:.2})",
            self.metric,
            self.paper,
            self.measured,
            self.ratio()
        )
    }
}

/// One deployment plan's measured objectives, for
/// [`plan_comparison`]. Deliberately plain data — the planner fills it
/// from its outcomes, but any (name, cost, makespan, waste) triple
/// renders.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRow {
    /// Plan name or key.
    pub name: String,
    /// Dollars billed.
    pub cost_usd: f64,
    /// End-to-end seconds.
    pub makespan_secs: f64,
    /// Billed-but-wasted resources (GB-seconds + instance-seconds).
    pub waste: f64,
}

impl PlanRow {
    /// Creates a row.
    pub fn new(name: impl Into<String>, cost_usd: f64, makespan_secs: f64, waste: f64) -> Self {
        PlanRow {
            name: name.into(),
            cost_usd,
            makespan_secs,
            waste,
        }
    }
}

/// Renders a per-plan comparison: each plan's absolute objectives plus
/// its cost and makespan relative to the best (lowest) in the set.
///
/// # Example
///
/// ```
/// use telemetry::report::{plan_comparison, PlanRow};
///
/// let text = plan_comparison(&[
///     PlanRow::new("hybrid", 1.0, 100.0, 0.0),
///     PlanRow::new("serverless", 2.0, 120.0, 0.0),
/// ]);
/// assert!(text.contains("hybrid"));
/// assert!(text.contains("1.00x")); // the best plan is its own baseline
/// ```
pub fn plan_comparison(rows: &[PlanRow]) -> String {
    let best_cost = rows
        .iter()
        .map(|r| r.cost_usd)
        .fold(f64::INFINITY, f64::min);
    let best_time = rows
        .iter()
        .map(|r| r.makespan_secs)
        .fold(f64::INFINITY, f64::min);
    let rel = |v: f64, best: f64| {
        if best > 0.0 {
            format!("{:.2}x", v / best)
        } else {
            "-".to_owned()
        }
    };
    let mut table = Table::new([
        "Plan",
        "Cost ($)",
        "Makespan (s)",
        "Waste",
        "vs cheapest",
        "vs fastest",
    ]);
    for r in rows {
        table.row([
            r.name.clone(),
            format!("{:.4}", r.cost_usd),
            format!("{:.2}", r.makespan_secs),
            format!("{:.2}", r.waste),
            rel(r.cost_usd, best_cost),
            rel(r.makespan_secs, best_time),
        ]);
    }
    table.to_string()
}

/// One (workload, plan) measurement for [`workload_table`]. Plain data:
/// the bench harness fills it from each plan's annotation report.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadRow {
    /// Workload name (e.g. `Brain`, `terasort-small`).
    pub workload: String,
    /// Stage count of the workload's graph.
    pub stages: usize,
    /// Total logical tasks across stages.
    pub tasks: usize,
    /// Plan name (e.g. `hybrid-barrier`, `serverless`).
    pub plan: String,
    /// Dollars billed.
    pub cost_usd: f64,
    /// End-to-end seconds.
    pub makespan_secs: f64,
}

/// Renders the per-workload-family comparison: one row per (workload,
/// plan) cell, with cost and makespan relative to the *first listed
/// plan of the same workload* (the baseline — conventionally the hybrid
/// barrier deployment), so wins and reversals read off one column even
/// when several workloads share the table.
///
/// # Example
///
/// ```
/// use telemetry::report::{workload_table, WorkloadRow};
///
/// let rows = vec![
///     WorkloadRow {
///         workload: "terasort".into(),
///         stages: 3,
///         tasks: 60,
///         plan: "hybrid-barrier".into(),
///         cost_usd: 1.0,
///         makespan_secs: 100.0,
///     },
///     WorkloadRow {
///         workload: "terasort".into(),
///         stages: 3,
///         tasks: 60,
///         plan: "hybrid-pipelined".into(),
///         cost_usd: 1.0,
///         makespan_secs: 80.0,
///     },
/// ];
/// let text = workload_table(&rows);
/// assert!(text.contains("0.80x"));
/// ```
pub fn workload_table(rows: &[WorkloadRow]) -> String {
    let mut table = Table::new([
        "Workload",
        "Stages",
        "Tasks",
        "Plan",
        "Cost ($)",
        "Makespan (s)",
        "vs baseline cost",
        "vs baseline time",
    ]);
    let mut baseline: Option<&WorkloadRow> = None;
    for r in rows {
        if baseline.is_none_or(|b| b.workload != r.workload) {
            baseline = Some(r);
        }
        let base = baseline.expect("set above");
        let rel = |v: f64, b: f64| {
            if b > 0.0 {
                format!("{:.2}x", v / b)
            } else {
                "-".to_owned()
            }
        };
        table.row([
            r.workload.clone(),
            r.stages.to_string(),
            r.tasks.to_string(),
            r.plan.clone(),
            format!("{:.4}", r.cost_usd),
            format!("{:.2}", r.makespan_secs),
            rel(r.cost_usd, base.cost_usd),
            rel(r.makespan_secs, base.makespan_secs),
        ]);
    }
    table.to_string()
}

/// One traffic policy's fleet-wide outcome, for
/// [`fleet_policy_comparison`]. Plain data: the fleet simulator fills it
/// from its per-policy cells.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPolicyRow {
    /// Policy name (e.g. `serverless`, `per-job-fleet`, `shared-pool`).
    pub policy: String,
    /// Jobs completed over the run.
    pub jobs: usize,
    /// Total dollars billed across tenants.
    pub cost_usd: f64,
    /// Median job latency (arrival to completion), seconds.
    pub p50_secs: f64,
    /// 99th-percentile job latency, seconds.
    pub p99_secs: f64,
    /// Stage submissions delayed by the shared Lambda/EC2 quota.
    pub throttled: usize,
    /// Stage submissions degraded to another backend under quota
    /// pressure.
    pub degraded: usize,
    /// Fraction of serverful stage submissions that leased an
    /// already-warm pool; `None` for policies without a shared pool
    /// (rendered `-`).
    pub pool_hit_pct: Option<f64>,
}

/// Renders a per-policy comparison of a fleet run: absolute cost and
/// tail latency plus each policy's cost relative to the cheapest.
///
/// # Example
///
/// ```
/// use telemetry::report::{fleet_policy_comparison, FleetPolicyRow};
///
/// let text = fleet_policy_comparison(&[
///     FleetPolicyRow {
///         policy: "shared-pool".into(),
///         jobs: 12,
///         cost_usd: 1.5,
///         p50_secs: 60.0,
///         p99_secs: 90.0,
///         throttled: 0,
///         degraded: 0,
///         pool_hit_pct: Some(83.3),
///     },
///     FleetPolicyRow {
///         policy: "serverless".into(),
///         jobs: 12,
///         cost_usd: 3.0,
///         p50_secs: 55.0,
///         p99_secs: 140.0,
///         throttled: 7,
///         degraded: 0,
///         pool_hit_pct: None,
///     },
/// ]);
/// assert!(text.contains("shared-pool"));
/// assert!(text.contains("83.3"));
/// ```
pub fn fleet_policy_comparison(rows: &[FleetPolicyRow]) -> String {
    let best_cost = rows
        .iter()
        .map(|r| r.cost_usd)
        .fold(f64::INFINITY, f64::min);
    let mut table = Table::new([
        "Policy",
        "Jobs",
        "Cost ($)",
        "p50 (s)",
        "p99 (s)",
        "Throttled",
        "Degraded",
        "Pool hit%",
        "vs cheapest",
    ]);
    for r in rows {
        table.row([
            r.policy.clone(),
            r.jobs.to_string(),
            format!("{:.4}", r.cost_usd),
            format!("{:.2}", r.p50_secs),
            format!("{:.2}", r.p99_secs),
            r.throttled.to_string(),
            r.degraded.to_string(),
            r.pool_hit_pct
                .map_or_else(|| "-".to_owned(), |p| format!("{p:.1}")),
            if best_cost > 0.0 {
                format!("{:.2}x", r.cost_usd / best_cost)
            } else {
                "-".to_owned()
            },
        ]);
    }
    table.to_string()
}

/// One tenant's outcome under a single policy, for
/// [`fleet_tenant_table`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetTenantRow {
    /// Tenant name.
    pub tenant: String,
    /// Jobs this tenant completed.
    pub jobs: usize,
    /// Dollars attributed to this tenant's jobs.
    pub cost_usd: f64,
    /// Median job latency, seconds.
    pub p50_secs: f64,
    /// 99th-percentile job latency, seconds.
    pub p99_secs: f64,
}

/// Renders the per-tenant breakdown of one policy's fleet run.
///
/// # Example
///
/// ```
/// use telemetry::report::{fleet_tenant_table, FleetTenantRow};
///
/// let text = fleet_tenant_table(&[FleetTenantRow {
///     tenant: "brain-lab".into(),
///     jobs: 5,
///     cost_usd: 0.42,
///     p50_secs: 61.0,
///     p99_secs: 88.0,
/// }]);
/// assert!(text.contains("brain-lab"));
/// ```
pub fn fleet_tenant_table(rows: &[FleetTenantRow]) -> String {
    let mut table = Table::new(["Tenant", "Jobs", "Cost ($)", "p50 (s)", "p99 (s)"]);
    for r in rows {
        table.row([
            r.tenant.clone(),
            r.jobs.to_string(),
            format!("{:.4}", r.cost_usd),
            format!("{:.2}", r.p50_secs),
            format!("{:.2}", r.p99_secs),
        ]);
    }
    table.to_string()
}

/// One stage's execution window inside a run, for the dataflow
/// (DAG-scheduling) reports. Plain data: the runner fills it from its
/// per-stage spans; `start`/`end` are seconds since the run started.
#[derive(Debug, Clone, PartialEq)]
pub struct StageWindow {
    /// Stage name.
    pub name: String,
    /// Seconds from run start to the stage's first activity.
    pub start_secs: f64,
    /// Seconds from run start to the stage's last activity.
    pub end_secs: f64,
}

impl StageWindow {
    /// Creates a window.
    pub fn new(name: impl Into<String>, start_secs: f64, end_secs: f64) -> Self {
        StageWindow {
            name: name.into(),
            start_secs,
            end_secs,
        }
    }

    /// The window's length, seconds.
    pub fn duration_secs(&self) -> f64 {
        (self.end_secs - self.start_secs).max(0.0)
    }
}

/// Per-stage upstream overlap: for each stage, how long it ran while at
/// least one of its upstream dependencies (per `edges`, `(from, to)`
/// index pairs into `windows`) was still running. Under barrier
/// scheduling every entry is `0.0` — a stage only starts once its
/// upstream stage has fully finished; dataflow pipelining is exactly
/// what makes these positive.
///
/// # Example
///
/// ```
/// use telemetry::report::{stage_overlaps, StageWindow};
///
/// let windows = [
///     StageWindow::new("segment", 0.0, 10.0),
///     StageWindow::new("annotate", 6.0, 14.0), // starts 4 s early
/// ];
/// let ov = stage_overlaps(&windows, &[(0, 1)]);
/// assert_eq!(ov, vec![0.0, 4.0]);
/// ```
pub fn stage_overlaps(windows: &[StageWindow], edges: &[(usize, usize)]) -> Vec<f64> {
    let mut overlaps = vec![0.0f64; windows.len()];
    for &(from, to) in edges {
        let overlap = (windows[from].end_secs.min(windows[to].end_secs)
            - windows[to].start_secs.max(windows[from].start_secs))
        .max(0.0);
        overlaps[to] = overlaps[to].max(overlap);
    }
    overlaps
}

/// The longest duration-weighted dependency chain through a stage DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Indices into the window slice, in execution order.
    pub stages: Vec<usize>,
    /// Total seconds spent on the chain's stages.
    pub secs: f64,
}

impl CriticalPath {
    /// Renders the chain as `a -> b -> c`.
    pub fn label(&self, windows: &[StageWindow]) -> String {
        self.stages
            .iter()
            .map(|&i| windows[i].name.as_str())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

/// Computes the critical path: the dependency chain (over `edges`,
/// `(from, to)` pairs with `from < to`) maximising the sum of stage
/// durations. This is the lower bound pipelining converges towards —
/// stages off this chain can hide entirely inside it.
///
/// # Example
///
/// ```
/// use telemetry::report::{critical_path, StageWindow};
///
/// let windows = [
///     StageWindow::new("load", 0.0, 10.0),
///     StageWindow::new("db", 0.0, 2.0),
///     StageWindow::new("annotate", 10.0, 15.0),
/// ];
/// let cp = critical_path(&windows, &[(0, 2), (1, 2)]);
/// assert_eq!(cp.stages, vec![0, 2]);
/// assert!((cp.secs - 15.0).abs() < 1e-9);
/// assert_eq!(cp.label(&windows), "load -> annotate");
/// ```
pub fn critical_path(windows: &[StageWindow], edges: &[(usize, usize)]) -> CriticalPath {
    let n = windows.len();
    let mut dist = vec![0.0f64; n];
    let mut prev: Vec<Option<usize>> = vec![None; n];
    for (i, w) in windows.iter().enumerate() {
        let mut best = 0.0f64;
        for &(from, to) in edges {
            if to == i && dist[from] > best {
                best = dist[from];
                prev[i] = Some(from);
            }
        }
        dist[i] = best + w.duration_secs();
    }
    let Some(mut at) = (0..n).max_by(|&a, &b| {
        dist[a]
            .total_cmp(&dist[b])
            // Ties break towards the earliest stage index, stably.
            .then(b.cmp(&a))
    }) else {
        return CriticalPath {
            stages: Vec::new(),
            secs: 0.0,
        };
    };
    let secs = dist[at];
    let mut stages = vec![at];
    while let Some(p) = prev[at] {
        stages.push(p);
        at = p;
    }
    stages.reverse();
    CriticalPath { stages, secs }
}

/// Renders a barrier-vs-pipelined per-stage comparison: each stage's
/// execution window under both modes plus how long the pipelined run
/// overlapped the stage with its upstream dependencies. Both runs must
/// cover the same stage list; `edges` are `(from, to)` index pairs.
///
/// # Example
///
/// ```
/// use telemetry::report::{dag_stage_table, StageWindow};
///
/// let barrier = [
///     StageWindow::new("segment", 0.0, 10.0),
///     StageWindow::new("annotate", 10.0, 18.0),
/// ];
/// let pipelined = [
///     StageWindow::new("segment", 0.0, 10.0),
///     StageWindow::new("annotate", 6.0, 14.0),
/// ];
/// let text = dag_stage_table(&barrier, &pipelined, &[(0, 1)]);
/// assert!(text.contains("annotate"));
/// assert!(text.contains("4.00")); // seconds of overlap won back
/// ```
///
/// # Panics
///
/// Panics if the two runs disagree on the number of stages.
pub fn dag_stage_table(
    barrier: &[StageWindow],
    pipelined: &[StageWindow],
    edges: &[(usize, usize)],
) -> String {
    assert_eq!(
        barrier.len(),
        pipelined.len(),
        "both runs must cover the same stage list"
    );
    let overlaps = stage_overlaps(pipelined, edges);
    let mut table = Table::new([
        "Stage",
        "Barrier start",
        "Barrier end",
        "Pipelined start",
        "Pipelined end",
        "Overlap (s)",
    ]);
    for (i, (b, p)) in barrier.iter().zip(pipelined).enumerate() {
        table.row([
            b.name.clone(),
            format!("{:.2}", b.start_secs),
            format!("{:.2}", b.end_secs),
            format!("{:.2}", p.start_secs),
            format!("{:.2}", p.end_secs),
            format!("{:.2}", overlaps[i]),
        ]);
    }
    table.to_string()
}

/// Renders labelled values as a horizontal ASCII bar chart, scaled so the
/// largest value spans `width` characters.
///
/// # Example
///
/// ```
/// let chart = telemetry::report::bar_chart(&[("a".into(), 2.0), ("b".into(), 4.0)], 8);
/// assert!(chart.contains("########"));
/// ```
pub fn bar_chart(items: &[(String, f64)], width: usize) -> String {
    let max = items.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in items {
        let bar_len = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$}  {:<width$}  {value:.4}\n",
            "#".repeat(bar_len)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["short", "1"]);
        t.row(["a much longer name", "2"]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        // All rows should be equally wide (trailing cell padding aside).
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("a much longer name"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn paper_row_ratio() {
        let row = PaperRow::new("m", 100.0, 50.0);
        assert_eq!(row.ratio(), 0.5);
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let chart = bar_chart(&[("x".into(), 1.0), ("y".into(), 2.0)], 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[0].contains("#####"));
        assert!(!lines[0].contains("######"));
        assert!(lines[1].contains("##########"));
    }

    #[test]
    fn bar_chart_of_zeros_has_no_bars() {
        let chart = bar_chart(&[("x".into(), 0.0)], 10);
        assert!(!chart.contains('#'));
    }

    #[test]
    fn empty_table_reports_empty() {
        let t = Table::new(["a"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn plan_comparison_marks_baselines() {
        let text = plan_comparison(&[
            PlanRow::new("a", 2.0, 50.0, 0.0),
            PlanRow::new("b", 1.0, 100.0, 3.5),
        ]);
        // `b` is cheapest (1.00x cost), `a` is fastest (1.00x time).
        let a_line = text.lines().find(|l| l.starts_with("a ")).unwrap();
        let b_line = text.lines().find(|l| l.starts_with("b ")).unwrap();
        assert!(a_line.contains("2.00x") && a_line.contains("1.00x"));
        assert!(b_line.contains("1.00x") && b_line.contains("2.00x"));
        assert!(b_line.contains("3.50"));
    }

    #[test]
    fn plan_comparison_survives_zero_costs() {
        let text = plan_comparison(&[PlanRow::new("free", 0.0, 0.0, 0.0)]);
        assert!(text.contains('-'), "zero baselines render as `-`");
    }

    #[test]
    fn fleet_policy_comparison_marks_cheapest_and_missing_pool() {
        let rows = vec![
            FleetPolicyRow {
                policy: "shared-pool".into(),
                jobs: 10,
                cost_usd: 1.0,
                p50_secs: 70.0,
                p99_secs: 95.0,
                throttled: 0,
                degraded: 2,
                pool_hit_pct: Some(75.0),
            },
            FleetPolicyRow {
                policy: "serverless".into(),
                jobs: 10,
                cost_usd: 2.0,
                p50_secs: 50.0,
                p99_secs: 160.0,
                throttled: 9,
                degraded: 0,
                pool_hit_pct: None,
            },
        ];
        let text = fleet_policy_comparison(&rows);
        let shared = text.lines().find(|l| l.starts_with("shared-pool")).unwrap();
        let faas = text.lines().find(|l| l.starts_with("serverless")).unwrap();
        assert!(shared.contains("1.00x") && shared.contains("75.0"));
        assert!(faas.contains("2.00x") && faas.contains("-"));
    }

    #[test]
    fn overlap_is_zero_under_barriers_and_positive_when_pipelined() {
        let barrier = [
            StageWindow::new("a", 0.0, 10.0),
            StageWindow::new("b", 10.0, 20.0),
        ];
        let pipelined = [
            StageWindow::new("a", 0.0, 10.0),
            StageWindow::new("b", 4.0, 16.0),
        ];
        let edges = [(0usize, 1usize)];
        assert_eq!(stage_overlaps(&barrier, &edges), vec![0.0, 0.0]);
        assert_eq!(stage_overlaps(&pipelined, &edges), vec![0.0, 6.0]);
    }

    #[test]
    fn overlap_takes_the_widest_upstream() {
        let windows = [
            StageWindow::new("a", 0.0, 8.0),
            StageWindow::new("b", 0.0, 4.0),
            StageWindow::new("join", 2.0, 10.0),
        ];
        // Overlaps 6 s with `a` but only 2 s with `b`: report 6.
        let ov = stage_overlaps(&windows, &[(0, 2), (1, 2)]);
        assert_eq!(ov[2], 6.0);
    }

    #[test]
    fn critical_path_follows_the_heavier_branch() {
        let windows = [
            StageWindow::new("root", 0.0, 1.0),
            StageWindow::new("heavy", 1.0, 11.0),
            StageWindow::new("light", 1.0, 2.0),
            StageWindow::new("sink", 11.0, 12.0),
        ];
        let edges = [(0, 1), (0, 2), (1, 3), (2, 3)];
        let cp = critical_path(&windows, &edges);
        assert_eq!(cp.stages, vec![0, 1, 3]);
        assert!((cp.secs - 12.0).abs() < 1e-9);
        assert_eq!(cp.label(&windows), "root -> heavy -> sink");
    }

    #[test]
    fn critical_path_of_nothing_is_empty() {
        let cp = critical_path(&[], &[]);
        assert!(cp.stages.is_empty());
        assert_eq!(cp.secs, 0.0);
    }

    #[test]
    #[should_panic(expected = "same stage list")]
    fn dag_stage_table_rejects_mismatched_runs() {
        dag_stage_table(&[StageWindow::new("a", 0.0, 1.0)], &[], &[]);
    }

    #[test]
    fn fleet_tenant_table_lists_every_tenant() {
        let rows = vec![
            FleetTenantRow {
                tenant: "alpha".into(),
                jobs: 3,
                cost_usd: 0.3,
                p50_secs: 40.0,
                p99_secs: 55.0,
            },
            FleetTenantRow {
                tenant: "beta".into(),
                jobs: 1,
                cost_usd: 0.9,
                p50_secs: 200.0,
                p99_secs: 200.0,
            },
        ];
        let text = fleet_tenant_table(&rows);
        assert!(text.contains("alpha") && text.contains("beta"));
        assert!(text.contains("0.9000"));
    }
}
