//! Fault and retry accounting.
//!
//! The simulator injects failures (see `cloudsim::faults`) and the
//! framework retries them; this module owns the ledger both sides write
//! to. It answers the questions the chaos experiments ask: how many
//! faults fired, how much work was retried, and how many billed
//! GB-seconds / instance-seconds were burned on attempts whose output
//! was thrown away.

use std::fmt;

/// A class of injected failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultKind {
    /// A FaaS invocation failed before user code ran (runtime/init
    /// error during cold start).
    SandboxInvokeError,
    /// A FaaS sandbox crashed while executing user code.
    SandboxCrash,
    /// A VM provisioning request failed (capacity error at boot).
    VmBootFailure,
    /// A running VM was lost mid-job (hardware failure / reclaim).
    VmLoss,
    /// An object-storage request failed with a transient 5xx error.
    StorageTransient,
    /// An object-storage request was throttled (503 SlowDown).
    StorageSlowDown,
    /// A spot VM was reclaimed by the provider's spot market (its
    /// uptime is billed at the spot rate).
    SpotPreemption,
}

impl FaultKind {
    /// All fault kinds, in ledger order.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::SandboxInvokeError,
        FaultKind::SandboxCrash,
        FaultKind::VmBootFailure,
        FaultKind::VmLoss,
        FaultKind::StorageTransient,
        FaultKind::StorageSlowDown,
        FaultKind::SpotPreemption,
    ];

    fn index(self) -> usize {
        match self {
            FaultKind::SandboxInvokeError => 0,
            FaultKind::SandboxCrash => 1,
            FaultKind::VmBootFailure => 2,
            FaultKind::VmLoss => 3,
            FaultKind::StorageTransient => 4,
            FaultKind::StorageSlowDown => 5,
            FaultKind::SpotPreemption => 6,
        }
    }

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::SandboxInvokeError => "sandbox invoke error",
            FaultKind::SandboxCrash => "sandbox crash",
            FaultKind::VmBootFailure => "vm boot failure",
            FaultKind::VmLoss => "vm loss",
            FaultKind::StorageTransient => "storage transient error",
            FaultKind::StorageSlowDown => "storage slow-down",
            FaultKind::SpotPreemption => "spot preemption",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a planned fault injection was swallowed instead of fired.
///
/// The chaos suite asserts on these: a fault schedule that silently
/// loses injections would make "survived N faults" claims vacuous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SuppressReason {
    /// The target host was explicitly protected (the serverful master
    /// under `RecoveryMode::Protected`).
    ProtectedHost,
    /// The target host runs a KV server and is spared automatically.
    KvHost,
}

impl SuppressReason {
    /// All suppression reasons, in ledger order.
    pub const ALL: [SuppressReason; 2] = [SuppressReason::ProtectedHost, SuppressReason::KvHost];

    fn index(self) -> usize {
        match self {
            SuppressReason::ProtectedHost => 0,
            SuppressReason::KvHost => 1,
        }
    }

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SuppressReason::ProtectedHost => "protected host",
            SuppressReason::KvHost => "kv host",
        }
    }
}

impl fmt::Display for SuppressReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Counters of injected faults and the recovery work they caused.
///
/// The world records injections and wasted billed time; the executor
/// records retries, replacements and give-ups. Comparing two runs'
/// ledgers for equality is how the determinism tests check that a
/// seeded fault schedule replays exactly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultLedger {
    injected: [u64; 7],
    /// Injections swallowed instead of fired, per kind × reason.
    suppressed: [[u64; 2]; 7],
    /// Whole-task re-dispatches (fresh sandbox / requeued bundle).
    pub task_retries: u64,
    /// Single storage requests re-issued after a transient error.
    pub storage_retries: u64,
    /// Replacement VMs provisioned after a boot failure or loss.
    pub vm_replacements: u64,
    /// Straggler tasks speculatively re-dispatched by the monitor.
    pub stragglers_redispatched: u64,
    /// Spot bid policies that gave up on spot capacity and fell back to
    /// on-demand after repeated preemptions.
    pub spot_fallbacks: u64,
    /// Units of work whose retry budget ran out.
    pub attempts_exhausted: u64,
    /// Billed GB-seconds of sandbox executions that crashed or were
    /// abandoned (their output never counted).
    pub wasted_gb_secs: f64,
    /// Billed instance-seconds on VMs that were lost mid-job.
    pub wasted_instance_secs: f64,
}

impl FaultLedger {
    /// An empty ledger.
    pub fn new() -> FaultLedger {
        FaultLedger::default()
    }

    /// Records one injected fault.
    pub fn record_fault(&mut self, kind: FaultKind) {
        self.injected[kind.index()] += 1;
    }

    /// Injected faults of one kind.
    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.injected[kind.index()]
    }

    /// Records one planned injection that was swallowed (the target was
    /// exempt) rather than fired.
    pub fn record_suppressed(&mut self, kind: FaultKind, reason: SuppressReason) {
        self.suppressed[kind.index()][reason.index()] += 1;
    }

    /// Suppressed injections of one kind for one reason.
    pub fn suppressed(&self, kind: FaultKind, reason: SuppressReason) -> u64 {
        self.suppressed[kind.index()][reason.index()]
    }

    /// Total suppressed injections across all kinds and reasons.
    pub fn total_suppressed(&self) -> u64 {
        self.suppressed.iter().flatten().sum()
    }

    /// Total injected faults across all kinds.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Total retries of any kind (task, storage, VM replacement,
    /// straggler re-dispatch).
    pub fn total_retries(&self) -> u64 {
        self.task_retries
            + self.storage_retries
            + self.vm_replacements
            + self.stragglers_redispatched
    }

    /// True when nothing was recorded — the expected state of a run
    /// with fault injection disabled.
    pub fn is_empty(&self) -> bool {
        *self == FaultLedger::default()
    }

    /// A plain-text report block (empty string when nothing happened).
    pub fn report(&self) -> String {
        if self.is_empty() {
            return String::new();
        }
        let mut out = String::from("fault injection\n");
        for kind in FaultKind::ALL {
            let n = self.injected(kind);
            if n > 0 {
                out.push_str(&format!("  {:<24} {n}\n", kind.name()));
            }
            for reason in SuppressReason::ALL {
                let n = self.suppressed(kind, reason);
                if n > 0 {
                    out.push_str(&format!(
                        "  {:<24} {n}\n",
                        format!("{} suppressed ({})", kind.name(), reason.name())
                    ));
                }
            }
        }
        out.push_str(&format!("  {:<24} {}\n", "task retries", self.task_retries));
        out.push_str(&format!(
            "  {:<24} {}\n",
            "storage retries", self.storage_retries
        ));
        out.push_str(&format!(
            "  {:<24} {}\n",
            "vm replacements", self.vm_replacements
        ));
        if self.stragglers_redispatched > 0 {
            out.push_str(&format!(
                "  {:<24} {}\n",
                "stragglers redispatched", self.stragglers_redispatched
            ));
        }
        if self.spot_fallbacks > 0 {
            out.push_str(&format!(
                "  {:<24} {}\n",
                "spot fallbacks", self.spot_fallbacks
            ));
        }
        if self.attempts_exhausted > 0 {
            out.push_str(&format!(
                "  {:<24} {}\n",
                "attempts exhausted", self.attempts_exhausted
            ));
        }
        out.push_str(&format!(
            "  {:<24} {:.2}\n",
            "wasted GB-seconds", self.wasted_gb_secs
        ));
        out.push_str(&format!(
            "  {:<24} {:.2}\n",
            "wasted instance-seconds", self.wasted_instance_secs
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ledger_is_empty_and_reports_nothing() {
        let ledger = FaultLedger::new();
        assert!(ledger.is_empty());
        assert_eq!(ledger.total_injected(), 0);
        assert_eq!(ledger.total_retries(), 0);
        assert!(ledger.report().is_empty());
    }

    #[test]
    fn counts_accumulate_per_kind() {
        let mut ledger = FaultLedger::new();
        ledger.record_fault(FaultKind::SandboxCrash);
        ledger.record_fault(FaultKind::SandboxCrash);
        ledger.record_fault(FaultKind::StorageSlowDown);
        assert_eq!(ledger.injected(FaultKind::SandboxCrash), 2);
        assert_eq!(ledger.injected(FaultKind::StorageSlowDown), 1);
        assert_eq!(ledger.injected(FaultKind::VmLoss), 0);
        assert_eq!(ledger.total_injected(), 3);
        assert!(!ledger.is_empty());
    }

    #[test]
    fn retries_sum_across_mechanisms() {
        let mut ledger = FaultLedger::new();
        ledger.task_retries = 3;
        ledger.storage_retries = 5;
        ledger.vm_replacements = 1;
        ledger.stragglers_redispatched = 2;
        assert_eq!(ledger.total_retries(), 11);
    }

    #[test]
    fn report_names_recorded_fault_kinds() {
        let mut ledger = FaultLedger::new();
        ledger.record_fault(FaultKind::VmLoss);
        ledger.task_retries = 1;
        let report = ledger.report();
        assert!(report.contains("vm loss"));
        assert!(report.contains("task retries"));
        assert!(!report.contains("sandbox crash"));
    }

    #[test]
    fn suppressions_count_per_kind_and_reason() {
        let mut ledger = FaultLedger::new();
        ledger.record_suppressed(FaultKind::VmLoss, SuppressReason::ProtectedHost);
        ledger.record_suppressed(FaultKind::VmLoss, SuppressReason::ProtectedHost);
        ledger.record_suppressed(FaultKind::VmLoss, SuppressReason::KvHost);
        assert_eq!(
            ledger.suppressed(FaultKind::VmLoss, SuppressReason::ProtectedHost),
            2
        );
        assert_eq!(ledger.suppressed(FaultKind::VmLoss, SuppressReason::KvHost), 1);
        assert_eq!(ledger.total_suppressed(), 3);
        assert_eq!(ledger.total_injected(), 0);
        assert!(!ledger.is_empty());
        let report = ledger.report();
        assert!(report.contains("vm loss suppressed (protected host)"));
        assert!(report.contains("vm loss suppressed (kv host)"));
    }

    #[test]
    fn equal_histories_compare_equal() {
        let mut a = FaultLedger::new();
        let mut b = FaultLedger::new();
        for ledger in [&mut a, &mut b] {
            ledger.record_fault(FaultKind::StorageTransient);
            ledger.storage_retries += 1;
            ledger.wasted_gb_secs += 1.5;
        }
        assert_eq!(a, b);
        b.record_fault(FaultKind::StorageTransient);
        assert_ne!(a, b);
    }
}
