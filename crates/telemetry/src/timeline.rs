//! Stage timelines.
//!
//! A [`Timeline`] records the named spans of a pipeline run — stage start
//! and end, task count, whether the stage is a stateful operation. It
//! backs the Figure 2 style per-stage concurrency listing and the
//! stateful-window selection of Table 3.

use simkernel::{SimDuration, SimTime};

/// One executed stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSpan {
    /// Stage name, e.g. `"dataset-sort"`.
    pub name: String,
    /// When the first task of the stage was dispatched.
    pub start: SimTime,
    /// When the stage's results were all collected.
    pub end: SimTime,
    /// Number of parallel tasks the stage ran.
    pub tasks: usize,
    /// Whether the stage is a stateful operation (sort / partition /
    /// all-to-all exchange) in the paper's sense.
    pub stateful: bool,
}

impl StageSpan {
    /// Wall-clock duration of the stage.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// An append-only record of stage spans.
///
/// # Example
///
/// ```
/// use simkernel::SimTime;
/// use telemetry::{StageSpan, Timeline};
///
/// let mut tl = Timeline::new();
/// tl.record(StageSpan {
///     name: "map".into(),
///     start: SimTime::ZERO,
///     end: SimTime::from_secs_f64(5.0),
///     tasks: 100,
///     stateful: false,
/// });
/// assert_eq!(tl.makespan().as_secs_f64(), 5.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    spans: Vec<StageSpan>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Appends a stage span.
    ///
    /// # Panics
    ///
    /// Panics if the span ends before it starts.
    pub fn record(&mut self, span: StageSpan) {
        assert!(span.end >= span.start, "stage {} ends before it starts", span.name);
        self.spans.push(span);
    }

    /// All spans in recorded order.
    pub fn spans(&self) -> &[StageSpan] {
        &self.spans
    }

    /// The first span with the given name, if any.
    pub fn span(&self, name: &str) -> Option<&StageSpan> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Earliest start across spans (zero if empty).
    pub fn start(&self) -> SimTime {
        self.spans
            .iter()
            .map(|s| s.start)
            .min()
            .unwrap_or(SimTime::ZERO)
    }

    /// Latest end across spans (zero if empty).
    pub fn end(&self) -> SimTime {
        self.spans
            .iter()
            .map(|s| s.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// End-to-end duration from the earliest start to the latest end.
    pub fn makespan(&self) -> SimDuration {
        self.end().saturating_since(self.start())
    }

    /// The `(start, end)` windows of stateful spans, for
    /// [`UsageStats`](crate::UsageStats) selection.
    pub fn stateful_windows(&self) -> Vec<(SimTime, SimTime)> {
        self.spans
            .iter()
            .filter(|s| s.stateful)
            .map(|s| (s.start, s.end))
            .collect()
    }

    /// Sum of the per-stage wall-clock durations (can exceed the makespan
    /// if stages overlap).
    pub fn total_stage_time(&self) -> SimDuration {
        self.spans
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.duration())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, start: f64, end: f64, tasks: usize, stateful: bool) -> StageSpan {
        StageSpan {
            name: name.into(),
            start: SimTime::from_secs_f64(start),
            end: SimTime::from_secs_f64(end),
            tasks,
            stateful,
        }
    }

    #[test]
    fn makespan_covers_all_spans() {
        let mut tl = Timeline::new();
        tl.record(span("a", 1.0, 3.0, 10, false));
        tl.record(span("b", 2.0, 6.0, 20, true));
        assert_eq!(tl.makespan().as_secs_f64(), 5.0);
        assert_eq!(tl.start().as_secs_f64(), 1.0);
        assert_eq!(tl.end().as_secs_f64(), 6.0);
    }

    #[test]
    fn stateful_windows_filter() {
        let mut tl = Timeline::new();
        tl.record(span("a", 0.0, 1.0, 1, false));
        tl.record(span("b", 1.0, 2.0, 1, true));
        tl.record(span("c", 2.0, 3.0, 1, true));
        let windows = tl.stateful_windows();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].0.as_secs_f64(), 1.0);
    }

    #[test]
    fn lookup_by_name() {
        let mut tl = Timeline::new();
        tl.record(span("sort", 0.0, 2.0, 32, true));
        assert_eq!(tl.span("sort").unwrap().tasks, 32);
        assert!(tl.span("missing").is_none());
    }

    #[test]
    fn empty_timeline_is_zero() {
        let tl = Timeline::new();
        assert_eq!(tl.makespan(), SimDuration::ZERO);
        assert!(tl.stateful_windows().is_empty());
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn reversed_span_panics() {
        let mut tl = Timeline::new();
        tl.record(span("bad", 2.0, 1.0, 1, false));
    }

    #[test]
    fn total_stage_time_sums_durations() {
        let mut tl = Timeline::new();
        tl.record(span("a", 0.0, 2.0, 1, false));
        tl.record(span("b", 1.0, 4.0, 1, false));
        assert_eq!(tl.total_stage_time().as_secs_f64(), 5.0);
    }
}
