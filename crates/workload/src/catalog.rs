//! The bundled non-METASPACE workload instances, by name.
//!
//! The METASPACE jobs live with their Table 2 parameters in
//! `metaspace::jobs`; this catalog holds the fixed instances of the
//! other families so every layer (CLI, CI smoke gate, fleet tenants)
//! resolves the same names to the same graphs.

use crate::spec::Workload;
use crate::families;

/// The catalog's workload names, in presentation order.
pub fn names() -> &'static [&'static str] {
    &[
        "mlpipe",
        "montage",
        "terasort-small",
        "terasort-medium",
        "terasort-large",
    ]
}

/// Resolves a bundled workload by (case-insensitive) name.
pub fn named(name: &str) -> Option<Workload> {
    let canon = name.to_ascii_lowercase();
    match canon.as_str() {
        "mlpipe" => Some(families::ml_pipeline()),
        "montage" => Some(families::montage()),
        "terasort-small" => Some(families::terasort("terasort-small", 5.0)),
        "terasort-medium" => Some(families::terasort("terasort-medium", 20.0)),
        "terasort-large" => Some(families::terasort("terasort-large", 50.0)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_resolves_to_a_valid_workload_of_that_name() {
        for n in names() {
            let w = named(n).unwrap_or_else(|| panic!("{n} missing"));
            assert_eq!(&w.name, n);
            w.validate().unwrap_or_else(|e| panic!("{n}: {e}"));
        }
    }

    #[test]
    fn lookup_is_case_insensitive_and_total() {
        assert!(named("Montage").is_some());
        assert!(named("TERASORT-SMALL").is_some());
        assert!(named("nope").is_none());
    }
}
