//! The line-oriented workload text format.
//!
//! One declaration per line; `#` starts a comment; blank lines are
//! ignored. The canonical form [`emit`] produces round-trips exactly:
//! `parse(emit(w)) == w` for any valid workload, and
//! `emit(parse(text)) == text` for canonical text (floats print via
//! Rust's shortest-round-trip `Display`, so no precision is lost).
//!
//! ```text
//! workload terasort-small
//! stage gen tasks=10 cpu_secs=1.5 read_mb=0 write_mb=512 stateless read_spread=16 write_spread=16
//! stage sort tasks=25 cpu_secs=10.24 read_mb=0 write_mb=0 stateful exchange_gb=5
//! stage validate tasks=10 cpu_secs=1 read_mb=512 write_mb=1 stateless read_spread=16 write_spread=16
//! edge sort <- gen all-to-all
//! edge validate <- sort one-to-one
//! ```
//!
//! # Grammar
//!
//! Lexically, each line is stripped of its comment (`#` to end of
//! line) and split on whitespace; empty lines vanish before parsing,
//! so indentation and spacing are free. In EBNF over the remaining
//! token lines:
//!
//! ```text
//! workload-file = header , { stage-decl } , { edge-decl } ;
//!
//! header        = "workload" , name ;
//!
//! stage-decl    = "stage" , name ,
//!                 "tasks="    , nat ,
//!                 "cpu_secs=" , num ,
//!                 "read_mb="  , num ,
//!                 "write_mb=" , num ,
//!                 ( stateless | stateful ) ;
//! stateless     = "stateless" , "read_spread=" , nat , "write_spread=" , nat ;
//! stateful      = "stateful"  , "exchange_gb=" , num ;
//!
//! edge-decl     = "edge" , name , "<-" , name , fan ;
//! fan           = "one-to-one" | "all-to-all" ;
//!
//! name          = token ;  (* no whitespace or "#"; validation further
//!                             requires uniqueness *)
//! nat           = token ;  (* Rust usize literal *)
//! num           = token ;  (* Rust f64 literal *)
//! ```
//!
//! Ordering rules the grammar cannot show: the `workload` header comes
//! before any `stage`; an `edge` may only name stages already declared
//! (which, with [`Workload::validate`]'s `from < to` check, forces
//! edges to point forward — the graph is acyclic by construction).
//! Declaration interleaving is otherwise free: `edge` lines may appear
//! between `stage` lines as long as both endpoints exist. The parsed
//! value then passes [`Workload::validate`], so a text that parses but
//! describes an unschedulable graph still fails with
//! [`DslError::Invalid`].
//!
//! Files conventionally use the `.wl` extension; `repro workload
//! path/to.wl` loads one from disk through [`parse`] and runs it like
//! any bundled workload.

use std::fmt;

use serverful::FanIn;

use crate::spec::{Stage, StageEdge, StageKind, ValidateError, Workload};

/// Why a workload text failed to load: a syntax error at a line, or a
/// well-formed description that fails [`Workload::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum DslError {
    /// The text is not well-formed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The text parsed but describes an unschedulable workload.
    Invalid(ValidateError),
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DslError::Parse { line, message } => {
                write!(f, "workload DSL line {line}: {message}")
            }
            DslError::Invalid(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DslError {}

impl From<ValidateError> for DslError {
    fn from(e: ValidateError) -> Self {
        DslError::Invalid(e)
    }
}

fn fan_name(f: FanIn) -> &'static str {
    match f {
        FanIn::OneToOne => "one-to-one",
        FanIn::AllToAll => "all-to-all",
    }
}

/// Renders a workload in the canonical text form: the `workload`
/// header, every stage in order, then every edge in downstream order.
pub fn emit(w: &Workload) -> String {
    let mut out = format!("workload {}\n", w.name);
    for s in &w.stages {
        out.push_str(&format!(
            "stage {} tasks={} cpu_secs={} read_mb={} write_mb={}",
            s.name, s.tasks, s.cpu_secs_per_task, s.read_mb_per_task, s.write_mb_per_task
        ));
        match s.kind {
            StageKind::Stateless { read_spread, write_spread } => out.push_str(&format!(
                " stateless read_spread={read_spread} write_spread={write_spread}\n"
            )),
            StageKind::Stateful { exchange_gb } => {
                out.push_str(&format!(" stateful exchange_gb={exchange_gb}\n"))
            }
        }
    }
    for (to, deps) in w.edges.iter().enumerate() {
        for e in deps {
            out.push_str(&format!(
                "edge {} <- {} {}\n",
                w.stages[to].name,
                w.stages[e.from].name,
                fan_name(e.fan_in)
            ));
        }
    }
    out
}

struct Line<'a> {
    no: usize,
    tokens: Vec<&'a str>,
}

impl Line<'_> {
    fn err(&self, message: impl Into<String>) -> DslError {
        DslError::Parse { line: self.no, message: message.into() }
    }

    /// Consumes `key=<value>` from token position `i`.
    fn kv<T: std::str::FromStr>(&self, i: usize, key: &str) -> Result<T, DslError> {
        let tok = self
            .tokens
            .get(i)
            .ok_or_else(|| self.err(format!("missing `{key}=<value>`")))?;
        let val = tok
            .strip_prefix(key)
            .and_then(|r| r.strip_prefix('='))
            .ok_or_else(|| self.err(format!("expected `{key}=<value>`, got `{tok}`")))?;
        val.parse()
            .map_err(|_| self.err(format!("`{key}` value `{val}` does not parse")))
    }
}

/// Parses (and validates) a workload from its text form.
pub fn parse(text: &str) -> Result<Workload, DslError> {
    let mut name: Option<String> = None;
    let mut stages: Vec<Stage> = Vec::new();
    let mut edges: Vec<Vec<StageEdge>> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let body = raw.split('#').next().unwrap_or("");
        let tokens: Vec<&str> = body.split_whitespace().collect();
        if tokens.is_empty() {
            continue;
        }
        let line = Line { no: idx + 1, tokens };
        match line.tokens[0] {
            "workload" => {
                if name.is_some() {
                    return Err(line.err("duplicate `workload` header"));
                }
                if line.tokens.len() != 2 {
                    return Err(line.err("expected `workload <name>`"));
                }
                name = Some(line.tokens[1].to_owned());
            }
            "stage" => {
                if name.is_none() {
                    return Err(line.err("`workload <name>` header must come first"));
                }
                if line.tokens.len() < 7 {
                    return Err(line.err(
                        "expected `stage <name> tasks= cpu_secs= read_mb= write_mb= stateless|stateful ...`",
                    ));
                }
                let sname = line.tokens[1].to_owned();
                let tasks: usize = line.kv(2, "tasks")?;
                let cpu_secs_per_task: f64 = line.kv(3, "cpu_secs")?;
                let read_mb_per_task: f64 = line.kv(4, "read_mb")?;
                let write_mb_per_task: f64 = line.kv(5, "write_mb")?;
                let kind = match line.tokens[6] {
                    "stateless" => StageKind::Stateless {
                        read_spread: line.kv(7, "read_spread")?,
                        write_spread: line.kv(8, "write_spread")?,
                    },
                    "stateful" => StageKind::Stateful {
                        exchange_gb: line.kv(7, "exchange_gb")?,
                    },
                    other => {
                        return Err(
                            line.err(format!("expected `stateless` or `stateful`, got `{other}`"))
                        )
                    }
                };
                let expected = match kind {
                    StageKind::Stateless { .. } => 9,
                    StageKind::Stateful { .. } => 8,
                };
                if line.tokens.len() != expected {
                    return Err(line.err("trailing tokens after stage declaration"));
                }
                stages.push(Stage {
                    name: sname,
                    tasks,
                    cpu_secs_per_task,
                    read_mb_per_task,
                    write_mb_per_task,
                    kind,
                });
                edges.push(Vec::new());
            }
            "edge" => {
                if line.tokens.len() != 5 || line.tokens[2] != "<-" {
                    return Err(line.err("expected `edge <to> <- <from> one-to-one|all-to-all`"));
                }
                let resolve = |n: &str| {
                    stages
                        .iter()
                        .position(|s| s.name == n)
                        .ok_or_else(|| line.err(format!("unknown stage `{n}`")))
                };
                let to = resolve(line.tokens[1])?;
                let from = resolve(line.tokens[3])?;
                let fan_in = match line.tokens[4] {
                    "one-to-one" => FanIn::OneToOne,
                    "all-to-all" => FanIn::AllToAll,
                    other => {
                        return Err(line.err(format!(
                            "expected `one-to-one` or `all-to-all`, got `{other}`"
                        )))
                    }
                };
                edges[to].push(StageEdge { from, fan_in });
            }
            other => return Err(line.err(format!("unknown declaration `{other}`"))),
        }
    }

    let name = name.ok_or(DslError::Parse {
        line: text.lines().count().max(1),
        message: "missing `workload <name>` header".into(),
    })?;
    let w = Workload { name, stages, edges };
    w.validate()?;
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CANONICAL: &str = "\
workload terasort-toy
stage gen tasks=4 cpu_secs=1.5 read_mb=0 write_mb=512 stateless read_spread=16 write_spread=16
stage sort tasks=4 cpu_secs=10.24 read_mb=0 write_mb=0 stateful exchange_gb=5
stage validate tasks=4 cpu_secs=1 read_mb=512 write_mb=1 stateless read_spread=16 write_spread=16
edge sort <- gen all-to-all
edge validate <- sort one-to-one
";

    #[test]
    fn canonical_text_round_trips_exactly() {
        let w = parse(CANONICAL).unwrap();
        assert_eq!(emit(&w), CANONICAL);
        assert_eq!(parse(&emit(&w)).unwrap(), w);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let noisy = format!("# a comment\n\n{CANONICAL}\n# trailing note\n");
        assert_eq!(parse(&noisy).unwrap(), parse(CANONICAL).unwrap());
        let inline = CANONICAL.replace("workload terasort-toy", "workload terasort-toy # the name");
        assert_eq!(parse(&inline).unwrap(), parse(CANONICAL).unwrap());
    }

    #[test]
    fn float_precision_survives_the_round_trip() {
        // A value with no short decimal representation must re-parse to
        // the identical bits (Rust Display is shortest-round-trip).
        let mut w = parse(CANONICAL).unwrap();
        w.stages[0].cpu_secs_per_task = 0.1 + 0.2; // 0.30000000000000004
        let back = parse(&emit(&w)).unwrap();
        assert_eq!(
            back.stages[0].cpu_secs_per_task.to_bits(),
            w.stages[0].cpu_secs_per_task.to_bits()
        );
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = CANONICAL.replace("edge sort <- gen all-to-all", "edge sort <- gen sideways");
        match parse(&bad).unwrap_err() {
            DslError::Parse { line, message } => {
                assert_eq!(line, 5);
                assert!(message.contains("sideways"), "{message}");
            }
            e => panic!("expected parse error, got {e}"),
        }
    }

    #[test]
    fn unknown_stage_reference_is_an_error() {
        let bad = CANONICAL.replace("edge sort <- gen", "edge sort <- ghost");
        assert!(matches!(parse(&bad).unwrap_err(), DslError::Parse { .. }));
    }

    #[test]
    fn missing_header_is_an_error() {
        let e = parse("stage a tasks=1 cpu_secs=1 read_mb=0 write_mb=0 stateful exchange_gb=1\n")
            .unwrap_err();
        assert!(matches!(e, DslError::Parse { .. }), "{e}");
    }

    #[test]
    fn forward_edge_fails_validation() {
        // `validate` is declared after `sort`, so an edge sort <- validate
        // parses but is rejected as non-topological.
        let bad = CANONICAL.replace("edge validate <- sort", "edge sort <- validate");
        assert!(matches!(parse(&bad).unwrap_err(), DslError::Invalid(_)));
    }
}
