//! Bundled workload families.
//!
//! Each family is a deterministic constructor from a few physical
//! parameters to a full [`Workload`]: the paper's METASPACE annotation
//! pipeline ([`metaspace`]), an ML data-prep + training pipeline
//! ([`ml_pipeline`], after the serverless+HPC ML-pipeline line of
//! work), a Montage-like mosaic workflow with wide fan-out/fan-in
//! ([`montage`], after Malawski's scientific-workflow studies), and a
//! shuffle-heavy terasort family ([`terasort`], the paper's §4.2 sort
//! scaled to several volumes).
//!
//! The families deliberately stress different corners of the
//! serverful-vs-serverless tradeoff: METASPACE mixes both; the ML
//! pipeline is training-dominated (few long tasks, small exchanges);
//! Montage is wide and stateless (fan-out 6 → 180, fan-in 180 → 4);
//! terasort is exchange-dominated at every scale.

use serverful::FanIn::{AllToAll, OneToOne};

use crate::spec::{Stage, StageKind, Workload};

fn clamp(x: f64, lo: usize, hi: usize) -> usize {
    (x.round() as usize).clamp(lo, hi)
}

fn stateless(
    name: &str,
    tasks: usize,
    cpu_secs_per_task: f64,
    read_mb_per_task: f64,
    write_mb_per_task: f64,
    read_spread: usize,
    write_spread: usize,
) -> Stage {
    Stage {
        name: name.into(),
        tasks,
        cpu_secs_per_task,
        read_mb_per_task,
        write_mb_per_task,
        kind: StageKind::Stateless { read_spread, write_spread },
    }
}

fn stateful(name: &str, tasks: usize, cpu_secs_per_task: f64, exchange_gb: f64) -> Stage {
    Stage {
        name: name.into(),
        tasks,
        cpu_secs_per_task,
        // The exchange's own chunks are the input/output.
        read_mb_per_task: 0.0,
        write_mb_per_task: 0.0,
        kind: StageKind::Stateful { exchange_gb },
    }
}

/// Physical parameters of a METASPACE annotation job (the Table 2
/// columns plus the profile-derived sort volumes the caller computes
/// from them — see `metaspace::pipeline`).
#[derive(Debug, Clone, PartialEq)]
pub struct MetaspaceParams {
    /// Workload name (e.g. the dataset name).
    pub name: String,
    /// Dataset size, GB.
    pub dataset_gb: f64,
    /// Database formulas, thousands.
    pub db_formulas_k: f64,
    /// Peak intermediate volume, GB.
    pub max_volume_gb: f64,
    /// CPU-seconds per annotate task.
    pub annotate_cpu_secs: f64,
    /// Dataset segmentation sort volume, GB.
    pub dataset_sort_gb: f64,
    /// Database segmentation sort volume, GB.
    pub db_sort_gb: f64,
}

/// The canonical 9-stage METASPACE annotation workload: the dataset
/// branch (`load-dataset` → `parse-spectra` → `ds-segment`) and the
/// database branch (`formula-gen` → `db-segment`) proceed independently
/// until `annotate` joins them — partition-wise against the dataset
/// segments, all-to-all against the (replicated) database segments —
/// and the scoring tail (`metrics` → `fdr`) chains partition-wise into
/// the final `collect` shuffle.
pub fn metaspace(p: &MetaspaceParams) -> Workload {
    let ds = p.dataset_gb;
    let db_k = p.db_formulas_k;
    let vol = p.max_volume_gb;

    let load_tasks = clamp(ds * 32.0, 8, 96);
    let formula_tasks = clamp(db_k * 3.2, 32, 300);
    let annotate_tasks = clamp(vol * 8.5, 64, 4000);
    let fdr_tasks = clamp(annotate_tasks as f64 / 4.0, 32, 1000);
    let ds_sort = p.dataset_sort_gb;
    let db_sort = p.db_sort_gb;
    // The serverless sort scales out with partition count, but under a
    // saturated prefix extra functions only add idle cost — the paper's
    // hindrance.
    let ds_sort_tasks = clamp(ds_sort * 5.0, 32, 100);

    Workload::builder(&p.name)
        .stage(
            stateless(
                "load-dataset",
                load_tasks,
                2.0 + ds * 1024.0 / load_tasks as f64 * 0.01,
                ds * 1024.0 / load_tasks as f64,
                ds * 1024.0 / load_tasks as f64,
                8,
                8,
            ),
            &[],
        )
        .stage(
            stateless(
                "parse-spectra",
                load_tasks,
                1.5 + ds * 1024.0 / load_tasks as f64 * 0.008,
                ds * 1024.0 / load_tasks as f64,
                ds * 1024.0 / load_tasks as f64 * 1.3,
                8,
                8,
            ),
            &[("load-dataset", OneToOne)],
        )
        .stage(stateless("formula-gen", formula_tasks, 8.0, 1.0, 4.0, 16, 16), &[])
        .stage(
            stateful("db-segment", 32, db_sort * 1024.0 / 32.0 * 0.05, db_sort),
            &[("formula-gen", AllToAll)],
        )
        .stage(
            stateful(
                "ds-segment",
                ds_sort_tasks,
                ds_sort * 1024.0 / ds_sort_tasks as f64 * 0.05,
                ds_sort,
            ),
            &[("parse-spectra", AllToAll)],
        )
        .stage(
            stateless(
                "annotate",
                annotate_tasks,
                p.annotate_cpu_secs,
                vol * 1024.0 / annotate_tasks as f64,
                8.0,
                64,
                32,
            ),
            &[("ds-segment", OneToOne), ("db-segment", AllToAll)],
        )
        .stage(
            stateless(
                "metrics",
                clamp(annotate_tasks as f64 / 2.0, 64, 2000),
                p.annotate_cpu_secs * 0.25,
                20.0,
                6.0,
                32,
                32,
            ),
            &[("annotate", OneToOne)],
        )
        .stage(
            stateless(
                "fdr",
                fdr_tasks,
                (p.annotate_cpu_secs / 6.0).max(1.0),
                20.0,
                4.0,
                32,
                32,
            ),
            &[("metrics", OneToOne)],
        )
        .stage(stateful("collect", 16, 0.5, 0.4), &[("fdr", AllToAll)])
        .build()
        .expect("the METASPACE family is valid by construction")
}

/// An ML data-prep + training pipeline: a map-chained preparation
/// front (`ingest` → `clean` → `featurize`), one example shuffle, then
/// a training stage of few long data-parallel tasks that dominates the
/// critical path, evaluation, and a small model-publish collect.
///
/// The interesting property is the *inverse* of METASPACE: almost all
/// CPU sits in 8 training tasks, so task-level pipelining has little
/// left to overlap and the serverful backend's exchange advantage only
/// touches a modest shuffle.
pub fn ml_pipeline() -> Workload {
    Workload::builder("mlpipe")
        .stage(stateless("ingest", 48, 3.0, 96.0, 96.0, 8, 8), &[])
        .stage(
            stateless("clean", 48, 2.5, 96.0, 64.0, 8, 8),
            &[("ingest", OneToOne)],
        )
        .stage(
            stateless("featurize", 96, 6.0, 32.0, 24.0, 16, 16),
            &[("clean", OneToOne)],
        )
        .stage(
            stateful("shuffle-examples", 32, 12.0 * 1024.0 / 32.0 * 0.05, 12.0),
            &[("featurize", AllToAll)],
        )
        .stage(
            stateless("train", 8, 240.0, 1536.0, 16.0, 8, 8),
            &[("shuffle-examples", AllToAll)],
        )
        .stage(
            stateless("evaluate", 24, 8.0, 64.0, 4.0, 8, 8),
            &[("train", AllToAll)],
        )
        .stage(
            stateful("publish-model", 4, 0.5, 0.2),
            &[("evaluate", AllToAll)],
        )
        .build()
        .expect("the ML pipeline family is valid by construction")
}

/// A Montage-like mosaic workflow: a narrow fetch fans out to a wide
/// stateless projection (6 → 180 tasks), a narrow background model
/// fans the projections back in (180 → 4), a diamond join corrects
/// every projection against the model, and a single co-add exchange
/// assembles the mosaic.
///
/// The interesting property is width without exchanges: only one small
/// stateful stage, but wide one-to-one chains and a fan-in/fan-out
/// diamond that dataflow pipelining can overlap aggressively.
pub fn montage() -> Workload {
    Workload::builder("montage")
        .stage(stateless("fetch-tiles", 6, 1.0, 512.0, 512.0, 4, 4), &[])
        .stage(
            stateless("project", 180, 9.0, 18.0, 20.0, 32, 32),
            &[("fetch-tiles", AllToAll)],
        )
        .stage(
            stateless("bg-model", 4, 30.0, 64.0, 2.0, 4, 4),
            &[("project", AllToAll)],
        )
        .stage(
            stateless("background", 180, 4.0, 20.0, 20.0, 32, 32),
            &[("project", OneToOne), ("bg-model", AllToAll)],
        )
        .stage(
            stateful("coadd", 24, 8.0 * 1024.0 / 24.0 * 0.05, 8.0),
            &[("background", AllToAll)],
        )
        .stage(
            stateless("shrink-publish", 8, 2.0, 48.0, 12.0, 8, 8),
            &[("coadd", AllToAll)],
        )
        .build()
        .expect("the Montage family is valid by construction")
}

/// A terasort at `sort_gb` GB: generate, one dominant all-to-all sort
/// exchange, validate partition-wise. `name` distinguishes the scales
/// (e.g. `terasort-small`).
///
/// The interesting property is exchange dominance: the sort *is* the
/// job, so the serverful in-memory exchange advantage (the paper's
/// §4.2) should grow with volume while pipelining finds almost nothing
/// to overlap in the linear chain.
pub fn terasort(name: &str, sort_gb: f64) -> Workload {
    let gen_tasks = clamp(sort_gb * 2.0, 8, 128);
    let sort_tasks = clamp(sort_gb * 5.0, 16, 100);
    Workload::builder(name)
        .stage(
            stateless(
                "gen",
                gen_tasks,
                1.5,
                0.0,
                sort_gb * 1024.0 / gen_tasks as f64,
                16,
                16,
            ),
            &[],
        )
        .stage(
            stateful(
                "sort",
                sort_tasks,
                sort_gb * 1024.0 / sort_tasks as f64 * 0.05,
                sort_gb,
            ),
            &[("gen", AllToAll)],
        )
        .stage(
            stateless(
                "validate",
                gen_tasks,
                1.0,
                sort_gb * 1024.0 / gen_tasks as f64,
                1.0,
                16,
                16,
            ),
            &[("sort", OneToOne)],
        )
        .build()
        .expect("the terasort family is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brain_params() -> MetaspaceParams {
        // The Table 2 Brain row as metaspace::jobs computes it.
        MetaspaceParams {
            name: "Brain".into(),
            dataset_gb: 0.05,
            db_formulas_k: 12.0,
            max_volume_gb: 37.45,
            annotate_cpu_secs: 3.5,
            dataset_sort_gb: 0.7,
            db_sort_gb: 12.0 * 0.045,
        }
    }

    #[test]
    fn metaspace_family_has_the_canonical_shape() {
        let w = metaspace(&brain_params());
        w.validate().unwrap();
        assert_eq!(w.stages.len(), 9);
        assert_eq!(w.stages[3].name, "db-segment");
        assert_eq!(w.stages[3].tasks, 32);
        // Two roots (dataset + database branches), annotate joins both.
        let roots: Vec<usize> = w
            .edges
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_empty())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(roots, vec![0, 2]);
        assert_eq!(w.edges[5].len(), 2);
    }

    #[test]
    fn every_family_validates_and_round_trips() {
        let brain = brain_params();
        for w in [
            metaspace(&brain),
            ml_pipeline(),
            montage(),
            terasort("terasort-small", 5.0),
            terasort("terasort-large", 50.0),
        ] {
            w.validate().unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let back = crate::dsl::parse(&crate::dsl::emit(&w))
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert_eq!(back, w, "{} drifts through the DSL", w.name);
        }
    }

    #[test]
    fn ml_pipeline_is_training_dominated() {
        let w = ml_pipeline();
        let train = w.stages.iter().find(|s| s.name == "train").unwrap();
        assert!(train.total_cpu_secs() > 0.5 * w.total_cpu_secs());
    }

    #[test]
    fn montage_fans_wide_then_narrow() {
        let w = montage();
        let tasks: Vec<usize> = w.stages.iter().map(|s| s.tasks).collect();
        let max = *tasks.iter().max().unwrap();
        let min = *tasks.iter().min().unwrap();
        assert!(max / min >= 30, "fan ratio {max}/{min}");
        // The diamond: background depends on both project and bg-model.
        assert_eq!(w.edges[3].len(), 2);
    }

    #[test]
    fn terasort_scales_keep_the_exchange_dominant() {
        for gb in [5.0, 20.0, 50.0] {
            let w = terasort("t", gb);
            let sort = &w.stages[1];
            match sort.kind {
                StageKind::Stateful { exchange_gb } => assert_eq!(exchange_gb, gb),
                _ => panic!("sort must be stateful"),
            }
            assert!(sort.total_cpu_secs() > 0.5 * w.total_cpu_secs(), "{gb}");
        }
    }
}
