//! Core workload types: stages, edges, the [`Workload`] graph,
//! validation and deterministic scaling.

use std::fmt;

use serverful::{fan_in_range, FanIn};

/// A dependency of one stage on an earlier stage, with the fan-in shape
/// the DAG scheduler uses to release downstream partitions: one-to-one
/// for map-chained stages (partition `p` only needs its own upstream
/// block), all-to-all for sort/segmentation shuffles (every downstream
/// partition needs the whole upstream stage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageEdge {
    /// Index of the upstream stage in the stage list.
    pub from: usize,
    /// Fan-in shape of the dependency.
    pub fan_in: FanIn,
}

impl StageEdge {
    /// A partition-wise edge from stage `from`.
    pub fn one_to_one(from: usize) -> StageEdge {
        StageEdge { from, fan_in: FanIn::OneToOne }
    }

    /// A shuffle edge from stage `from`.
    pub fn all_to_all(from: usize) -> StageEdge {
        StageEdge { from, fan_in: FanIn::AllToAll }
    }
}

/// How a stage moves data.
#[derive(Debug, Clone, PartialEq)]
pub enum StageKind {
    /// Embarrassingly parallel: tasks read their input slice, compute,
    /// write their output. Reads/writes spread across this many
    /// top-level storage prefixes.
    Stateless {
        /// Distinct top-level prefixes the reads spread over.
        read_spread: usize,
        /// Distinct top-level prefixes the writes spread over.
        write_spread: usize,
    },
    /// Sort/partition: an all-to-all exchange of `exchange_gb`. On cloud
    /// functions the exchange crosses object storage (one contended
    /// prefix); on the serverful backend it stays in the master VM's
    /// memory; on the cluster it crosses the executors' NICs.
    Stateful {
        /// Total bytes exchanged all-to-all, GB.
        exchange_gb: f64,
    },
}

/// One pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Stage name.
    pub name: String,
    /// Parallel tasks (a stage's elasticity bar height).
    pub tasks: usize,
    /// CPU-seconds per task.
    pub cpu_secs_per_task: f64,
    /// MB each task reads from object storage.
    pub read_mb_per_task: f64,
    /// MB each task writes to object storage.
    pub write_mb_per_task: f64,
    /// Data-movement behaviour.
    pub kind: StageKind,
}

impl Stage {
    /// Whether the stage is a stateful operation.
    pub fn is_stateful(&self) -> bool {
        matches!(self.kind, StageKind::Stateful { .. })
    }

    /// Total CPU-seconds across tasks.
    pub fn total_cpu_secs(&self) -> f64 {
        self.tasks as f64 * self.cpu_secs_per_task
    }
}

/// A validation failure: why a [`Workload`] is not schedulable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError(pub String);

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid workload: {}", self.0)
    }
}

impl std::error::Error for ValidateError {}

/// Floors applied by [`Workload::scaled_with`] so a down-scaled
/// workload stays schedulable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleOptions {
    /// Minimum tasks any scaled stage keeps (clamped to at least 1 —
    /// a zero-task stage can never be released, so no scale may produce
    /// one).
    pub min_tasks: usize,
    /// Minimum exchange volume (GB) any scaled stateful stage keeps.
    pub min_exchange_gb: f64,
}

impl Default for ScaleOptions {
    fn default() -> Self {
        ScaleOptions { min_tasks: 1, min_exchange_gb: 0.005 }
    }
}

/// A named stage-DAG workload description: the stage list plus one
/// dependency list per stage, aligned index-for-index.
///
/// Construct via [`Workload::builder`], [`crate::dsl::parse`], or a
/// bundled family in [`crate::families`]/[`crate::catalog`]; check
/// with [`Workload::validate`] before compiling it to an executor DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Workload name (a single whitespace-free token).
    pub name: String,
    /// The stages, in topological order.
    pub stages: Vec<Stage>,
    /// Dependencies of each stage, aligned with `stages`. Entry `i`
    /// lists the edges *into* stage `i`; an empty entry makes the stage
    /// a root. Every `from` must be `< i`.
    pub edges: Vec<Vec<StageEdge>>,
}

fn token_ok(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_ascii_graphic() && c != '#')
}

impl Workload {
    /// Starts a [`WorkloadBuilder`] with the given name.
    pub fn builder(name: impl Into<String>) -> WorkloadBuilder {
        WorkloadBuilder {
            name: name.into(),
            stages: Vec::new(),
            deps: Vec::new(),
        }
    }

    /// Checks the description is schedulable: topological (acyclic)
    /// edges, in-bounds fan-in ranges for every downstream partition,
    /// unique token-safe names, and sane resource numbers.
    pub fn validate(&self) -> Result<(), ValidateError> {
        let err = |m: String| Err(ValidateError(m));
        if !token_ok(&self.name) {
            return err(format!(
                "workload name {:?} must be a non-empty token of printable ASCII without spaces or '#'",
                self.name
            ));
        }
        if self.stages.is_empty() {
            return err("workload has no stages".into());
        }
        if self.edges.len() != self.stages.len() {
            return err(format!(
                "{} stages but {} edge lists; they must align index-for-index",
                self.stages.len(),
                self.edges.len()
            ));
        }
        for (i, s) in self.stages.iter().enumerate() {
            if !token_ok(&s.name) {
                return err(format!("stage {i} name {:?} is not a valid token", s.name));
            }
            if self.stages[..i].iter().any(|p| p.name == s.name) {
                return err(format!("duplicate stage name {:?}", s.name));
            }
            if s.tasks == 0 {
                return err(format!("stage {:?} has zero tasks", s.name));
            }
            for (label, v) in [
                ("cpu_secs", s.cpu_secs_per_task),
                ("read_mb", s.read_mb_per_task),
                ("write_mb", s.write_mb_per_task),
            ] {
                if !v.is_finite() || v < 0.0 {
                    return err(format!("stage {:?} {label} = {v} (must be finite and >= 0)", s.name));
                }
            }
            match s.kind {
                StageKind::Stateless { read_spread, write_spread } => {
                    if read_spread == 0 || write_spread == 0 {
                        return err(format!("stage {:?} has a zero storage spread", s.name));
                    }
                }
                StageKind::Stateful { exchange_gb } => {
                    if !exchange_gb.is_finite() || exchange_gb <= 0.0 {
                        return err(format!(
                            "stage {:?} exchange_gb = {exchange_gb} (must be finite and > 0)",
                            s.name
                        ));
                    }
                }
            }
        }
        for (i, deps) in self.edges.iter().enumerate() {
            for (d, e) in deps.iter().enumerate() {
                if e.from >= i {
                    return err(format!(
                        "edge into stage {:?} from index {} is not topological (must come from an earlier stage)",
                        self.stages[i].name, e.from
                    ));
                }
                if deps[..d].iter().any(|p| p.from == e.from) {
                    return err(format!(
                        "stage {:?} has duplicate edges from {:?}",
                        self.stages[i].name, self.stages[e.from].name
                    ));
                }
                // Fan-in arity: every downstream partition's upstream
                // range must stay inside the upstream stage.
                let up = self.stages[e.from].tasks;
                for t in 0..self.stages[i].tasks {
                    let r = fan_in_range(e.fan_in, up, self.stages[i].tasks, t);
                    if r.end > up {
                        return err(format!(
                            "edge {:?} -> {:?}: partition {t} needs upstream range {:?} but upstream has {up} tasks",
                            self.stages[e.from].name, self.stages[i].name, r
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Down-scales the workload with default floors (see
    /// [`ScaleOptions::default`]): task counts and exchange volumes
    /// multiplied by `scale`, per-task work unchanged, and no stage
    /// ever rounding below one task.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < scale <= 1`.
    pub fn scaled(&self, scale: f64) -> Workload {
        self.scaled_with(scale, &ScaleOptions::default())
    }

    /// Down-scales the workload with explicit floors.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < scale <= 1`.
    pub fn scaled_with(&self, scale: f64, opts: &ScaleOptions) -> Workload {
        assert!(
            scale > 0.0 && scale <= 1.0,
            "scale must be in (0, 1], got {scale}"
        );
        let min_tasks = opts.min_tasks.max(1);
        let stages = self
            .stages
            .iter()
            .cloned()
            .map(|mut s| {
                s.tasks = ((s.tasks as f64 * scale).round() as usize).max(min_tasks);
                if let StageKind::Stateful { exchange_gb } = s.kind {
                    s.kind = StageKind::Stateful {
                        exchange_gb: (exchange_gb * scale).max(opts.min_exchange_gb),
                    };
                }
                s
            })
            .collect();
        Workload {
            name: self.name.clone(),
            stages,
            edges: self.edges.clone(),
        }
    }

    /// The edges flattened to `(from, to)` stage-index pairs, in
    /// downstream order — the shape the telemetry report helpers
    /// (`stage_overlaps`, `critical_path`) consume.
    pub fn edge_pairs(&self) -> Vec<(usize, usize)> {
        self.edges
            .iter()
            .enumerate()
            .flat_map(|(to, deps)| deps.iter().map(move |e| (e.from, to)))
            .collect()
    }

    /// Total CPU-seconds across all stages.
    pub fn total_cpu_secs(&self) -> f64 {
        self.stages.iter().map(Stage::total_cpu_secs).sum()
    }
}

/// Incrementally builds a [`Workload`], resolving dependency names to
/// stage indices at [`WorkloadBuilder::build`] time.
///
/// # Example
///
/// ```
/// use serverful::FanIn;
/// use workload::{Stage, StageKind, Workload};
///
/// let w = Workload::builder("toy")
///     .stage(
///         Stage {
///             name: "gen".into(),
///             tasks: 4,
///             cpu_secs_per_task: 1.0,
///             read_mb_per_task: 0.0,
///             write_mb_per_task: 64.0,
///             kind: StageKind::Stateless { read_spread: 4, write_spread: 4 },
///         },
///         &[],
///     )
///     .stage(
///         Stage {
///             name: "sort".into(),
///             tasks: 4,
///             cpu_secs_per_task: 2.0,
///             read_mb_per_task: 0.0,
///             write_mb_per_task: 0.0,
///             kind: StageKind::Stateful { exchange_gb: 0.25 },
///         },
///         &[("gen", FanIn::AllToAll)],
///     )
///     .build()
///     .unwrap();
/// assert_eq!(w.stages.len(), 2);
/// assert_eq!(w.edges[1][0].from, 0);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    name: String,
    stages: Vec<Stage>,
    deps: Vec<Vec<(String, FanIn)>>,
}

impl WorkloadBuilder {
    /// Appends a stage with dependencies on earlier stages by name.
    pub fn stage(mut self, stage: Stage, deps: &[(&str, FanIn)]) -> Self {
        self.stages.push(stage);
        self.deps
            .push(deps.iter().map(|&(n, f)| (n.to_owned(), f)).collect());
        self
    }

    /// Resolves dependency names and validates the finished workload.
    pub fn build(self) -> Result<Workload, ValidateError> {
        let mut edges = Vec::with_capacity(self.stages.len());
        for deps in &self.deps {
            let mut list = Vec::with_capacity(deps.len());
            for (name, fan_in) in deps {
                let from = self
                    .stages
                    .iter()
                    .position(|s| &s.name == name)
                    .ok_or_else(|| {
                        ValidateError(format!("dependency on unknown stage {name:?}"))
                    })?;
                list.push(StageEdge { from, fan_in: *fan_in });
            }
            edges.push(list);
        }
        let w = Workload {
            name: self.name,
            stages: self.stages,
            edges,
        };
        w.validate()?;
        Ok(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stateless(name: &str, tasks: usize) -> Stage {
        Stage {
            name: name.into(),
            tasks,
            cpu_secs_per_task: 1.0,
            read_mb_per_task: 1.0,
            write_mb_per_task: 1.0,
            kind: StageKind::Stateless { read_spread: 2, write_spread: 2 },
        }
    }

    fn chain(n: usize) -> Workload {
        let w = Workload {
            name: "chain".into(),
            stages: (0..n).map(|i| stateless(&format!("s{i}"), 4)).collect(),
            edges: (0..n)
                .map(|i| {
                    if i == 0 {
                        vec![]
                    } else {
                        vec![StageEdge::one_to_one(i - 1)]
                    }
                })
                .collect(),
        };
        w.validate().expect("chain is valid");
        w
    }

    #[test]
    fn builder_resolves_names_and_validates() {
        let w = Workload::builder("toy")
            .stage(stateless("a", 4), &[])
            .stage(stateless("b", 4), &[("a", FanIn::OneToOne)])
            .stage(stateless("c", 2), &[("b", FanIn::AllToAll)])
            .build()
            .unwrap();
        assert_eq!(w.edges[1], vec![StageEdge::one_to_one(0)]);
        assert_eq!(w.edge_pairs(), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn unknown_dependency_is_an_error() {
        let e = Workload::builder("w")
            .stage(stateless("a", 1), &[("ghost", FanIn::AllToAll)])
            .build()
            .unwrap_err();
        assert!(e.0.contains("ghost"), "{e}");
    }

    #[test]
    fn forward_edges_are_rejected() {
        let mut w = chain(2);
        w.edges[0] = vec![StageEdge::all_to_all(1)];
        w.edges[1] = vec![];
        assert!(w.validate().unwrap_err().0.contains("not topological"));
    }

    #[test]
    fn zero_task_stages_are_rejected() {
        let mut w = chain(2);
        w.stages[1].tasks = 0;
        assert!(w.validate().unwrap_err().0.contains("zero tasks"));
    }

    #[test]
    fn non_positive_exchange_is_rejected() {
        let mut w = chain(2);
        w.stages[1].kind = StageKind::Stateful { exchange_gb: 0.0 };
        assert!(w.validate().unwrap_err().0.contains("exchange_gb"));
    }

    #[test]
    fn duplicate_stage_names_are_rejected() {
        let mut w = chain(2);
        w.stages[1].name = "s0".into();
        assert!(w.validate().unwrap_err().0.contains("duplicate stage name"));
    }

    #[test]
    fn duplicate_edges_are_rejected() {
        let mut w = chain(2);
        w.edges[1] = vec![StageEdge::one_to_one(0), StageEdge::all_to_all(0)];
        assert!(w.validate().unwrap_err().0.contains("duplicate edges"));
    }

    #[test]
    fn tiny_scales_never_drop_to_zero_tasks() {
        // The regression the scaler floor exists for: rounding a small
        // stage at a tiny scale used to be able to produce zero tasks.
        let mut w = chain(3);
        w.stages[0].tasks = 1;
        w.stages[1].kind = StageKind::Stateful { exchange_gb: 1.0 };
        let s = w.scaled(0.001);
        assert!(s.stages.iter().all(|s| s.tasks >= 1), "{s:?}");
        s.validate().expect("scaled workload stays valid");
        match s.stages[1].kind {
            StageKind::Stateful { exchange_gb } => assert!(exchange_gb >= 0.005),
            _ => unreachable!(),
        }
    }

    #[test]
    fn scaling_respects_explicit_floors() {
        let w = chain(2);
        let s = w.scaled_with(
            0.01,
            &ScaleOptions { min_tasks: 2, min_exchange_gb: 0.5 },
        );
        assert!(s.stages.iter().all(|s| s.tasks >= 2));
        // min_tasks = 0 still floors at 1.
        let s1 = w.scaled_with(0.01, &ScaleOptions { min_tasks: 0, min_exchange_gb: 0.005 });
        assert!(s1.stages.iter().all(|s| s.tasks >= 1));
    }

    #[test]
    #[should_panic(expected = "scale must be in (0, 1]")]
    fn zero_scale_panics() {
        chain(2).scaled(0.0);
    }
}
