//! Declarative stage-DAG workload descriptions.
//!
//! The executors, planner and fleet simulator are workload-generic —
//! they consume a list of [`Stage`]s plus dependency [`StageEdge`]s and
//! schedule the resulting task DAG on any backend. This crate owns the
//! *description* side of that contract:
//!
//! - [`Workload`]: a named stage graph — stages with task counts,
//!   CPU-seconds, bytes in/out and data-movement kind, plus one edge
//!   list per stage ([`serverful::FanIn::OneToOne`] map chains,
//!   [`serverful::FanIn::AllToAll`] shuffles, multiple roots, joins).
//! - Validation ([`Workload::validate`]): acyclicity (edges must point
//!   at earlier stages), fan-in arity (every released partition's
//!   upstream range stays in bounds), and resource sanity (no zero-task
//!   stages, finite non-negative volumes, positive exchanges).
//! - Deterministic scaling ([`Workload::scaled`]): task counts and
//!   exchange volumes multiplied down with explicit floors, so smoke
//!   tests and fleet tenants run the same *shape* at tractable volume.
//! - A line-oriented text DSL ([`dsl::parse`] / [`dsl::emit`]) whose
//!   canonical form round-trips exactly, plus a [`WorkloadBuilder`] for
//!   programmatic construction.
//! - Bundled families ([`families`], [`catalog`]): the paper's
//!   METASPACE annotation pipeline expressed as a workload description,
//!   an ML data-prep + training pipeline, a Montage-like wide
//!   fan-out/fan-in mosaic workflow, and a shuffle-heavy terasort
//!   family at three scales.
//!
//! Downstream, `metaspace::runner` compiles any valid workload to the
//! executors' stage DAG (`run_workload`), the planner searches
//! deployment plans over it, and the fleet simulator replays it under
//! multi-tenant traffic.

#![warn(missing_docs)]

pub mod catalog;
pub mod dsl;
pub mod families;
mod spec;

pub use dsl::{emit, parse, DslError};
pub use spec::{
    ScaleOptions, Stage, StageEdge, StageKind, ValidateError, Workload, WorkloadBuilder,
};
