//! Retry, backoff and straggler policy.
//!
//! One [`RetryPolicy`] governs every recovery mechanism the executor
//! runs: re-invoking failed sandboxes, re-issuing faulted storage
//! requests, requeueing tasks of lost workers, and speculatively
//! re-dispatching stragglers. Backoff jitter is derived from a hash of
//! the attempt and a caller salt — not from an RNG — so retry schedules
//! are deterministic for a fixed simulation seed.

/// Exponential-backoff retry policy with deterministic jitter.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per unit of work, including the first (`>= 1`).
    pub max_attempts: u32,
    /// Backoff before the second attempt, seconds.
    pub base_backoff_secs: f64,
    /// Multiplier applied per further attempt.
    pub backoff_multiplier: f64,
    /// Upper bound on the un-jittered backoff, seconds.
    pub max_backoff_secs: f64,
    /// Fraction of the backoff added as deterministic jitter, in
    /// `[0, 1)`; avoids retry stampedes without sacrificing replay.
    pub jitter_frac: f64,
    /// Wall-clock seconds after dispatch at which the monitor abandons
    /// a task attempt and speculatively re-dispatches it (FaaS backend).
    /// `None` disables straggler handling — the default, so runs
    /// without faults replay byte-identically.
    pub straggler_timeout_secs: Option<f64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_secs: 0.5,
            backoff_multiplier: 2.0,
            max_backoff_secs: 20.0,
            jitter_frac: 0.1,
            straggler_timeout_secs: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no stragglers).
    pub fn no_retries() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// True when another attempt is allowed after `attempts_made`
    /// attempts have already run.
    pub fn allows_retry(&self, attempts_made: u32) -> bool {
        attempts_made < self.max_attempts
    }

    /// The un-jittered backoff after `attempt` failed attempts
    /// (`attempt >= 1`): `min(base * multiplier^(attempt-1), cap)`.
    /// Monotone non-decreasing in `attempt` and bounded by
    /// `max_backoff_secs`.
    pub fn backoff_secs(&self, attempt: u32) -> f64 {
        assert!(attempt >= 1, "backoff is defined after the first attempt");
        let exp = self
            .base_backoff_secs
            .max(0.0)
            * self.backoff_multiplier.max(1.0).powi(attempt as i32 - 1);
        exp.min(self.max_backoff_secs)
    }

    /// The backoff with deterministic jitter: up to `jitter_frac` of
    /// the base value, derived from a hash of `(salt, attempt)`. Same
    /// inputs, same delay — always.
    pub fn jittered_backoff_secs(&self, attempt: u32, salt: u64) -> f64 {
        let base = self.backoff_secs(attempt);
        let frac = self.jitter_frac.clamp(0.0, 1.0);
        if frac == 0.0 {
            return base;
        }
        let unit = hash2(salt, attempt as u64) as f64 / u64::MAX as f64;
        base * (1.0 + frac * unit)
    }
}

/// Stateless 64-bit mix of two words (splitmix64 finalizer over their
/// combination); the source of deterministic jitter.
fn hash2(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_geometrically_until_the_cap() {
        let p = RetryPolicy::default();
        assert!((p.backoff_secs(1) - 0.5).abs() < 1e-12);
        assert!((p.backoff_secs(2) - 1.0).abs() < 1e-12);
        assert!((p.backoff_secs(3) - 2.0).abs() < 1e-12);
        assert!((p.backoff_secs(30) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for attempt in 1..10 {
            for salt in 0..50u64 {
                let a = p.jittered_backoff_secs(attempt, salt);
                let b = p.jittered_backoff_secs(attempt, salt);
                assert_eq!(a, b);
                let base = p.backoff_secs(attempt);
                assert!(a >= base);
                assert!(a <= base * (1.0 + p.jitter_frac) + 1e-12);
            }
        }
    }

    #[test]
    fn no_retries_policy_allows_exactly_one_attempt() {
        let p = RetryPolicy::no_retries();
        assert!(p.allows_retry(0));
        assert!(!p.allows_retry(1));
    }

    #[test]
    fn zero_jitter_returns_the_base_backoff() {
        let p = RetryPolicy {
            jitter_frac: 0.0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.jittered_backoff_secs(2, 99), p.backoff_secs(2));
    }
}
