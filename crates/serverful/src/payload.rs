//! Values passed between the client and logical functions.
//!
//! [`Payload`] is the framework's value type: task inputs, task results
//! and [`CloudObjectRef`]s all travel as payloads. Payloads are encoded
//! with a small self-describing binary codec (no serde *format* crate is
//! available offline, and the format is trivial: a tag byte followed by
//! little-endian fields). Round-tripping is property-tested.

use bytes::Bytes;

use crate::cloudobject::CloudObjectRef;
use crate::error::ExecError;

/// A value the framework can ship between components.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Nothing (a side-effect-only function).
    Unit,
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A UTF-8 string.
    Str(String),
    /// Raw bytes.
    Bytes(Bytes),
    /// A reference to an object in cloud storage.
    CloudObject(CloudObjectRef),
    /// An ordered collection.
    List(Vec<Payload>),
    /// Size-only stand-in for large synthetic data (paper-scale runs).
    Opaque {
        /// Logical size in bytes.
        size: u64,
    },
}

const TAG_UNIT: u8 = 0;
const TAG_U64: u8 = 1;
const TAG_F64: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_BYTES: u8 = 4;
const TAG_COBJ: u8 = 5;
const TAG_LIST: u8 = 6;
const TAG_OPAQUE: u8 = 7;

impl Payload {
    /// The `u64` inside, if this is [`Payload::U64`].
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Payload::U64(x) => Some(*x),
            _ => None,
        }
    }

    /// The `f64` inside, if this is [`Payload::F64`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Payload::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// The string inside, if this is [`Payload::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Payload::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bytes inside, if this is [`Payload::Bytes`].
    pub fn as_bytes(&self) -> Option<&Bytes> {
        match self {
            Payload::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// The cloud-object reference inside, if any.
    pub fn as_cloudobject(&self) -> Option<&CloudObjectRef> {
        match self {
            Payload::CloudObject(r) => Some(r),
            _ => None,
        }
    }

    /// The list inside, if this is [`Payload::List`].
    pub fn as_list(&self) -> Option<&[Payload]> {
        match self {
            Payload::List(items) => Some(items),
            _ => None,
        }
    }

    /// The *logical data size* this payload stands for: for most variants
    /// the encoded size, but for cloud-object references the size of the
    /// referenced object, and for opaque payloads the declared size. The
    /// sizing policy uses this to right-size VMs from task inputs.
    pub fn data_size(&self) -> u64 {
        match self {
            Payload::Unit => 0,
            Payload::U64(_) | Payload::F64(_) => 8,
            Payload::Str(s) => s.len() as u64,
            Payload::Bytes(b) => b.len() as u64,
            Payload::CloudObject(r) => r.size,
            Payload::List(items) => items.iter().map(Payload::data_size).sum(),
            Payload::Opaque { size } => *size,
        }
    }

    /// Encodes to the wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Payload::Unit => out.push(TAG_UNIT),
            Payload::U64(x) => {
                out.push(TAG_U64);
                out.extend_from_slice(&x.to_le_bytes());
            }
            Payload::F64(x) => {
                out.push(TAG_F64);
                out.extend_from_slice(&x.to_le_bytes());
            }
            Payload::Str(s) => {
                out.push(TAG_STR);
                encode_slice(out, s.as_bytes());
            }
            Payload::Bytes(b) => {
                out.push(TAG_BYTES);
                encode_slice(out, b);
            }
            Payload::CloudObject(r) => {
                out.push(TAG_COBJ);
                encode_slice(out, r.bucket.as_bytes());
                encode_slice(out, r.key.as_bytes());
                out.extend_from_slice(&r.size.to_le_bytes());
            }
            Payload::List(items) => {
                out.push(TAG_LIST);
                out.extend_from_slice(&(items.len() as u64).to_le_bytes());
                for item in items {
                    item.encode_into(out);
                }
            }
            Payload::Opaque { size } => {
                out.push(TAG_OPAQUE);
                out.extend_from_slice(&size.to_le_bytes());
            }
        }
    }

    /// Decodes from the wire format.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Decode`] on truncated or malformed input, or
    /// if trailing bytes remain.
    pub fn decode(data: &[u8]) -> Result<Payload, ExecError> {
        let mut cursor = Cursor { data, pos: 0 };
        let value = decode_one(&mut cursor)?;
        if cursor.pos != data.len() {
            return Err(ExecError::Decode(format!(
                "{} trailing bytes after payload",
                data.len() - cursor.pos
            )));
        }
        Ok(value)
    }
}

fn encode_slice(out: &mut Vec<u8>, s: &[u8]) {
    out.extend_from_slice(&(s.len() as u64).to_le_bytes());
    out.extend_from_slice(s);
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ExecError> {
        if self.pos + n > self.data.len() {
            return Err(ExecError::Decode("truncated payload".into()));
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ExecError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, ExecError> {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(buf))
    }

    fn len(&mut self) -> Result<usize, ExecError> {
        let n = self.u64()?;
        usize::try_from(n).map_err(|_| ExecError::Decode("length overflow".into()))
    }
}

fn decode_one(c: &mut Cursor<'_>) -> Result<Payload, ExecError> {
    match c.u8()? {
        TAG_UNIT => Ok(Payload::Unit),
        TAG_U64 => Ok(Payload::U64(c.u64()?)),
        TAG_F64 => Ok(Payload::F64(f64::from_bits(c.u64()?))),
        TAG_STR => {
            let n = c.len()?;
            let bytes = c.take(n)?;
            let s = std::str::from_utf8(bytes)
                .map_err(|e| ExecError::Decode(format!("invalid UTF-8: {e}")))?;
            Ok(Payload::Str(s.to_owned()))
        }
        TAG_BYTES => {
            let n = c.len()?;
            Ok(Payload::Bytes(Bytes::copy_from_slice(c.take(n)?)))
        }
        TAG_COBJ => {
            let bn = c.len()?;
            let bucket = String::from_utf8(c.take(bn)?.to_vec())
                .map_err(|e| ExecError::Decode(format!("invalid UTF-8: {e}")))?;
            let kn = c.len()?;
            let key = String::from_utf8(c.take(kn)?.to_vec())
                .map_err(|e| ExecError::Decode(format!("invalid UTF-8: {e}")))?;
            let size = c.u64()?;
            Ok(Payload::CloudObject(CloudObjectRef { bucket, key, size }))
        }
        TAG_LIST => {
            let n = c.len()?;
            // Guard against hostile lengths: each element takes >= 1 byte.
            if n > c.data.len() - c.pos {
                return Err(ExecError::Decode("list length exceeds input".into()));
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_one(c)?);
            }
            Ok(Payload::List(items))
        }
        TAG_OPAQUE => Ok(Payload::Opaque { size: c.u64()? }),
        tag => Err(ExecError::Decode(format!("unknown payload tag {tag}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(p: &Payload) {
        let encoded = p.encode();
        let decoded = Payload::decode(&encoded).expect("decode");
        assert_eq!(&decoded, p);
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(&Payload::Unit);
        roundtrip(&Payload::U64(u64::MAX));
        roundtrip(&Payload::F64(-1.25e300));
        roundtrip(&Payload::Str("héllo wörld".into()));
        roundtrip(&Payload::Bytes(Bytes::from(vec![0u8, 255, 7])));
        roundtrip(&Payload::Opaque { size: 1 << 40 });
    }

    #[test]
    fn cloudobject_roundtrips() {
        roundtrip(&Payload::CloudObject(CloudObjectRef {
            bucket: "b".into(),
            key: "jobs/3/result".into(),
            size: 12345,
        }));
    }

    #[test]
    fn nested_list_roundtrips() {
        roundtrip(&Payload::List(vec![
            Payload::U64(1),
            Payload::List(vec![Payload::Str("x".into()), Payload::Unit]),
            Payload::F64(2.5),
        ]));
    }

    #[test]
    fn truncated_input_errors() {
        let enc = Payload::U64(7).encode();
        assert!(Payload::decode(&enc[..enc.len() - 1]).is_err());
        assert!(Payload::decode(&[]).is_err());
    }

    #[test]
    fn trailing_bytes_error() {
        let mut enc = Payload::Unit.encode();
        enc.push(0);
        assert!(Payload::decode(&enc).is_err());
    }

    #[test]
    fn unknown_tag_errors() {
        assert!(Payload::decode(&[200]).is_err());
    }

    #[test]
    fn hostile_list_length_rejected() {
        let mut enc = vec![TAG_LIST];
        enc.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(Payload::decode(&enc).is_err());
    }

    #[test]
    fn data_size_reflects_references() {
        let p = Payload::List(vec![
            Payload::CloudObject(CloudObjectRef {
                bucket: "b".into(),
                key: "k".into(),
                size: 1_000_000,
            }),
            Payload::U64(3),
        ]);
        assert_eq!(p.data_size(), 1_000_008);
    }

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Payload::U64(3).as_u64(), Some(3));
        assert_eq!(Payload::F64(1.5).as_f64(), Some(1.5));
        assert_eq!(Payload::Str("a".into()).as_str(), Some("a"));
        assert!(Payload::Unit.as_u64().is_none());
        assert!(Payload::List(vec![]).as_list().unwrap().is_empty());
    }
}
