//! Master fault tolerance for the serverful backend.
//!
//! The paper's standalone backend concentrates orchestration on one
//! master VM (task queue, worker control, job monitor) — a single
//! point of failure its design simply assumes away. This module makes
//! that assumption explicit and optional via [`RecoveryMode`]:
//!
//! * [`RecoveryMode::Protected`] — the paper's stance. The master host
//!   is exempted from injected VM loss; if it is killed anyway (the
//!   chaos suite's forced kill), in-flight jobs stall and fail.
//! * [`RecoveryMode::Checkpointed`] — the master periodically
//!   snapshots its task queue, completion counters and worker registry
//!   to object storage ([`MasterCheckpoint`], epoch-versioned). On
//!   master loss a replacement boots, fetches the snapshot, re-adopts
//!   live workers by epoch handshake and re-dispatches only the tasks
//!   whose acknowledgement died with the old master.
//! * [`RecoveryMode::Decentralized`] — continuation-passing in the
//!   unum style: task bundles and per-task completion counters live in
//!   object storage, and a completing task triggers its DAG successors
//!   directly from the fan-in metadata. The master never enters the
//!   data path, so losing it after submission is a non-event.
//!
//! The executor/environment wiring lives in `crate::env`; recovery
//! activity is counted in [`telemetry::RecoveryStats`].

use std::fmt;

use crate::error::ExecError;
use crate::payload::Payload;

pub use telemetry::RecoveryStats;

/// What happens when the serverful master VM is lost mid-job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum RecoveryMode {
    /// The master is a protected host (the paper's assumption): the
    /// fault injector spares it, and a forced kill strands the job.
    #[default]
    Protected,
    /// Periodic master-state checkpoints to object storage; a
    /// replacement master replays the snapshot and re-adopts workers.
    Checkpointed,
    /// No master in the data path: storage-backed dispatch and
    /// completion counters, successors triggered by finishing tasks.
    Decentralized,
}

impl RecoveryMode {
    /// All modes, in sweep order.
    pub const ALL: [RecoveryMode; 3] = [
        RecoveryMode::Protected,
        RecoveryMode::Checkpointed,
        RecoveryMode::Decentralized,
    ];

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryMode::Protected => "protected",
            RecoveryMode::Checkpointed => "checkpointed",
            RecoveryMode::Decentralized => "decentralized",
        }
    }

    /// Plan-key suffix. Empty for the default mode so every existing
    /// plan key stays byte-identical.
    pub fn key_suffix(self) -> &'static str {
        match self {
            RecoveryMode::Protected => "",
            RecoveryMode::Checkpointed => ":ck",
            RecoveryMode::Decentralized => ":dc",
        }
    }
}

impl fmt::Display for RecoveryMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The storage key a pool's master checkpoints under.
pub fn checkpoint_key(pool: usize) -> String {
    format!("recovery/pool-{pool:03}/checkpoint")
}

/// One job's entry in a [`MasterCheckpoint`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobCheckpoint {
    /// The job id.
    pub job: u64,
    /// Task indices the master has released for dispatch.
    pub released: Vec<u64>,
    /// Task indices whose results the master has acknowledged.
    pub acked: Vec<u64>,
}

/// A snapshot of the master's orchestration state: active jobs with
/// their release/acknowledgement frontiers, plus the worker registry's
/// epochs (the handshake a replacement master re-adopts workers with).
///
/// Serialised through the framework's own [`Payload`] wire format, so
/// the checkpoint PUT/GET pays realistic, state-proportional storage
/// I/O.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MasterCheckpoint {
    /// Monotonic snapshot sequence number (epoch-versioned).
    pub seq: u64,
    /// Epoch of each worker slot at snapshot time.
    pub worker_epochs: Vec<u64>,
    /// Per-active-job dispatch state.
    pub jobs: Vec<JobCheckpoint>,
}

impl MasterCheckpoint {
    /// Encodes the snapshot to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let jobs = self
            .jobs
            .iter()
            .map(|j| {
                Payload::List(vec![
                    Payload::U64(j.job),
                    Payload::List(j.released.iter().map(|t| Payload::U64(*t)).collect()),
                    Payload::List(j.acked.iter().map(|t| Payload::U64(*t)).collect()),
                ])
            })
            .collect();
        Payload::List(vec![
            Payload::U64(self.seq),
            Payload::List(
                self.worker_epochs
                    .iter()
                    .map(|e| Payload::U64(*e))
                    .collect(),
            ),
            Payload::List(jobs),
        ])
        .encode()
    }

    /// Decodes a snapshot from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Decode`] on malformed input.
    pub fn decode(data: &[u8]) -> Result<MasterCheckpoint, ExecError> {
        fn u64s(p: &Payload) -> Result<Vec<u64>, ExecError> {
            let Payload::List(items) = p else {
                return Err(ExecError::Decode("checkpoint list expected".into()));
            };
            items
                .iter()
                .map(|v| {
                    v.as_u64()
                        .ok_or_else(|| ExecError::Decode("checkpoint u64 expected".into()))
                })
                .collect()
        }
        let value = Payload::decode(data)?;
        let Payload::List(top) = &value else {
            return Err(ExecError::Decode("checkpoint envelope expected".into()));
        };
        let [seq, epochs, jobs] = top.as_slice() else {
            return Err(ExecError::Decode("checkpoint arity mismatch".into()));
        };
        let seq = seq
            .as_u64()
            .ok_or_else(|| ExecError::Decode("checkpoint seq expected".into()))?;
        let worker_epochs = u64s(epochs)?;
        let Payload::List(jobs) = jobs else {
            return Err(ExecError::Decode("checkpoint job list expected".into()));
        };
        let jobs = jobs
            .iter()
            .map(|j| {
                let Payload::List(parts) = j else {
                    return Err(ExecError::Decode("checkpoint job entry expected".into()));
                };
                let [job, released, acked] = parts.as_slice() else {
                    return Err(ExecError::Decode("checkpoint job arity mismatch".into()));
                };
                Ok(JobCheckpoint {
                    job: job
                        .as_u64()
                        .ok_or_else(|| ExecError::Decode("checkpoint job id expected".into()))?,
                    released: u64s(released)?,
                    acked: u64s(acked)?,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MasterCheckpoint {
            seq,
            worker_epochs,
            jobs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mode_is_protected_with_empty_key_suffix() {
        assert_eq!(RecoveryMode::default(), RecoveryMode::Protected);
        assert_eq!(RecoveryMode::Protected.key_suffix(), "");
        assert_eq!(RecoveryMode::Checkpointed.key_suffix(), ":ck");
        assert_eq!(RecoveryMode::Decentralized.key_suffix(), ":dc");
    }

    #[test]
    fn checkpoint_roundtrips_through_wire_bytes() {
        let ckpt = MasterCheckpoint {
            seq: 7,
            worker_epochs: vec![1, 1, 3],
            jobs: vec![
                JobCheckpoint {
                    job: 4,
                    released: vec![0, 1, 2, 5],
                    acked: vec![0, 2],
                },
                JobCheckpoint {
                    job: 9,
                    released: vec![],
                    acked: vec![],
                },
            ],
        };
        let bytes = ckpt.encode();
        assert!(!bytes.is_empty());
        assert_eq!(MasterCheckpoint::decode(&bytes).unwrap(), ckpt);
    }

    #[test]
    fn checkpoint_rejects_garbage() {
        assert!(MasterCheckpoint::decode(&[0xFF, 0x01, 0x02]).is_err());
    }

    #[test]
    fn checkpoint_keys_are_per_pool() {
        assert_ne!(checkpoint_key(0), checkpoint_key(1));
        assert!(checkpoint_key(0).starts_with("recovery/"));
    }
}
