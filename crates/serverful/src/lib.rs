//! The paper's contribution: a Lithops-style unified serverless
//! programming framework with **serverful backends**.
//!
//! A [`FunctionExecutor`] ports parallel function calls to a cloud
//! backend while keeping the developer agnostic about resource
//! management. The same `map` call runs on:
//!
//! * **cloud functions** ([`Backend::Faas`]) — one sandbox per logical
//!   function, monitored through object storage (the classic Lithops
//!   architecture); or
//! * **virtual machines** ([`Backend::Vm`]) — the paper's addition:
//!   the executor connects to a master that proactively provisions
//!   right-sized VMs, spawns one worker process per vCPU, distributes
//!   logical functions through a Redis-like KV store on the master, and
//!   automatically stops every instance when the job completes
//!   ("serverful execution performed in a serverless manner").
//!
//! Stages on different backends share data through [`CloudObjectRef`]s
//! over object storage, exactly as Listing 1 of the paper:
//!
//! ```
//! use serverful::{Backend, CloudEnv, ExecutorConfig, FunctionExecutor, Payload, ScriptTask};
//! use std::sync::Arc;
//!
//! let mut env = CloudEnv::new_default(7);
//! // Lambda execution.
//! let mut exec = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
//! let job = exec.map(
//!     &mut env,
//!     Arc::new(|input: &Payload| {
//!         let x = input.as_u64().expect("u64 input");
//!         ScriptTask::new().compute(0.5).finish_value(Payload::U64(x * 2)).boxed()
//!     }),
//!     vec![Payload::U64(1), Payload::U64(2), Payload::U64(3)],
//! );
//! let doubled = exec.get_result(&mut env, job).expect("job succeeds");
//! assert_eq!(doubled, vec![Payload::U64(2), Payload::U64(4), Payload::U64(6)]);
//! ```
//!
//! The crate is backed by the [`cloudsim`] substrate; all latencies,
//! contention and billing come from its calibrated models. The
//! orchestration core lives in the [`env`](mod@env) module tree:
//! [`CloudEnv`] pumps world notifications and hosts a deterministic
//! async kernel ([`simkernel::aio`]) on which the completion monitor,
//! retry re-arming and straggler speculation run as futures — see
//! `env/`'s submodule docs for the per-concern breakdown.

#![warn(missing_docs)]

pub mod cloudobject;
pub mod config;
pub mod dag;
pub mod dag_async;
pub mod env;
pub mod error;
pub mod executor;
pub mod job;
pub mod payload;
pub mod recovery;
pub mod retry;
pub mod sizing;
pub mod storage;
pub mod task;

pub use cloudobject::CloudObjectRef;
pub use config::{ExecMode, ExecutorConfig, StandaloneConfig};
pub use dag::{fan_in_range, Dag, DagNode, DagStats, Edge, ExecutionMode, FanIn, NodeStats};
pub use dag_async::run_dag_async;
pub use env::{CloudEnv, EnvEvent};
pub use error::ExecError;
pub use executor::{Backend, FunctionExecutor, JobHandle, MapOptions};
pub use payload::Payload;
pub use recovery::{RecoveryMode, RecoveryStats};
pub use retry::RetryPolicy;
pub use sizing::{BidPolicy, SizingPolicy};
pub use storage::Storage;
pub use task::{Action, ActionOutcome, ScriptTask, TaskLogic, TaskStep};
