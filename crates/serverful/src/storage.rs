//! Client-side storage facade and CloudObject helpers.
//!
//! Mirrors Lithops' `Storage` object (Listing 1): synchronous
//! `put_cloudobject` / `get_cloudobject` calls from the client that block
//! on (simulated) completion. Logical functions access storage through
//! [`Action`](crate::Action)s instead — their I/O is part of the timed,
//! contended path on their own host.

use cloudsim::{Notify, ObjectBody, OpId, OpOutcome};

use crate::cloudobject::CloudObjectRef;
use crate::env::CloudEnv;
use crate::error::ExecError;
use crate::payload::Payload;

/// A handle to the object storage service from the client's vantage
/// point.
#[derive(Debug, Clone)]
pub struct Storage {
    bucket: String,
    counter: std::cell::Cell<u64>,
}

impl Storage {
    /// Creates a facade writing CloudObjects into `bucket`.
    pub fn new(bucket: impl Into<String>) -> Self {
        Storage {
            bucket: bucket.into(),
            counter: std::cell::Cell::new(0),
        }
    }

    /// The bucket this facade targets.
    pub fn bucket(&self) -> &str {
        &self.bucket
    }

    /// Serialises a payload and uploads it as a fresh CloudObject,
    /// blocking until the upload completes.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Stalled`] if the simulation drains first.
    pub fn put_cloudobject(
        &self,
        env: &mut CloudEnv,
        payload: &Payload,
    ) -> Result<CloudObjectRef, ExecError> {
        let n = self.counter.get();
        self.counter.set(n + 1);
        let key = format!("cloudobjects/{n:08}");
        let body = match payload {
            // Opaque payloads stand in for large data: store size-only.
            Payload::Opaque { size } => ObjectBody::opaque(*size),
            other => ObjectBody::real(other.encode()),
        };
        let size = body.len();
        let client = env.world().client_host();
        let op = env
            .world_mut()
            .put_object(client, &self.bucket, &key, body);
        wait_op(env, op)?;
        Ok(CloudObjectRef::new(self.bucket.clone(), key, size))
    }

    /// Downloads and decodes a CloudObject, blocking until done.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::MissingObject`] if the ref is dangling, or a
    /// decode error for corrupt contents.
    pub fn get_cloudobject(
        &self,
        env: &mut CloudEnv,
        cobj: &CloudObjectRef,
    ) -> Result<Payload, ExecError> {
        let client = env.world().client_host();
        let op = env
            .world_mut()
            .get_object(client, &cobj.bucket, &cobj.key);
        match wait_op(env, op)? {
            OpOutcome::GetOk { body } => match body.bytes() {
                Some(bytes) => Payload::decode(bytes),
                None => Ok(Payload::Opaque { size: body.len() }),
            },
            OpOutcome::GetMissing => Err(ExecError::MissingObject {
                bucket: cobj.bucket.clone(),
                key: cobj.key.clone(),
            }),
            other => unreachable!("get yielded {other:?}"),
        }
    }

    /// Deletes a CloudObject, blocking until done.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Stalled`] if the simulation drains first.
    pub fn delete_cloudobject(
        &self,
        env: &mut CloudEnv,
        cobj: &CloudObjectRef,
    ) -> Result<(), ExecError> {
        let client = env.world().client_host();
        let op = env
            .world_mut()
            .delete_object(client, &cobj.bucket, &cobj.key);
        wait_op(env, op)?;
        Ok(())
    }
}

/// Pumps the world until `op` completes. Other notifications surfacing in
/// the meantime are dropped — client-blocking calls are only legal while
/// no job is in flight, which the framework's sequential client model
/// guarantees.
fn wait_op(env: &mut CloudEnv, op: OpId) -> Result<OpOutcome, ExecError> {
    let client = env.world().client_host();
    let _ = client;
    loop {
        match env.world_mut().step() {
            Some((_, Notify::Op { op: done, outcome })) if done == op => return Ok(outcome),
            Some(_) => continue,
            None => {
                return Err(ExecError::Stalled(format!(
                    "simulation drained waiting on {op}"
                )))
            }
        }
    }
}

/// Convenience: the host-facing bucket/key pair of a ref, for building
/// [`Action::Get`](crate::Action::Get)s inside task logic.
pub fn action_get(cobj: &CloudObjectRef) -> crate::task::Action {
    crate::task::Action::Get {
        bucket: cobj.bucket.clone(),
        key: cobj.key.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cloudobject_roundtrip_through_storage() {
        let mut env = CloudEnv::new_default(5);
        let storage = Storage::new("data");
        let payload = Payload::Str("hello".into());
        let cobj = storage.put_cloudobject(&mut env, &payload).unwrap();
        assert!(cobj.size > 0);
        let back = storage.get_cloudobject(&mut env, &cobj).unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn opaque_payloads_stay_opaque() {
        let mut env = CloudEnv::new_default(5);
        let storage = Storage::new("data");
        let payload = Payload::Opaque { size: 1 << 20 };
        let cobj = storage.put_cloudobject(&mut env, &payload).unwrap();
        assert_eq!(cobj.size, 1 << 20);
        let back = storage.get_cloudobject(&mut env, &cobj).unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn dangling_ref_reports_missing() {
        let mut env = CloudEnv::new_default(5);
        let storage = Storage::new("data");
        let cobj = CloudObjectRef::new("data", "nope", 1);
        match storage.get_cloudobject(&mut env, &cobj) {
            Err(ExecError::MissingObject { key, .. }) => assert_eq!(key, "nope"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn delete_removes_object() {
        let mut env = CloudEnv::new_default(5);
        let storage = Storage::new("data");
        let cobj = storage
            .put_cloudobject(&mut env, &Payload::U64(1))
            .unwrap();
        storage.delete_cloudobject(&mut env, &cobj).unwrap();
        assert!(matches!(
            storage.get_cloudobject(&mut env, &cobj),
            Err(ExecError::MissingObject { .. })
        ));
    }

    #[test]
    fn refs_get_distinct_keys() {
        let mut env = CloudEnv::new_default(5);
        let storage = Storage::new("data");
        let a = storage.put_cloudobject(&mut env, &Payload::U64(1)).unwrap();
        let b = storage.put_cloudobject(&mut env, &Payload::U64(2)).unwrap();
        assert_ne!(a.key, b.key);
    }
}
