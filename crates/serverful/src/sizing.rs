//! Input-size-driven instance sizing.
//!
//! The paper (§4.3): *"Accurately defining the memory requirements for
//! each input is a non-trivial challenge, as sorting is a memory-intensive
//! operation that consumes up to 2-3 times the data size. Our architecture
//! measures input size and selects the host instance type based on
//! empirically defined bounds."* [`SizingPolicy`] implements that rule
//! against the instance catalog.

use cloudsim::{catalog, InstanceType};

/// Chooses an instance type from the data size a job will touch.
#[derive(Debug, Clone, PartialEq)]
pub struct SizingPolicy {
    /// Memory demand as a multiple of input size (the paper's empirical
    /// 2–3×).
    pub mem_factor: f64,
    /// Never pick an instance smaller than this many GiB.
    pub min_mem_gib: f64,
    /// Fixed memory headroom for OS + runtime, GiB.
    pub headroom_gib: f64,
    /// The largest instance memory the empirically-defined bound table
    /// covers, GiB. Inputs whose requirement exceeds this are processed
    /// in multiple sequential rounds on the largest bounded instance
    /// (the paper sizes "based on empirically defined bounds"; its §4.2
    /// experiment tops out at the 64 GiB m4.4xlarge).
    pub max_instance_mem_gib: f64,
}

impl Default for SizingPolicy {
    fn default() -> Self {
        SizingPolicy {
            mem_factor: 2.5,
            min_mem_gib: 16.0,
            headroom_gib: 1.0,
            max_instance_mem_gib: 64.0,
        }
    }
}

impl SizingPolicy {
    /// The memory requirement for `input_bytes` of data, in GiB.
    pub fn required_mem_gib(&self, input_bytes: u64) -> f64 {
        let data_gib = input_bytes as f64 / (1u64 << 30) as f64;
        (data_gib * self.mem_factor + self.headroom_gib).max(self.min_mem_gib)
    }

    /// Picks the smallest catalog instance whose memory covers the
    /// requirement; falls back to the largest instance when nothing is
    /// big enough (the caller may then split the job).
    ///
    /// # Example
    ///
    /// ```
    /// use serverful::SizingPolicy;
    ///
    /// let policy = SizingPolicy::default();
    /// // 20 GB of input -> ~51 GiB needed -> m4.4xlarge (64 GiB).
    /// assert_eq!(policy.choose(20_000_000_000).name, "m4.4xlarge");
    /// ```
    pub fn choose(&self, input_bytes: u64) -> &'static InstanceType {
        self.choose_from(catalog(), input_bytes)
    }

    /// [`choose`](Self::choose) against an explicit regional catalog
    /// (sorted by memory) instead of the default us-east-1 price list.
    pub fn choose_from(
        &self,
        catalog: &'static [InstanceType],
        input_bytes: u64,
    ) -> &'static InstanceType {
        let need = self.required_mem_gib(input_bytes);
        catalog
            .iter()
            .find(|it| it.mem_gib >= need)
            .unwrap_or_else(|| catalog.last().expect("catalog is non-empty"))
    }

    /// Plans a stateful operation within the empirical bound table:
    /// the instance to use and the number of sequential rounds needed
    /// when the data exceeds the largest bounded instance.
    ///
    /// # Example
    ///
    /// ```
    /// use serverful::SizingPolicy;
    ///
    /// let policy = SizingPolicy::default();
    /// // 40 GB needs ~101 GiB of memory: two rounds on an m4.4xlarge.
    /// let (it, rounds) = policy.plan(40_000_000_000);
    /// assert_eq!((it.name, rounds), ("m4.4xlarge", 2));
    /// ```
    pub fn plan(&self, input_bytes: u64) -> (&'static InstanceType, usize) {
        self.plan_from(catalog(), input_bytes)
    }

    /// [`plan`](Self::plan) against an explicit regional catalog (sorted
    /// by memory) instead of the default us-east-1 price list.
    pub fn plan_from(
        &self,
        catalog: &'static [InstanceType],
        input_bytes: u64,
    ) -> (&'static InstanceType, usize) {
        let need = self.required_mem_gib(input_bytes);
        if need <= self.max_instance_mem_gib {
            return (self.choose_from(catalog, input_bytes), 1);
        }
        let largest = catalog
            .iter()
            .rev()
            .find(|it| it.mem_gib <= self.max_instance_mem_gib)
            .expect("catalog has an instance within the bound");
        let usable = largest.mem_gib - self.headroom_gib;
        let per_round_bytes = (usable / self.mem_factor * (1u64 << 30) as f64) as u64;
        let rounds = input_bytes.div_ceil(per_round_bytes.max(1)) as usize;
        (largest, rounds.max(2))
    }
}

/// How a serverful pool bids for VM capacity.
///
/// The default is on-demand everywhere — byte-identical to the
/// pre-spot behaviour. A spot bid provisions *worker* slots as
/// [`Tenancy::Spot`](cloudsim::Tenancy::Spot) (masters always run
/// on-demand: losing the orchestrator to a reclaim would defeat the
/// serverful design) and tolerates a bounded number of preemptions per
/// slot before falling back to on-demand capacity for that slot's
/// replacements. Fallbacks are counted in
/// [`FaultLedger::spot_fallbacks`](telemetry::FaultLedger).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BidPolicy {
    /// Only on-demand capacity (the paper's behaviour).
    #[default]
    OnDemand,
    /// Bid for discounted spot capacity on worker slots.
    Spot {
        /// Preemptions tolerated per slot before its replacements fall
        /// back to on-demand.
        max_preemptions: u32,
    },
}

impl BidPolicy {
    /// The conventional spot bid: persist through two reclaims per slot
    /// before conceding that slot to on-demand.
    pub fn spot() -> BidPolicy {
        BidPolicy::Spot { max_preemptions: 2 }
    }

    /// True when this policy ever bids for spot capacity.
    pub fn is_spot(&self) -> bool {
        matches!(self, BidPolicy::Spot { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_inputs_get_the_minimum_instance() {
        let policy = SizingPolicy::default();
        let it = policy.choose(100 * 1024 * 1024); // 100 MB
        assert_eq!(it.name, "c5.2xlarge"); // 16 GiB floor
    }

    #[test]
    fn memory_scales_with_the_empirical_factor() {
        let policy = SizingPolicy::default();
        // 24 GiB of input * 2.5 + 1 headroom = 61 GiB -> m4.4xlarge.
        let it = policy.choose(24 * (1 << 30));
        assert_eq!(it.name, "m4.4xlarge");
        // 30 GiB * 2.5 + 1 = 76 GiB -> r5.4xlarge (128 GiB).
        let it = policy.choose(30 * (1 << 30));
        assert_eq!(it.name, "r5.4xlarge");
    }

    #[test]
    fn oversized_inputs_fall_back_to_largest() {
        let policy = SizingPolicy::default();
        let it = policy.choose(100 * (1u64 << 40)); // 100 TiB
        assert_eq!(it.name, catalog().last().unwrap().name);
    }

    #[test]
    fn required_mem_has_floor() {
        let policy = SizingPolicy::default();
        assert_eq!(policy.required_mem_gib(0), policy.min_mem_gib);
    }

    #[test]
    fn custom_factor_changes_choice() {
        let aggressive = SizingPolicy {
            mem_factor: 1.0,
            ..SizingPolicy::default()
        };
        let default = SizingPolicy::default();
        let bytes = 40 * (1u64 << 30);
        assert!(aggressive.choose(bytes).mem_gib <= default.choose(bytes).mem_gib);
    }
}
