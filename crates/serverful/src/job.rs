//! Job and task state.
//!
//! A *job* is one `map` call: a factory applied to N inputs, producing N
//! results. Tasks move through backend-specific phases; the common parts
//! (the task run executing a [`TaskLogic`] against the simulated world,
//! and the storage-based completion monitor) live here.

use std::collections::HashMap;
use std::sync::Arc;

use cloudsim::{HostId, KvId, ObjectBody, OpId, SandboxId};
use simkernel::SimTime;
use telemetry::trace::SpanId;

use crate::error::ExecError;
use crate::payload::Payload;
use crate::retry::RetryPolicy;
use crate::task::{ActionOutcome, TaskLogic};

/// Creates a fresh [`TaskLogic`] for an input. Shared by all tasks of a
/// job (the "function" being mapped).
pub type TaskFactory = Arc<dyn Fn(&Payload) -> Box<dyn TaskLogic> + Send + Sync>;

/// Which backend executes a job.
#[derive(Debug, Clone)]
pub(crate) enum JobBackend {
    Faas {
        memory_mb: u32,
        fetch_input: bool,
        fleet: String,
    },
    Standalone {
        pool: usize,
    },
}

/// The in-flight I/O shape of a task's current action.
#[derive(Debug)]
pub(crate) enum PendingShape {
    /// A single op; outcome forwarded directly.
    Single,
    /// A multi-op (GetMany/PutMany); results gathered in request order.
    Multi { results: Vec<Option<ObjectBody>>, puts: bool },
}

/// A logical function executing on a host.
pub(crate) struct TaskRun {
    pub logic: Box<dyn TaskLogic>,
    pub host: HostId,
    /// The master's KV store, when running on the serverful backend.
    pub kv: Option<KvId>,
    /// Outstanding ops of the current action, mapped to their index.
    pub pending: HashMap<OpId, usize>,
    pub shape: PendingShape,
    /// The overlapped-I/O busy fraction currently applied (0 = none).
    pub io_busy: f64,
}

impl std::fmt::Debug for TaskRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskRun")
            .field("host", &self.host)
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl TaskRun {
    pub(crate) fn new(logic: Box<dyn TaskLogic>, host: HostId, kv: Option<KvId>) -> Self {
        TaskRun {
            logic,
            host,
            kv,
            pending: HashMap::new(),
            shape: PendingShape::Single,
            io_busy: 0.0,
        }
    }

    /// Records a completed op; returns the assembled outcome when the
    /// action is fully done.
    pub(crate) fn complete_op(
        &mut self,
        op: OpId,
        body: Option<ObjectBody>,
    ) -> Option<ActionOutcome> {
        let index = self
            .pending
            .remove(&op)
            .expect("op completed for a task that did not issue it");
        match &mut self.shape {
            PendingShape::Single => {
                debug_assert!(self.pending.is_empty());
                Some(match body {
                    Some(b) => ActionOutcome::Object(b),
                    None => ActionOutcome::Done,
                })
            }
            PendingShape::Multi { results, puts } => {
                results[index] = Some(body.unwrap_or_else(|| ObjectBody::opaque(0)));
                if self.pending.is_empty() {
                    let collected: Vec<ObjectBody> = results
                        .iter_mut()
                        .map(|r| r.take().expect("hole in multi-op results"))
                        .collect();
                    Some(if *puts {
                        ActionOutcome::Done
                    } else {
                        ActionOutcome::Objects(collected)
                    })
                } else {
                    None
                }
            }
        }
    }
}

/// A task's lifecycle phase.
#[derive(Debug)]
pub(crate) enum TaskPhase {
    /// Waiting to be dispatched (queued behind infra or a worker slot).
    Queued,
    /// Sandbox invoked, cold start in progress (FaaS).
    Starting,
    /// Fetching the input bundle from object storage (FaaS).
    FetchingInput,
    /// Logic executing.
    Running,
    /// Writing the encoded result to object storage.
    WritingResult,
    /// Finished successfully.
    Done,
    /// Finished with an error (message kept for debugging).
    #[allow(dead_code)]
    Failed(String),
}

/// One task of a job.
#[derive(Debug)]
pub(crate) struct TaskState {
    pub phase: TaskPhase,
    pub run: Option<TaskRun>,
    pub sandbox: Option<SandboxId>,
    /// Worker slot (vm index, proc index) on the serverful backend.
    pub worker: Option<(usize, usize)>,
    /// Dispatch attempts made so far (also versions the task's in-flight
    /// work: stale retry timers from a previous attempt are dropped).
    pub attempts: u32,
    /// When the current attempt was dispatched (straggler detection).
    pub started_at: Option<SimTime>,
    /// Trace span of the current attempt ([`SpanId::NONE`] when tracing is
    /// off or no attempt is in flight).
    pub span: SpanId,
    /// Gated submission: the task is withheld from dispatch until a DAG
    /// scheduler releases it ([`crate::env::CloudEnv`]'s `release_task`).
    pub held: bool,
}

impl TaskState {
    pub(crate) fn new() -> Self {
        TaskState {
            phase: TaskPhase::Queued,
            run: None,
            sandbox: None,
            worker: None,
            attempts: 0,
            started_at: None,
            span: SpanId::NONE,
            held: false,
        }
    }
}

/// One `map` invocation.
pub(crate) struct JobState {
    pub id: usize,
    pub name: String,
    pub stateful: bool,
    pub backend: JobBackend,
    pub bucket: String,
    pub poll_interval: f64,
    pub factory: TaskFactory,
    pub setup_secs: f64,
    pub io_overlap: f64,
    pub retry: RetryPolicy,
    pub inputs: Vec<Payload>,
    pub tasks: Vec<TaskState>,
    pub results: Vec<Option<Payload>>,
    pub done_tasks: usize,
    /// Tasks still gated behind an explicit release (dataflow mode);
    /// 0 for ordinary jobs.
    pub held_tasks: usize,
    /// Backend infrastructure is ready to dispatch released tasks
    /// immediately (FaaS setup done / pool pushes acknowledged).
    pub dispatch_ready: bool,
    /// The storage-polling completion monitor has been started. Deferred
    /// until every task is released, so a gated job does not burn LIST
    /// requests polling for results that cannot exist yet.
    pub monitor_started: bool,
    pub submitted_at: SimTime,
    /// When the first gated task was released; `None` for ordinary
    /// (ungated) jobs, whose work starts at submission. The timeline's
    /// stage window opens here, so a pipelined stage's recorded start
    /// is when it first got runnable work, not when its gated shell was
    /// submitted.
    pub first_release_at: Option<SimTime>,
    pub finished_at: Option<SimTime>,
    pub error: Option<ExecError>,
    /// The host running the completion monitor (client for FaaS, the
    /// acting master for VMs); the monitor's loop state itself lives in
    /// the environment's per-job monitor handle.
    pub monitor_host: HostId,
    /// Root trace span covering the whole job.
    pub span: SpanId,
}

impl std::fmt::Debug for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobState")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("tasks", &self.tasks.len())
            .field("done", &self.done_tasks)
            .finish()
    }
}

impl JobState {
    /// Total logical bytes the job's inputs reference; drives VM sizing.
    pub(crate) fn input_data_size(&self) -> u64 {
        self.inputs.iter().map(Payload::data_size).sum()
    }

    /// Key of a task's input bundle.
    pub(crate) fn input_key(&self, task: usize) -> String {
        format!("jobs/{}/input/{:05}", self.id, task)
    }

    /// Key of a task's result object.
    pub(crate) fn result_key(&self, task: usize) -> String {
        format!("jobs/{}/results/{:05}", self.id, task)
    }

    /// Prefix under which all result objects of the job live.
    pub(crate) fn result_prefix(&self) -> String {
        format!("jobs/{}/results/", self.id)
    }

    /// Parses the task index out of a result key.
    pub(crate) fn task_of_result_key(&self, key: &str) -> Option<usize> {
        key.strip_prefix(&self.result_prefix())?.parse().ok()
    }

    pub(crate) fn is_finished(&self) -> bool {
        self.finished_at.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::ScriptTask;

    fn dummy_job() -> JobState {
        JobState {
            id: 3,
            name: "stage".into(),
            stateful: false,
            backend: JobBackend::Faas {
                memory_mb: 1769,
                fetch_input: true,
                fleet: "lambda".into(),
            },
            bucket: "b".into(),
            poll_interval: 1.0,
            factory: Arc::new(|_| ScriptTask::new().boxed()),
            setup_secs: 0.0,
            io_overlap: 0.0,
            retry: RetryPolicy::default(),
            inputs: vec![Payload::U64(1), Payload::Opaque { size: 100 }],
            tasks: vec![TaskState::new(), TaskState::new()],
            results: vec![None, None],
            done_tasks: 0,
            held_tasks: 0,
            dispatch_ready: false,
            monitor_started: false,
            submitted_at: SimTime::ZERO,
            first_release_at: None,
            finished_at: None,
            error: None,
            monitor_host: HostId::from_index(0),
            span: SpanId::NONE,
        }
    }

    #[test]
    fn keys_are_stable_and_parseable() {
        let job = dummy_job();
        assert_eq!(job.result_key(7), "jobs/3/results/00007");
        assert_eq!(job.task_of_result_key("jobs/3/results/00007"), Some(7));
        assert_eq!(job.task_of_result_key("jobs/3/results/xyz"), None);
        assert_eq!(job.task_of_result_key("other/3/results/1"), None);
    }

    #[test]
    fn input_size_sums_payloads() {
        let job = dummy_job();
        assert_eq!(job.input_data_size(), 108);
    }

    #[test]
    fn single_op_completion_forwards_body() {
        let mut run = TaskRun::new(ScriptTask::new().boxed(), HostId::from_index(0), None);
        let op = OpId::from_index(1);
        run.pending.insert(op, 0);
        match run.complete_op(op, Some(ObjectBody::opaque(5))) {
            Some(ActionOutcome::Object(body)) => assert_eq!(body.len(), 5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multi_op_waits_for_all_and_orders_results() {
        let mut run = TaskRun::new(ScriptTask::new().boxed(), HostId::from_index(0), None);
        run.shape = PendingShape::Multi {
            results: vec![None, None],
            puts: false,
        };
        let a = OpId::from_index(1);
        let b = OpId::from_index(2);
        run.pending.insert(a, 0);
        run.pending.insert(b, 1);
        // Complete out of order.
        assert!(run.complete_op(b, Some(ObjectBody::opaque(2))).is_none());
        match run.complete_op(a, Some(ObjectBody::opaque(1))) {
            Some(ActionOutcome::Objects(objs)) => {
                assert_eq!(objs[0].len(), 1);
                assert_eq!(objs[1].len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multi_put_completion_is_done() {
        let mut run = TaskRun::new(ScriptTask::new().boxed(), HostId::from_index(0), None);
        run.shape = PendingShape::Multi {
            results: vec![None],
            puts: true,
        };
        let a = OpId::from_index(1);
        run.pending.insert(a, 0);
        assert!(matches!(
            run.complete_op(a, None),
            Some(ActionOutcome::Done)
        ));
    }
}
