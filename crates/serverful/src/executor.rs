//! The `FunctionExecutor`: the entry point of the framework.
//!
//! Mirrors the Lithops API the paper extends: construct an executor for a
//! backend, `map` a function over inputs, `get_result`. Switching a stage
//! between cloud functions and VMs is a one-line change of the backend
//! argument (Listing 1 of the paper).

use std::fmt;

use crate::config::ExecutorConfig;
use crate::env::CloudEnv;
use crate::error::ExecError;
use crate::job::{JobBackend, JobState, TaskFactory, TaskState};
use crate::payload::Payload;

/// The compute backend an executor targets.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Backend {
    /// Cloud functions (AWS-Lambda-like).
    Faas,
    /// Virtual machines orchestrated by a master (the paper's serverful
    /// backend).
    Vm,
}

impl Backend {
    /// The FaaS backend.
    pub fn faas() -> Backend {
        Backend::Faas
    }

    /// The serverful (VM) backend.
    pub fn vm() -> Backend {
        Backend::Vm
    }

    /// The Lithops-style compute-backend label of this backend in a
    /// region (`aws_lambda`/`aws_ec2` on AWS, `gcp_cloudfunctions`/
    /// `gcp_gce` on GCP). Billing and trace labels should go through
    /// here — or [`Self::label_in`] with the environment — rather than
    /// assuming AWS names.
    pub fn label(&self, region: &cloudsim::provider::RegionProfile) -> &'static str {
        match self {
            Backend::Faas => region.faas_label,
            Backend::Vm => region.vm_label,
        }
    }

    /// The backend label under the environment's active region, falling
    /// back to the default (paper) region for environments built from a
    /// hand-rolled catalog no registered region owns.
    pub fn label_in(&self, env: &CloudEnv) -> &'static str {
        let region = env
            .region()
            .unwrap_or_else(cloudsim::provider::default_region);
        self.label(region)
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Region-less display: the default region's labels (the paper's
        // AWS deployment). Anything with an environment in hand should
        // prefer [`Backend::label_in`].
        f.write_str(self.label(cloudsim::provider::default_region()))
    }
}

/// Handle to a submitted job; redeem with
/// [`FunctionExecutor::get_result`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a job handle must be redeemed with get_result"]
pub struct JobHandle {
    pub(crate) id: usize,
}

impl JobHandle {
    /// Number of tasks (partitions) in the job.
    #[must_use = "a task count only informs scheduling; it has no side effect"]
    pub fn total_tasks(&self, env: &CloudEnv) -> usize {
        env.job_total_tasks(self.id)
    }

    /// Tasks that have completed successfully so far. Partition-level
    /// progress: a dataflow scheduler can release downstream work as
    /// soon as specific upstream partitions finish, without waiting for
    /// the whole job.
    #[must_use = "a completion count only informs scheduling; it has no side effect"]
    pub fn done_tasks(&self, env: &CloudEnv) -> usize {
        env.job_done_tasks(self.id)
    }

    /// Whether a specific partition has completed successfully.
    #[must_use = "a completion check only informs scheduling; it has no side effect"]
    pub fn task_done(&self, env: &CloudEnv, task: usize) -> bool {
        env.job_task_done(self.id, task)
    }

    /// Whether the whole job has finished (all results collected, or
    /// failed). Redeem with [`FunctionExecutor::try_result`].
    #[must_use = "a completion check only informs scheduling; it has no side effect"]
    pub fn is_finished(&self, env: &CloudEnv) -> bool {
        env.job_finished(self.id)
    }

    /// Releases one gated task for dispatch (no-op if the task was not
    /// gated or was already released). See [`MapOptions::gated`].
    pub fn release_task(&self, env: &mut CloudEnv, task: usize) {
        env.release_task(self.id, task);
    }

    /// Releases every still-gated task of the job.
    pub fn release_all(&self, env: &mut CloudEnv) {
        env.release_all_tasks(self.id);
    }
}

/// Options for one `map` call.
#[derive(Debug, Clone)]
pub struct MapOptions {
    /// Stage name (billing labels, timeline spans).
    pub name: String,
    /// Mark this stage a stateful operation (sort/partition/exchange) in
    /// the paper's sense; drives the Table 3 stateful-window statistics.
    pub stateful: bool,
    /// Submit the job with every task *gated*: infrastructure spins up,
    /// but no task is dispatched until [`JobHandle::release_task`]
    /// releases it. The hook dependency-driven schedulers use to launch
    /// partitions as their upstream data arrives.
    pub gated: bool,
}

impl Default for MapOptions {
    fn default() -> Self {
        MapOptions {
            name: "map".to_owned(),
            stateful: false,
            gated: false,
        }
    }
}

impl MapOptions {
    /// Named stage options.
    pub fn named(name: impl Into<String>) -> Self {
        MapOptions {
            name: name.into(),
            stateful: false,
            gated: false,
        }
    }

    /// Marks the stage stateful.
    pub fn stateful(mut self) -> Self {
        self.stateful = true;
        self
    }

    /// Gates every task behind an explicit release (dataflow mode).
    pub fn gated(mut self) -> Self {
        self.gated = true;
        self
    }
}

/// Ports parallel function calls to a cloud backend. See the
/// [crate docs](crate) for a full example.
pub struct FunctionExecutor {
    backend: Backend,
    config: ExecutorConfig,
    /// Index of this executor's serverful pool, created lazily.
    pool: Option<usize>,
}

impl fmt::Debug for FunctionExecutor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FunctionExecutor")
            .field("backend", &self.backend)
            .field("pool", &self.pool)
            .finish()
    }
}

impl FunctionExecutor {
    /// Creates an executor for a backend.
    pub fn new(env: &mut CloudEnv, backend: Backend, config: ExecutorConfig) -> Self {
        if config.tracing {
            env.enable_tracing();
        }
        let pool = match backend {
            Backend::Vm => Some(env.create_pool(config.standalone.clone())),
            Backend::Faas => None,
        };
        FunctionExecutor {
            backend,
            config,
            pool,
        }
    }

    /// The backend this executor targets.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// Maps `factory` over `inputs` with default options.
    pub fn map(
        &mut self,
        env: &mut CloudEnv,
        factory: TaskFactory,
        inputs: Vec<Payload>,
    ) -> JobHandle {
        self.map_with(env, factory, inputs, MapOptions::default())
    }

    /// Maps `factory` over `inputs` with explicit stage options.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn map_with(
        &mut self,
        env: &mut CloudEnv,
        factory: TaskFactory,
        inputs: Vec<Payload>,
        opts: MapOptions,
    ) -> JobHandle {
        assert!(!inputs.is_empty(), "map over no inputs");
        let id = env.next_job_id();
        let backend = match (&self.backend, self.pool) {
            (Backend::Faas, _) => JobBackend::Faas {
                memory_mb: self.config.runtime_memory_mb,
                fetch_input: self.config.fetch_input,
                fleet: "lambda".to_owned(),
            },
            (Backend::Vm, Some(pool)) => JobBackend::Standalone { pool },
            (Backend::Vm, None) => unreachable!("vm backend without a pool"),
        };
        let poll_interval = match self.backend {
            Backend::Faas => self.config.poll_interval,
            Backend::Vm => self.config.standalone.poll_interval,
        };
        let setup_secs = match self.backend {
            Backend::Faas => self.config.map_setup_secs,
            Backend::Vm => self.config.standalone.map_setup_secs,
        };
        let n = inputs.len();
        let job = JobState {
            id,
            name: opts.name,
            stateful: opts.stateful,
            backend,
            bucket: self.config.bucket.clone(),
            poll_interval,
            factory,
            setup_secs,
            io_overlap: self.config.io_compute_overlap,
            retry: self.config.retry.clone(),
            inputs,
            tasks: (0..n)
                .map(|_| {
                    let mut t = TaskState::new();
                    t.held = opts.gated;
                    t
                })
                .collect(),
            results: (0..n).map(|_| None).collect(),
            done_tasks: 0,
            held_tasks: if opts.gated { n } else { 0 },
            dispatch_ready: false,
            monitor_started: false,
            submitted_at: env.now(),
            first_release_at: None,
            finished_at: None,
            error: None,
            monitor_host: env.world().client_host(),
            span: telemetry::trace::SpanId::NONE,
        };
        let id = env.submit(job);
        JobHandle { id }
    }

    /// Blocks (pumping the simulation) until the job completes; returns
    /// results in input order.
    ///
    /// # Errors
    ///
    /// Propagates task failures, payload decode failures, and stalls
    /// (the simulation draining before completion).
    pub fn get_result(
        &mut self,
        env: &mut CloudEnv,
        job: JobHandle,
    ) -> Result<Vec<Payload>, ExecError> {
        env.run_job(job.id)
    }

    /// Non-blocking completion check: the job's results if it has
    /// finished, `None` while it is still running. The counterpart of
    /// [`get_result`](Self::get_result) for drivers pumping the
    /// environment themselves via [`CloudEnv::pump`]. A finished job's
    /// results can be taken only once.
    pub fn try_result(
        &mut self,
        env: &mut CloudEnv,
        job: JobHandle,
    ) -> Option<Result<Vec<Payload>, ExecError>> {
        env.try_job_result(job.id)
    }

    /// True when this executor's VM pool is fully provisioned and
    /// SSH-ready, so the next job starts without paying boot time.
    /// Always `false` on the FaaS backend (sandboxes are per-task).
    pub fn warm(&self, env: &CloudEnv) -> bool {
        self.pool.is_some_and(|pool| env.pool_ready(pool))
    }

    /// Jobs running or queued on this executor's VM pool (0 on FaaS):
    /// the lease-selection signal for cross-job pool schedulers.
    pub fn backlog(&self, env: &CloudEnv) -> usize {
        self.pool.map_or(0, |pool| env.pool_backlog(pool))
    }

    /// Tears down any VMs this executor keeps alive between jobs.
    pub fn shutdown(&mut self, env: &mut CloudEnv) {
        if let Some(pool) = self.pool {
            env.shutdown_pool(pool);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_displays_like_lithops_names() {
        assert_eq!(Backend::faas().to_string(), "aws_lambda");
        assert_eq!(Backend::vm().to_string(), "aws_ec2");
    }

    #[test]
    fn backend_labels_follow_the_region() {
        let gcp = cloudsim::provider::region("gcp-us-central1").expect("gcp region registered");
        assert_eq!(Backend::faas().label(gcp), "gcp_cloudfunctions");
        assert_eq!(Backend::vm().label(gcp), "gcp_gce");

        let base = cloudsim::CloudConfig::default();
        let env = CloudEnv::new(gcp.apply(&base), 7);
        assert_eq!(Backend::faas().label_in(&env), "gcp_cloudfunctions");
        assert_eq!(Backend::vm().label_in(&env), "gcp_gce");

        // An environment on the default (AWS) config keeps the
        // Lithops-compatible names.
        let aws = CloudEnv::new(base, 7);
        assert_eq!(Backend::faas().label_in(&aws), "aws_lambda");
        assert_eq!(Backend::vm().label_in(&aws), "aws_ec2");
    }

    #[test]
    fn map_options_builder() {
        let opts = MapOptions::named("dataset-sort").stateful();
        assert_eq!(opts.name, "dataset-sort");
        assert!(opts.stateful);
    }
}
