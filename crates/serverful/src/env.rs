//! The execution environment: world pump, notification routing, and the
//! backend state machines.
//!
//! [`CloudEnv`] owns the simulated [`World`] plus every in-flight job and
//! serverful resource pool. [`FunctionExecutor`](crate::FunctionExecutor)
//! is a thin facade over it: `map` registers a job here, `get_result`
//! pumps the world until the job's monitor declares it finished.
//!
//! ## FaaS job lifecycle (classic Lithops)
//!
//! 1. the client uploads each task's input bundle to object storage and
//!    invokes one sandbox per task;
//! 2. each sandbox cold-starts, fetches its input, runs the logical
//!    function (compute and I/O charged by the world), and writes its
//!    encoded result back to object storage;
//! 3. the client monitors completion by polling the job's result prefix,
//!    then collects and decodes the results.
//!
//! ## Serverful job lifecycle (the paper's contribution)
//!
//! 1. the executor connects to a master (provisioning it if needed);
//! 2. the master *proactively provisions* the required worker VMs —
//!    right-sized from the job's input size — and starts one worker
//!    process per vCPU over SSH;
//! 3. workers load logical functions from the Redis-like KV store on the
//!    master, execute them, and write results to object storage;
//! 4. the master monitors completion, collects the output and notifies
//!    the client; all instances are automatically stopped afterwards
//!    (unless instance reuse is enabled).

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use cloudsim::{
    CloudConfig, FaultKind, HostId, KvId, Notify, ObjectBody, OpId, OpOutcome, SandboxId,
    Tenancy, VmId, World,
};
use simkernel::aio::AsyncExecutor;
use simkernel::{SimDuration, SimTime};
use telemetry::trace::SpanId;
use telemetry::{FleetTag, StageSpan, Timeline};

use crate::config::{ExecMode, StandaloneConfig};
use crate::dag::{fan_in_range, FanIn};
use crate::error::ExecError;
use crate::job::{JobBackend, JobState, MonitorState, PendingShape, TaskPhase, TaskRun};
use crate::payload::Payload;
use crate::recovery::{checkpoint_key, JobCheckpoint, MasterCheckpoint, RecoveryMode, RecoveryStats};
use crate::task::{Action, ActionOutcome, TaskStep};

/// Where a notification should be delivered.
#[derive(Debug, Clone)]
enum Route {
    /// An op issued by a task's logic (or its result write).
    Task { job: usize, task: usize },
    /// The client PUT of a task's input bundle.
    InputPut { job: usize, task: usize },
    /// Client-side function/deps serialisation before dispatch.
    JobSetup { job: usize },
    /// Monitor poll timer.
    Poll { job: usize },
    /// Monitor LIST.
    List { job: usize },
    /// Monitor result GET.
    Collect { job: usize, task: usize },
    /// A pool VM came up / finished SSH setup. `epoch` versions the
    /// slot so timers of a replaced VM are dropped.
    PoolVm { pool: usize, slot: PoolSlot, epoch: u64 },
    /// Master pushed one task bundle into the KV queue.
    Push { pool: usize, job: usize },
    /// A worker process's KV pop. `epoch` versions the worker VM so
    /// pops issued by a since-replaced VM are not mistaken for the
    /// replacement's.
    Pop { pool: usize, vm_idx: usize, proc: usize, epoch: u64 },
    /// The master's SSH notification reaching the client.
    MasterNotify { job: usize },
    /// Backoff timer before re-dispatching a failed task attempt.
    RetryTask { job: usize, task: usize, attempt: u32 },
    /// Backoff timer before re-issuing a faulted storage request.
    RetryStorage {
        spec: StorageSpec,
        attempts: u32,
        inner: Box<Route>,
        /// `(faulted op, its slot)` in the task action's pending map,
        /// if any. The faulted op stays in the map as a placeholder
        /// while the backoff runs — so a sibling op of a multi-op
        /// action cannot drain the map and assemble a result with a
        /// hole — and is swapped for the re-issued op at fire time.
        pending_slot: Option<(OpId, usize)>,
        /// Task attempt the op belonged to; a mismatch at fire time
        /// means the whole attempt was torn down meanwhile.
        task_attempt: u32,
    },
    /// Master re-pushing a requeued task bundle after a worker loss.
    Requeue { pool: usize },
    /// A caller-owned timer registered via [`CloudEnv::external_timer`];
    /// surfaced from [`CloudEnv::pump`] instead of being handled here.
    External { token: u64 },
    /// Keep-alive expiry for an idle pool. `epoch` versions the idle
    /// window: a job starting (or another window opening) invalidates
    /// earlier timers.
    PoolIdle { pool: usize, epoch: u64 },
    /// Periodic master-state snapshot PUT ([`RecoveryMode::Checkpointed`]).
    Checkpoint { pool: usize, job: usize },
    /// The replacement master's checkpoint GET during re-adoption.
    /// `episode` versions the recovery so a twice-replaced master drops
    /// the first replacement's fetch.
    Readopt { pool: usize, job: usize, episode: u64 },
    /// Client PUT of a task bundle to object storage
    /// ([`RecoveryMode::Decentralized`] dispatch).
    DcBundle { pool: usize, job: usize, task: usize },
    /// Worker GET of a claimed task bundle (decentralized dispatch).
    DcClaim { pool: usize, job: usize, vm_idx: usize, proc: usize, epoch: u64, task: usize },
    /// Worker PUT of a per-task completion counter (decentralized
    /// continuation passing).
    DcCounter { pool: usize, job: usize, task: usize },
}

/// A pending recovery action queued by a kernel-driven future (the
/// checkpoint sleep loop, the re-adoption gate) for the environment to
/// execute between world events.
#[derive(Debug, Clone, Copy)]
enum RecoveryCmd {
    Checkpoint { pool: usize },
    Readopt { pool: usize, episode: u64 },
}

/// A registered DAG continuation: when upstream tasks of `up_job` land
/// their completion counters in storage, downstream tasks of `down_job`
/// whose fan-in block is fully counted are released directly — no
/// master (and no driver) in the path.
#[derive(Debug, Clone, Copy)]
struct Continuation {
    up_job: usize,
    down_job: usize,
    fan_in: FanIn,
    up_tasks: usize,
    down_tasks: usize,
}

/// Decentralized-mode bookkeeping for one job.
#[derive(Debug)]
struct DcJob {
    /// Tasks whose bundle PUT has been issued (bundles persist in
    /// storage, so a requeue after worker loss needs no re-upload).
    uploaded: Vec<bool>,
    /// Tasks whose completion counter has landed in storage.
    counters: Vec<bool>,
}

/// A retryable storage request, kept verbatim so a faulted op can be
/// re-issued after backoff.
#[derive(Debug, Clone)]
enum StorageSpec {
    Get { host: HostId, bucket: String, key: String },
    Put { host: HostId, bucket: String, key: String, body: ObjectBody },
    List { host: HostId, bucket: String, prefix: String },
    Delete { host: HostId, bucket: String, key: String },
}

impl StorageSpec {
    fn host(&self) -> HostId {
        match self {
            StorageSpec::Get { host, .. }
            | StorageSpec::Put { host, .. }
            | StorageSpec::List { host, .. }
            | StorageSpec::Delete { host, .. } => *host,
        }
    }
}

/// Why a task attempt ended prematurely (selects the retry counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AttemptFailure {
    /// The sandbox died under the task (already torn down by the world).
    SandboxDead,
    /// A storage op of the attempt ran out of its retry budget.
    StorageExhausted,
    /// The monitor abandoned the attempt as a straggler (sandbox still
    /// running; it is billed and abandoned).
    Straggler,
}

/// Which pool VM a lifecycle notification concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PoolSlot {
    Master,
    Worker(usize),
}

/// Lifecycle of a pool VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VmPhase {
    Booting,
    SshSetup,
    Ready,
    /// The slot's VM is gone and its provisioning budget is spent; a new
    /// job re-provisions it with a fresh budget.
    Dead,
}

#[derive(Debug)]
struct PoolVm {
    vm: VmId,
    host: HostId,
    itype: cloudsim::InstanceType,
    phase: VmPhase,
    /// Slot generation; bumped on every (re-)provision so in-flight pops
    /// and SSH timers of a replaced VM can be told apart.
    epoch: u64,
    /// Provisioning attempts charged against this slot for the current
    /// job (boot failures and losses both consume the budget).
    provision_attempts: u32,
    /// Spot preemptions this slot has absorbed for the current job;
    /// carried across replacements so a [`BidPolicy::Spot`] budget can
    /// fall the slot back to on-demand.
    preemptions: u32,
}

/// A serverful resource pool: one per executor using the VM backend.
pub(crate) struct StandalonePool {
    cfg: StandaloneConfig,
    /// Dedicated master VM (fleet mode). In consolidated mode the single
    /// worker VM doubles as the master.
    master: Option<PoolVm>,
    kv: Option<KvId>,
    workers: Vec<PoolVm>,
    queue: VecDeque<usize>,
    active: Option<usize>,
    /// Pushes still outstanding before workers may start popping.
    pushes_outstanding: usize,
    /// Worker processes that popped an empty queue and went idle; woken
    /// when a requeued bundle lands.
    idle_procs: Vec<(usize, usize)>,
    /// Source of slot epochs.
    epoch_counter: u64,
    /// Idle-window generation for the keep-alive timer (see
    /// [`Route::PoolIdle`]).
    idle_epoch: u64,
    fleet_name: String,
    /// Decentralized mode: tasks whose bundles sit in storage awaiting
    /// a worker claim, in dispatch order.
    dc_ready: VecDeque<usize>,
    /// True between a master loss and the replacement's checkpoint
    /// replay (Checkpointed mode); dispatch defers to the re-adoption.
    recovering: bool,
    /// Master-recovery generation; stale re-adoption fetches of an
    /// earlier episode are dropped.
    recovery_episode: u64,
    /// Monotonic checkpoint sequence number (survives master swaps via
    /// the snapshot itself).
    ckpt_seq: u64,
    /// Liveness flag of the current checkpoint sleep loop; cleared when
    /// the pool's job finishes so the loop exits on its next fire.
    ckpt_active: Option<Rc<Cell<bool>>>,
    /// Gate the pending re-adoption future waits on; opened when the
    /// replacement master finishes SSH setup.
    readopt_gate: Option<simkernel::aio::Gate>,
}

impl StandalonePool {
    fn consolidated(&self) -> bool {
        matches!(self.cfg.exec_mode, ExecMode::Consolidated)
    }

    fn master_host(&self) -> HostId {
        if self.consolidated() {
            self.workers[0].host
        } else {
            self.master.as_ref().expect("master missing").host
        }
    }

    /// The VM currently acting as master (the single worker VM in
    /// consolidated mode), if the slot is populated.
    fn master_pv(&self) -> Option<&PoolVm> {
        if self.consolidated() {
            self.workers.first()
        } else {
            self.master.as_ref()
        }
    }

    fn all_ready(&self) -> bool {
        let workers_ready = !self.workers.is_empty()
            && self.workers.iter().all(|w| w.phase == VmPhase::Ready);
        if self.consolidated() {
            workers_ready
        } else {
            workers_ready && self.master.as_ref().is_some_and(|m| m.phase == VmPhase::Ready)
        }
    }
}

/// What one [`CloudEnv::pump`] call produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvEvent {
    /// An internal notification was routed; state may have advanced.
    Progress,
    /// A caller-owned [`CloudEnv::external_timer`] fired; the value is
    /// the token that call returned.
    Timer(u64),
    /// The event queue is empty: nothing will ever happen again unless
    /// the caller issues new work.
    Drained,
}

/// The execution environment. See the [module docs](self).
pub struct CloudEnv {
    world: World,
    timeline: Timeline,
    jobs: Vec<JobState>,
    pools: Vec<StandalonePool>,
    op_routes: HashMap<OpId, Route>,
    /// Replay specs for in-flight storage ops (fault retries).
    op_specs: HashMap<OpId, (StorageSpec, u32)>,
    sandbox_routes: HashMap<SandboxId, Route>,
    vm_routes: HashMap<VmId, Route>,
    timer_routes: HashMap<u64, Route>,
    next_timer: u64,
    scheduler_fleet: FleetTag,
    active_jobs: usize,
    /// Span subsequently submitted jobs parent under (a pipeline's stage
    /// span, for example).
    job_parent: SpanId,
    /// Async kernel driving recovery futures (checkpoint sleep loops,
    /// re-adoption gates) in lockstep with world time.
    kernel: AsyncExecutor,
    /// Commands those futures queue for the environment to execute.
    recovery_cmds: Rc<RefCell<VecDeque<RecoveryCmd>>>,
    /// Recovery activity counters (checkpoints, re-adoptions,
    /// continuations); empty unless a non-default mode did work.
    recovery_stats: RecoveryStats,
    /// Registered decentralized DAG continuations.
    continuations: Vec<Continuation>,
    /// Per-job decentralized dispatch/counter state.
    dc_jobs: HashMap<usize, DcJob>,
    /// Armed chaos kills: `(pool, event index)`; fired once the routed
    /// event counter passes the index and the master VM is up.
    armed_kills: Vec<(usize, u64)>,
    /// Notifications routed so far (the chaos kills' event clock).
    events_routed: u64,
}

impl std::fmt::Debug for CloudEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CloudEnv")
            .field("now", &self.world.now())
            .field("jobs", &self.jobs.len())
            .field("pools", &self.pools.len())
            .finish()
    }
}

impl CloudEnv {
    /// Creates an environment over a fresh simulated cloud region.
    pub fn new(config: CloudConfig, seed: u64) -> Self {
        let mut world = World::new(config, seed);
        let scheduler_fleet = world.fleet("scheduler");
        let client_vcpus = world.config().client.vcpus as f64;
        // The Lithops scheduler host counts as provisioned resources for
        // the whole run (Table 3 includes it).
        world
            .cpu_monitor_mut()
            .add_provisioned(scheduler_fleet, SimTime::ZERO, client_vcpus);
        CloudEnv {
            world,
            timeline: Timeline::new(),
            jobs: Vec::new(),
            pools: Vec::new(),
            op_routes: HashMap::new(),
            op_specs: HashMap::new(),
            sandbox_routes: HashMap::new(),
            vm_routes: HashMap::new(),
            timer_routes: HashMap::new(),
            next_timer: 0,
            scheduler_fleet,
            active_jobs: 0,
            job_parent: SpanId::NONE,
            kernel: AsyncExecutor::new(),
            recovery_cmds: Rc::new(RefCell::new(VecDeque::new())),
            recovery_stats: RecoveryStats::new(),
            continuations: Vec::new(),
            dc_jobs: HashMap::new(),
            armed_kills: Vec::new(),
            events_routed: 0,
        }
    }

    /// Creates an environment with the default cloud configuration.
    pub fn new_default(seed: u64) -> Self {
        Self::new(CloudConfig::default(), seed)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// The underlying world (telemetry, store inspection, seeding).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable access to the underlying world.
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// The timeline of completed stages.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Turns span tracing on for everything this environment runs. Costs
    /// nothing until enabled; see [`telemetry::trace::Tracer`].
    pub fn enable_tracing(&mut self) {
        self.world.set_tracing(true);
    }

    /// True when the environment records a span trace.
    pub fn tracing_enabled(&self) -> bool {
        self.world.tracer().is_enabled()
    }

    /// Sets the span subsequently submitted jobs parent under (a
    /// pipeline stage span). Pass [`SpanId::NONE`] to clear.
    pub fn set_job_parent(&mut self, span: SpanId) {
        self.job_parent = span;
    }

    /// Annotates a job's root span with a string attribute (no-op when
    /// tracing is off). The DAG scheduler uses this to parent spans on
    /// their dataflow edges: a `deps` attribute naming the upstream
    /// nodes each job waited on.
    pub(crate) fn annotate_job_span(&mut self, job: usize, key: &'static str, value: &str) {
        if !self.world.tracer().is_enabled() {
            return;
        }
        let span = self.jobs[job].span;
        self.world.tracer_mut().attr_str(span, key, value);
    }

    /// Pre-loads an object outside the timed path (experiment setup).
    pub fn seed_object(&mut self, bucket: &str, key: &str, body: ObjectBody) {
        self.world.seed_object(bucket, key, body);
    }

    // ------------------------------------------------------------------
    // Job submission (called by FunctionExecutor)
    // ------------------------------------------------------------------

    pub(crate) fn submit(&mut self, mut job: JobState) -> usize {
        let id = job.id;
        debug_assert_eq!(id, self.jobs.len());
        job.submitted_at = self.world.now();
        if self.world.tracer().is_enabled() {
            let now = self.world.now();
            let name = format!("job:{}", job.name);
            let backend = match &job.backend {
                JobBackend::Faas { .. } => "faas",
                JobBackend::Standalone { .. } => "serverful",
            };
            let parent = self.job_parent;
            let tracer = self.world.tracer_mut();
            let span = tracer.begin(now, &name, "job", "jobs", parent);
            tracer.attr_u64(span, "tasks", job.inputs.len() as u64);
            tracer.attr_str(span, "backend", backend);
            job.span = span;
        }
        self.world.set_bill_label(job.name.clone());
        self.job_activity(1);
        // Client-side setup: serialise the function and its modules and
        // upload them, before any dispatch happens (Lithops does this on
        // every map).
        let setup = job.setup_secs.max(1e-3);
        self.jobs.push(job);
        let client = self.world.client_host();
        let op = self.world.compute(client, setup);
        self.op_routes.insert(op, Route::JobSetup { job: id });
        id
    }

    fn on_job_setup(&mut self, id: usize) {
        match self.jobs[id].backend.clone() {
            JobBackend::Faas {
                memory_mb,
                fetch_input,
                fleet,
            } => {
                self.jobs[id].monitor_host = self.world.client_host();
                self.dispatch_faas(id, memory_mb, fetch_input, &fleet);
                self.jobs[id].dispatch_ready = true;
                self.maybe_start_monitor(id);
            }
            JobBackend::Standalone { pool } => {
                self.pools[pool].queue.push_back(id);
                self.pool_try_start(pool);
            }
        }
    }

    // ------------------------------------------------------------------
    // Gated (dataflow) task release
    // ------------------------------------------------------------------

    /// Starts the storage-polling completion monitor once it can make
    /// progress: infrastructure dispatched *and* every task released.
    /// Deferring the first poll past the last release keeps a gated job
    /// from burning LIST requests on results that cannot exist yet; for
    /// ungated jobs `held_tasks` is 0 and the monitor starts exactly
    /// where it always did.
    fn maybe_start_monitor(&mut self, job: usize) {
        let j = &self.jobs[job];
        if j.monitor_started || !j.dispatch_ready || j.held_tasks > 0 {
            return;
        }
        self.jobs[job].monitor_started = true;
        self.schedule_poll(job);
    }

    /// Releases one gated task for dispatch. No-op if the task was never
    /// gated, was already released, or the job already finished.
    pub(crate) fn release_task(&mut self, job: usize, task: usize) {
        if self.jobs[job].is_finished() || !self.jobs[job].tasks[task].held {
            return;
        }
        if self.jobs[job].first_release_at.is_none() {
            self.jobs[job].first_release_at = Some(self.world.now());
        }
        self.jobs[job].tasks[task].held = false;
        self.jobs[job].held_tasks -= 1;
        match self.jobs[job].backend.clone() {
            JobBackend::Faas {
                memory_mb,
                fetch_input,
                fleet,
            } => {
                // Before setup completes, clearing `held` is enough:
                // `dispatch_faas` picks the task up with the rest.
                if self.jobs[job].dispatch_ready {
                    self.dispatch_faas_task(job, task, memory_mb, fetch_input, &fleet);
                }
            }
            JobBackend::Standalone { pool } => {
                // Only once the job owns the pool does its queue exist;
                // a queued job's `pool_start_job` reads `held` later.
                if self.pools[pool].active == Some(job) {
                    self.requeue_task(pool, job, task);
                }
            }
        }
        self.maybe_start_monitor(job);
    }

    /// Releases every still-gated task of a job, in task order.
    pub(crate) fn release_all_tasks(&mut self, job: usize) {
        for task in 0..self.jobs[job].tasks.len() {
            self.release_task(job, task);
        }
    }

    // ------------------------------------------------------------------
    // Partition-level progress (JobHandle accessors)
    // ------------------------------------------------------------------

    pub(crate) fn job_total_tasks(&self, job: usize) -> usize {
        self.jobs[job].tasks.len()
    }

    pub(crate) fn job_done_tasks(&self, job: usize) -> usize {
        self.jobs[job].done_tasks
    }

    pub(crate) fn job_task_done(&self, job: usize, task: usize) -> bool {
        matches!(self.jobs[job].tasks[task].phase, TaskPhase::Done)
    }

    pub(crate) fn job_finished(&self, job: usize) -> bool {
        self.jobs[job].is_finished()
    }

    pub(crate) fn next_job_id(&self) -> usize {
        self.jobs.len()
    }

    pub(crate) fn create_pool(&mut self, cfg: StandaloneConfig) -> usize {
        let idx = self.pools.len();
        let fleet_name = cfg
            .fleet_label
            .clone()
            .unwrap_or_else(|| format!("standalone-{idx}"));
        self.pools.push(StandalonePool {
            cfg,
            master: None,
            kv: None,
            workers: Vec::new(),
            queue: VecDeque::new(),
            active: None,
            pushes_outstanding: 0,
            idle_procs: Vec::new(),
            epoch_counter: 0,
            idle_epoch: 0,
            fleet_name,
            dc_ready: VecDeque::new(),
            recovering: false,
            recovery_episode: 0,
            ckpt_seq: 0,
            ckpt_active: None,
            readopt_gate: None,
        });
        idx
    }

    /// True when every VM of the pool is provisioned and SSH-ready — a
    /// job submitted now starts without paying boot time.
    pub(crate) fn pool_ready(&self, pool: usize) -> bool {
        self.pools[pool].all_ready()
    }

    /// Jobs currently running or queued on the pool (lease pressure).
    pub(crate) fn pool_backlog(&self, pool: usize) -> usize {
        self.pools[pool].queue.len() + usize::from(self.pools[pool].active.is_some())
    }

    /// Tears a pool's VMs down (executor shutdown).
    pub(crate) fn shutdown_pool(&mut self, pool: usize) {
        let p = &mut self.pools[pool];
        assert!(p.active.is_none(), "shutdown with an active job");
        let mut terminate = Vec::new();
        for w in p.workers.drain(..) {
            self.vm_routes.remove(&w.vm);
            if w.phase == VmPhase::Ready {
                terminate.push(w.vm);
            }
        }
        if let Some(m) = p.master.take() {
            self.vm_routes.remove(&m.vm);
            if m.phase == VmPhase::Ready {
                terminate.push(m.vm);
            }
        }
        p.kv = None;
        for vm in terminate {
            self.world.vm_terminate(vm);
        }
    }

    /// Pumps the world until `job` finishes; returns its results in
    /// input order.
    ///
    /// External timers firing meanwhile are ignored — a blocking caller
    /// by definition is not juggling other work.
    ///
    /// # Errors
    ///
    /// Propagates task failures, decode failures and stalls.
    pub(crate) fn run_job(&mut self, job: usize) -> Result<Vec<Payload>, ExecError> {
        loop {
            if let Some(result) = self.try_job_result(job) {
                return result;
            }
            match self.pump() {
                EnvEvent::Progress | EnvEvent::Timer(_) => {}
                EnvEvent::Drained => {
                    return Err(ExecError::Stalled(format!(
                        "simulation drained with job {job} ({}) unfinished: {}/{} tasks done",
                        self.jobs[job].name,
                        self.jobs[job].done_tasks,
                        self.jobs[job].tasks.len()
                    )));
                }
            }
        }
    }

    /// Advances the world by one notification and routes it. This is the
    /// non-blocking counterpart of the blocking drive loop behind
    /// [`FunctionExecutor::get_result`]: a driver juggling many
    /// concurrent jobs (the `fleet` crate) calls this in a loop, polling
    /// its jobs with [`FunctionExecutor::try_result`] between events and
    /// receiving its own [`external_timer`]s (arrivals, deadlines) as
    /// [`EnvEvent::Timer`].
    ///
    /// [`FunctionExecutor::get_result`]: crate::FunctionExecutor::get_result
    /// [`FunctionExecutor::try_result`]: crate::FunctionExecutor::try_result
    ///
    /// [`external_timer`]: Self::external_timer
    pub fn pump(&mut self) -> EnvEvent {
        match self.world.step() {
            None => EnvEvent::Drained,
            Some((t, n)) => {
                if let Notify::Timer { tag } = &n {
                    if let Some(Route::External { token }) = self.timer_routes.get(tag) {
                        let token = *token;
                        self.timer_routes.remove(tag);
                        return EnvEvent::Timer(token);
                    }
                }
                self.dispatch(t, n);
                self.events_routed += 1;
                self.drive_recovery();
                self.fire_armed_kills();
                EnvEvent::Progress
            }
        }
    }

    /// Registers a caller-owned timer; [`pump`](Self::pump) surfaces it
    /// as [`EnvEvent::Timer`] with the returned token after `delay` of
    /// virtual time.
    pub fn external_timer(&mut self, delay: SimDuration) -> u64 {
        let tag = self.next_timer;
        self.next_timer += 1;
        self.timer_routes.insert(tag, Route::External { token: tag });
        self.world.timer(delay, tag);
        tag
    }

    // ------------------------------------------------------------------
    // Master fault tolerance (see crate::recovery)
    // ------------------------------------------------------------------

    /// Recovery activity of this environment so far (checkpoints,
    /// master replacements, continuations). Empty unless a pool with a
    /// non-default [`RecoveryMode`] actually exercised it.
    pub fn recovery_stats(&self) -> &RecoveryStats {
        &self.recovery_stats
    }

    /// Notifications routed by [`pump`](Self::pump) so far — the event
    /// clock [`arm_master_kill`](Self::arm_master_kill) indices refer to.
    pub fn events_routed(&self) -> u64 {
        self.events_routed
    }

    /// Arms a forced chaos kill of `pool`'s master VM: once the routed
    /// event counter reaches `at_event`, the master (the single worker
    /// VM in consolidated mode) is torn down through
    /// [`World::kill_vm`], bypassing fault-injection suppression. If the
    /// master is not up yet at the index, the kill retries on every
    /// subsequent event until it lands; a kill still pending when the
    /// run drains simply never fires.
    pub fn arm_master_kill(&mut self, pool: usize, at_event: u64) {
        self.armed_kills.push((pool, at_event));
    }

    /// Armed chaos kills that have not fired yet.
    pub fn pending_master_kills(&self) -> usize {
        self.armed_kills.len()
    }

    /// Registers a decentralized continuation edge: completion counters
    /// of `up_job` release the fan-in-satisfied tasks of `down_job`
    /// directly from the environment (no master, no driver). Registered
    /// unconditionally by the pipelined DAG drivers; consulted only for
    /// jobs on [`RecoveryMode::Decentralized`] pools.
    pub(crate) fn register_continuation(
        &mut self,
        up_job: usize,
        down_job: usize,
        fan_in: FanIn,
        up_tasks: usize,
        down_tasks: usize,
    ) {
        self.continuations.push(Continuation {
            up_job,
            down_job,
            fan_in,
            up_tasks,
            down_tasks,
        });
    }

    /// Advances the recovery kernel to world time, runs any woken
    /// futures, and executes the commands they queued.
    fn drive_recovery(&mut self) {
        self.kernel.advance_to(self.world.now());
        self.kernel.run_ready();
        loop {
            let cmd = self.recovery_cmds.borrow_mut().pop_front();
            match cmd {
                None => break,
                Some(RecoveryCmd::Checkpoint { pool }) => self.write_checkpoint(pool),
                Some(RecoveryCmd::Readopt { pool, episode }) => {
                    self.begin_readopt(pool, episode)
                }
            }
        }
    }

    /// Fires every armed kill whose event index has passed, retrying
    /// kills whose master VM is not up yet.
    fn fire_armed_kills(&mut self) {
        if self.armed_kills.is_empty() {
            return;
        }
        let events = self.events_routed;
        let armed = std::mem::take(&mut self.armed_kills);
        for (pool, at) in armed {
            if events >= at && self.try_kill_master(pool) {
                continue;
            }
            self.armed_kills.push((pool, at));
        }
    }

    fn try_kill_master(&mut self, pool: usize) -> bool {
        let Some(vm) = self
            .pools
            .get(pool)
            .and_then(|p| p.master_pv())
            .map(|m| m.vm)
        else {
            return false;
        };
        if !self.world.kill_vm(vm) {
            return false;
        }
        let now = self.world.now();
        self.world
            .tracer_mut()
            .instant(now, "chaos-master-kill", "recovery", "recovery");
        true
    }

    /// The finished job's results (or error), if it has finished.
    /// Returns `None` while the job is still running. Calling this twice
    /// for the same finished job yields empty results — take it once.
    pub(crate) fn try_job_result(
        &mut self,
        job: usize,
    ) -> Option<Result<Vec<Payload>, ExecError>> {
        if !self.jobs[job].is_finished() {
            return None;
        }
        Some(self.take_job_result(job))
    }

    /// Extracts a finished job's results in input order.
    fn take_job_result(&mut self, job: usize) -> Result<Vec<Payload>, ExecError> {
        if let Some(err) = self.jobs[job].error.clone() {
            return Err(err);
        }
        let results = std::mem::take(&mut self.jobs[job].results);
        results
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.ok_or_else(|| {
                    ExecError::TaskFailed(format!("task {i} produced no result"))
                })
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Dispatch
    // ------------------------------------------------------------------

    fn dispatch(&mut self, _t: SimTime, n: Notify) {
        match n {
            Notify::Op { op, outcome } => {
                let Some(route) = self.op_routes.remove(&op) else {
                    self.op_specs.remove(&op);
                    return; // op of an already-failed job or torn-down attempt
                };
                if let OpOutcome::Faulted { .. } = outcome {
                    let spec = self.op_specs.remove(&op);
                    self.on_storage_faulted(op, route, spec);
                    return;
                }
                self.op_specs.remove(&op);
                self.on_op(route, op, outcome);
            }
            Notify::SandboxUp { sandbox } => {
                // The route stays registered until the sandbox is
                // released: a mid-task crash must still find its task.
                if let Some(route) = self.sandbox_routes.get(&sandbox).cloned() {
                    self.on_sandbox_up(route, sandbox);
                }
            }
            Notify::SandboxFailed { sandbox, .. } => {
                if let Some(Route::Task { job, task }) = self.sandbox_routes.remove(&sandbox) {
                    self.jobs[job].tasks[task].sandbox = None;
                    self.task_attempt_failed(job, task, AttemptFailure::SandboxDead);
                }
            }
            Notify::VmUp { vm } => {
                // The route stays registered: a mid-job VM loss (long
                // after boot) must still find its pool slot.
                if let Some(route) = self.vm_routes.get(&vm).cloned() {
                    self.on_vm_up(route, vm);
                }
            }
            Notify::VmFailed { vm, fault } => {
                if let Some(route) = self.vm_routes.remove(&vm) {
                    self.on_pool_vm_failed(route, fault);
                }
            }
            Notify::Timer { tag } => {
                if let Some(route) = self.timer_routes.remove(&tag) {
                    self.on_timer(route);
                }
            }
            _ => {}
        }
    }

    /// The span a task's I/O should parent under: the current attempt's
    /// span, falling back to the job span before dispatch.
    fn task_span(&self, job: usize, task: usize) -> SpanId {
        let t = &self.jobs[job].tasks[task];
        if t.span.is_none() {
            self.jobs[job].span
        } else {
            t.span
        }
    }

    /// The trace span ops issued for `route` parent under.
    fn route_span(&self, route: &Route) -> SpanId {
        match route {
            Route::Task { job, task } | Route::InputPut { job, task } => {
                self.task_span(*job, *task)
            }
            other => match Self::route_job(other) {
                Some(job) => self.jobs[job].span,
                None => SpanId::NONE,
            },
        }
    }

    /// Begins the span of a task's next dispatch attempt. Returns
    /// [`SpanId::NONE`] (and allocates nothing) when tracing is off.
    fn begin_attempt_span(&mut self, job: usize, task: usize, fleet: &str) -> SpanId {
        if !self.world.tracer().is_enabled() {
            return SpanId::NONE;
        }
        let now = self.world.now();
        let name = format!("task {task}");
        let stage = self.jobs[job].name.clone();
        let parent = self.jobs[job].span;
        let attempt = u64::from(self.jobs[job].tasks[task].attempts) + 1;
        let tracer = self.world.tracer_mut();
        let span = tracer.begin(now, &name, "task", "tasks", parent);
        tracer.attr_str(span, "stage", &stage);
        tracer.attr_u64(span, "task", task as u64);
        tracer.attr_u64(span, "attempt", attempt);
        tracer.attr_str(span, "fleet", fleet);
        span
    }

    /// Issues a storage request from its spec, remembering it so a fault
    /// can re-issue it after backoff. All env storage traffic flows
    /// through here.
    fn issue_storage(&mut self, spec: StorageSpec, attempts: u32, route: Route) -> OpId {
        // A decentralized pool's dedicated master must stay out of the
        // data path entirely; any op issued from its host is counted so
        // the chaos suite can assert the count stays zero.
        let from_dc_master = self.pools.iter().any(|p| {
            p.cfg.recovery == RecoveryMode::Decentralized
                && !p.consolidated()
                && p.master.as_ref().is_some_and(|m| m.host == spec.host())
        });
        if from_dc_master {
            self.recovery_stats.master_data_ops += 1;
        }
        // Storage is charged synchronously at issue time; bill it to the
        // issuing route's job so concurrent jobs attribute correctly.
        if let Some(job) = Self::route_job(&route) {
            let label = self.jobs[job].name.clone();
            self.world.set_bill_label(label);
        }
        let parent = self.route_span(&route);
        self.world.set_trace_parent(parent);
        let op = match &spec {
            StorageSpec::Get { host, bucket, key } => {
                self.world.get_object(*host, bucket, key)
            }
            StorageSpec::Put {
                host,
                bucket,
                key,
                body,
            } => self.world.put_object(*host, bucket, key, body.clone()),
            StorageSpec::List {
                host,
                bucket,
                prefix,
            } => self.world.list_objects(*host, bucket, prefix),
            StorageSpec::Delete { host, bucket, key } => {
                self.world.delete_object(*host, bucket, key)
            }
        };
        self.world.set_trace_parent(SpanId::NONE);
        self.op_specs.insert(op, (spec, attempts));
        self.op_routes.insert(op, route);
        op
    }

    /// The job a route belongs to, if any.
    fn route_job(route: &Route) -> Option<usize> {
        match route {
            Route::Task { job, .. }
            | Route::InputPut { job, .. }
            | Route::JobSetup { job }
            | Route::Poll { job }
            | Route::List { job }
            | Route::Collect { job, .. }
            | Route::Push { job, .. }
            | Route::MasterNotify { job }
            | Route::RetryTask { job, .. }
            | Route::Checkpoint { job, .. }
            | Route::Readopt { job, .. }
            | Route::DcBundle { job, .. }
            | Route::DcClaim { job, .. }
            | Route::DcCounter { job, .. } => Some(*job),
            _ => None,
        }
    }

    /// A storage op came back with an injected fault (transient 5xx or
    /// SlowDown). Monitor ops retry indefinitely — a polling loop just
    /// polls again; everything else obeys the job's retry budget and
    /// escalates to a task-level retry when exhausted.
    fn on_storage_faulted(&mut self, op: OpId, route: Route, spec: Option<(StorageSpec, u32)>) {
        let Some((spec, attempts)) = spec else {
            unreachable!("faulted op without a stored spec")
        };
        let Some(job) = Self::route_job(&route) else {
            unreachable!("faulted op routed to {route:?}")
        };
        if self.jobs[job].is_finished() {
            return;
        }
        let policy = self.jobs[job].retry.clone();
        // Recovery control traffic (checkpoints, re-adoption fetches,
        // completion counters) retries indefinitely like the monitor:
        // losing one to a transient must not fail a task attempt.
        let monitor = matches!(
            route,
            Route::List { .. }
                | Route::Collect { .. }
                | Route::Checkpoint { .. }
                | Route::Readopt { .. }
                | Route::DcBundle { .. }
                | Route::DcClaim { .. }
                | Route::DcCounter { .. }
        );
        if !monitor && !policy.allows_retry(attempts) {
            self.world.fault_ledger_mut().attempts_exhausted += 1;
            match route {
                Route::Task { job, task } | Route::InputPut { job, task } => {
                    self.task_attempt_failed(job, task, AttemptFailure::StorageExhausted);
                }
                other => unreachable!("storage budget exhausted on {other:?}"),
            }
            return;
        }
        self.world.fault_ledger_mut().storage_retries += 1;
        let retry_now = self.world.now();
        self.world
            .tracer_mut()
            .instant(retry_now, "storage-retry", "retry", "retries");
        // For task-logic ops, the faulted op STAYS in the attempt's
        // pending map as a placeholder (siblings of a multi-op action
        // must not see the map drain and assemble a holey result); the
        // retry swaps in its replacement.
        let (pending_slot, task_attempt) = match &route {
            Route::Task { job, task } => {
                let t = &mut self.jobs[*job].tasks[*task];
                let index = t.run.as_ref().and_then(|r| r.pending.get(&op).copied());
                (index.map(|i| (op, i)), t.attempts)
            }
            _ => (None, 0),
        };
        let backoff = policy
            .jittered_backoff_secs(attempts.min(policy.max_attempts.max(1)), op.index());
        self.set_timer(
            SimDuration::from_secs_f64(backoff),
            Route::RetryStorage {
                spec,
                attempts,
                inner: Box::new(route),
                pending_slot,
                task_attempt,
            },
        );
    }

    /// A task attempt failed (sandbox death, exhausted storage budget, or
    /// straggler abandonment): tear the attempt down and either schedule
    /// a re-dispatch or fail the job when the budget is spent.
    fn task_attempt_failed(&mut self, job: usize, task: usize, why: AttemptFailure) {
        if self.jobs[job].is_finished() {
            return;
        }
        self.clear_task_attempt(job, task, why);
        let attempts = self.jobs[job].tasks[task].attempts;
        let policy = self.jobs[job].retry.clone();
        if !policy.allows_retry(attempts) {
            self.world.fault_ledger_mut().attempts_exhausted += 1;
            let err = ExecError::AttemptsExhausted {
                what: format!("task {task} of job '{}'", self.jobs[job].name),
                attempts: attempts.max(1),
            };
            self.complete_job(job, Some(err));
            return;
        }
        match why {
            AttemptFailure::Straggler => {
                self.world.fault_ledger_mut().stragglers_redispatched += 1;
            }
            _ => self.world.fault_ledger_mut().task_retries += 1,
        }
        if self.world.tracer().is_enabled() {
            let now = self.world.now();
            let name = match why {
                AttemptFailure::Straggler => format!("straggler task {task}"),
                _ => format!("retry task {task}"),
            };
            self.world.tracer_mut().instant(now, &name, "retry", "retries");
        }
        let backoff = policy.jittered_backoff_secs(
            attempts.max(1),
            ((job as u64) << 32) | task as u64,
        );
        self.set_timer(
            SimDuration::from_secs_f64(backoff),
            Route::RetryTask {
                job,
                task,
                attempt: attempts,
            },
        );
    }

    /// Drops every trace of a task's current attempt: pending op routes,
    /// the run, the sandbox (abandoned unless already dead) and the
    /// worker slot (its process goes back to popping).
    fn clear_task_attempt(&mut self, job: usize, task: usize, why: AttemptFailure) {
        if let Some(mut run) = self.jobs[job].tasks[task].run.take() {
            let ops: Vec<OpId> = run.pending.keys().copied().collect();
            for op in ops {
                self.op_routes.remove(&op);
                self.op_specs.remove(&op);
            }
            self.end_io_busy(&mut run);
        }
        if let Some(sandbox) = self.jobs[job].tasks[task].sandbox.take() {
            self.sandbox_routes.remove(&sandbox);
            if why != AttemptFailure::SandboxDead {
                // Abandon the still-running sandbox: billed (AWS bills
                // failed executions) and booked as waste.
                self.world.faas_abandon(sandbox);
            }
        }
        if let Some((vm_idx, proc)) = self.jobs[job].tasks[task].worker.take() {
            // The freed worker process fetches its next bundle (this
            // task's own requeued bundle arrives only after backoff).
            if let JobBackend::Standalone { pool } = self.jobs[job].backend {
                self.worker_pop(pool, vm_idx, proc);
            }
        }
        let now = self.world.now();
        let span = std::mem::replace(&mut self.jobs[job].tasks[task].span, SpanId::NONE);
        let tracer = self.world.tracer_mut();
        let abandoned = match why {
            AttemptFailure::SandboxDead => "sandbox-dead",
            AttemptFailure::StorageExhausted => "storage-exhausted",
            AttemptFailure::Straggler => "straggler",
        };
        tracer.attr_str(span, "abandoned", abandoned);
        tracer.end(span, now);
        self.jobs[job].tasks[task].phase = TaskPhase::Queued;
        self.jobs[job].tasks[task].started_at = None;
    }

    fn set_timer(&mut self, delay: SimDuration, route: Route) {
        let tag = self.next_timer;
        self.next_timer += 1;
        self.timer_routes.insert(tag, route);
        self.world.timer(delay, tag);
    }

    fn job_activity(&mut self, delta: i64) {
        let now = self.world.now();
        let was = self.active_jobs;
        self.active_jobs = (self.active_jobs as i64 + delta) as usize;
        // The scheduler burns roughly one vCPU while any job is in
        // flight (dispatching, polling, collecting).
        if was == 0 && self.active_jobs > 0 {
            self.world
                .cpu_monitor_mut()
                .add_busy(self.scheduler_fleet, now, 1.0);
        } else if was > 0 && self.active_jobs == 0 {
            self.world
                .cpu_monitor_mut()
                .add_busy(self.scheduler_fleet, now, -1.0);
        }
    }

    // ------------------------------------------------------------------
    // FaaS backend
    // ------------------------------------------------------------------

    fn dispatch_faas(&mut self, job: usize, memory_mb: u32, fetch_input: bool, fleet: &str) {
        let n = self.jobs[job].inputs.len();
        for task in 0..n {
            if self.jobs[job].tasks[task].held {
                continue; // gated; dispatched on release
            }
            self.dispatch_faas_task(job, task, memory_mb, fetch_input, fleet);
        }
    }

    /// Dispatches (or re-dispatches) one FaaS task. Re-uploading the
    /// input bundle on retries is idempotent and covers the case where
    /// the original upload itself was lost.
    fn dispatch_faas_task(
        &mut self,
        job: usize,
        task: usize,
        memory_mb: u32,
        fetch_input: bool,
        fleet: &str,
    ) {
        if fetch_input {
            // Upload the input bundle first; invoke on completion so
            // the sandbox never races its own input.
            let key = self.jobs[job].input_key(task);
            let body = ObjectBody::real(self.jobs[job].inputs[task].encode());
            let client = self.world.client_host();
            let bucket = self.jobs[job].bucket.clone();
            self.issue_storage(
                StorageSpec::Put {
                    host: client,
                    bucket,
                    key,
                    body,
                },
                1,
                Route::InputPut { job, task },
            );
        } else {
            self.invoke_task(job, task, memory_mb, fleet);
        }
    }

    fn invoke_task(&mut self, job: usize, task: usize, memory_mb: u32, fleet: &str) {
        let span = self.begin_attempt_span(job, task, fleet);
        // The sandbox captures the label at invoke time and bills its
        // whole execution to this job, however late it retires.
        let label = self.jobs[job].name.clone();
        self.world.set_bill_label(label);
        self.world.set_trace_parent(span);
        let sandbox = self.world.faas_invoke(memory_mb, fleet);
        self.world.set_trace_parent(SpanId::NONE);
        let now = self.world.now();
        let t = &mut self.jobs[job].tasks[task];
        t.sandbox = Some(sandbox);
        t.phase = TaskPhase::Starting;
        t.attempts += 1;
        t.started_at = Some(now);
        t.span = span;
        self.sandbox_routes
            .insert(sandbox, Route::Task { job, task });
    }

    fn on_sandbox_up(&mut self, route: Route, sandbox: SandboxId) {
        let Route::Task { job, task } = route else {
            unreachable!("sandbox route is always a task")
        };
        if self.jobs[job].is_finished() {
            // Job failed while this sandbox was starting; bill and drop.
            self.sandbox_routes.remove(&sandbox);
            self.world.faas_release(sandbox);
            return;
        }
        let host = self.world.sandbox_host(sandbox);
        let fetch = matches!(
            self.jobs[job].backend,
            JobBackend::Faas { fetch_input: true, .. }
        );
        if fetch {
            self.jobs[job].tasks[task].phase = TaskPhase::FetchingInput;
            let bucket = self.jobs[job].bucket.clone();
            let key = self.jobs[job].input_key(task);
            let op = self.issue_storage(
                StorageSpec::Get { host, bucket, key },
                1,
                Route::Task { job, task },
            );
            // Remember the host for when the input arrives; track the
            // GET so an attempt teardown cleans its route up.
            let mut run = TaskRun::new(
                // Placeholder logic; replaced at start. Using the factory
                // here would double-construct.
                crate::task::ScriptTask::new().boxed(),
                host,
                None,
            );
            run.pending.insert(op, 0);
            self.jobs[job].tasks[task].run = Some(run);
        } else {
            let input = self.jobs[job].inputs[task].clone();
            self.start_task(job, task, host, None, &input);
        }
    }

    fn start_task(
        &mut self,
        job: usize,
        task: usize,
        host: HostId,
        kv: Option<KvId>,
        input: &Payload,
    ) {
        let logic = (self.jobs[job].factory)(input);
        let mut run = TaskRun::new(logic, host, kv);
        self.jobs[job].tasks[task].phase = TaskPhase::Running;
        let step = run.logic.on_start(input);
        self.apply_step(job, task, run, step);
    }

    /// Applies a task step: issues the action's ops or finishes the task.
    fn apply_step(&mut self, job: usize, task: usize, mut run: TaskRun, step: TaskStep) {
        match step {
            TaskStep::Act(action) => {
                match self.issue_action(job, task, &mut run, action) {
                    Ok(()) => self.jobs[job].tasks[task].run = Some(run),
                    Err(err) => self.fail_task(job, task, run, err.to_string()),
                }
            }
            TaskStep::Finish(payload) => {
                self.jobs[job].tasks[task].run = Some(run);
                self.finish_task(job, task, payload);
            }
            TaskStep::Fail(msg) => self.fail_task(job, task, run, msg),
        }
    }

    fn issue_action(
        &mut self,
        job: usize,
        task: usize,
        run: &mut TaskRun,
        action: Action,
    ) -> Result<(), ExecError> {
        let host = run.host;
        run.shape = PendingShape::Single;
        let route = Route::Task { job, task };
        // Data-path actions burn partial CPU for (de)serialisation while
        // the transfer is in flight (accounting only).
        let overlapped = !matches!(action, Action::Compute { .. } | Action::Sleep { .. });
        if overlapped {
            let frac = self.jobs[job].io_overlap;
            if frac > 0.0 {
                self.world.task_io_busy(host, frac);
                run.io_busy = frac;
            }
        }
        match action {
            Action::Compute { cpu_secs } => {
                let op = self.world.compute(host, cpu_secs);
                run.pending.insert(op, 0);
                self.op_routes.insert(op, route);
            }
            Action::Sleep { secs } => {
                let op = self.world.sleep(SimDuration::from_secs_f64(secs));
                run.pending.insert(op, 0);
                self.op_routes.insert(op, route);
            }
            Action::Get { bucket, key } => {
                let op = self.issue_storage(
                    StorageSpec::Get { host, bucket, key },
                    1,
                    route,
                );
                run.pending.insert(op, 0);
            }
            Action::Put { bucket, key, body } => {
                let op = self.issue_storage(
                    StorageSpec::Put {
                        host,
                        bucket,
                        key,
                        body,
                    },
                    1,
                    route,
                );
                run.pending.insert(op, 0);
            }
            Action::Delete { bucket, key } => {
                let op = self.issue_storage(
                    StorageSpec::Delete { host, bucket, key },
                    1,
                    route,
                );
                run.pending.insert(op, 0);
            }
            Action::List { bucket, prefix } => {
                let op = self.issue_storage(
                    StorageSpec::List {
                        host,
                        bucket,
                        prefix,
                    },
                    1,
                    route,
                );
                run.pending.insert(op, 0);
            }
            Action::GetMany { bucket, keys } => {
                assert!(!keys.is_empty(), "GetMany with no keys");
                run.shape = PendingShape::Multi {
                    results: vec![None; keys.len()],
                    puts: false,
                };
                for (i, key) in keys.into_iter().enumerate() {
                    let op = self.issue_storage(
                        StorageSpec::Get {
                            host,
                            bucket: bucket.clone(),
                            key,
                        },
                        1,
                        route.clone(),
                    );
                    run.pending.insert(op, i);
                }
            }
            Action::PutMany { bucket, entries } => {
                assert!(!entries.is_empty(), "PutMany with no entries");
                run.shape = PendingShape::Multi {
                    results: vec![None; entries.len()],
                    puts: true,
                };
                for (i, (key, body)) in entries.into_iter().enumerate() {
                    let op = self.issue_storage(
                        StorageSpec::Put {
                            host,
                            bucket: bucket.clone(),
                            key,
                            body,
                        },
                        1,
                        route.clone(),
                    );
                    run.pending.insert(op, i);
                }
            }
            Action::KvGet { key } => {
                let kv = run.kv.ok_or_else(|| {
                    ExecError::Unsupported("KV access outside the serverful backend".into())
                })?;
                self.world.set_trace_parent(self.task_span(job, task));
                let op = self.world.kv_get(host, kv, &key);
                self.world.set_trace_parent(SpanId::NONE);
                run.pending.insert(op, 0);
                self.op_routes.insert(op, route);
            }
            Action::KvPut { key, body } => {
                let kv = run.kv.ok_or_else(|| {
                    ExecError::Unsupported("KV access outside the serverful backend".into())
                })?;
                self.world.set_trace_parent(self.task_span(job, task));
                let op = self.world.kv_put(host, kv, &key, body);
                self.world.set_trace_parent(SpanId::NONE);
                run.pending.insert(op, 0);
                self.op_routes.insert(op, route);
            }
        }
        Ok(())
    }

    /// An op belonging to a task (either its logic or its result write)
    /// completed.
    fn on_task_op(&mut self, job: usize, task: usize, op: OpId, outcome: OpOutcome) {
        if self.jobs[job].is_finished() {
            return;
        }
        // The task's host may have died at this very timestamp with its
        // failure notification still queued behind this op: issuing the
        // next action would hit a dead host. Drop the completion — the
        // pending SandboxFailed/VmFailed tears the attempt down.
        if let Some(run) = &self.jobs[job].tasks[task].run {
            if !self.world.host_alive(run.host) {
                return;
            }
        }
        match &self.jobs[job].tasks[task].phase {
            TaskPhase::FetchingInput => {
                let body = match outcome {
                    OpOutcome::GetOk { body } => body,
                    OpOutcome::GetMissing => {
                        let run = self.jobs[job].tasks[task].run.take().unwrap();
                        self.fail_task(job, task, run, "input bundle missing".into());
                        return;
                    }
                    other => unreachable!("input fetch yielded {other:?}"),
                };
                let run = self.jobs[job].tasks[task].run.take().unwrap();
                let host = run.host;
                let input = match body.bytes() {
                    Some(bytes) => match Payload::decode(bytes) {
                        Ok(p) => p,
                        Err(e) => {
                            let run2 = TaskRun::new(crate::task::ScriptTask::new().boxed(), host, None);
                            self.fail_task(job, task, run2, e.to_string());
                            return;
                        }
                    },
                    None => {
                        // Opaque input bundle: fall back to the in-memory
                        // input (used by paper-scale profile runs).
                        self.jobs[job].inputs[task].clone()
                    }
                };
                drop(run);
                self.start_task(job, task, host, None, &input);
            }
            TaskPhase::Running => {
                let mut run = self.jobs[job].tasks[task].run.take().unwrap();
                // The action is completing (or progressing); once the
                // last op lands, the overlapped-I/O accounting ends.
                let body = match outcome {
                    OpOutcome::GetOk { body } => Some(body),
                    OpOutcome::GetMissing => {
                        run.pending.remove(&op);
                        self.end_io_busy(&mut run);
                        let step = run.logic.on_action(ActionOutcome::MissingObject);
                        self.apply_step(job, task, run, step);
                        return;
                    }
                    OpOutcome::ListOk { keys } => {
                        run.pending.remove(&op);
                        self.end_io_busy(&mut run);
                        let step = run.logic.on_action(ActionOutcome::Keys(keys));
                        self.apply_step(job, task, run, step);
                        return;
                    }
                    OpOutcome::KvValue { body } => {
                        run.pending.remove(&op);
                        self.end_io_busy(&mut run);
                        let step = run.logic.on_action(ActionOutcome::KvValue(body));
                        self.apply_step(job, task, run, step);
                        return;
                    }
                    _ => None,
                };
                match run.complete_op(op, body) {
                    Some(assembled) => {
                        self.end_io_busy(&mut run);
                        let step = run.logic.on_action(assembled);
                        self.apply_step(job, task, run, step);
                    }
                    None => {
                        // More ops of a multi-action outstanding.
                        self.jobs[job].tasks[task].run = Some(run);
                    }
                }
            }
            TaskPhase::WritingResult => {
                debug_assert!(matches!(outcome, OpOutcome::PutOk));
                self.task_done(job, task);
            }
            other => unreachable!("op completed in phase {other:?}"),
        }
    }

    /// Task logic finished: write the encoded result to object storage.
    fn finish_task(&mut self, job: usize, task: usize, payload: Payload) {
        let host = self.jobs[job].tasks[task].run.as_ref().unwrap().host;
        self.jobs[job].tasks[task].phase = TaskPhase::WritingResult;
        self.jobs[job].results[task] = None; // filled by the monitor
        let bucket = self.jobs[job].bucket.clone();
        let key = self.jobs[job].result_key(task);
        let body = ObjectBody::real(payload.encode());
        let op = self.issue_storage(
            StorageSpec::Put {
                host,
                bucket,
                key,
                body,
            },
            1,
            Route::Task { job, task },
        );
        // Track the write in the pending map so an attempt teardown
        // (worker loss, straggler) cleans its route up too.
        if let Some(run) = self.jobs[job].tasks[task].run.as_mut() {
            run.pending.insert(op, 0);
        }
    }

    /// Result written: retire the task's host slot.
    fn task_done(&mut self, job: usize, task: usize) {
        let now = self.world.now();
        let span = std::mem::replace(&mut self.jobs[job].tasks[task].span, SpanId::NONE);
        self.world.tracer_mut().end(span, now);
        self.jobs[job].tasks[task].phase = TaskPhase::Done;
        self.jobs[job].done_tasks += 1;
        if let Some(sandbox) = self.jobs[job].tasks[task].sandbox {
            self.sandbox_routes.remove(&sandbox);
            self.world.faas_release(sandbox);
        }
        if let Some((vm_idx, proc)) = self.jobs[job].tasks[task].worker {
            if let JobBackend::Standalone { pool } = self.jobs[job].backend {
                // Decentralized continuation passing: the completion
                // counter goes to storage before the process moves on.
                if self.pools[pool].cfg.recovery == RecoveryMode::Decentralized {
                    self.dc_write_counter(pool, job, task, vm_idx);
                }
                // The worker process fetches its next logical function.
                self.worker_pop(pool, vm_idx, proc);
            }
        }
    }

    /// Ends the overlapped-I/O busy accounting of a task's action.
    fn end_io_busy(&mut self, run: &mut TaskRun) {
        if run.io_busy > 0.0 {
            self.world.task_io_busy(run.host, -run.io_busy);
            run.io_busy = 0.0;
        }
    }

    fn fail_task(&mut self, job: usize, task: usize, mut run: TaskRun, msg: String) {
        self.end_io_busy(&mut run);
        drop(run);
        let now = self.world.now();
        let span = std::mem::replace(&mut self.jobs[job].tasks[task].span, SpanId::NONE);
        let tracer = self.world.tracer_mut();
        tracer.attr_str(span, "failed", &msg);
        tracer.end(span, now);
        self.jobs[job].tasks[task].phase = TaskPhase::Failed(msg.clone());
        if let Some(sandbox) = self.jobs[job].tasks[task].sandbox {
            self.sandbox_routes.remove(&sandbox);
            self.world.faas_release(sandbox);
        }
        let err = ExecError::TaskFailed(format!("task {task}: {msg}"));
        self.complete_job(job, Some(err));
    }

    // ------------------------------------------------------------------
    // Completion monitor (shared: client for FaaS, master for VMs)
    // ------------------------------------------------------------------

    fn schedule_poll(&mut self, job: usize) {
        let interval = SimDuration::from_secs_f64(self.jobs[job].poll_interval);
        self.jobs[job].monitor = MonitorState::Sleeping;
        self.set_timer(interval, Route::Poll { job });
    }

    fn on_poll(&mut self, job: usize) {
        if self.jobs[job].is_finished() {
            return;
        }
        // A poll timer of a monitor that since died (master loss) or
        // was restarted by a checkpoint replay must not fork the loop:
        // exactly one LIST cycle may be in flight.
        if !matches!(self.jobs[job].monitor, MonitorState::Sleeping)
            || !self.world.host_alive(self.jobs[job].monitor_host)
        {
            return;
        }
        self.check_stragglers(job);
        if self.jobs[job].is_finished() {
            return; // straggler handling may exhaust a task's budget
        }
        self.jobs[job].monitor = MonitorState::Listing;
        let host = self.jobs[job].monitor_host;
        let bucket = self.jobs[job].bucket.clone();
        let prefix = self.jobs[job].result_prefix();
        self.issue_storage(
            StorageSpec::List {
                host,
                bucket,
                prefix,
            },
            1,
            Route::List { job },
        );
    }

    /// Speculative re-execution: on each poll, FaaS task attempts older
    /// than the straggler timeout are abandoned (billed, booked as waste)
    /// and re-dispatched. Disabled unless the policy sets a timeout.
    fn check_stragglers(&mut self, job: usize) {
        let Some(timeout) = self.jobs[job].retry.straggler_timeout_secs else {
            return;
        };
        if !matches!(self.jobs[job].backend, JobBackend::Faas { .. }) {
            return;
        }
        let now = self.world.now();
        let policy = self.jobs[job].retry.clone();
        let late: Vec<usize> = self
            .jobs[job]
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                // Only attempts whose sandbox has started can be safely
                // abandoned (cold starts are left to finish).
                matches!(
                    t.phase,
                    TaskPhase::FetchingInput | TaskPhase::Running | TaskPhase::WritingResult
                ) && policy.allows_retry(t.attempts)
                    && t.started_at
                        .is_some_and(|s| (now - s).as_secs_f64() > timeout)
            })
            .map(|(i, _)| i)
            .collect();
        for task in late {
            self.task_attempt_failed(job, task, AttemptFailure::Straggler);
            if self.jobs[job].is_finished() {
                return;
            }
        }
    }

    fn on_list(&mut self, job: usize, outcome: OpOutcome) {
        if self.jobs[job].is_finished() {
            return;
        }
        // The listing master died while the op was in flight, or a
        // checkpoint replay already restarted the loop: drop the reply.
        if !matches!(self.jobs[job].monitor, MonitorState::Listing)
            || !self.world.host_alive(self.jobs[job].monitor_host)
        {
            return;
        }
        let OpOutcome::ListOk { keys } = outcome else {
            unreachable!("list op yielded a non-list outcome")
        };
        let total = self.jobs[job].tasks.len();
        if keys.len() < total {
            self.schedule_poll(job);
            return;
        }
        // All results present: collect them.
        let host = self.jobs[job].monitor_host;
        let bucket = self.jobs[job].bucket.clone();
        let mut outstanding = 0;
        for key in keys {
            let Some(task) = self.jobs[job].task_of_result_key(&key) else {
                continue;
            };
            self.issue_storage(
                StorageSpec::Get {
                    host,
                    bucket: bucket.clone(),
                    key,
                },
                1,
                Route::Collect { job, task },
            );
            outstanding += 1;
        }
        self.jobs[job].monitor = MonitorState::Collecting { outstanding };
    }

    fn on_collect(&mut self, job: usize, task: usize, outcome: OpOutcome) {
        if self.jobs[job].is_finished() {
            return;
        }
        // Collector died mid-gather (master loss): the replacement's
        // replay restarts the whole monitor cycle from a fresh LIST.
        if !self.world.host_alive(self.jobs[job].monitor_host) {
            return;
        }
        let body = match outcome {
            OpOutcome::GetOk { body } => body,
            other => unreachable!("collect yielded {other:?}"),
        };
        let decoded = match body.bytes() {
            Some(bytes) => Payload::decode(bytes),
            None => Ok(Payload::Opaque { size: body.len() }),
        };
        match decoded {
            Ok(p) => self.jobs[job].results[task] = Some(p),
            Err(e) => {
                self.complete_job(job, Some(e));
                return;
            }
        }
        let MonitorState::Collecting { outstanding } = &mut self.jobs[job].monitor else {
            // A straggling GET of a monitor cycle that a checkpoint
            // replay already superseded.
            return;
        };
        *outstanding -= 1;
        if *outstanding == 0 {
            self.jobs[job].monitor = MonitorState::Done;
            match self.jobs[job].backend {
                JobBackend::Faas { .. } => self.complete_job(job, None),
                JobBackend::Standalone { pool } => {
                    if self.pools[pool].cfg.recovery == RecoveryMode::Decentralized {
                        // The client collected its own results; there is
                        // no master to hear from.
                        self.complete_job(job, None);
                    } else {
                        // Master -> client SSH notification latency.
                        self.set_timer(
                            SimDuration::from_millis(60),
                            Route::MasterNotify { job },
                        );
                    }
                }
            }
        }
    }

    fn complete_job(&mut self, job: usize, error: Option<ExecError>) {
        if self.jobs[job].is_finished() {
            return;
        }
        let now = self.world.now();
        self.jobs[job].finished_at = Some(now);
        self.jobs[job].error = error;
        let span = self.jobs[job].span;
        if self.world.tracer().is_enabled() {
            if let Some(err) = &self.jobs[job].error {
                let msg = err.to_string();
                self.world.tracer_mut().attr_str(span, "error", &msg);
            }
        }
        self.world.tracer_mut().end(span, now);
        self.job_activity(-1);
        let j = &self.jobs[job];
        self.timeline.record(StageSpan {
            name: j.name.clone(),
            start: j.first_release_at.unwrap_or(j.submitted_at),
            end: now,
            tasks: j.tasks.len(),
            stateful: j.stateful,
        });
        if let JobBackend::Standalone { pool } = self.jobs[job].backend {
            self.pool_job_finished(pool, job);
        }
    }

    // ------------------------------------------------------------------
    // Serverful pool machinery
    // ------------------------------------------------------------------

    fn pool_try_start(&mut self, pool: usize) {
        if self.pools[pool].active.is_some() {
            return;
        }
        let Some(&job) = self.pools[pool].queue.front() else {
            return;
        };
        // Proactive provisioning: figure out the fleet this job needs.
        if !self.pool_ensure_infra(pool, job) {
            return; // infra still coming up; retried on VM readiness
        }
        self.pools[pool].queue.pop_front();
        self.pools[pool].active = Some(job);
        // A job starting closes any idle window: pending keep-alive
        // timers must not tear down the pool under it.
        self.pools[pool].idle_epoch += 1;
        self.pool_start_job(pool, job);
    }

    /// Provisions (or re-provisions) a pool VM slot, protecting master
    /// hosts from injected VM loss (the paper's design assumes the
    /// orchestrating master stays up; boot failures still apply).
    ///
    /// `preemptions` is the slot's spot-reclaim history for the current
    /// job: under [`BidPolicy::Spot`] a worker slot bids spot until that
    /// history exhausts the policy's budget, then falls back to
    /// on-demand. Masters (including the consolidated single VM, which
    /// doubles as one) always run on-demand.
    fn pool_provision(
        &mut self,
        pool: usize,
        slot: PoolSlot,
        itype: cloudsim::InstanceType,
        provision_attempts: u32,
        preemptions: u32,
    ) {
        let fleet_name = self.pools[pool].fleet_name.clone();
        // Pool VMs outlive individual jobs (reuse, keep-alive), so their
        // uptime bills under the pool's fleet label, not whichever job
        // happens to be current when they terminate.
        self.world.set_bill_label(fleet_name.clone());
        let is_master_vm = match slot {
            PoolSlot::Master => true,
            PoolSlot::Worker(0) => self.pools[pool].consolidated(),
            _ => false,
        };
        let tenancy = match self.pools[pool].cfg.bid {
            crate::sizing::BidPolicy::Spot { max_preemptions }
                if !is_master_vm && preemptions < max_preemptions =>
            {
                Tenancy::Spot
            }
            _ => Tenancy::OnDemand,
        };
        let vm = self.world.vm_provision_with(&itype, &fleet_name, tenancy);
        let host = self.world.vm_host(vm);
        self.pools[pool].epoch_counter += 1;
        let epoch = self.pools[pool].epoch_counter;
        let pv = PoolVm {
            vm,
            host,
            itype,
            phase: VmPhase::Booting,
            epoch,
            provision_attempts,
            preemptions,
        };
        match slot {
            PoolSlot::Master => self.pools[pool].master = Some(pv),
            PoolSlot::Worker(i) => {
                let workers = &mut self.pools[pool].workers;
                if i < workers.len() {
                    workers[i] = pv;
                } else {
                    debug_assert_eq!(i, workers.len());
                    workers.push(pv);
                }
            }
        }
        // Only the paper's Protected stance exempts the master from
        // injected loss; the recovery modes let it die and survive it.
        if is_master_vm && self.pools[pool].cfg.recovery == RecoveryMode::Protected {
            self.world.protect_host(host);
        }
        self.vm_routes.insert(vm, Route::PoolVm { pool, slot, epoch });
    }

    /// Re-provisions any slot left `Dead` by an exhausted replacement
    /// budget, with a fresh budget (called when a new job starts).
    fn pool_replace_dead(&mut self, pool: usize) {
        if let Some(m) = &self.pools[pool].master {
            if m.phase == VmPhase::Dead {
                let itype = m.itype;
                self.pool_provision(pool, PoolSlot::Master, itype, 1, 0);
            }
        }
        let dead: Vec<(usize, cloudsim::InstanceType)> = self.pools[pool]
            .workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.phase == VmPhase::Dead)
            .map(|(i, w)| (i, w.itype))
            .collect();
        for (i, itype) in dead {
            self.pool_provision(pool, PoolSlot::Worker(i), itype, 1, 0);
        }
    }

    /// Ensures master + workers exist and are ready. Returns true when
    /// everything is ready now.
    fn pool_ensure_infra(&mut self, pool: usize, job: usize) -> bool {
        self.pool_replace_dead(pool);
        let consolidated = self.pools[pool].consolidated();
        if consolidated {
            // Single right-sized VM: sizing from the job's input bytes.
            let wanted = match &self.pools[pool].cfg.instance_override {
                Some(name) => *self
                    .world
                    .lookup_instance(name)
                    .unwrap_or_else(|| panic!("unknown instance type {name}")),
                None => *self.pools[pool]
                    .cfg
                    .sizing
                    .choose_from(self.world.catalog(), self.jobs[job].input_data_size()),
            };
            if self.pools[pool].workers.is_empty() {
                self.pool_provision(pool, PoolSlot::Worker(0), wanted, 1, 0);
                return false;
            }
            // An existing VM is reused only if it is big enough.
            let current = &self.pools[pool].workers[0];
            if current.itype.mem_gib < wanted.mem_gib && current.phase == VmPhase::Ready {
                let old = self.pools[pool].workers.remove(0);
                self.vm_routes.remove(&old.vm);
                self.world.vm_terminate(old.vm);
                self.pools[pool].kv = None;
                return self.pool_ensure_infra(pool, job);
            }
            return self.pools[pool].all_ready();
        }
        // Fleet mode: dedicated master + N workers of a fixed type.
        let ExecMode::Fleet {
            instance_type,
            count,
        } = self.pools[pool].cfg.exec_mode.clone()
        else {
            unreachable!()
        };
        if self.pools[pool].master.is_none() {
            let master_name = self.pools[pool].cfg.master_instance.clone();
            let itype = *self
                .world
                .lookup_instance(&master_name)
                .unwrap_or_else(|| panic!("unknown instance type {master_name}"));
            self.pool_provision(pool, PoolSlot::Master, itype, 1, 0);
        }
        let itype = *self
            .world
            .lookup_instance(&instance_type)
            .unwrap_or_else(|| panic!("unknown instance type {instance_type}"));
        while self.pools[pool].workers.len() < count {
            let slot = self.pools[pool].workers.len();
            self.pool_provision(pool, PoolSlot::Worker(slot), itype, 1, 0);
        }
        self.pools[pool].all_ready()
    }

    fn on_vm_up(&mut self, route: Route, vm: VmId) {
        let Route::PoolVm { pool, slot, epoch } = route else {
            unreachable!("vm route is always a pool vm")
        };
        match self.pool_vm_opt(pool, slot) {
            Some(pv) if pv.epoch == epoch => {}
            _ => {
                // Slot gone (pool shut down) or replaced: the VM is
                // orphaned; stop paying for it.
                self.vm_routes.remove(&vm);
                self.world.vm_terminate(vm);
                return;
            }
        }
        let ssh = self.pools[pool].cfg.ssh_setup;
        self.pool_vm_mut(pool, slot).phase = VmPhase::SshSetup;
        let delay = world_latency(&mut self.world, ssh);
        self.set_timer(delay, Route::PoolVm { pool, slot, epoch });
    }

    fn on_pool_vm_ready(&mut self, pool: usize, slot: PoolSlot, epoch: u64) {
        match self.pool_vm_opt(pool, slot) {
            Some(pv) if pv.epoch == epoch && pv.phase == VmPhase::SshSetup => {
                pv.phase = VmPhase::Ready;
            }
            _ => return, // stale SSH timer of a replaced VM or shut pool
        }
        // The master's KV server starts as soon as its VM is ready.
        let is_master_vm = match slot {
            PoolSlot::Master => true,
            PoolSlot::Worker(0) => self.pools[pool].consolidated(),
            _ => false,
        };
        let kv_dead = self.pools[pool]
            .kv
            .is_some_and(|kv| !self.world.kv_alive(kv));
        if is_master_vm
            && self.pools[pool].cfg.recovery != RecoveryMode::Decentralized
            && (self.pools[pool].kv.is_none() || kv_dead)
        {
            let vm = self.pool_vm_mut(pool, slot).vm;
            let kv = self.world.kv_create(vm);
            self.pools[pool].kv = Some(kv);
        }
        // A replacement master finishing SSH setup lets the pending
        // re-adoption proceed (Checkpointed mode).
        if is_master_vm && self.pools[pool].recovering {
            if let Some(gate) = self.pools[pool].readopt_gate.clone() {
                gate.open();
            }
        }
        self.pool_try_start(pool);
        // A replacement worker joining mid-job starts its processes
        // immediately (the initial cohort is started by on_push_done).
        if let PoolSlot::Worker(i) = slot {
            if self.pools[pool].active.is_some() && self.pools[pool].pushes_outstanding == 0 {
                let vcpus = self.pools[pool].workers[i].itype.vcpus as usize;
                for proc in 0..vcpus {
                    self.worker_pop(pool, i, proc);
                }
            }
        }
    }

    /// A pool VM failed: boot failure, mid-job loss or spot preemption.
    /// Replacement VMs are provisioned into the same slot while the
    /// budget lasts; a lost worker's in-flight tasks are requeued on the
    /// master's KV queue. A preempted slot's reclaim history advances,
    /// and the replacement falls back to on-demand once the bid policy's
    /// budget is spent (ledgered as a spot fallback).
    fn on_pool_vm_failed(&mut self, route: Route, fault: FaultKind) {
        let Route::PoolVm { pool, slot, epoch } = route else {
            unreachable!("vm route is always a pool vm")
        };
        let preempted = fault == FaultKind::SpotPreemption;
        let (itype, attempts, preemptions, was_ready) = match self.pool_vm_opt(pool, slot) {
            Some(pv) if pv.epoch == epoch => {
                let was_ready = pv.phase == VmPhase::Ready;
                pv.phase = VmPhase::Dead;
                if preempted {
                    pv.preemptions += 1;
                }
                (pv.itype, pv.provision_attempts, pv.preemptions, was_ready)
            }
            // Stale failure of a replaced VM or a shut-down pool.
            _ => return,
        };
        if preempted {
            if let crate::sizing::BidPolicy::Spot { max_preemptions } = self.pools[pool].cfg.bid
            {
                // The reclaim that exhausts the budget flips this slot's
                // replacements to on-demand; count the concession once.
                if preemptions == max_preemptions {
                    self.world.fault_ledger_mut().spot_fallbacks += 1;
                }
            }
        }
        if let PoolSlot::Worker(i) = slot {
            self.pools[pool].idle_procs.retain(|&(v, _)| v != i);
            if was_ready {
                self.pool_worker_lost(pool, i);
            }
        }
        let is_master_vm = match slot {
            PoolSlot::Master => true,
            PoolSlot::Worker(0) => self.pools[pool].consolidated(),
            _ => false,
        };
        if is_master_vm && was_ready {
            let mode = self.pools[pool].cfg.recovery;
            self.on_master_lost(pool, mode);
            if mode == RecoveryMode::Decentralized && matches!(slot, PoolSlot::Master) {
                // A dedicated decentralized master is pure overhead once
                // the job is submitted: don't even replace it.
                return;
            }
        }
        let budget = self.pools[pool].cfg.max_provision_attempts.max(1);
        if attempts >= budget {
            self.world.fault_ledger_mut().attempts_exhausted += 1;
            self.fail_pool_job(
                pool,
                ExecError::InfraFailed(format!(
                    "pool VM slot {slot:?} failed {attempts} provisioning attempts"
                )),
            );
            return;
        }
        self.world.fault_ledger_mut().vm_replacements += 1;
        self.pool_provision(pool, slot, itype, attempts + 1, preemptions);
    }

    /// The pool's acting master VM (and with it the KV store and the
    /// job monitor) was lost mid-run. What happens next is the whole
    /// point of [`crate::recovery`].
    fn on_master_lost(&mut self, pool: usize, mode: RecoveryMode) {
        let now = self.world.now();
        match mode {
            RecoveryMode::Protected => {
                // The paper's stance has no answer: queued bundles died
                // with the KV store and the monitor stops listing. The
                // run stalls, which `run_job` surfaces as an error.
                self.world.tracer_mut().instant(
                    now,
                    "master-lost-unprotected",
                    "recovery",
                    "recovery",
                );
            }
            RecoveryMode::Checkpointed => {
                self.recovery_stats.masters_replaced += 1;
                self.pools[pool].recovering = true;
                self.pools[pool].recovery_episode += 1;
                let episode = self.pools[pool].recovery_episode;
                // The replacement master provisions through the normal
                // slot budget below; once its SSH setup completes,
                // `on_pool_vm_ready` opens this gate and the future
                // queues the checkpoint fetch.
                let gate = self.kernel.gate();
                self.pools[pool].readopt_gate = Some(gate.clone());
                let cmds = Rc::clone(&self.recovery_cmds);
                self.kernel.spawn(async move {
                    gate.wait().await;
                    cmds.borrow_mut()
                        .push_back(RecoveryCmd::Readopt { pool, episode });
                });
                self.world
                    .tracer_mut()
                    .instant(now, "master-lost", "recovery", "recovery");
            }
            RecoveryMode::Decentralized => {
                // Nothing to do: dispatch and continuations live in
                // object storage, and the client collects results.
                self.world.tracer_mut().instant(
                    now,
                    "master-lost-nonevent",
                    "recovery",
                    "recovery",
                );
            }
        }
    }

    /// Requeues every unfinished task that was running on a lost worker
    /// VM. Attempt budgets are charged per task; an exhausted task fails
    /// the job.
    fn pool_worker_lost(&mut self, pool: usize, vm_idx: usize) {
        let Some(job) = self.pools[pool].active else {
            return;
        };
        let lost: Vec<usize> = self.jobs[job]
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                matches!(t.worker, Some((v, _)) if v == vm_idx)
                    && !matches!(t.phase, TaskPhase::Done)
            })
            .map(|(i, _)| i)
            .collect();
        for task in lost {
            if self.jobs[job].is_finished() {
                return;
            }
            let attempts = self.jobs[job].tasks[task].attempts;
            if !self.jobs[job].retry.allows_retry(attempts) {
                self.world.fault_ledger_mut().attempts_exhausted += 1;
                let err = ExecError::AttemptsExhausted {
                    what: format!("task {task} of job '{}'", self.jobs[job].name),
                    attempts: attempts.max(1),
                };
                self.complete_job(job, Some(err));
                return;
            }
            // Tear the attempt down without touching the (dead) worker's
            // process bookkeeping, then push the bundle back.
            self.jobs[job].tasks[task].worker = None;
            self.clear_task_attempt(job, task, AttemptFailure::SandboxDead);
            self.world.fault_ledger_mut().task_retries += 1;
            self.requeue_task(pool, job, task);
        }
    }

    /// Pushes a task's bundle back onto the master's KV queue (worker
    /// loss or a storage-exhausted VM attempt).
    fn requeue_task(&mut self, pool: usize, job: usize, task: usize) {
        if self.pools[pool].cfg.recovery == RecoveryMode::Decentralized {
            self.dc_dispatch_task(pool, job, task);
            return;
        }
        if self.pools[pool].recovering {
            // The replacement master's checkpoint replay re-dispatches
            // everything unacknowledged; queueing now would race it.
            return;
        }
        let Some(kv) = self.pools[pool].kv else {
            return; // pool torn down meanwhile
        };
        if !self.world.kv_alive(kv) {
            // Master (and queue) gone without a recovery mode: the
            // bundle has nowhere to go — the job stalls (Protected).
            return;
        }
        let master = self.pools[pool].master_host();
        let queue = format!("job-{job}");
        let bundle = Payload::List(vec![
            Payload::U64(task as u64),
            self.jobs[job].inputs[task].clone(),
        ]);
        let body = ObjectBody::real(bundle.encode());
        self.world.set_trace_parent(self.jobs[job].span);
        let op = self.world.kv_push(master, kv, &queue, body);
        self.world.set_trace_parent(SpanId::NONE);
        self.op_routes.insert(op, Route::Requeue { pool });
    }

    /// A requeued bundle landed: wake idle worker processes so one of
    /// them picks it up.
    fn on_requeue_done(&mut self, pool: usize) {
        let idle: Vec<(usize, usize)> = self.pools[pool].idle_procs.drain(..).collect();
        for (vm_idx, proc) in idle {
            self.worker_pop(pool, vm_idx, proc);
        }
    }

    /// Fails the pool's current job — or, before any job is active, the
    /// one waiting at the head of the queue — with `err`.
    fn fail_pool_job(&mut self, pool: usize, err: ExecError) {
        if let Some(job) = self.pools[pool].active {
            self.complete_job(job, Some(err));
        } else if let Some(job) = self.pools[pool].queue.pop_front() {
            self.complete_job(job, Some(err));
        }
    }

    fn pool_vm_mut(&mut self, pool: usize, slot: PoolSlot) -> &mut PoolVm {
        self.pool_vm_opt(pool, slot).expect("pool VM slot missing")
    }

    /// The slot's VM, if the slot still exists (pool shutdowns drain the
    /// worker list while replacements may still be booting).
    fn pool_vm_opt(&mut self, pool: usize, slot: PoolSlot) -> Option<&mut PoolVm> {
        match slot {
            PoolSlot::Master => self.pools[pool].master.as_mut(),
            PoolSlot::Worker(i) => self.pools[pool].workers.get_mut(i),
        }
    }

    /// Infra ready: master pushes every task bundle into its KV queue.
    /// Gated tasks are skipped — their bundles arrive one by one through
    /// `release_task` as upstream partitions complete.
    fn pool_start_job(&mut self, pool: usize, job: usize) {
        match self.pools[pool].cfg.recovery {
            RecoveryMode::Decentralized => {
                self.dc_start_job(pool, job);
                return;
            }
            RecoveryMode::Checkpointed => self.start_checkpoint_loop(pool),
            RecoveryMode::Protected => {}
        }
        let kv = self.pools[pool].kv.expect("pool started without KV");
        let master = self.pools[pool].master_host();
        self.jobs[job].monitor_host = master;
        let n = self.jobs[job].inputs.len();
        let queue = format!("job-{job}");
        let ready: Vec<usize> = (0..n)
            .filter(|&t| !self.jobs[job].tasks[t].held)
            .collect();
        self.pools[pool].pushes_outstanding = ready.len();
        self.world.set_trace_parent(self.jobs[job].span);
        for task in ready {
            let bundle = Payload::List(vec![
                Payload::U64(task as u64),
                self.jobs[job].inputs[task].clone(),
            ]);
            let body = ObjectBody::real(bundle.encode());
            let op = self.world.kv_push(master, kv, &queue, body);
            self.op_routes.insert(op, Route::Push { pool, job });
        }
        self.world.set_trace_parent(SpanId::NONE);
        if self.pools[pool].pushes_outstanding == 0 {
            // Fully gated job: workers spin up idle and wait for
            // released bundles.
            self.pool_pushes_complete(pool, job);
        }
    }

    fn on_push_done(&mut self, pool: usize, job: usize) {
        self.pools[pool].pushes_outstanding -= 1;
        if self.pools[pool].pushes_outstanding > 0 {
            return;
        }
        self.pool_pushes_complete(pool, job);
    }

    /// All initially-queued bundles landed: start one worker process per
    /// vCPU of every worker that is up (replacements still booting join
    /// on ready) and arm the master's result monitor.
    fn pool_pushes_complete(&mut self, pool: usize, job: usize) {
        let worker_specs: Vec<(usize, usize)> = self.pools[pool]
            .workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.phase == VmPhase::Ready)
            .flat_map(|(vm_idx, w)| {
                (0..w.itype.vcpus as usize).map(move |proc| (vm_idx, proc))
            })
            .collect();
        for (vm_idx, proc) in worker_specs {
            self.worker_pop(pool, vm_idx, proc);
        }
        // The master begins monitoring result objects (once every gated
        // task has been released).
        self.jobs[job].dispatch_ready = true;
        self.maybe_start_monitor(job);
    }

    fn worker_pop(&mut self, pool: usize, vm_idx: usize, proc: usize) {
        let Some(job) = self.pools[pool].active else {
            return;
        };
        if self.pools[pool].cfg.recovery == RecoveryMode::Decentralized {
            self.worker_claim(pool, job, vm_idx, proc);
            return;
        }
        let Some(kv) = self.pools[pool].kv else {
            return;
        };
        let w = &self.pools[pool].workers[vm_idx];
        if w.phase != VmPhase::Ready {
            return;
        }
        let host = w.host;
        let epoch = w.epoch;
        if !self.world.host_alive(host) {
            return; // VM just died; its VmFailed notification is queued
        }
        if !self.world.kv_alive(kv) {
            // Queue died with the master; idle until recovery (or the
            // stall, under Protected) resolves the run.
            self.pools[pool].idle_procs.push((vm_idx, proc));
            return;
        }
        let queue = format!("job-{job}");
        self.world.set_trace_parent(self.jobs[job].span);
        let op = self.world.kv_pop(host, kv, &queue);
        self.world.set_trace_parent(SpanId::NONE);
        self.op_routes.insert(
            op,
            Route::Pop {
                pool,
                vm_idx,
                proc,
                epoch,
            },
        );
    }

    fn on_pop(
        &mut self,
        pool: usize,
        vm_idx: usize,
        proc: usize,
        epoch: u64,
        outcome: OpOutcome,
    ) {
        let Some(job) = self.pools[pool].active else {
            return;
        };
        let OpOutcome::KvValue { body } = outcome else {
            unreachable!("pop yielded a non-KV outcome")
        };
        let stale = self.pools[pool].workers[vm_idx].epoch != epoch
            || !self.world.host_alive(self.pools[pool].workers[vm_idx].host);
        if stale {
            // Pop issued by a since-lost worker VM (or one whose crash
            // notification is still queued): the popped bundle must not
            // vanish with it — push it back for the others.
            if let Some(body) = body {
                if let Some(kv) = self.pools[pool].kv {
                    let master = self.pools[pool].master_host();
                    let queue = format!("job-{job}");
                    self.world.set_trace_parent(self.jobs[job].span);
                    let op = self.world.kv_push(master, kv, &queue, body);
                    self.world.set_trace_parent(SpanId::NONE);
                    self.op_routes.insert(op, Route::Requeue { pool });
                }
            }
            return;
        }
        let Some(body) = body else {
            // Queue drained; the worker process idles until a requeued
            // bundle wakes it.
            self.pools[pool].idle_procs.push((vm_idx, proc));
            return;
        };
        let bytes = body.bytes().expect("task bundles are always real bytes");
        let bundle = Payload::decode(bytes).expect("task bundle decodes");
        let items = bundle.as_list().expect("bundle is a list");
        let task = items[0].as_u64().expect("bundle[0] is the index") as usize;
        let input = items[1].clone();
        let host = self.pools[pool].workers[vm_idx].host;
        let kv = self.pools[pool].kv;
        let fleet = self.pools[pool].fleet_name.clone();
        let span = self.begin_attempt_span(job, task, &fleet);
        let now = self.world.now();
        let t = &mut self.jobs[job].tasks[task];
        t.worker = Some((vm_idx, proc));
        t.attempts += 1;
        t.started_at = Some(now);
        t.span = span;
        self.start_task(job, task, host, kv, &input);
    }

    // ------------------------------------------------------------------
    // Checkpointed master recovery (RecoveryMode::Checkpointed)
    // ------------------------------------------------------------------

    /// Starts the periodic checkpoint loop as a kernel future. The loop
    /// snapshots once immediately — a replay baseline exists as soon as
    /// the job does, even for jobs shorter than the interval — then
    /// queues a [`RecoveryCmd::Checkpoint`] every interval until its
    /// liveness flag is cleared by `pool_job_finished`.
    fn start_checkpoint_loop(&mut self, pool: usize) {
        if self.pools[pool]
            .ckpt_active
            .as_ref()
            .is_some_and(|f| f.get())
        {
            return; // a loop from the previous job (reuse) is still live
        }
        let flag = Rc::new(Cell::new(true));
        self.pools[pool].ckpt_active = Some(Rc::clone(&flag));
        let interval = SimDuration::from_secs_f64(
            self.pools[pool].cfg.checkpoint_interval_secs.max(0.05),
        );
        let exec = self.kernel.clone();
        let cmds = Rc::clone(&self.recovery_cmds);
        self.kernel.spawn(async move {
            cmds.borrow_mut()
                .push_back(RecoveryCmd::Checkpoint { pool });
            loop {
                exec.sleep(interval).await;
                if !flag.get() {
                    break;
                }
                cmds.borrow_mut()
                    .push_back(RecoveryCmd::Checkpoint { pool });
            }
        });
    }

    /// Snapshots the master's orchestration state to object storage.
    /// Skipped while the master is down or mid-replacement; the PUT pays
    /// state-proportional I/O and bills to the active job.
    fn write_checkpoint(&mut self, pool: usize) {
        if self.pools[pool].cfg.recovery != RecoveryMode::Checkpointed
            || self.pools[pool].recovering
        {
            return;
        }
        let Some(job) = self.pools[pool].active else {
            return;
        };
        if self.jobs[job].is_finished() {
            return;
        }
        let Some(master) = self.pools[pool].master_pv() else {
            return;
        };
        if master.phase != VmPhase::Ready {
            return;
        }
        let host = master.host;
        if !self.world.host_alive(host) {
            return;
        }
        self.pools[pool].ckpt_seq += 1;
        let tasks = &self.jobs[job].tasks;
        let snapshot = MasterCheckpoint {
            seq: self.pools[pool].ckpt_seq,
            worker_epochs: self.pools[pool].workers.iter().map(|w| w.epoch).collect(),
            jobs: vec![JobCheckpoint {
                job: job as u64,
                released: tasks
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| !t.held)
                    .map(|(i, _)| i as u64)
                    .collect(),
                acked: tasks
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| matches!(t.phase, TaskPhase::Done))
                    .map(|(i, _)| i as u64)
                    .collect(),
            }],
        };
        let bytes = snapshot.encode();
        self.recovery_stats.checkpoint_bytes += bytes.len() as u64;
        let now = self.world.now();
        self.world
            .tracer_mut()
            .instant(now, "checkpoint", "recovery", "recovery");
        let bucket = self.jobs[job].bucket.clone();
        self.issue_storage(
            StorageSpec::Put {
                host,
                bucket,
                key: checkpoint_key(pool),
                body: ObjectBody::real(bytes),
            },
            1,
            Route::Checkpoint { pool, job },
        );
    }

    /// The replacement master finished SSH setup: fetch the checkpoint
    /// so the replay can re-adopt workers and re-dispatch work.
    fn begin_readopt(&mut self, pool: usize, episode: u64) {
        if self.pools[pool].recovery_episode != episode || !self.pools[pool].recovering {
            return; // a newer master loss superseded this recovery
        }
        let active = self.pools[pool].active;
        let finished = active.is_some_and(|j| self.jobs[j].is_finished());
        let Some(job) = active.filter(|_| !finished) else {
            // Nothing to recover: the pool simply has a fresh master.
            self.pools[pool].recovering = false;
            self.pools[pool].readopt_gate = None;
            return;
        };
        let Some(master) = self.pools[pool].master_pv() else {
            return;
        };
        if master.phase != VmPhase::Ready || !self.world.host_alive(master.host) {
            return; // replacement died too; the next one re-opens the gate
        }
        let host = master.host;
        let bucket = self.jobs[job].bucket.clone();
        self.issue_storage(
            StorageSpec::Get {
                host,
                bucket,
                key: checkpoint_key(pool),
            },
            1,
            Route::Readopt { pool, job, episode },
        );
    }

    /// Checkpoint fetched: replay it. Live workers re-register by epoch
    /// handshake, the monitor restarts on the new master, and every
    /// unacknowledged, unowned task is re-dispatched. Tasks still
    /// running on surviving workers keep running — their results land in
    /// object storage either way, which is what bounds the billing delta
    /// to re-executed work.
    fn on_readopt(&mut self, pool: usize, job: usize, episode: u64, outcome: OpOutcome) {
        if self.pools[pool].recovery_episode != episode || !self.pools[pool].recovering {
            return;
        }
        // A missing object (master died before the first snapshot) or a
        // torn write decodes to `None`: the replay falls back to "adopt
        // everything, re-dispatch everything unowned" — the snapshot
        // only ever narrows work, the result LIST is the ground truth.
        let snapshot = match &outcome {
            OpOutcome::GetOk { body } => {
                body.bytes().and_then(|b| MasterCheckpoint::decode(b).ok())
            }
            _ => None,
        };
        self.pools[pool].recovering = false;
        self.pools[pool].readopt_gate = None;
        if let Some(s) = &snapshot {
            self.pools[pool].ckpt_seq = self.pools[pool].ckpt_seq.max(s.seq);
        }
        // Epoch handshake: every live worker re-registers with the
        // replacement master.
        let readopted = self.pools[pool]
            .workers
            .iter()
            .filter(|w| w.phase == VmPhase::Ready && self.world.host_alive(w.host))
            .count() as u64;
        self.recovery_stats.workers_readopted += readopted;
        if self.pools[pool].active != Some(job) || self.jobs[job].is_finished() {
            return;
        }
        // The monitor moves to the new master and restarts its loop.
        self.jobs[job].monitor_host = self.pools[pool].master_host();
        if self.jobs[job].monitor_started {
            self.schedule_poll(job);
        }
        // Re-dispatch released tasks that nothing owns: not done, not
        // running on a surviving worker, not already backed off for a
        // retry. The old KV queue died with the old master, so queued
        // bundles are re-pushed from the replayed release frontier.
        let retry_pending: std::collections::HashSet<usize> = self
            .timer_routes
            .values()
            .filter_map(|r| match r {
                Route::RetryTask { job: j, task, .. } if *j == job => Some(*task),
                _ => None,
            })
            .collect();
        let redispatch: Vec<usize> = self.jobs[job]
            .tasks
            .iter()
            .enumerate()
            .filter(|(i, t)| {
                !t.held
                    && t.worker.is_none()
                    && !retry_pending.contains(i)
                    && !matches!(t.phase, TaskPhase::Done | TaskPhase::Failed(_))
            })
            .map(|(i, _)| i)
            .collect();
        let now = self.world.now();
        self.world
            .tracer_mut()
            .instant(now, "master-readopted", "recovery", "recovery");
        for task in redispatch {
            self.recovery_stats.tasks_redispatched += 1;
            self.requeue_task(pool, job, task);
        }
    }

    // ------------------------------------------------------------------
    // Decentralized continuation passing (RecoveryMode::Decentralized)
    // ------------------------------------------------------------------

    /// Decentralized job start: the client uploads task bundles straight
    /// to object storage and collects results itself. The master VM (if
    /// the pool even has a dedicated one) never touches the data path.
    fn dc_start_job(&mut self, pool: usize, job: usize) {
        self.jobs[job].monitor_host = self.world.client_host();
        let n = self.jobs[job].inputs.len();
        self.dc_jobs.insert(
            job,
            DcJob {
                uploaded: vec![false; n],
                counters: vec![false; n],
            },
        );
        let ready: Vec<usize> = (0..n)
            .filter(|&t| !self.jobs[job].tasks[t].held)
            .collect();
        self.pools[pool].pushes_outstanding = ready.len();
        if ready.is_empty() {
            // Fully gated job: workers spin up idle and wait for
            // continuation-released bundles.
            self.pool_pushes_complete(pool, job);
            return;
        }
        for task in ready {
            self.dc_dispatch_task(pool, job, task);
        }
    }

    /// Makes a task claimable in decentralized mode: first dispatch
    /// uploads the bundle; a requeue (worker loss, retry) reuses the
    /// durable bundle already in storage.
    fn dc_dispatch_task(&mut self, pool: usize, job: usize, task: usize) {
        if self.jobs[job].is_finished() || self.pools[pool].active != Some(job) {
            return;
        }
        let Some(dc) = self.dc_jobs.get_mut(&job) else {
            return;
        };
        let first = !dc.uploaded[task];
        dc.uploaded[task] = true;
        if !first {
            self.pools[pool].dc_ready.push_back(task);
            self.on_requeue_done(pool);
            return;
        }
        let bundle = Payload::List(vec![
            Payload::U64(task as u64),
            self.jobs[job].inputs[task].clone(),
        ]);
        let host = self.world.client_host();
        let bucket = self.jobs[job].bucket.clone();
        self.issue_storage(
            StorageSpec::Put {
                host,
                bucket,
                key: dc_bundle_key(job, task),
                body: ObjectBody::real(bundle.encode()),
            },
            1,
            Route::DcBundle { pool, job, task },
        );
    }

    /// A bundle PUT landed: the task is claimable. During the initial
    /// upload wave this also advances the pushes-outstanding gate that
    /// starts the worker processes.
    fn on_dc_bundle(&mut self, pool: usize, job: usize, task: usize) {
        if self.jobs[job].is_finished() || self.pools[pool].active != Some(job) {
            return;
        }
        self.pools[pool].dc_ready.push_back(task);
        if self.pools[pool].pushes_outstanding > 0 {
            self.on_push_done(pool, job);
        } else {
            self.on_requeue_done(pool);
        }
    }

    /// A worker process claims the next ready task from storage (the
    /// conditional-put claim of a real implementation) and fetches its
    /// bundle. An empty ready list idles the process.
    fn worker_claim(&mut self, pool: usize, job: usize, vm_idx: usize, proc: usize) {
        let Some(w) = self.pools[pool].workers.get(vm_idx) else {
            return;
        };
        if w.phase != VmPhase::Ready {
            return;
        }
        let host = w.host;
        let epoch = w.epoch;
        if !self.world.host_alive(host) {
            return; // VM just died; its VmFailed notification is queued
        }
        let task = loop {
            let Some(t) = self.pools[pool].dc_ready.pop_front() else {
                self.pools[pool].idle_procs.push((vm_idx, proc));
                return;
            };
            let ts = &self.jobs[job].tasks[t];
            if matches!(ts.phase, TaskPhase::Queued) && ts.worker.is_none() && !ts.held {
                break t;
            }
            // Stale entry (task got owned or finished meanwhile): skip.
        };
        let bucket = self.jobs[job].bucket.clone();
        self.issue_storage(
            StorageSpec::Get {
                host,
                bucket,
                key: dc_bundle_key(job, task),
            },
            1,
            Route::DcClaim {
                pool,
                job,
                vm_idx,
                proc,
                epoch,
                task,
            },
        );
    }

    /// A claimed bundle arrived: run the task on the claiming process —
    /// unless the claimer died in flight (the task goes back to the
    /// ready list) or the task got owned meanwhile (the process claims
    /// something else).
    #[allow(clippy::too_many_arguments)]
    fn on_dc_claim(
        &mut self,
        pool: usize,
        job: usize,
        vm_idx: usize,
        proc: usize,
        epoch: u64,
        task: usize,
        outcome: OpOutcome,
    ) {
        if self.pools[pool].active != Some(job) || self.jobs[job].is_finished() {
            return;
        }
        let stale = match self.pools[pool].workers.get(vm_idx) {
            Some(w) => w.epoch != epoch || !self.world.host_alive(w.host),
            None => true,
        };
        if stale {
            // The bundle is durable in storage: hand the claim back.
            self.pools[pool].dc_ready.push_back(task);
            self.on_requeue_done(pool);
            return;
        }
        let ts = &self.jobs[job].tasks[task];
        if !(matches!(ts.phase, TaskPhase::Queued) && ts.worker.is_none() && !ts.held) {
            self.worker_pop(pool, vm_idx, proc);
            return;
        }
        let OpOutcome::GetOk { body } = outcome else {
            // Claims are queued only after the bundle PUT acks, so a
            // miss means an injected fault path; just claim again.
            self.worker_pop(pool, vm_idx, proc);
            return;
        };
        let bytes = body.bytes().expect("task bundles are always real bytes");
        let bundle = Payload::decode(bytes).expect("task bundle decodes");
        let items = bundle.as_list().expect("bundle is a list");
        let input = items[1].clone();
        let host = self.pools[pool].workers[vm_idx].host;
        let fleet = self.pools[pool].fleet_name.clone();
        let span = self.begin_attempt_span(job, task, &fleet);
        let now = self.world.now();
        let t = &mut self.jobs[job].tasks[task];
        t.worker = Some((vm_idx, proc));
        t.attempts += 1;
        t.started_at = Some(now);
        t.span = span;
        // No KV handle: decentralized tasks have no master to exchange
        // through (stage tasks only touch object storage).
        self.start_task(job, task, host, None, &input);
    }

    /// A finishing decentralized task writes its completion counter to
    /// object storage before its process claims new work.
    fn dc_write_counter(&mut self, pool: usize, job: usize, task: usize, vm_idx: usize) {
        let Some(w) = self.pools[pool].workers.get(vm_idx) else {
            return;
        };
        let host = w.host;
        if !self.world.host_alive(host) {
            return;
        }
        let bucket = self.jobs[job].bucket.clone();
        self.issue_storage(
            StorageSpec::Put {
                host,
                bucket,
                key: dc_counter_key(job, task),
                body: ObjectBody::real(Payload::U64(task as u64).encode()),
            },
            1,
            Route::DcCounter { pool, job, task },
        );
    }

    /// A completion counter landed: continuation passing. The finishing
    /// task consults the registered DAG fan-in metadata and releases
    /// every downstream task whose upstream counter block is complete —
    /// directly from storage state, no master involved.
    fn on_dc_counter(&mut self, _pool: usize, job: usize, task: usize) {
        self.recovery_stats.counters_written += 1;
        let n = self.jobs[job].tasks.len();
        let dc = self.dc_jobs.entry(job).or_insert_with(|| DcJob {
            uploaded: vec![false; n],
            counters: vec![false; n],
        });
        dc.counters[task] = true;
        let counters = dc.counters.clone();
        let conts: Vec<Continuation> = self
            .continuations
            .iter()
            .filter(|c| c.up_job == job)
            .copied()
            .collect();
        for c in conts {
            if self.jobs[c.down_job].is_finished() {
                continue;
            }
            let fire: Vec<usize> = (0..c.down_tasks)
                .filter(|&t| {
                    self.jobs[c.down_job].tasks[t].held && {
                        let range = fan_in_range(c.fan_in, c.up_tasks, c.down_tasks, t);
                        range.contains(&task) && range.clone().all(|u| counters[u])
                    }
                })
                .collect();
            for t in fire {
                self.recovery_stats.continuations_fired += 1;
                self.release_task(c.down_job, t);
            }
        }
    }

    fn pool_job_finished(&mut self, pool: usize, _job: usize) {
        self.pools[pool].active = None;
        self.pools[pool].recovering = false;
        self.pools[pool].readopt_gate = None;
        self.pools[pool].dc_ready.clear();
        if let Some(flag) = self.pools[pool].ckpt_active.take() {
            // The checkpoint sleep loop exits on its next fire.
            flag.set(false);
        }
        // "Once all logical functions have been completed, all resources
        // are automatically stopped" — unless reuse is configured and
        // more work may come.
        if !self.pools[pool].cfg.reuse_instances && self.pools[pool].queue.is_empty() {
            self.shutdown_pool(pool);
        } else if self.pools[pool].queue.is_empty() {
            // Reuse with a keep-alive budget: open an idle window. If no
            // job arrives before it closes, the warm VMs are released
            // (they re-provision on the next job).
            if let Some(secs) = self.pools[pool].cfg.idle_timeout_secs {
                self.pools[pool].idle_epoch += 1;
                let epoch = self.pools[pool].idle_epoch;
                self.set_timer(
                    SimDuration::from_secs_f64(secs),
                    Route::PoolIdle { pool, epoch },
                );
            }
        }
        self.pool_try_start(pool);
    }

    /// The keep-alive window of an idle pool closed: release its warm
    /// VMs. Stale timers (a job started meanwhile, opening a newer
    /// window) are dropped by the epoch check; VMs still mid-provision
    /// push the teardown back by one more window so nothing leaks
    /// unterminated.
    fn on_pool_idle(&mut self, pool: usize, epoch: u64) {
        let p = &self.pools[pool];
        if p.idle_epoch != epoch || p.active.is_some() || !p.queue.is_empty() {
            return;
        }
        if p.workers.is_empty() && p.master.is_none() {
            return; // nothing warm to release
        }
        let settled = |pv: &PoolVm| matches!(pv.phase, VmPhase::Ready | VmPhase::Dead);
        let all_settled =
            p.workers.iter().all(settled) && p.master.as_ref().is_none_or(settled);
        if !all_settled {
            if let Some(secs) = self.pools[pool].cfg.idle_timeout_secs {
                self.set_timer(
                    SimDuration::from_secs_f64(secs),
                    Route::PoolIdle { pool, epoch },
                );
            }
            return;
        }
        self.shutdown_pool(pool);
    }

    // ------------------------------------------------------------------
    // Route demultiplexers
    // ------------------------------------------------------------------

    fn on_op(&mut self, route: Route, op: OpId, outcome: OpOutcome) {
        if matches!(outcome, OpOutcome::KvUnreachable) {
            self.on_kv_unreachable(route);
            return;
        }
        match route {
            Route::Task { job, task } => self.on_task_op(job, task, op, outcome),
            Route::InputPut { job, task } => {
                if self.jobs[job].is_finished() {
                    return;
                }
                let JobBackend::Faas {
                    memory_mb, fleet, ..
                } = self.jobs[job].backend.clone()
                else {
                    unreachable!("input put on a non-FaaS job")
                };
                self.invoke_task(job, task, memory_mb, &fleet);
            }
            Route::JobSetup { job } => self.on_job_setup(job),
            Route::List { job } => self.on_list(job, outcome),
            Route::Collect { job, task } => self.on_collect(job, task, outcome),
            Route::Push { pool, job } => self.on_push_done(pool, job),
            Route::Pop {
                pool,
                vm_idx,
                proc,
                epoch,
            } => self.on_pop(pool, vm_idx, proc, epoch, outcome),
            Route::Requeue { pool } => self.on_requeue_done(pool),
            Route::Checkpoint { pool, .. } => {
                if self.pools[pool].cfg.recovery == RecoveryMode::Checkpointed {
                    self.recovery_stats.checkpoints_written += 1;
                }
            }
            Route::Readopt {
                pool,
                job,
                episode,
            } => self.on_readopt(pool, job, episode, outcome),
            Route::DcBundle { pool, job, task } => self.on_dc_bundle(pool, job, task),
            Route::DcClaim {
                pool,
                job,
                vm_idx,
                proc,
                epoch,
                task,
            } => self.on_dc_claim(pool, job, vm_idx, proc, epoch, task, outcome),
            Route::DcCounter { pool, job, task } => self.on_dc_counter(pool, job, task),
            other => unreachable!("op completion routed to {other:?}"),
        }
    }

    /// An in-flight KV operation lost its server (master death). Each
    /// route has a graceful landing; none of them may panic, because
    /// under [`RecoveryMode::Protected`] this is exactly how a forced
    /// master kill is supposed to strand the run.
    fn on_kv_unreachable(&mut self, route: Route) {
        match route {
            Route::Pop {
                pool,
                vm_idx,
                proc,
                epoch,
            } => {
                let Some(w) = self.pools[pool].workers.get(vm_idx) else {
                    return;
                };
                if w.epoch == epoch
                    && w.phase == VmPhase::Ready
                    && self.world.host_alive(w.host)
                {
                    // The worker process survives the master: it idles
                    // until recovery requeues work (or forever).
                    self.pools[pool].idle_procs.push((vm_idx, proc));
                }
            }
            Route::Push { pool, job } => {
                // Keep the outstanding-push bookkeeping moving so the
                // job reaches its (stalled or recovered) steady state.
                self.on_push_done(pool, job);
            }
            Route::Task { job, task } => {
                // A task's KV action (shuffle exchange) lost the server
                // mid-transfer: the attempt is torn down and retried
                // through the normal task budget.
                self.task_attempt_failed(job, task, AttemptFailure::StorageExhausted);
            }
            // A requeue push that died with the queue: the checkpoint
            // replay (or the stall) owns the task now.
            Route::Requeue { .. } => {}
            _ => {}
        }
    }

    fn on_timer(&mut self, route: Route) {
        match route {
            Route::Poll { job } => self.on_poll(job),
            Route::PoolVm { pool, slot, epoch } => self.on_pool_vm_ready(pool, slot, epoch),
            Route::PoolIdle { pool, epoch } => self.on_pool_idle(pool, epoch),
            Route::MasterNotify { job } => {
                // The notifying master must still be alive when the SSH
                // message lands; a freshly-dead master notifies no one.
                if self.world.host_alive(self.jobs[job].monitor_host) {
                    self.complete_job(job, None);
                }
            }
            Route::RetryTask { job, task, attempt } => self.on_retry_task(job, task, attempt),
            Route::RetryStorage {
                spec,
                attempts,
                inner,
                pending_slot,
                task_attempt,
            } => self.on_retry_storage(spec, attempts, *inner, pending_slot, task_attempt),
            other => unreachable!("timer routed to {other:?}"),
        }
    }

    /// Backoff elapsed: re-dispatch a failed task attempt.
    fn on_retry_task(&mut self, job: usize, task: usize, attempt: u32) {
        if self.jobs[job].is_finished() {
            return;
        }
        if self.jobs[job].tasks[task].attempts != attempt {
            return; // a newer attempt superseded this timer
        }
        match self.jobs[job].backend.clone() {
            JobBackend::Faas {
                memory_mb,
                fetch_input,
                fleet,
            } => self.dispatch_faas_task(job, task, memory_mb, fetch_input, &fleet),
            JobBackend::Standalone { pool } => {
                self.requeue_task(pool, job, task);
            }
        }
    }

    /// Backoff elapsed: re-issue a faulted storage request, unless the
    /// attempt it belonged to was torn down meanwhile.
    fn on_retry_storage(
        &mut self,
        spec: StorageSpec,
        attempts: u32,
        inner: Route,
        pending_slot: Option<(OpId, usize)>,
        task_attempt: u32,
    ) {
        let Some(job) = Self::route_job(&inner) else {
            unreachable!("storage retry routed to {inner:?}")
        };
        if self.jobs[job].is_finished() {
            return;
        }
        if let Route::Task { job: j, task } = inner {
            if self.jobs[j].tasks[task].attempts != task_attempt {
                return; // the whole attempt was retried; drop the op
            }
        }
        if !self.world.host_alive(spec.host()) {
            // Issuing host died; task-level recovery owns this — except
            // an in-flight decentralized claim, whose task would
            // otherwise be stranded (it has no worker assigned yet).
            if let Route::DcClaim { pool, task, .. } = inner {
                self.pools[pool].dc_ready.push_back(task);
                self.on_requeue_done(pool);
            }
            return;
        }
        let op = self.issue_storage(spec, attempts + 1, inner.clone());
        if let Route::Task { job: j, task } = inner {
            if let (Some((stale, idx)), Some(run)) =
                (pending_slot, self.jobs[j].tasks[task].run.as_mut())
            {
                run.pending.remove(&stale);
                run.pending.insert(op, idx);
            }
        }
    }
}

/// Storage key of a decentralized task's input bundle.
fn dc_bundle_key(job: usize, task: usize) -> String {
    format!("jobs/{job}/bundles/{task:05}")
}

/// Storage key of a decentralized task's completion counter.
fn dc_counter_key(job: usize, task: usize) -> String {
    format!("jobs/{job}/counters/{task:05}")
}

/// Draws a latency from the world's RNG-free path: uses mean only when
/// std is zero. Implemented as a free function to avoid borrowing `self`
/// twice.
fn world_latency(world: &mut World, (mean, std): (f64, f64)) -> SimDuration {
    // The world does not expose its RNG; derive jitter deterministically
    // from current time to keep runs reproducible without threading a
    // second RNG through the env.
    let jitter = ((world.now().as_micros() % 997) as f64 / 997.0 - 0.5) * 2.0 * std;
    SimDuration::from_secs_f64((mean + jitter).max(0.1))
}
