//! The execution environment: world pump, notification routing, and the
//! backend state machines.
//!
//! [`CloudEnv`] owns the simulated [`World`] plus every in-flight job and
//! serverful resource pool. [`FunctionExecutor`](crate::FunctionExecutor)
//! is a thin facade over it: `map` registers a job here, `get_result`
//! pumps the world until the job's monitor declares it finished.
//!
//! ## FaaS job lifecycle (classic Lithops)
//!
//! 1. the client uploads each task's input bundle to object storage and
//!    invokes one sandbox per task;
//! 2. each sandbox cold-starts, fetches its input, runs the logical
//!    function (compute and I/O charged by the world), and writes its
//!    encoded result back to object storage;
//! 3. the client monitors completion by polling the job's result prefix,
//!    then collects and decodes the results.
//!
//! ## Serverful job lifecycle (the paper's contribution)
//!
//! 1. the executor connects to a master (provisioning it if needed);
//! 2. the master *proactively provisions* the required worker VMs —
//!    right-sized from the job's input size — and starts one worker
//!    process per vCPU over SSH;
//! 3. workers load logical functions from the Redis-like KV store on the
//!    master, execute them, and write results to object storage;
//! 4. the master monitors completion, collects the output and notifies
//!    the client; all instances are automatically stopped afterwards
//!    (unless instance reuse is enabled).

use std::collections::{HashMap, VecDeque};

use cloudsim::{
    CloudConfig, HostId, KvId, Notify, ObjectBody, OpId, OpOutcome, SandboxId, VmId, World,
};
use simkernel::{SimDuration, SimTime};
use telemetry::{FleetTag, StageSpan, Timeline};

use crate::config::{ExecMode, StandaloneConfig};
use crate::error::ExecError;
use crate::job::{JobBackend, JobState, MonitorState, PendingShape, TaskPhase, TaskRun};
use crate::payload::Payload;
use crate::task::{Action, ActionOutcome, TaskStep};

/// Where a notification should be delivered.
#[derive(Debug, Clone)]
enum Route {
    /// An op issued by a task's logic (or its result write).
    Task { job: usize, task: usize },
    /// The client PUT of a task's input bundle.
    InputPut { job: usize, task: usize },
    /// Client-side function/deps serialisation before dispatch.
    JobSetup { job: usize },
    /// Monitor poll timer.
    Poll { job: usize },
    /// Monitor LIST.
    List { job: usize },
    /// Monitor result GET.
    Collect { job: usize, task: usize },
    /// A pool VM came up / finished SSH setup.
    PoolVm { pool: usize, slot: PoolSlot },
    /// Master pushed one task bundle into the KV queue.
    Push { pool: usize, job: usize },
    /// A worker process's KV pop.
    Pop { pool: usize, vm_idx: usize, proc: usize },
    /// The master's SSH notification reaching the client.
    MasterNotify { job: usize },
}

/// Which pool VM a lifecycle notification concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PoolSlot {
    Master,
    Worker(usize),
}

/// Lifecycle of a pool VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VmPhase {
    Booting,
    SshSetup,
    Ready,
}

#[derive(Debug)]
struct PoolVm {
    vm: VmId,
    host: HostId,
    itype: cloudsim::InstanceType,
    phase: VmPhase,
}

/// A serverful resource pool: one per executor using the VM backend.
pub(crate) struct StandalonePool {
    cfg: StandaloneConfig,
    /// Dedicated master VM (fleet mode). In consolidated mode the single
    /// worker VM doubles as the master.
    master: Option<PoolVm>,
    kv: Option<KvId>,
    workers: Vec<PoolVm>,
    queue: VecDeque<usize>,
    active: Option<usize>,
    /// Pushes still outstanding before workers may start popping.
    pushes_outstanding: usize,
    fleet_name: String,
}

impl StandalonePool {
    fn consolidated(&self) -> bool {
        matches!(self.cfg.exec_mode, ExecMode::Consolidated)
    }

    fn master_host(&self) -> HostId {
        if self.consolidated() {
            self.workers[0].host
        } else {
            self.master.as_ref().expect("master missing").host
        }
    }

    fn all_ready(&self) -> bool {
        let workers_ready = !self.workers.is_empty()
            && self.workers.iter().all(|w| w.phase == VmPhase::Ready);
        if self.consolidated() {
            workers_ready
        } else {
            workers_ready && self.master.as_ref().is_some_and(|m| m.phase == VmPhase::Ready)
        }
    }
}

/// The execution environment. See the [module docs](self).
pub struct CloudEnv {
    world: World,
    timeline: Timeline,
    jobs: Vec<JobState>,
    pools: Vec<StandalonePool>,
    op_routes: HashMap<OpId, Route>,
    sandbox_routes: HashMap<SandboxId, Route>,
    vm_routes: HashMap<VmId, Route>,
    timer_routes: HashMap<u64, Route>,
    next_timer: u64,
    scheduler_fleet: FleetTag,
    active_jobs: usize,
}

impl std::fmt::Debug for CloudEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CloudEnv")
            .field("now", &self.world.now())
            .field("jobs", &self.jobs.len())
            .field("pools", &self.pools.len())
            .finish()
    }
}

impl CloudEnv {
    /// Creates an environment over a fresh simulated cloud region.
    pub fn new(config: CloudConfig, seed: u64) -> Self {
        let mut world = World::new(config, seed);
        let scheduler_fleet = world.fleet("scheduler");
        let client_vcpus = world.config().client.vcpus as f64;
        // The Lithops scheduler host counts as provisioned resources for
        // the whole run (Table 3 includes it).
        world
            .cpu_monitor_mut()
            .add_provisioned(scheduler_fleet, SimTime::ZERO, client_vcpus);
        CloudEnv {
            world,
            timeline: Timeline::new(),
            jobs: Vec::new(),
            pools: Vec::new(),
            op_routes: HashMap::new(),
            sandbox_routes: HashMap::new(),
            vm_routes: HashMap::new(),
            timer_routes: HashMap::new(),
            next_timer: 0,
            scheduler_fleet,
            active_jobs: 0,
        }
    }

    /// Creates an environment with the default cloud configuration.
    pub fn new_default(seed: u64) -> Self {
        Self::new(CloudConfig::default(), seed)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// The underlying world (telemetry, store inspection, seeding).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable access to the underlying world.
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// The timeline of completed stages.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Pre-loads an object outside the timed path (experiment setup).
    pub fn seed_object(&mut self, bucket: &str, key: &str, body: ObjectBody) {
        self.world.seed_object(bucket, key, body);
    }

    // ------------------------------------------------------------------
    // Job submission (called by FunctionExecutor)
    // ------------------------------------------------------------------

    pub(crate) fn submit(&mut self, mut job: JobState) -> usize {
        let id = job.id;
        debug_assert_eq!(id, self.jobs.len());
        job.submitted_at = self.world.now();
        self.world.set_bill_label(job.name.clone());
        self.job_activity(1);
        // Client-side setup: serialise the function and its modules and
        // upload them, before any dispatch happens (Lithops does this on
        // every map).
        let setup = job.setup_secs.max(1e-3);
        self.jobs.push(job);
        let client = self.world.client_host();
        let op = self.world.compute(client, setup);
        self.op_routes.insert(op, Route::JobSetup { job: id });
        id
    }

    fn on_job_setup(&mut self, id: usize) {
        match self.jobs[id].backend.clone() {
            JobBackend::Faas {
                memory_mb,
                fetch_input,
                fleet,
            } => {
                self.jobs[id].monitor_host = self.world.client_host();
                self.dispatch_faas(id, memory_mb, fetch_input, &fleet);
                self.schedule_poll(id);
            }
            JobBackend::Standalone { pool } => {
                self.pools[pool].queue.push_back(id);
                self.pool_try_start(pool);
            }
        }
    }

    pub(crate) fn next_job_id(&self) -> usize {
        self.jobs.len()
    }

    pub(crate) fn create_pool(&mut self, cfg: StandaloneConfig) -> usize {
        let idx = self.pools.len();
        self.pools.push(StandalonePool {
            cfg,
            master: None,
            kv: None,
            workers: Vec::new(),
            queue: VecDeque::new(),
            active: None,
            pushes_outstanding: 0,
            fleet_name: format!("standalone-{idx}"),
        });
        idx
    }

    /// Tears a pool's VMs down (executor shutdown).
    pub(crate) fn shutdown_pool(&mut self, pool: usize) {
        let p = &mut self.pools[pool];
        assert!(p.active.is_none(), "shutdown with an active job");
        for w in p.workers.drain(..) {
            if w.phase == VmPhase::Ready {
                self.world.vm_terminate(w.vm);
            }
        }
        if let Some(m) = p.master.take() {
            if m.phase == VmPhase::Ready {
                self.world.vm_terminate(m.vm);
            }
        }
        p.kv = None;
    }

    /// Pumps the world until `job` finishes; returns its results in
    /// input order.
    ///
    /// # Errors
    ///
    /// Propagates task failures, decode failures and stalls.
    pub(crate) fn run_job(&mut self, job: usize) -> Result<Vec<Payload>, ExecError> {
        while !self.jobs[job].is_finished() {
            match self.world.step() {
                Some((t, n)) => self.dispatch(t, n),
                None => {
                    return Err(ExecError::Stalled(format!(
                        "simulation drained with job {job} ({}) unfinished: {}/{} tasks done",
                        self.jobs[job].name,
                        self.jobs[job].done_tasks,
                        self.jobs[job].tasks.len()
                    )));
                }
            }
        }
        if let Some(err) = self.jobs[job].error.clone() {
            return Err(err);
        }
        let results = std::mem::take(&mut self.jobs[job].results);
        results
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.ok_or_else(|| {
                    ExecError::TaskFailed(format!("task {i} produced no result"))
                })
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Dispatch
    // ------------------------------------------------------------------

    fn dispatch(&mut self, _t: SimTime, n: Notify) {
        match n {
            Notify::Op { op, outcome } => {
                let Some(route) = self.op_routes.remove(&op) else {
                    return; // op of an already-failed job
                };
                self.on_op(route, op, outcome);
            }
            Notify::SandboxUp { sandbox } => {
                if let Some(route) = self.sandbox_routes.remove(&sandbox) {
                    self.on_sandbox_up(route, sandbox);
                }
            }
            Notify::VmUp { vm } => {
                if let Some(route) = self.vm_routes.remove(&vm) {
                    self.on_vm_up(route, vm);
                }
            }
            Notify::Timer { tag } => {
                if let Some(route) = self.timer_routes.remove(&tag) {
                    self.on_timer(route);
                }
            }
            _ => {}
        }
    }

    fn set_timer(&mut self, delay: SimDuration, route: Route) {
        let tag = self.next_timer;
        self.next_timer += 1;
        self.timer_routes.insert(tag, route);
        self.world.timer(delay, tag);
    }

    fn job_activity(&mut self, delta: i64) {
        let now = self.world.now();
        let was = self.active_jobs;
        self.active_jobs = (self.active_jobs as i64 + delta) as usize;
        // The scheduler burns roughly one vCPU while any job is in
        // flight (dispatching, polling, collecting).
        if was == 0 && self.active_jobs > 0 {
            self.world
                .cpu_monitor_mut()
                .add_busy(self.scheduler_fleet, now, 1.0);
        } else if was > 0 && self.active_jobs == 0 {
            self.world
                .cpu_monitor_mut()
                .add_busy(self.scheduler_fleet, now, -1.0);
        }
    }

    // ------------------------------------------------------------------
    // FaaS backend
    // ------------------------------------------------------------------

    fn dispatch_faas(&mut self, job: usize, memory_mb: u32, fetch_input: bool, fleet: &str) {
        let n = self.jobs[job].inputs.len();
        for task in 0..n {
            if fetch_input {
                // Upload the input bundle first; invoke on completion so
                // the sandbox never races its own input.
                let key = self.jobs[job].input_key(task);
                let body = ObjectBody::real(self.jobs[job].inputs[task].encode());
                let client = self.world.client_host();
                let bucket = self.jobs[job].bucket.clone();
                let op = self.world.put_object(client, &bucket, &key, body);
                self.op_routes.insert(op, Route::InputPut { job, task });
            } else {
                self.invoke_task(job, task, memory_mb, fleet);
            }
        }
    }

    fn invoke_task(&mut self, job: usize, task: usize, memory_mb: u32, fleet: &str) {
        let sandbox = self.world.faas_invoke(memory_mb, fleet);
        self.jobs[job].tasks[task].sandbox = Some(sandbox);
        self.jobs[job].tasks[task].phase = TaskPhase::Starting;
        self.sandbox_routes
            .insert(sandbox, Route::Task { job, task });
    }

    fn on_sandbox_up(&mut self, route: Route, sandbox: SandboxId) {
        let Route::Task { job, task } = route else {
            unreachable!("sandbox route is always a task")
        };
        if self.jobs[job].is_finished() {
            // Job failed while this sandbox was starting; bill and drop.
            self.world.faas_release(sandbox);
            return;
        }
        let host = self.world.sandbox_host(sandbox);
        let fetch = matches!(
            self.jobs[job].backend,
            JobBackend::Faas { fetch_input: true, .. }
        );
        if fetch {
            self.jobs[job].tasks[task].phase = TaskPhase::FetchingInput;
            let bucket = self.jobs[job].bucket.clone();
            let key = self.jobs[job].input_key(task);
            let op = self.world.get_object(host, &bucket, &key);
            self.op_routes.insert(op, Route::Task { job, task });
            // Remember the host for when the input arrives.
            self.jobs[job].tasks[task].run = Some(TaskRun::new(
                // Placeholder logic; replaced at start. Using the factory
                // here would double-construct.
                crate::task::ScriptTask::new().boxed(),
                host,
                None,
            ));
        } else {
            let input = self.jobs[job].inputs[task].clone();
            self.start_task(job, task, host, None, &input);
        }
    }

    fn start_task(
        &mut self,
        job: usize,
        task: usize,
        host: HostId,
        kv: Option<KvId>,
        input: &Payload,
    ) {
        let logic = (self.jobs[job].factory)(input);
        let mut run = TaskRun::new(logic, host, kv);
        self.jobs[job].tasks[task].phase = TaskPhase::Running;
        let step = run.logic.on_start(input);
        self.apply_step(job, task, run, step);
    }

    /// Applies a task step: issues the action's ops or finishes the task.
    fn apply_step(&mut self, job: usize, task: usize, mut run: TaskRun, step: TaskStep) {
        match step {
            TaskStep::Act(action) => {
                match self.issue_action(job, task, &mut run, action) {
                    Ok(()) => self.jobs[job].tasks[task].run = Some(run),
                    Err(err) => self.fail_task(job, task, run, err.to_string()),
                }
            }
            TaskStep::Finish(payload) => {
                self.jobs[job].tasks[task].run = Some(run);
                self.finish_task(job, task, payload);
            }
            TaskStep::Fail(msg) => self.fail_task(job, task, run, msg),
        }
    }

    fn issue_action(
        &mut self,
        job: usize,
        task: usize,
        run: &mut TaskRun,
        action: Action,
    ) -> Result<(), ExecError> {
        let host = run.host;
        run.shape = PendingShape::Single;
        let route = Route::Task { job, task };
        // Data-path actions burn partial CPU for (de)serialisation while
        // the transfer is in flight (accounting only).
        let overlapped = !matches!(action, Action::Compute { .. } | Action::Sleep { .. });
        if overlapped {
            let frac = self.jobs[job].io_overlap;
            if frac > 0.0 {
                self.world.task_io_busy(host, frac);
                run.io_busy = frac;
            }
        }
        match action {
            Action::Compute { cpu_secs } => {
                let op = self.world.compute(host, cpu_secs);
                run.pending.insert(op, 0);
                self.op_routes.insert(op, route);
            }
            Action::Sleep { secs } => {
                let op = self.world.sleep(SimDuration::from_secs_f64(secs));
                run.pending.insert(op, 0);
                self.op_routes.insert(op, route);
            }
            Action::Get { bucket, key } => {
                let op = self.world.get_object(host, &bucket, &key);
                run.pending.insert(op, 0);
                self.op_routes.insert(op, route);
            }
            Action::Put { bucket, key, body } => {
                let op = self.world.put_object(host, &bucket, &key, body);
                run.pending.insert(op, 0);
                self.op_routes.insert(op, route);
            }
            Action::Delete { bucket, key } => {
                let op = self.world.delete_object(host, &bucket, &key);
                run.pending.insert(op, 0);
                self.op_routes.insert(op, route);
            }
            Action::List { bucket, prefix } => {
                let op = self.world.list_objects(host, &bucket, &prefix);
                run.pending.insert(op, 0);
                self.op_routes.insert(op, route);
            }
            Action::GetMany { bucket, keys } => {
                assert!(!keys.is_empty(), "GetMany with no keys");
                run.shape = PendingShape::Multi {
                    results: vec![None; keys.len()],
                    puts: false,
                };
                for (i, key) in keys.iter().enumerate() {
                    let op = self.world.get_object(host, &bucket, key);
                    run.pending.insert(op, i);
                    self.op_routes.insert(op, route.clone());
                }
            }
            Action::PutMany { bucket, entries } => {
                assert!(!entries.is_empty(), "PutMany with no entries");
                run.shape = PendingShape::Multi {
                    results: vec![None; entries.len()],
                    puts: true,
                };
                for (i, (key, body)) in entries.into_iter().enumerate() {
                    let op = self.world.put_object(host, &bucket, &key, body);
                    run.pending.insert(op, i);
                    self.op_routes.insert(op, route.clone());
                }
            }
            Action::KvGet { key } => {
                let kv = run.kv.ok_or_else(|| {
                    ExecError::Unsupported("KV access outside the serverful backend".into())
                })?;
                let op = self.world.kv_get(host, kv, &key);
                run.pending.insert(op, 0);
                self.op_routes.insert(op, route);
            }
            Action::KvPut { key, body } => {
                let kv = run.kv.ok_or_else(|| {
                    ExecError::Unsupported("KV access outside the serverful backend".into())
                })?;
                let op = self.world.kv_put(host, kv, &key, body);
                run.pending.insert(op, 0);
                self.op_routes.insert(op, route);
            }
        }
        Ok(())
    }

    /// An op belonging to a task (either its logic or its result write)
    /// completed.
    fn on_task_op(&mut self, job: usize, task: usize, op: OpId, outcome: OpOutcome) {
        if self.jobs[job].is_finished() {
            return;
        }
        match &self.jobs[job].tasks[task].phase {
            TaskPhase::FetchingInput => {
                let body = match outcome {
                    OpOutcome::GetOk { body } => body,
                    OpOutcome::GetMissing => {
                        let run = self.jobs[job].tasks[task].run.take().unwrap();
                        self.fail_task(job, task, run, "input bundle missing".into());
                        return;
                    }
                    other => unreachable!("input fetch yielded {other:?}"),
                };
                let run = self.jobs[job].tasks[task].run.take().unwrap();
                let host = run.host;
                let input = match body.bytes() {
                    Some(bytes) => match Payload::decode(bytes) {
                        Ok(p) => p,
                        Err(e) => {
                            let run2 = TaskRun::new(crate::task::ScriptTask::new().boxed(), host, None);
                            self.fail_task(job, task, run2, e.to_string());
                            return;
                        }
                    },
                    None => {
                        // Opaque input bundle: fall back to the in-memory
                        // input (used by paper-scale profile runs).
                        self.jobs[job].inputs[task].clone()
                    }
                };
                drop(run);
                self.start_task(job, task, host, None, &input);
            }
            TaskPhase::Running => {
                let mut run = self.jobs[job].tasks[task].run.take().unwrap();
                // The action is completing (or progressing); once the
                // last op lands, the overlapped-I/O accounting ends.
                let body = match outcome {
                    OpOutcome::GetOk { body } => Some(body),
                    OpOutcome::GetMissing => {
                        self.end_io_busy(&mut run);
                        let step = run.logic.on_action(ActionOutcome::MissingObject);
                        self.apply_step(job, task, run, step);
                        return;
                    }
                    OpOutcome::ListOk { keys } => {
                        run.pending.remove(&op);
                        self.end_io_busy(&mut run);
                        let step = run.logic.on_action(ActionOutcome::Keys(keys));
                        self.apply_step(job, task, run, step);
                        return;
                    }
                    OpOutcome::KvValue { body } => {
                        run.pending.remove(&op);
                        self.end_io_busy(&mut run);
                        let step = run.logic.on_action(ActionOutcome::KvValue(body));
                        self.apply_step(job, task, run, step);
                        return;
                    }
                    _ => None,
                };
                match run.complete_op(op, body) {
                    Some(assembled) => {
                        self.end_io_busy(&mut run);
                        let step = run.logic.on_action(assembled);
                        self.apply_step(job, task, run, step);
                    }
                    None => {
                        // More ops of a multi-action outstanding.
                        self.jobs[job].tasks[task].run = Some(run);
                    }
                }
            }
            TaskPhase::WritingResult => {
                debug_assert!(matches!(outcome, OpOutcome::PutOk));
                self.task_done(job, task);
            }
            other => unreachable!("op completed in phase {other:?}"),
        }
    }

    /// Task logic finished: write the encoded result to object storage.
    fn finish_task(&mut self, job: usize, task: usize, payload: Payload) {
        let host = self.jobs[job].tasks[task].run.as_ref().unwrap().host;
        self.jobs[job].tasks[task].phase = TaskPhase::WritingResult;
        self.jobs[job].results[task] = None; // filled by the monitor
        let bucket = self.jobs[job].bucket.clone();
        let key = self.jobs[job].result_key(task);
        let body = ObjectBody::real(payload.encode());
        let op = self.world.put_object(host, &bucket, &key, body);
        self.op_routes.insert(op, Route::Task { job, task });
    }

    /// Result written: retire the task's host slot.
    fn task_done(&mut self, job: usize, task: usize) {
        self.jobs[job].tasks[task].phase = TaskPhase::Done;
        self.jobs[job].done_tasks += 1;
        if let Some(sandbox) = self.jobs[job].tasks[task].sandbox {
            self.world.faas_release(sandbox);
        }
        if let Some((vm_idx, proc)) = self.jobs[job].tasks[task].worker {
            // The worker process fetches its next logical function.
            if let JobBackend::Standalone { pool } = self.jobs[job].backend {
                self.worker_pop(pool, vm_idx, proc);
            }
        }
    }

    /// Ends the overlapped-I/O busy accounting of a task's action.
    fn end_io_busy(&mut self, run: &mut TaskRun) {
        if run.io_busy > 0.0 {
            self.world.task_io_busy(run.host, -run.io_busy);
            run.io_busy = 0.0;
        }
    }

    fn fail_task(&mut self, job: usize, task: usize, mut run: TaskRun, msg: String) {
        self.end_io_busy(&mut run);
        drop(run);
        self.jobs[job].tasks[task].phase = TaskPhase::Failed(msg.clone());
        if let Some(sandbox) = self.jobs[job].tasks[task].sandbox {
            self.world.faas_release(sandbox);
        }
        let err = ExecError::TaskFailed(format!("task {task}: {msg}"));
        self.complete_job(job, Some(err));
    }

    // ------------------------------------------------------------------
    // Completion monitor (shared: client for FaaS, master for VMs)
    // ------------------------------------------------------------------

    fn schedule_poll(&mut self, job: usize) {
        let interval = SimDuration::from_secs_f64(self.jobs[job].poll_interval);
        self.jobs[job].monitor = MonitorState::Sleeping;
        self.set_timer(interval, Route::Poll { job });
    }

    fn on_poll(&mut self, job: usize) {
        if self.jobs[job].is_finished() {
            return;
        }
        self.jobs[job].monitor = MonitorState::Listing;
        let host = self.jobs[job].monitor_host;
        let bucket = self.jobs[job].bucket.clone();
        let prefix = self.jobs[job].result_prefix();
        let op = self.world.list_objects(host, &bucket, &prefix);
        self.op_routes.insert(op, Route::List { job });
    }

    fn on_list(&mut self, job: usize, outcome: OpOutcome) {
        if self.jobs[job].is_finished() {
            return;
        }
        let OpOutcome::ListOk { keys } = outcome else {
            unreachable!("list op yielded a non-list outcome")
        };
        let total = self.jobs[job].tasks.len();
        if keys.len() < total {
            self.schedule_poll(job);
            return;
        }
        // All results present: collect them.
        let host = self.jobs[job].monitor_host;
        let bucket = self.jobs[job].bucket.clone();
        let mut outstanding = 0;
        for key in keys {
            let Some(task) = self.jobs[job].task_of_result_key(&key) else {
                continue;
            };
            let op = self.world.get_object(host, &bucket, &key);
            self.op_routes.insert(op, Route::Collect { job, task });
            outstanding += 1;
        }
        self.jobs[job].monitor = MonitorState::Collecting { outstanding };
    }

    fn on_collect(&mut self, job: usize, task: usize, outcome: OpOutcome) {
        if self.jobs[job].is_finished() {
            return;
        }
        let body = match outcome {
            OpOutcome::GetOk { body } => body,
            other => unreachable!("collect yielded {other:?}"),
        };
        let decoded = match body.bytes() {
            Some(bytes) => Payload::decode(bytes),
            None => Ok(Payload::Opaque { size: body.len() }),
        };
        match decoded {
            Ok(p) => self.jobs[job].results[task] = Some(p),
            Err(e) => {
                self.complete_job(job, Some(e));
                return;
            }
        }
        let MonitorState::Collecting { outstanding } = &mut self.jobs[job].monitor else {
            unreachable!("collect outside collecting state")
        };
        *outstanding -= 1;
        if *outstanding == 0 {
            self.jobs[job].monitor = MonitorState::Done;
            match self.jobs[job].backend {
                JobBackend::Faas { .. } => self.complete_job(job, None),
                JobBackend::Standalone { .. } => {
                    // Master -> client SSH notification latency.
                    self.set_timer(
                        SimDuration::from_millis(60),
                        Route::MasterNotify { job },
                    );
                }
            }
        }
    }

    fn complete_job(&mut self, job: usize, error: Option<ExecError>) {
        if self.jobs[job].is_finished() {
            return;
        }
        let now = self.world.now();
        self.jobs[job].finished_at = Some(now);
        self.jobs[job].error = error;
        self.job_activity(-1);
        let j = &self.jobs[job];
        self.timeline.record(StageSpan {
            name: j.name.clone(),
            start: j.submitted_at,
            end: now,
            tasks: j.tasks.len(),
            stateful: j.stateful,
        });
        if let JobBackend::Standalone { pool } = self.jobs[job].backend {
            self.pool_job_finished(pool, job);
        }
    }

    // ------------------------------------------------------------------
    // Serverful pool machinery
    // ------------------------------------------------------------------

    fn pool_try_start(&mut self, pool: usize) {
        if self.pools[pool].active.is_some() {
            return;
        }
        let Some(&job) = self.pools[pool].queue.front() else {
            return;
        };
        // Proactive provisioning: figure out the fleet this job needs.
        if !self.pool_ensure_infra(pool, job) {
            return; // infra still coming up; retried on VM readiness
        }
        self.pools[pool].queue.pop_front();
        self.pools[pool].active = Some(job);
        self.pool_start_job(pool, job);
    }

    /// Ensures master + workers exist and are ready. Returns true when
    /// everything is ready now.
    fn pool_ensure_infra(&mut self, pool: usize, job: usize) -> bool {
        let consolidated = self.pools[pool].consolidated();
        let fleet_name = self.pools[pool].fleet_name.clone();
        if consolidated {
            // Single right-sized VM: sizing from the job's input bytes.
            let wanted = match &self.pools[pool].cfg.instance_override {
                Some(name) => *cloudsim::instance_type(name)
                    .unwrap_or_else(|| panic!("unknown instance type {name}")),
                None => *self.pools[pool]
                    .cfg
                    .sizing
                    .choose(self.jobs[job].input_data_size()),
            };
            if self.pools[pool].workers.is_empty() {
                let vm = self.world.vm_provision(&wanted, &fleet_name);
                let host = self.world.vm_host(vm);
                self.pools[pool].workers.push(PoolVm {
                    vm,
                    host,
                    itype: wanted,
                    phase: VmPhase::Booting,
                });
                self.vm_routes.insert(
                    vm,
                    Route::PoolVm {
                        pool,
                        slot: PoolSlot::Worker(0),
                    },
                );
                return false;
            }
            // An existing VM is reused only if it is big enough.
            let current = &self.pools[pool].workers[0];
            if current.itype.mem_gib < wanted.mem_gib && current.phase == VmPhase::Ready {
                let old = self.pools[pool].workers.remove(0);
                self.world.vm_terminate(old.vm);
                self.pools[pool].kv = None;
                return self.pool_ensure_infra(pool, job);
            }
            return self.pools[pool].all_ready();
        }
        // Fleet mode: dedicated master + N workers of a fixed type.
        let ExecMode::Fleet {
            instance_type,
            count,
        } = self.pools[pool].cfg.exec_mode.clone()
        else {
            unreachable!()
        };
        if self.pools[pool].master.is_none() {
            let master_name = self.pools[pool].cfg.master_instance.clone();
            let itype = *cloudsim::instance_type(&master_name)
                .unwrap_or_else(|| panic!("unknown instance type {master_name}"));
            let vm = self.world.vm_provision(&itype, &fleet_name);
            let host = self.world.vm_host(vm);
            self.pools[pool].master = Some(PoolVm {
                vm,
                host,
                itype,
                phase: VmPhase::Booting,
            });
            self.vm_routes.insert(
                vm,
                Route::PoolVm {
                    pool,
                    slot: PoolSlot::Master,
                },
            );
        }
        let itype = *cloudsim::instance_type(&instance_type)
            .unwrap_or_else(|| panic!("unknown instance type {instance_type}"));
        while self.pools[pool].workers.len() < count {
            let slot = self.pools[pool].workers.len();
            let vm = self.world.vm_provision(&itype, &fleet_name);
            let host = self.world.vm_host(vm);
            self.pools[pool].workers.push(PoolVm {
                vm,
                host,
                itype,
                phase: VmPhase::Booting,
            });
            self.vm_routes.insert(
                vm,
                Route::PoolVm {
                    pool,
                    slot: PoolSlot::Worker(slot),
                },
            );
        }
        self.pools[pool].all_ready()
    }

    fn on_vm_up(&mut self, route: Route, _vm: VmId) {
        let Route::PoolVm { pool, slot } = route else {
            unreachable!("vm route is always a pool vm")
        };
        let ssh = self.pools[pool].cfg.ssh_setup;
        self.pool_vm_mut(pool, slot).phase = VmPhase::SshSetup;
        let delay = world_latency(&mut self.world, ssh);
        self.set_timer(delay, Route::PoolVm { pool, slot });
    }

    fn on_pool_vm_ready(&mut self, pool: usize, slot: PoolSlot) {
        self.pool_vm_mut(pool, slot).phase = VmPhase::Ready;
        // The master's KV server starts as soon as its VM is ready.
        let is_master_vm = match slot {
            PoolSlot::Master => true,
            PoolSlot::Worker(0) => self.pools[pool].consolidated(),
            _ => false,
        };
        if is_master_vm && self.pools[pool].kv.is_none() {
            let vm = self.pool_vm_mut(pool, slot).vm;
            let kv = self.world.kv_create(vm);
            self.pools[pool].kv = Some(kv);
        }
        self.pool_try_start(pool);
    }

    fn pool_vm_mut(&mut self, pool: usize, slot: PoolSlot) -> &mut PoolVm {
        match slot {
            PoolSlot::Master => self.pools[pool].master.as_mut().expect("no master"),
            PoolSlot::Worker(i) => &mut self.pools[pool].workers[i],
        }
    }

    /// Infra ready: master pushes every task bundle into its KV queue.
    fn pool_start_job(&mut self, pool: usize, job: usize) {
        let kv = self.pools[pool].kv.expect("pool started without KV");
        let master = self.pools[pool].master_host();
        self.jobs[job].monitor_host = master;
        let n = self.jobs[job].inputs.len();
        let queue = format!("job-{job}");
        self.pools[pool].pushes_outstanding = n;
        for task in 0..n {
            let bundle = Payload::List(vec![
                Payload::U64(task as u64),
                self.jobs[job].inputs[task].clone(),
            ]);
            let body = ObjectBody::real(bundle.encode());
            let op = self.world.kv_push(master, kv, &queue, body);
            self.op_routes.insert(op, Route::Push { pool, job });
        }
    }

    fn on_push_done(&mut self, pool: usize, job: usize) {
        self.pools[pool].pushes_outstanding -= 1;
        if self.pools[pool].pushes_outstanding > 0 {
            return;
        }
        // All bundles queued: start one worker process per vCPU.
        let worker_specs: Vec<(usize, usize)> = self.pools[pool]
            .workers
            .iter()
            .enumerate()
            .flat_map(|(vm_idx, w)| {
                (0..w.itype.vcpus as usize).map(move |proc| (vm_idx, proc))
            })
            .collect();
        for (vm_idx, proc) in worker_specs {
            self.worker_pop(pool, vm_idx, proc);
        }
        // The master begins monitoring result objects.
        self.schedule_poll(job);
    }

    fn worker_pop(&mut self, pool: usize, vm_idx: usize, proc: usize) {
        let Some(job) = self.pools[pool].active else {
            return;
        };
        let kv = self.pools[pool].kv.expect("no KV");
        let host = self.pools[pool].workers[vm_idx].host;
        let queue = format!("job-{job}");
        let op = self.world.kv_pop(host, kv, &queue);
        self.op_routes.insert(op, Route::Pop { pool, vm_idx, proc });
    }

    fn on_pop(&mut self, pool: usize, vm_idx: usize, proc: usize, outcome: OpOutcome) {
        let Some(job) = self.pools[pool].active else {
            return;
        };
        let OpOutcome::KvValue { body } = outcome else {
            unreachable!("pop yielded a non-KV outcome")
        };
        let Some(body) = body else {
            return; // queue drained; worker process idles
        };
        let bytes = body.bytes().expect("task bundles are always real bytes");
        let bundle = Payload::decode(bytes).expect("task bundle decodes");
        let items = bundle.as_list().expect("bundle is a list");
        let task = items[0].as_u64().expect("bundle[0] is the index") as usize;
        let input = items[1].clone();
        let host = self.pools[pool].workers[vm_idx].host;
        let kv = self.pools[pool].kv;
        self.jobs[job].tasks[task].worker = Some((vm_idx, proc));
        self.start_task(job, task, host, kv, &input);
    }

    fn pool_job_finished(&mut self, pool: usize, _job: usize) {
        self.pools[pool].active = None;
        // "Once all logical functions have been completed, all resources
        // are automatically stopped" — unless reuse is configured and
        // more work may come.
        if !self.pools[pool].cfg.reuse_instances && self.pools[pool].queue.is_empty() {
            self.shutdown_pool(pool);
        }
        self.pool_try_start(pool);
    }

    // ------------------------------------------------------------------
    // Route demultiplexers
    // ------------------------------------------------------------------

    fn on_op(&mut self, route: Route, op: OpId, outcome: OpOutcome) {
        match route {
            Route::Task { job, task } => self.on_task_op(job, task, op, outcome),
            Route::InputPut { job, task } => {
                if self.jobs[job].is_finished() {
                    return;
                }
                let JobBackend::Faas {
                    memory_mb, fleet, ..
                } = self.jobs[job].backend.clone()
                else {
                    unreachable!("input put on a non-FaaS job")
                };
                self.invoke_task(job, task, memory_mb, &fleet);
            }
            Route::JobSetup { job } => self.on_job_setup(job),
            Route::List { job } => self.on_list(job, outcome),
            Route::Collect { job, task } => self.on_collect(job, task, outcome),
            Route::Push { pool, job } => self.on_push_done(pool, job),
            Route::Pop { pool, vm_idx, proc } => self.on_pop(pool, vm_idx, proc, outcome),
            other => unreachable!("op completion routed to {other:?}"),
        }
    }

    fn on_timer(&mut self, route: Route) {
        match route {
            Route::Poll { job } => self.on_poll(job),
            Route::PoolVm { pool, slot } => self.on_pool_vm_ready(pool, slot),
            Route::MasterNotify { job } => self.complete_job(job, None),
            other => unreachable!("timer routed to {other:?}"),
        }
    }
}

/// Draws a latency from the world's RNG-free path: uses mean only when
/// std is zero. Implemented as a free function to avoid borrowing `self`
/// twice.
fn world_latency(world: &mut World, (mean, std): (f64, f64)) -> SimDuration {
    // The world does not expose its RNG; derive jitter deterministically
    // from current time to keep runs reproducible without threading a
    // second RNG through the env.
    let jitter = ((world.now().as_micros() % 997) as f64 / 997.0 - 0.5) * 2.0 * std;
    SimDuration::from_secs_f64((mean + jitter).max(0.1))
}
