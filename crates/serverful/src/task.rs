//! Logical functions.
//!
//! A *logical function* is the unit of work a
//! [`FunctionExecutor`](crate::FunctionExecutor) maps over inputs.
//! Because execution happens
//! inside a discrete-event simulation, a logical function is written as a
//! small state machine ([`TaskLogic`]): it emits an [`Action`] (compute,
//! storage I/O, master-KV access), receives the [`ActionOutcome`] once
//! the simulated environment completes it, and eventually finishes with
//! a result payload.
//!
//! Most functions are a straight line of actions; [`ScriptTask`] builds
//! those without hand-writing a state machine. Data-dependent control
//! flow (a sort that partitions based on sampled splitters, say)
//! implements [`TaskLogic`] directly.

use cloudsim::ObjectBody;

use crate::payload::Payload;

/// One effect a logical function asks its environment to perform.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Action {
    /// Burn `cpu_secs` of single-threaded CPU.
    Compute {
        /// CPU-seconds at full speed (scaled by the host's vCPU share).
        cpu_secs: f64,
    },
    /// Read one object from cloud storage.
    Get {
        /// Bucket.
        bucket: String,
        /// Key.
        key: String,
    },
    /// Read several objects concurrently (Lithops parallelises reads to
    /// overlap deserialisation with I/O).
    GetMany {
        /// Bucket.
        bucket: String,
        /// Keys, fetched concurrently; outcomes arrive in this order.
        keys: Vec<String>,
    },
    /// Write one object to cloud storage.
    Put {
        /// Bucket.
        bucket: String,
        /// Key.
        key: String,
        /// Data to store.
        body: ObjectBody,
    },
    /// Write several objects concurrently.
    PutMany {
        /// Bucket.
        bucket: String,
        /// `(key, body)` pairs, written concurrently.
        entries: Vec<(String, ObjectBody)>,
    },
    /// Delete one object.
    Delete {
        /// Bucket.
        bucket: String,
        /// Key.
        key: String,
    },
    /// List keys under a prefix.
    List {
        /// Bucket.
        bucket: String,
        /// Prefix.
        prefix: String,
    },
    /// Read a key from the master's KV store (serverful backend only;
    /// same-VM access uses shared memory).
    KvGet {
        /// Key.
        key: String,
    },
    /// Write a key to the master's KV store (serverful backend only).
    KvPut {
        /// Key.
        key: String,
        /// Data to store.
        body: ObjectBody,
    },
    /// Idle for a wall-clock duration (e.g. an external call).
    Sleep {
        /// Seconds to sleep.
        secs: f64,
    },
}

/// What came back from a completed [`Action`].
#[derive(Debug)]
#[non_exhaustive]
pub enum ActionOutcome {
    /// Compute / put / delete / sleep / kv-put completed.
    Done,
    /// `Get` result.
    Object(ObjectBody),
    /// `Get` on a missing key (the task fails unless its logic handles
    /// it).
    MissingObject,
    /// `GetMany` results, in request order. Missing keys surface as
    /// failures before this is delivered.
    Objects(Vec<ObjectBody>),
    /// `List` result.
    Keys(Vec<String>),
    /// `KvGet` result (`None` when the key is absent).
    KvValue(Option<ObjectBody>),
}

/// The next move of a logical function.
#[derive(Debug)]
pub enum TaskStep {
    /// Perform an action; [`TaskLogic::on_action`] is called with its
    /// outcome.
    Act(Action),
    /// The function is done; the payload is its result.
    Finish(Payload),
    /// The function failed; the job surfaces
    /// [`ExecError::TaskFailed`](crate::ExecError::TaskFailed).
    Fail(String),
}

/// A logical function as a state machine.
///
/// `on_start` is called exactly once with the task's input; thereafter
/// `on_action` is called with each action's outcome until the logic
/// returns [`TaskStep::Finish`] or [`TaskStep::Fail`].
pub trait TaskLogic: Send {
    /// Called once when the function begins executing on its host.
    fn on_start(&mut self, input: &Payload) -> TaskStep;

    /// Called with the outcome of the previously emitted action.
    fn on_action(&mut self, outcome: ActionOutcome) -> TaskStep;
}

/// A deferred finisher: computes the result from the input and the
/// collected action outcomes.
type FinishFn = Box<dyn FnOnce(&Payload, Vec<ActionOutcome>) -> TaskStep + Send>;

/// How a [`ScriptTask`] produces its final payload.
enum ScriptFinish {
    Value(Payload),
    /// Computes the result from the input and the outcome of every
    /// action, in order.
    FromOutcomes(FinishFn),
}

/// A linear logical function: a fixed sequence of actions followed by a
/// finish.
///
/// # Example
///
/// ```
/// use serverful::{Payload, ScriptTask};
/// use cloudsim::ObjectBody;
///
/// // Read a chunk, crunch it for 2 CPU-seconds, write a summary.
/// let task = ScriptTask::new()
///     .get("data", "chunk-0")
///     .compute(2.0)
///     .put("data", "summary-0", ObjectBody::opaque(1024))
///     .finish_value(Payload::Unit);
/// # let _ = task;
/// ```
pub struct ScriptTask {
    actions: std::collections::VecDeque<Action>,
    outcomes: Vec<ActionOutcome>,
    input: Option<Payload>,
    finish: Option<ScriptFinish>,
}

impl std::fmt::Debug for ScriptTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScriptTask")
            .field("pending_actions", &self.actions.len())
            .field("outcomes", &self.outcomes.len())
            .finish()
    }
}

impl Default for ScriptTask {
    fn default() -> Self {
        Self::new()
    }
}

impl ScriptTask {
    /// Starts an empty script.
    pub fn new() -> Self {
        ScriptTask {
            actions: std::collections::VecDeque::new(),
            outcomes: Vec::new(),
            input: None,
            finish: None,
        }
    }

    /// Appends an arbitrary action.
    pub fn action(mut self, action: Action) -> Self {
        self.actions.push_back(action);
        self
    }

    /// Appends a compute segment.
    pub fn compute(self, cpu_secs: f64) -> Self {
        self.action(Action::Compute { cpu_secs })
    }

    /// Appends a GET.
    pub fn get(self, bucket: impl Into<String>, key: impl Into<String>) -> Self {
        self.action(Action::Get {
            bucket: bucket.into(),
            key: key.into(),
        })
    }

    /// Appends a concurrent multi-GET.
    pub fn get_many(self, bucket: impl Into<String>, keys: Vec<String>) -> Self {
        self.action(Action::GetMany {
            bucket: bucket.into(),
            keys,
        })
    }

    /// Appends a PUT.
    pub fn put(
        self,
        bucket: impl Into<String>,
        key: impl Into<String>,
        body: ObjectBody,
    ) -> Self {
        self.action(Action::Put {
            bucket: bucket.into(),
            key: key.into(),
            body,
        })
    }

    /// Appends a concurrent multi-PUT.
    pub fn put_many(self, bucket: impl Into<String>, entries: Vec<(String, ObjectBody)>) -> Self {
        self.action(Action::PutMany {
            bucket: bucket.into(),
            entries,
        })
    }

    /// Appends a sleep.
    pub fn sleep(self, secs: f64) -> Self {
        self.action(Action::Sleep { secs })
    }

    /// Finishes with a fixed payload.
    pub fn finish_value(mut self, payload: Payload) -> Self {
        self.finish = Some(ScriptFinish::Value(payload));
        self
    }

    /// Finishes by computing the payload from the input and the collected
    /// action outcomes (in action order).
    pub fn finish_with(
        mut self,
        f: impl FnOnce(&Payload, Vec<ActionOutcome>) -> TaskStep + Send + 'static,
    ) -> Self {
        self.finish = Some(ScriptFinish::FromOutcomes(Box::new(f)));
        self
    }

    /// Boxes the script as a [`TaskLogic`] trait object.
    pub fn boxed(self) -> Box<dyn TaskLogic> {
        Box::new(self)
    }

    fn next_step(&mut self) -> TaskStep {
        if let Some(action) = self.actions.pop_front() {
            return TaskStep::Act(action);
        }
        match self.finish.take() {
            Some(ScriptFinish::Value(payload)) => TaskStep::Finish(payload),
            Some(ScriptFinish::FromOutcomes(f)) => {
                let input = self.input.take().unwrap_or(Payload::Unit);
                let outcomes = std::mem::take(&mut self.outcomes);
                f(&input, outcomes)
            }
            None => TaskStep::Finish(Payload::Unit),
        }
    }
}

impl TaskLogic for ScriptTask {
    fn on_start(&mut self, input: &Payload) -> TaskStep {
        self.input = Some(input.clone());
        self.next_step()
    }

    fn on_action(&mut self, outcome: ActionOutcome) -> TaskStep {
        if let ActionOutcome::MissingObject = outcome {
            return TaskStep::Fail("script read a missing object".into());
        }
        self.outcomes.push(outcome);
        self.next_step()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(mut logic: Box<dyn TaskLogic>, input: Payload) -> (Vec<String>, TaskStep) {
        let mut trace = Vec::new();
        let mut step = logic.on_start(&input);
        loop {
            match step {
                TaskStep::Act(action) => {
                    trace.push(format!("{action:?}"));
                    let outcome = match &action {
                        Action::Get { .. } => ActionOutcome::Object(ObjectBody::opaque(4)),
                        Action::GetMany { keys, .. } => ActionOutcome::Objects(
                            keys.iter().map(|_| ObjectBody::opaque(1)).collect(),
                        ),
                        Action::List { .. } => ActionOutcome::Keys(vec![]),
                        Action::KvGet { .. } => ActionOutcome::KvValue(None),
                        _ => ActionOutcome::Done,
                    };
                    step = logic.on_action(outcome);
                }
                terminal => return (trace, terminal),
            }
        }
    }

    #[test]
    fn script_runs_actions_in_order() {
        let task = ScriptTask::new()
            .compute(1.0)
            .get("b", "k")
            .put("b", "out", ObjectBody::opaque(8))
            .finish_value(Payload::U64(7));
        let (trace, end) = drive(task.boxed(), Payload::Unit);
        assert_eq!(trace.len(), 3);
        assert!(trace[0].contains("Compute"));
        assert!(trace[1].contains("Get"));
        assert!(trace[2].contains("Put"));
        match end {
            TaskStep::Finish(Payload::U64(7)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn finish_with_sees_input_and_outcomes() {
        let task = ScriptTask::new()
            .get("b", "k")
            .finish_with(|input, outcomes| {
                let x = input.as_u64().unwrap();
                let got = match &outcomes[0] {
                    ActionOutcome::Object(body) => body.len(),
                    other => panic!("unexpected {other:?}"),
                };
                TaskStep::Finish(Payload::U64(x + got))
            });
        let (_, end) = drive(task.boxed(), Payload::U64(10));
        match end {
            TaskStep::Finish(Payload::U64(14)) => {} // 10 + 4-byte object
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_script_finishes_unit() {
        let (trace, end) = drive(ScriptTask::new().boxed(), Payload::Unit);
        assert!(trace.is_empty());
        assert!(matches!(end, TaskStep::Finish(Payload::Unit)));
    }

    #[test]
    fn missing_object_fails_script() {
        let mut logic = ScriptTask::new().get("b", "k").finish_value(Payload::Unit);
        let step = logic.on_start(&Payload::Unit);
        assert!(matches!(step, TaskStep::Act(Action::Get { .. })));
        let step = logic.on_action(ActionOutcome::MissingObject);
        assert!(matches!(step, TaskStep::Fail(_)));
    }

    #[test]
    fn get_many_preserves_key_order_contract() {
        let task = ScriptTask::new()
            .get_many("b", vec!["k1".into(), "k2".into(), "k3".into()])
            .finish_with(|_, outcomes| match &outcomes[0] {
                ActionOutcome::Objects(objs) => TaskStep::Finish(Payload::U64(objs.len() as u64)),
                other => panic!("unexpected {other:?}"),
            });
        let (_, end) = drive(task.boxed(), Payload::Unit);
        assert!(matches!(end, TaskStep::Finish(Payload::U64(3))));
    }
}
