//! Framework errors.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the executor API.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExecError {
    /// A logical function referenced an object that does not exist.
    MissingObject {
        /// Bucket of the missing object.
        bucket: String,
        /// Key of the missing object.
        key: String,
    },
    /// A payload failed to decode.
    Decode(String),
    /// A task reported a failure.
    TaskFailed(String),
    /// The simulation drained before the job finished — a framework or
    /// workload bug (e.g. waiting on a result nobody writes).
    Stalled(String),
    /// An operation was used on a backend that does not support it
    /// (e.g. master-KV access from the FaaS backend).
    Unsupported(String),
    /// A unit of work kept failing until its retry budget ran out.
    AttemptsExhausted {
        /// What was being retried (task, storage op, VM slot).
        what: String,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The backend could not keep its infrastructure up (e.g. repeated
    /// VM provisioning failures).
    InfraFailed(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MissingObject { bucket, key } => {
                write!(f, "object not found: {bucket}/{key}")
            }
            ExecError::Decode(msg) => write!(f, "payload decode failed: {msg}"),
            ExecError::TaskFailed(msg) => write!(f, "task failed: {msg}"),
            ExecError::Stalled(msg) => write!(f, "execution stalled: {msg}"),
            ExecError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            ExecError::AttemptsExhausted { what, attempts } => {
                write!(f, "retries exhausted after {attempts} attempts: {what}")
            }
            ExecError::InfraFailed(msg) => write!(f, "infrastructure failure: {msg}"),
        }
    }
}

impl Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_period() {
        let e = ExecError::MissingObject {
            bucket: "b".into(),
            key: "k".into(),
        };
        let text = e.to_string();
        assert!(text.starts_with("object not found"));
        assert!(!text.ends_with('.'));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ExecError>();
    }
}
