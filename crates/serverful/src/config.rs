//! Executor configuration.

use crate::recovery::RecoveryMode;
use crate::retry::RetryPolicy;
use crate::sizing::{BidPolicy, SizingPolicy};

/// How the serverful (VM) backend lays out compute.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecMode {
    /// One right-sized VM runs the master process, the KV store and one
    /// worker per vCPU — the deployment the paper uses for in-place
    /// sorts. The instance type comes from the sizing policy unless
    /// overridden.
    Consolidated,
    /// A dedicated master VM plus `count` worker VMs of `instance_type`.
    Fleet {
        /// Worker instance type name (must be in the catalog).
        instance_type: String,
        /// Number of worker VMs.
        count: usize,
    },
}

/// Configuration of the serverful (standalone) backend.
#[derive(Debug, Clone, PartialEq)]
pub struct StandaloneConfig {
    /// Compute layout.
    pub exec_mode: ExecMode,
    /// Instance type for the dedicated master VM (fleet mode).
    pub master_instance: String,
    /// Force a specific worker instance type instead of the sizing
    /// policy's choice (consolidated mode).
    pub instance_override: Option<String>,
    /// Input-size-driven sizing policy.
    pub sizing: SizingPolicy,
    /// Keep VMs alive between jobs of the same executor ("use existing,
    /// previously configured VMs"); `false` tears everything down after
    /// each job.
    pub reuse_instances: bool,
    /// Mean/std of the SSH connect + worker bootstrap performed on each
    /// fresh VM, seconds.
    pub ssh_setup: (f64, f64),
    /// Master's storage-polling interval while monitoring a job,
    /// seconds (the tick period of the job's monitor future).
    pub poll_interval: f64,
    /// Client-side setup per `map` on this backend — small, because the
    /// runtime and modules already live on the VMs.
    pub map_setup_secs: f64,
    /// Attempts per VM slot before a provisioning failure is surfaced
    /// to the job (replacement VMs after boot failures or losses).
    pub max_provision_attempts: u32,
    /// Keep-alive window for an idle pool with `reuse_instances`:
    /// after this many seconds without queued or running jobs the
    /// pool's VMs are torn down (they re-provision on the next job).
    /// `None` keeps warm VMs until executor shutdown — the original
    /// single-job behaviour.
    pub idle_timeout_secs: Option<f64>,
    /// Fleet name the pool's VMs are provisioned (and billed) under.
    /// Defaults to `standalone-{pool index}`; the cross-job shared
    /// pool labels its fleet so per-tenant cost reports can split
    /// pool cost from direct job cost.
    pub fleet_label: Option<String>,
    /// What happens when the master VM is lost mid-job. The default
    /// [`RecoveryMode::Protected`] reproduces the paper's assumption
    /// (the master cannot fail); the other modes survive its loss. See
    /// [`crate::recovery`].
    pub recovery: RecoveryMode,
    /// Seconds between master checkpoint snapshots under
    /// [`RecoveryMode::Checkpointed`]; ignored by the other modes.
    pub checkpoint_interval_secs: f64,
    /// How worker slots bid for VM capacity: on-demand (default, the
    /// paper's behaviour) or discounted-but-preemptible spot with a
    /// bounded per-slot preemption budget. Master slots always run
    /// on-demand regardless.
    pub bid: BidPolicy,
}

impl Default for StandaloneConfig {
    fn default() -> Self {
        StandaloneConfig {
            exec_mode: ExecMode::Consolidated,
            master_instance: "c5.large".to_owned(),
            instance_override: None,
            sizing: SizingPolicy::default(),
            reuse_instances: true,
            ssh_setup: (2.0, 0.4),
            poll_interval: 1.0,
            map_setup_secs: 0.5,
            max_provision_attempts: 5,
            idle_timeout_secs: None,
            fleet_label: None,
            recovery: RecoveryMode::Protected,
            checkpoint_interval_secs: 5.0,
            bid: BidPolicy::OnDemand,
        }
    }
}

/// Configuration shared by all backends of one executor.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutorConfig {
    /// Bucket used for job metadata, inputs and results.
    pub bucket: String,
    /// Sandbox memory for the FaaS backend, MB (1769 MB = 1 vCPU).
    pub runtime_memory_mb: u32,
    /// Client's storage-polling interval while monitoring a FaaS job,
    /// seconds (the tick period of the job's monitor future).
    pub poll_interval: f64,
    /// Whether each sandbox fetches its input bundle from object storage
    /// before running (Lithops ships function + data through storage).
    pub fetch_input: bool,
    /// Client-side seconds spent per `map` call serialising the function
    /// and its dependencies and uploading them before dispatch.
    pub map_setup_secs: f64,
    /// Fraction of a vCPU a logical function burns while waiting on
    /// storage/KV I/O ((de)serialisation overlapped with transfers).
    /// Accounting only; affects the Table 3 utilisation statistics.
    pub io_compute_overlap: f64,
    /// Retry/backoff/straggler policy applied to every job of this
    /// executor (task re-dispatch, storage re-issue, worker requeue).
    pub retry: RetryPolicy,
    /// Record a span trace of every job on virtual time (exported as
    /// Chrome trace-event JSON). Costs nothing when off.
    pub tracing: bool,
    /// Serverful-backend options.
    pub standalone: StandaloneConfig,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            bucket: "lithops-workspace".to_owned(),
            runtime_memory_mb: 1769,
            poll_interval: 2.0,
            fetch_input: true,
            map_setup_secs: 2.5,
            io_compute_overlap: 0.35,
            retry: RetryPolicy::default(),
            tracing: false,
            standalone: StandaloneConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let cfg = ExecutorConfig::default();
        // 1769 MB is the paper's Lambda configuration (= 1 vCPU).
        assert_eq!(cfg.runtime_memory_mb, 1769);
        assert!(matches!(cfg.standalone.exec_mode, ExecMode::Consolidated));
        assert!(cfg.standalone.reuse_instances);
        // The paper assumes the master cannot fail; surviving its loss
        // is opt-in.
        assert_eq!(cfg.standalone.recovery, RecoveryMode::Protected);
    }

    #[test]
    fn fleet_mode_is_expressible() {
        let mode = ExecMode::Fleet {
            instance_type: "c5.4xlarge".into(),
            count: 4,
        };
        match mode {
            ExecMode::Fleet { count, .. } => assert_eq!(count, 4),
            other => panic!("unexpected {other:?}"),
        }
    }
}
