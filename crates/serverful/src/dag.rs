//! Dependency-driven dataflow execution over [`CloudEnv`].
//!
//! A [`Dag`] represents a workflow as a task-level dependency graph:
//! node *v*'s partition *p* becomes runnable as soon as its specific
//! upstream partitions complete — not when the whole upstream stage
//! drains. This is Wukong's observation ("In Search of a Fast and
//! Efficient Serverless DAG Engine"): BSP stage barriers make fast
//! partitions idle behind stragglers at every boundary, and a
//! dependency-driven scheduler removes exactly that cost.
//!
//! Execution comes in two [`ExecutionMode`]s:
//!
//! * [`ExecutionMode::Barrier`] — the classic BSP chain. Nodes run one
//!   at a time in submission order; each blocks until fully drained.
//!   A barrier is the *degenerate DAG* (all-to-all edges between
//!   consecutive stages collapsed into whole-job waits), and this mode
//!   reproduces the pre-dataflow executor byte-for-byte: identical
//!   world-call sequence, identical goldens.
//! * [`ExecutionMode::Pipelined`] — every node is submitted up front
//!   with its tasks *gated* ([`crate::executor::MapOptions::gated`]);
//!   the scheduler pumps the environment and releases each task the
//!   moment its [`FanIn`]-shaped upstream dependencies are satisfied.
//!   FaaS tasks launch immediately; serverful tasks enqueue on the
//!   already-warm worker pool.
//!
//! The launch closures own backend choice and input seeding; the DAG
//! only sequences them. See `metaspace::runner` for the full pipeline
//! lowering and `examples/dag_pipeline.rs` for a standalone example.

use crate::env::CloudEnv;
use crate::error::ExecError;
use crate::executor::JobHandle;
use simkernel::SimTime;
use telemetry::trace::SpanId;

/// How an edge fans partitions in from its upstream node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FanIn {
    /// Task `j` of a width-`m` downstream node depends on the block of
    /// upstream tasks `[j*n/m, max((j+1)*n/m, j*n/m + 1))` of a
    /// width-`n` upstream node. For equal widths this is the identity
    /// mapping (map stages chained partition-to-partition).
    OneToOne,
    /// Every downstream task depends on *every* upstream task (shuffle
    /// edges: sort, segmentation, any repartitioning exchange).
    AllToAll,
}

/// A dependency edge: `from` is the index of an upstream node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Index of the upstream node (must be < the downstream node's).
    pub from: usize,
    /// Fan-in shape of the dependency.
    pub fan_in: FanIn,
}

impl Edge {
    /// A one-to-one (partition-wise) edge from node `from`.
    pub fn one_to_one(from: usize) -> Edge {
        Edge { from, fan_in: FanIn::OneToOne }
    }

    /// An all-to-all (shuffle) edge from node `from`.
    pub fn all_to_all(from: usize) -> Edge {
        Edge { from, fan_in: FanIn::AllToAll }
    }
}

/// The upstream task indices task `t` of a width-`m` downstream node
/// waits on across a `fan_in`-shaped edge from a width-`n` upstream
/// node, as a half-open range.
///
/// # Example
///
/// ```
/// use serverful::dag::{fan_in_range, FanIn};
///
/// // 8 upstream partitions feeding 3 downstream: blocks of ~n/m.
/// assert_eq!(fan_in_range(FanIn::OneToOne, 8, 3, 1), 2..5);
/// assert_eq!(fan_in_range(FanIn::AllToAll, 8, 3, 1), 0..8);
/// ```
pub fn fan_in_range(
    fan_in: FanIn,
    upstream_tasks: usize,
    downstream_tasks: usize,
    t: usize,
) -> std::ops::Range<usize> {
    let n = upstream_tasks;
    match fan_in {
        FanIn::AllToAll => 0..n,
        FanIn::OneToOne => {
            let m = downstream_tasks;
            let lo = t * n / m;
            let hi = ((t + 1) * n / m).max(lo + 1).min(n);
            lo..hi
        }
    }
}

/// How a DAG's nodes are scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecutionMode {
    /// BSP stage barriers: each node blocks until the previous fully
    /// drains. Byte-identical to the pre-dataflow executor.
    #[default]
    Barrier,
    /// Dependency-driven: all nodes submitted gated; tasks released as
    /// their upstream partitions complete.
    Pipelined,
}

impl std::fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutionMode::Barrier => f.write_str("barrier"),
            ExecutionMode::Pipelined => f.write_str("pipelined"),
        }
    }
}

/// Launches one node's job against the environment. `gated` asks for
/// the submission to withhold task dispatch (Pipelined mode); a Barrier
/// launch passes `false` and the job runs exactly as a plain `map`.
pub type LaunchFn<C> =
    Box<dyn FnMut(&mut C, &mut CloudEnv, bool) -> Result<JobHandle, ExecError>>;

/// One node of the graph: a `map` job plus its dependency edges.
pub struct DagNode<C> {
    /// Display label (reports, trace annotations).
    pub label: String,
    /// Progress group this node belongs to (a pipeline stage may lower
    /// to several nodes — scatter/gather, per-round exchanges).
    pub group: Option<usize>,
    /// Task count the node's job will have (known before launch so
    /// fan-in block ranges can be computed).
    pub tasks: usize,
    /// Upstream dependencies. Every `Edge::from` must point at a node
    /// with a strictly smaller index (topological submission order).
    pub deps: Vec<Edge>,
    /// Submits the node's job.
    pub launch: LaunchFn<C>,
}

/// A workflow graph over a shared driver context `C` (executors, plan
/// parameters — whatever the launch closures need).
pub struct Dag<C> {
    /// Group labels (pipeline stage names), indexed by `DagNode::group`.
    pub groups: Vec<String>,
    nodes: Vec<DagNode<C>>,
}

impl<C> Default for Dag<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C> Dag<C> {
    /// An empty graph.
    pub fn new() -> Self {
        Dag { groups: Vec::new(), nodes: Vec::new() }
    }

    /// Registers a progress group (stage) label; returns its index.
    pub fn add_group(&mut self, label: impl Into<String>) -> usize {
        self.groups.push(label.into());
        self.groups.len() - 1
    }

    /// Adds a node; returns its index. Nodes must be added in a
    /// topological order.
    ///
    /// # Panics
    ///
    /// Panics if an edge points at this node or a later one, or if the
    /// node has zero tasks.
    pub fn add_node(&mut self, node: DagNode<C>) -> usize {
        let idx = self.nodes.len();
        assert!(node.tasks > 0, "node {:?} has zero tasks", node.label);
        for e in &node.deps {
            assert!(
                e.from < idx,
                "edge {} -> {} is not topological",
                e.from,
                idx
            );
        }
        self.nodes.push(node);
        idx
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Read access to node `idx` (label, task count, edges).
    pub fn node(&self, idx: usize) -> &DagNode<C> {
        &self.nodes[idx]
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Mutable access to node `idx` (the async driver runs launch
    /// closures through this).
    pub(crate) fn node_mut(&mut self, idx: usize) -> &mut DagNode<C> {
        &mut self.nodes[idx]
    }

    /// The upstream task indices task `t` of node `v` waits on through
    /// `edge`, as a half-open range over the upstream node's tasks.
    #[cfg(test)]
    fn dep_range(&self, v: usize, t: usize, edge: &Edge) -> std::ops::Range<usize> {
        fan_in_range(edge.fan_in, self.nodes[edge.from].tasks, self.nodes[v].tasks, t)
    }
}

/// Per-node scheduling telemetry from a [`crate::run_dag_async`]
/// execution.
#[derive(Debug, Clone)]
pub struct NodeStats {
    /// The node's label.
    pub label: String,
    /// The node's group index, if any.
    pub group: Option<usize>,
    /// Task count.
    pub tasks: usize,
    /// When the node's job was submitted.
    pub launched_at: SimTime,
    /// When the node's job fully finished (results collected).
    pub finished_at: SimTime,
    /// When each task was released for dispatch (equals `launched_at`
    /// for every task in Barrier mode).
    pub released_at: Vec<SimTime>,
    /// When each task's completion was observed by the scheduler.
    pub done_at: Vec<SimTime>,
}

/// The result of a DAG execution: per-node stats in node order.
#[derive(Debug, Clone)]
pub struct DagStats {
    /// One entry per node, in submission (topological) order.
    pub nodes: Vec<NodeStats>,
}

/// Begins the trace span of a group when `node` is its first member.
pub(crate) fn maybe_begin_group_span<C>(
    env: &mut CloudEnv,
    dag: &Dag<C>,
    node: usize,
    open: &mut [SpanId],
) {
    let Some(g) = dag.nodes[node].group else {
        return;
    };
    if !env.tracing_enabled() || open[g] != SpanId::NONE {
        return;
    }
    let first = dag.nodes.iter().position(|n| n.group == Some(g));
    if first != Some(node) {
        return;
    }
    let now = env.now();
    let name = dag.groups[g].clone();
    let span = env
        .world_mut()
        .tracer_mut()
        .begin(now, &name, "stage", "pipeline", SpanId::NONE);
    open[g] = span;
}

/// Ends a group's span once its last member node finished.
pub(crate) fn maybe_end_group_span<C>(
    env: &mut CloudEnv,
    dag: &Dag<C>,
    node: usize,
    open: &mut [SpanId],
) {
    let Some(g) = dag.nodes[node].group else {
        return;
    };
    if open[g] == SpanId::NONE {
        return;
    }
    let last = dag.nodes.iter().rposition(|n| n.group == Some(g));
    if last != Some(node) {
        return;
    }
    let now = env.now();
    env.world_mut().tracer_mut().end(open[g], now);
    open[g] = SpanId::NONE;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_constructors() {
        assert_eq!(Edge::one_to_one(3), Edge { from: 3, fan_in: FanIn::OneToOne });
        assert_eq!(Edge::all_to_all(0), Edge { from: 0, fan_in: FanIn::AllToAll });
    }

    #[test]
    fn execution_mode_defaults_to_barrier() {
        assert_eq!(ExecutionMode::default(), ExecutionMode::Barrier);
        assert_eq!(ExecutionMode::Barrier.to_string(), "barrier");
        assert_eq!(ExecutionMode::Pipelined.to_string(), "pipelined");
    }

    fn leaf(label: &str, tasks: usize, deps: Vec<Edge>) -> DagNode<()> {
        DagNode {
            label: label.into(),
            group: None,
            tasks,
            deps,
            launch: Box::new(|_, _, _| unreachable!("never launched in this test")),
        }
    }

    #[test]
    fn one_to_one_block_mapping_covers_all_upstream_tasks() {
        // Upstream 8 tasks, downstream 3: blocks [0,2) [2,5) [5,8).
        let mut dag: Dag<()> = Dag::new();
        let up = dag.add_node(leaf("up", 8, vec![]));
        let down = dag.add_node(leaf("down", 3, vec![Edge::one_to_one(up)]));
        let e = Edge::one_to_one(up);
        let ranges: Vec<_> = (0..3).map(|t| dag.dep_range(down, t, &e)).collect();
        assert_eq!(ranges, vec![0..2, 2..5, 5..8]);
        // Every upstream task is covered.
        let covered: Vec<usize> = ranges.into_iter().flatten().collect();
        assert_eq!(covered, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn one_to_one_widening_maps_each_downstream_to_one_upstream() {
        // Upstream 2 tasks, downstream 6: each downstream task waits on
        // exactly one upstream partition.
        let mut dag: Dag<()> = Dag::new();
        let up = dag.add_node(leaf("up", 2, vec![]));
        let down = dag.add_node(leaf("down", 6, vec![Edge::one_to_one(up)]));
        let e = Edge::one_to_one(up);
        let owners: Vec<_> = (0..6)
            .map(|t| dag.dep_range(down, t, &e))
            .collect();
        assert_eq!(owners, vec![0..1, 0..1, 0..1, 1..2, 1..2, 1..2]);
    }

    #[test]
    fn all_to_all_spans_the_whole_upstream() {
        let mut dag: Dag<()> = Dag::new();
        let up = dag.add_node(leaf("up", 5, vec![]));
        let down = dag.add_node(leaf("down", 2, vec![Edge::all_to_all(up)]));
        let e = Edge::all_to_all(up);
        assert_eq!(dag.dep_range(down, 0, &e), 0..5);
        assert_eq!(dag.dep_range(down, 1, &e), 0..5);
    }

    #[test]
    #[should_panic(expected = "not topological")]
    fn forward_edges_are_rejected() {
        let mut dag: Dag<()> = Dag::new();
        dag.add_node(leaf("a", 1, vec![Edge::one_to_one(0)]));
    }
}
