//! Event routing: the [`Route`] tag carried by every simulator
//! notification, the [`EnvCmd`] queue kernel futures use to call back
//! into the environment, and the dispatchers that fan completed ops,
//! KV failures, and timers out to the focused modules.

use super::*;

/// Where a notification should be delivered.
#[derive(Debug, Clone)]
pub(super) enum Route {
    /// An op issued by a task's logic (or its result write).
    Task { job: usize, task: usize },
    /// The client PUT of a task's input bundle.
    InputPut { job: usize, task: usize },
    /// Client-side function/deps serialisation before dispatch.
    JobSetup { job: usize },
    /// A world-clock timer armed on behalf of a kernel future
    /// ([`CloudEnv::wake_timer`]): firing opens the gate and pumps the
    /// kernel so the awaiting loop runs *inside* this dispatch, exactly
    /// where the old hand-rolled timer handler ran.
    Wake { gate: Gate },
    /// Monitor LIST. `generation` versions the monitor loop so a LIST
    /// issued before a checkpoint replay restarted the cycle is told
    /// apart from the replacement's.
    List { job: usize, generation: u64 },
    /// Monitor result GET (same `generation` discipline as
    /// [`Route::List`]).
    Collect { job: usize, task: usize, generation: u64 },
    /// A pool VM came up / finished SSH setup. `epoch` versions the
    /// slot so timers of a replaced VM are dropped.
    PoolVm { pool: usize, slot: PoolSlot, epoch: u64 },
    /// Master pushed one task bundle into the KV queue.
    Push { pool: usize, job: usize },
    /// A worker process's KV pop. `epoch` versions the worker VM so
    /// pops issued by a since-replaced VM are not mistaken for the
    /// replacement's.
    Pop { pool: usize, vm_idx: usize, proc: usize, epoch: u64 },
    /// The master's SSH notification reaching the client.
    MasterNotify { job: usize },
    /// Master re-pushing a requeued task bundle after a worker loss.
    Requeue { pool: usize },
    /// A caller-owned timer registered via [`CloudEnv::external_timer`];
    /// surfaced from [`CloudEnv::pump`] instead of being handled here.
    External { token: u64 },
    /// Keep-alive expiry for an idle pool. `epoch` versions the idle
    /// window: a job starting (or another window opening) invalidates
    /// earlier timers.
    PoolIdle { pool: usize, epoch: u64 },
    /// Periodic master-state snapshot PUT ([`RecoveryMode::Checkpointed`]).
    Checkpoint { pool: usize, job: usize },
    /// The replacement master's checkpoint GET during re-adoption.
    /// `episode` versions the recovery so a twice-replaced master drops
    /// the first replacement's fetch.
    Readopt { pool: usize, job: usize, episode: u64 },
    /// Client PUT of a task bundle to object storage
    /// ([`RecoveryMode::Decentralized`] dispatch).
    DcBundle { pool: usize, job: usize, task: usize },
    /// Worker GET of a claimed task bundle (decentralized dispatch).
    DcClaim { pool: usize, job: usize, vm_idx: usize, proc: usize, epoch: u64, task: usize },
    /// Worker PUT of a per-task completion counter (decentralized
    /// continuation passing).
    DcCounter { pool: usize, job: usize, task: usize },
}

/// An action queued by a kernel future for the environment to execute.
/// The futures own control flow (when to tick, when to give up); the
/// environment owns the world handle, so every side effect funnels
/// through one of these.
pub(super) enum EnvCmd {
    /// Periodic master-state snapshot (checkpoint sleep loop).
    Checkpoint { pool: usize },
    /// Fetch the checkpoint for a replacement master (re-adoption gate).
    Readopt { pool: usize, episode: u64 },
    /// A completion-monitor tick elapsed: run the LIST cycle.
    MonitorTick {
        job: usize,
        generation: u64,
        reply: ReplySlot<TickVerdict>,
    },
    /// A straggler-speculation tick elapsed: sweep for late attempts.
    StragglerSweep { job: usize, reply: ReplySlot<TickVerdict> },
    /// A task retry backoff elapsed: re-dispatch the attempt.
    RetryTask { job: usize, task: usize, attempt: u32 },
    /// A storage retry backoff elapsed: re-issue the faulted request.
    RetryStorage {
        spec: StorageSpec,
        attempts: u32,
        inner: Box<Route>,
        /// `(faulted op, its slot)` in the task action's pending map,
        /// if any. The faulted op stays in the map as a placeholder
        /// while the backoff runs — so a sibling op of a multi-op
        /// action cannot drain the map and assemble a result with a
        /// hole — and is swapped for the re-issued op at fire time.
        pending_slot: Option<(OpId, usize)>,
        /// Task attempt the op belonged to; a mismatch at fire time
        /// means the whole attempt was torn down meanwhile.
        task_attempt: u32,
    },
}

impl CloudEnv {
    /// The job a route belongs to, if any.
    pub(super) fn route_job(route: &Route) -> Option<usize> {
        match route {
            Route::Task { job, .. }
            | Route::InputPut { job, .. }
            | Route::JobSetup { job }
            | Route::List { job, .. }
            | Route::Collect { job, .. }
            | Route::Push { job, .. }
            | Route::MasterNotify { job }
            | Route::Checkpoint { job, .. }
            | Route::Readopt { job, .. }
            | Route::DcBundle { job, .. }
            | Route::DcClaim { job, .. }
            | Route::DcCounter { job, .. } => Some(*job),
            _ => None,
        }
    }

    pub(super) fn on_op(&mut self, route: Route, op: OpId, outcome: OpOutcome) {
        if matches!(outcome, OpOutcome::KvUnreachable) {
            self.on_kv_unreachable(route);
            return;
        }
        match route {
            Route::Task { job, task } => self.on_task_op(job, task, op, outcome),
            Route::InputPut { job, task } => {
                if self.jobs[job].is_finished() {
                    return;
                }
                let JobBackend::Faas {
                    memory_mb, fleet, ..
                } = self.jobs[job].backend.clone()
                else {
                    unreachable!("input put on a non-FaaS job")
                };
                self.invoke_task(job, task, memory_mb, &fleet);
            }
            Route::JobSetup { job } => self.on_job_setup(job),
            Route::List { job, generation } => self.on_list(job, generation, outcome),
            Route::Collect {
                job,
                task,
                generation,
            } => self.on_collect(job, task, generation, outcome),
            Route::Push { pool, job } => self.on_push_done(pool, job),
            Route::Pop {
                pool,
                vm_idx,
                proc,
                epoch,
            } => self.on_pop(pool, vm_idx, proc, epoch, outcome),
            Route::Requeue { pool } => self.on_requeue_done(pool),
            Route::Checkpoint { pool, .. } => {
                if self.pools[pool].cfg.recovery == RecoveryMode::Checkpointed {
                    self.recovery_stats.checkpoints_written += 1;
                }
            }
            Route::Readopt {
                pool,
                job,
                episode,
            } => self.on_readopt(pool, job, episode, outcome),
            Route::DcBundle { pool, job, task } => self.on_dc_bundle(pool, job, task),
            Route::DcClaim {
                pool,
                job,
                vm_idx,
                proc,
                epoch,
                task,
            } => self.on_dc_claim(pool, job, vm_idx, proc, epoch, task, outcome),
            Route::DcCounter { pool, job, task } => self.on_dc_counter(pool, job, task),
            other => unreachable!("op completion routed to {other:?}"),
        }
    }

    /// An in-flight KV operation lost its server (master death). Each
    /// route has a graceful landing; none of them may panic, because
    /// under [`RecoveryMode::Protected`] this is exactly how a forced
    /// master kill is supposed to strand the run.
    pub(super) fn on_kv_unreachable(&mut self, route: Route) {
        match route {
            Route::Pop {
                pool,
                vm_idx,
                proc,
                epoch,
            } => {
                let Some(w) = self.pools[pool].workers.get(vm_idx) else {
                    return;
                };
                if w.epoch == epoch
                    && w.phase == VmPhase::Ready
                    && self.world.host_alive(w.host)
                {
                    // The worker process survives the master: it idles
                    // until recovery requeues work (or forever).
                    self.pools[pool].idle_procs.push((vm_idx, proc));
                }
            }
            Route::Push { pool, job } => {
                // Keep the outstanding-push bookkeeping moving so the
                // job reaches its (stalled or recovered) steady state.
                self.on_push_done(pool, job);
            }
            Route::Task { job, task } => {
                // A task's KV action (shuffle exchange) lost the server
                // mid-transfer: the attempt is torn down and retried
                // through the normal task budget.
                self.task_attempt_failed(job, task, AttemptFailure::StorageExhausted);
            }
            // A requeue push that died with the queue: the checkpoint
            // replay (or the stall) owns the task now.
            Route::Requeue { .. } => {}
            _ => {}
        }
    }

    pub(super) fn on_timer(&mut self, route: Route) {
        match route {
            Route::Wake { gate } => {
                // Open the gate and pump the kernel *inside* this
                // dispatch — but without advancing the kernel clock, so
                // kernel timers (checkpoint sleeps) keep firing at their
                // end-of-pump position. The woken loop queues its
                // command and the drain runs it right here, exactly
                // where the old hand-rolled timer handler ran.
                gate.open();
                self.kernel.run_ready();
                self.drain_cmds();
            }
            Route::PoolVm { pool, slot, epoch } => self.on_pool_vm_ready(pool, slot, epoch),
            Route::PoolIdle { pool, epoch } => self.on_pool_idle(pool, epoch),
            Route::MasterNotify { job } => {
                // The notifying master must still be alive when the SSH
                // message lands; a freshly-dead master notifies no one.
                if self.world.host_alive(self.jobs[job].monitor_host) {
                    self.complete_job(job, None);
                }
            }
            other => unreachable!("timer routed to {other:?}"),
        }
    }
}
