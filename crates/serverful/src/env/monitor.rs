//! The storage-polling completion monitor, as a kernel future per
//! job: the tick loop, LIST/GET handling, straggler speculation, and
//! job completion.

use super::*;

/// A one-shot reply channel from the environment back into a waiting
/// kernel future: a [`Gate`] plus the value it announces.
pub(super) struct ReplySlot<T> {
    pub(super) gate: Gate,
    pub(super) value: Rc<RefCell<Option<T>>>,
}

impl<T> Clone for ReplySlot<T> {
    fn clone(&self) -> Self {
        ReplySlot {
            gate: self.gate.clone(),
            value: Rc::clone(&self.value),
        }
    }
}

impl<T> ReplySlot<T> {
    pub(super) fn new(kernel: &AsyncExecutor) -> Self {
        ReplySlot {
            gate: kernel.gate(),
            value: Rc::new(RefCell::new(None)),
        }
    }

    /// Delivers the reply and wakes the waiting loop.
    pub(super) fn set(&self, value: T) {
        *self.value.borrow_mut() = Some(value);
        self.gate.open();
    }

    /// Resolves once [`Self::set`] delivered a value.
    pub(super) async fn recv(self) -> T {
        self.gate.wait().await;
        self.value
            .borrow_mut()
            .take()
            .expect("reply gate opened without a value")
    }
}

/// What the environment tells a periodic loop after handling its tick.
pub(super) enum TickVerdict {
    /// Tick again: the environment armed the next world timer and the
    /// gate opens when it fires.
    Rearm(Gate),
    /// The loop is over (collection started, job finished, monitor host
    /// lost, or the sweep has nothing left to watch).
    Stop,
}

/// Environment-side handle to a job's completion-monitor loop. The
/// old hand-rolled poll state machine kept a tri-state flag on the job;
/// its invariants now live here: `generation` + `token` guarantee at
/// most one live LIST cycle per job (a restart cancels the old loop
/// instead of racing it), and `collecting` tracks the final gather.
pub(super) struct MonitorHandle {
    /// Bumped on every (re)start; stale LISTs/collects are dropped on
    /// mismatch.
    pub(super) generation: u64,
    /// Cancels the loop future (and the straggler sweep riding the same
    /// token) on restart or job completion.
    pub(super) token: CancelToken,
    /// LIST requests of the *current* generation in flight. The
    /// "exactly one LIST cycle" invariant says this never exceeds 1;
    /// [`CloudEnv::monitor_list_overlap`] exposes the high-water mark so
    /// tests can assert it.
    pub(super) lists_in_flight: u32,
    /// Result GETs outstanding in the final collection, once the LIST
    /// came back complete.
    pub(super) collecting: Option<usize>,
    /// Reply channel of the tick being handled (tick taken, LIST not
    /// yet answered).
    pub(super) pending_reply: Option<ReplySlot<TickVerdict>>,
}

/// The generic periodic loop: wait for the tick gate, ask the
/// environment to act, follow its verdict. Both the completion monitor
/// and the straggler sweep are instances; cancellation (checkpoint
/// replay restarting the monitor, the job finishing) wins every race,
/// which is what makes "a killed-and-replayed monitor never forks the
/// LIST cycle" structural instead of comment-enforced.
pub(super) async fn run_tick_loop(
    kernel: AsyncExecutor,
    first_tick: Gate,
    token: CancelToken,
    cmds: Rc<RefCell<VecDeque<EnvCmd>>>,
    make_cmd: impl Fn(ReplySlot<TickVerdict>) -> EnvCmd,
) {
    let mut tick = first_tick;
    loop {
        if let Either::Left(()) = race(token.cancelled(), tick.wait()).await {
            return;
        }
        let reply = ReplySlot::new(&kernel);
        cmds.borrow_mut().push_back(make_cmd(reply.clone()));
        match race(token.cancelled(), reply.recv()).await {
            Either::Left(()) => return,
            Either::Right(TickVerdict::Stop) => return,
            Either::Right(TickVerdict::Rearm(next)) => tick = next,
        }
    }
}

impl CloudEnv {
    /// Starts the storage-polling completion monitor once it can make
    /// progress: infrastructure dispatched *and* every task released.
    /// Deferring the first poll past the last release keeps a gated job
    /// from burning LIST requests on results that cannot exist yet; for
    /// ungated jobs `held_tasks` is 0 and the monitor starts exactly
    /// where it always did.
    pub(super) fn maybe_start_monitor(&mut self, job: usize) {
        let j = &self.jobs[job];
        if j.monitor_started || !j.dispatch_ready || j.held_tasks > 0 {
            return;
        }
        self.jobs[job].monitor_started = true;
        self.start_monitor(job);
    }

    /// (Re)starts a job's completion monitor as a kernel future — plus a
    /// straggler-speculation future when the retry policy enables one. A
    /// previous loop (say, of a master lost before a checkpoint replay)
    /// is cancelled by the generation bump, so exactly one LIST cycle
    /// can ever be in flight.
    pub(super) fn start_monitor(&mut self, job: usize) {
        let interval = SimDuration::from_secs_f64(self.jobs[job].poll_interval);
        let first = self.wake_timer(interval);
        self.spawn_monitor_loop(job, first);
        // Straggler speculation only applies to FaaS jobs, and only when
        // the policy sets a timeout: golden runs arm exactly one timer.
        let straggling = self.jobs[job].retry.straggler_timeout_secs.is_some()
            && matches!(self.jobs[job].backend, JobBackend::Faas { .. });
        if straggling {
            let sweep_first = self.wake_timer(interval);
            let token = self.monitors[&job].token.clone();
            let kernel = self.kernel.clone();
            let cmds = Rc::clone(&self.env_cmds);
            self.kernel.spawn(run_tick_loop(
                kernel,
                sweep_first,
                token,
                cmds,
                move |reply| EnvCmd::StragglerSweep { job, reply },
            ));
        }
    }

    /// Spawns the monitor loop future for `job`, cancelling and
    /// superseding any previous one.
    pub(super) fn spawn_monitor_loop(&mut self, job: usize, first: Gate) {
        let token = self.kernel.cancel_token();
        let generation = match self.monitors.get_mut(&job) {
            Some(handle) => {
                handle.token.cancel();
                handle.generation += 1;
                handle.token = token.clone();
                handle.lists_in_flight = 0;
                handle.collecting = None;
                handle.pending_reply = None;
                handle.generation
            }
            None => {
                self.monitors.insert(
                    job,
                    MonitorHandle {
                        generation: 0,
                        token: token.clone(),
                        lists_in_flight: 0,
                        collecting: None,
                        pending_reply: None,
                    },
                );
                0
            }
        };
        let kernel = self.kernel.clone();
        let cmds = Rc::clone(&self.env_cmds);
        self.kernel.spawn(run_tick_loop(
            kernel,
            first,
            token,
            cmds,
            move |reply| EnvCmd::MonitorTick {
                job,
                generation,
                reply,
            },
        ));
    }

    /// A monitor tick fired: run one LIST cycle — unless the loop is
    /// stale (job finished, superseded generation) or its monitoring
    /// host died, which stops it.
    pub(super) fn on_monitor_tick(&mut self, job: usize, generation: u64, reply: ReplySlot<TickVerdict>) {
        if self.jobs[job].is_finished() {
            reply.set(TickVerdict::Stop);
            return;
        }
        let stale = match self.monitors.get(&job) {
            Some(handle) => handle.generation != generation,
            None => true,
        };
        if stale || !self.world.host_alive(self.jobs[job].monitor_host) {
            reply.set(TickVerdict::Stop);
            return;
        }
        self.monitors
            .get_mut(&job)
            .expect("monitor handle vanished")
            .pending_reply = Some(reply);
        let host = self.jobs[job].monitor_host;
        let bucket = self.jobs[job].bucket.clone();
        let prefix = self.jobs[job].result_prefix();
        self.issue_storage(
            StorageSpec::List {
                host,
                bucket,
                prefix,
            },
            1,
            Route::List { job, generation },
        );
    }

    /// A straggler-speculation tick fired: abandon late FaaS attempts,
    /// then re-arm (the sweep shares the monitor's cancellation token,
    /// so it dies with the job).
    pub(super) fn on_straggler_sweep(&mut self, job: usize, reply: ReplySlot<TickVerdict>) {
        if self.jobs[job].is_finished()
            || !self.world.host_alive(self.jobs[job].monitor_host)
        {
            reply.set(TickVerdict::Stop);
            return;
        }
        self.check_stragglers(job);
        if self.jobs[job].is_finished() {
            reply.set(TickVerdict::Stop);
            return; // straggler handling may exhaust a task's budget
        }
        let interval = SimDuration::from_secs_f64(self.jobs[job].poll_interval);
        let next = self.wake_timer(interval);
        reply.set(TickVerdict::Rearm(next));
    }

    /// Speculative re-execution: on each poll, FaaS task attempts older
    /// than the straggler timeout are abandoned (billed, booked as waste)
    /// and re-dispatched. Disabled unless the policy sets a timeout.
    pub(super) fn check_stragglers(&mut self, job: usize) {
        let Some(timeout) = self.jobs[job].retry.straggler_timeout_secs else {
            return;
        };
        if !matches!(self.jobs[job].backend, JobBackend::Faas { .. }) {
            return;
        }
        let now = self.world.now();
        let policy = self.jobs[job].retry.clone();
        let late: Vec<usize> = self
            .jobs[job]
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                // Only attempts whose sandbox has started can be safely
                // abandoned (cold starts are left to finish).
                matches!(
                    t.phase,
                    TaskPhase::FetchingInput | TaskPhase::Running | TaskPhase::WritingResult
                ) && policy.allows_retry(t.attempts)
                    && t.started_at
                        .is_some_and(|s| (now - s).as_secs_f64() > timeout)
            })
            .map(|(i, _)| i)
            .collect();
        for task in late {
            self.task_attempt_failed(job, task, AttemptFailure::Straggler);
            if self.jobs[job].is_finished() {
                return;
            }
        }
    }

    pub(super) fn on_list(&mut self, job: usize, generation: u64, outcome: OpOutcome) {
        // The reply ends its request's in-flight window whatever the
        // guards below decide.
        if let Some(handle) = self.monitors.get_mut(&job) {
            if handle.generation == generation {
                handle.lists_in_flight = handle.lists_in_flight.saturating_sub(1);
            }
        }
        if self.jobs[job].is_finished() {
            return;
        }
        // A checkpoint replay already restarted the loop (generation
        // mismatch), or the listing master died while the op was in
        // flight: drop the reply. In the latter case the loop future
        // parks on its unanswered reply gate — the replacement monitor
        // (or the stall, under [`RecoveryMode::Protected`]) owns the
        // job from here.
        let Some(handle) = self.monitors.get_mut(&job) else {
            return;
        };
        if handle.generation != generation {
            return;
        }
        let Some(reply) = handle.pending_reply.take() else {
            return;
        };
        if !self.world.host_alive(self.jobs[job].monitor_host) {
            return;
        }
        let OpOutcome::ListOk { keys } = outcome else {
            unreachable!("list op yielded a non-list outcome")
        };
        let total = self.jobs[job].tasks.len();
        if keys.len() < total {
            let interval = SimDuration::from_secs_f64(self.jobs[job].poll_interval);
            let next = self.wake_timer(interval);
            reply.set(TickVerdict::Rearm(next));
            return;
        }
        // All results present: collect them; the tick loop is done.
        let host = self.jobs[job].monitor_host;
        let bucket = self.jobs[job].bucket.clone();
        let mut outstanding = 0;
        for key in keys {
            let Some(task) = self.jobs[job].task_of_result_key(&key) else {
                continue;
            };
            self.issue_storage(
                StorageSpec::Get {
                    host,
                    bucket: bucket.clone(),
                    key,
                },
                1,
                Route::Collect {
                    job,
                    task,
                    generation,
                },
            );
            outstanding += 1;
        }
        self.monitors
            .get_mut(&job)
            .expect("monitor handle vanished")
            .collecting = Some(outstanding);
        reply.set(TickVerdict::Stop);
    }

    pub(super) fn on_collect(&mut self, job: usize, task: usize, generation: u64, outcome: OpOutcome) {
        if self.jobs[job].is_finished() {
            return;
        }
        // Collector died mid-gather (master loss): the replacement's
        // replay restarts the whole monitor cycle from a fresh LIST.
        if !self.world.host_alive(self.jobs[job].monitor_host) {
            return;
        }
        let body = match outcome {
            OpOutcome::GetOk { body } => body,
            other => unreachable!("collect yielded {other:?}"),
        };
        let decoded = match body.bytes() {
            Some(bytes) => Payload::decode(bytes),
            None => Ok(Payload::Opaque { size: body.len() }),
        };
        // The result is stored even when the cycle below turns out to be
        // superseded: it is ground truth either way.
        match decoded {
            Ok(p) => self.jobs[job].results[task] = Some(p),
            Err(e) => {
                self.complete_job(job, Some(e));
                return;
            }
        }
        let done = {
            // A straggling GET of a monitor cycle that a checkpoint
            // replay already superseded decrements nothing.
            let Some(handle) = self.monitors.get_mut(&job) else {
                return;
            };
            if handle.generation != generation {
                return;
            }
            let Some(outstanding) = handle.collecting.as_mut() else {
                return;
            };
            *outstanding -= 1;
            if *outstanding == 0 {
                handle.collecting = None;
                true
            } else {
                false
            }
        };
        if !done {
            return;
        }
        match self.jobs[job].backend {
            JobBackend::Faas { .. } => self.complete_job(job, None),
            JobBackend::Standalone { pool } => {
                if self.pools[pool].cfg.recovery == RecoveryMode::Decentralized {
                    // The client collected its own results; there is
                    // no master to hear from.
                    self.complete_job(job, None);
                } else {
                    // Master -> client SSH notification latency.
                    self.set_timer(
                        SimDuration::from_millis(60),
                        Route::MasterNotify { job },
                    );
                }
            }
        }
    }

    pub(super) fn complete_job(&mut self, job: usize, error: Option<ExecError>) {
        if self.jobs[job].is_finished() {
            return;
        }
        // The monitor (and any straggler sweep on the same token) dies
        // with the job; pending wake timers fire into orphaned gates.
        if let Some(handle) = self.monitors.remove(&job) {
            handle.token.cancel();
        }
        let now = self.world.now();
        self.jobs[job].finished_at = Some(now);
        self.jobs[job].error = error;
        let span = self.jobs[job].span;
        if self.world.tracer().is_enabled() {
            if let Some(err) = &self.jobs[job].error {
                let msg = err.to_string();
                self.world.tracer_mut().attr_str(span, "error", &msg);
            }
        }
        self.world.tracer_mut().end(span, now);
        self.job_activity(-1);
        let j = &self.jobs[job];
        self.timeline.record(StageSpan {
            name: j.name.clone(),
            start: j.first_release_at.unwrap_or(j.submitted_at),
            end: now,
            tasks: j.tasks.len(),
            stateful: j.stateful,
        });
        if let JobBackend::Standalone { pool } = self.jobs[job].backend {
            self.pool_job_finished(pool, job);
        }
    }

    // ------------------------------------------------------------------
    // Serverful pool machinery
    // ------------------------------------------------------------------
}
